package greedy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/matching"
	"repro/internal/setcover"
	"repro/internal/spanning"
)

// Facade errors. The Solver methods return these (possibly wrapped with
// detail); the legacy free functions panic with them instead, for
// compatibility with pre-Solver callers.
var (
	// ErrOrderSize reports that WithOrder supplied an order whose length
	// does not match the input size.
	ErrOrderSize = errors.New("greedy: WithOrder length does not match input size")
	// ErrLubyMatching reports that AlgoLuby was requested for a problem
	// other than MIS.
	ErrLubyMatching = errors.New("greedy: Luby's algorithm applies to MIS only")
	// ErrSpanningAlgorithm reports that an algorithm other than
	// AlgoPrefix or AlgoSequential was requested for spanning forest.
	ErrSpanningAlgorithm = errors.New("greedy: spanning forest supports algorithms prefix|sequential only")
	// ErrAdaptiveAlgorithm reports that WithAdaptivePrefix was combined
	// with an algorithm that has no prefix window to adapt.
	ErrAdaptiveAlgorithm = errors.New("greedy: adaptive prefix applies to the prefix algorithm only")
	// ErrDynamicUnsupported reports a configuration the dynamic
	// (churn-stable) priority scheme cannot express: spanning forest,
	// Luby (which regenerates priorities every round), or an explicit
	// order for dynamic matching (whose priorities are derived from the
	// edges themselves).
	ErrDynamicUnsupported = errors.New("greedy: dynamic priorities support MIS and MM under derived orders only")
	// ErrColoringAlgorithm reports that an algorithm other than
	// AlgoPrefix or AlgoSequential was requested for greedy coloring.
	ErrColoringAlgorithm = errors.New("greedy: coloring supports algorithms prefix|sequential only")
	// ErrHittingSetAlgorithm reports that an algorithm other than
	// AlgoPrefix or AlgoSequential was requested for greedy hitting set.
	ErrHittingSetAlgorithm = errors.New("greedy: hitting set supports algorithms prefix|sequential only")
)

// RoundInfo is a per-round progress report streamed to a
// WithRoundObserver callback by the round-synchronous algorithms
// (prefix-based, root-set, Luby; the strictly sequential algorithms do
// not report — their "rounds" are single items). Summed over a run,
// Attempted is the paper's total-work measure (Figure 1(a)/1(d)), the
// number of callbacks is the round count (Figure 1(b)/1(e)), and
// EdgeInspections is the finer-grained work measure — so an observer
// watches the paper's Figure 1 quantities accumulate live.
type RoundInfo struct {
	// Round is the 1-based round index.
	Round int64
	// PrefixSize is the resolved prefix (window) size of the run: the
	// maximum number of iterates examined per round. 0 for algorithms
	// without a prefix window (root-set, Luby).
	PrefixSize int
	// Attempted is the number of iterates processed this round.
	Attempted int
	// Accepted is the number of iterates that reached their final
	// status this round — committed into the solution or ruled out —
	// and therefore will not be retried.
	Accepted int
	// EdgeInspections is the number of neighbor/endpoint status reads
	// performed this round.
	EdgeInspections int64
	// RetryTail is the number of attempted iterates left undecided this
	// round — the retry set carried into the next round. A persistently
	// large tail relative to the window is the signature of a hot
	// dependency chain.
	RetryTail int
	// CheckNS/CommitNS/ResetNS/SlideNS decompose the round's wall time
	// by engine phase, in nanoseconds: the check fork-join, the commit
	// fork-join, the reservation-reset fork-join (0 for problems
	// without one), and everything else (window refill, outcome fill,
	// the retry-tail pack-and-slide, adaptive bookkeeping). All four
	// are 0 unless WithPhaseProfile is set; when it is, the per-phase
	// sums over a run tile the round loop's span with no gaps.
	CheckNS  int64
	CommitNS int64
	ResetNS  int64
	SlideNS  int64
}

// WithRoundObserver streams per-round statistics to fn as the run
// progresses. fn is called between rounds on the solver's goroutine
// (never concurrently); it must not block for long, or it becomes the
// round loop's critical path. The observer is read-only: computing with
// or without one yields bit-identical results.
//
// Observers compose: repeating the option — across NewSolver defaults
// and per-call options — registers every function, and each round is
// reported to all of them in registration order (defaults first). This
// is what lets an embedding layer attach its own telemetry observer
// without clobbering a user-supplied one.
func WithRoundObserver(fn func(RoundInfo)) Option {
	return func(c *config) {
		if fn != nil {
			c.observers = append(c.observers, fn)
		}
	}
}

// Solver runs the paper's algorithms with a reusable Workspace: the
// per-run arrays (frontiers, status flags, reservations, priority
// orders) are allocated once, sized up lazily, and reused across runs
// on same-or-smaller inputs, so a long-lived Solver performs
// near-zero steady-state allocation per run beyond the returned
// Result. Results are bit-identical to fresh-memory runs.
//
// A Solver is NOT safe for concurrent use: it owns its workspace.
// Use one Solver per goroutine (the service layer keeps one per
// worker); the zero-cost alternative for one-shot calls is the package
// free functions, which draw Solvers from an internal pool.
//
// Options passed to NewSolver become defaults for every run; options
// passed to a method call override them for that run.
type Solver struct {
	defaults []Option

	misWs   core.Workspace
	mmWs    matching.Workspace
	sfWs    spanning.Workspace
	colorWs coloring.Workspace
	hsWs    setcover.Workspace

	orders map[orderKey]Order
}

// orderKey identifies a derived priority order: NewRandomOrder is
// deterministic in (n, seed), so equal keys mean equal orders. Dynamic
// (hash-priority) edge orders are never cached under such a key — they
// depend on the edge endpoints themselves, which (m, seed) does not
// determine.
type orderKey struct {
	n    int
	seed uint64
}

// maxCachedOrders bounds the Solver's order cache. Orders are two
// []int32 of the input size; a handful covers the steady state of a
// serving worker cycling through a few (input, seed) pairs.
const maxCachedOrders = 8

// NewSolver returns a Solver whose runs apply defaults before
// per-call options.
func NewSolver(defaults ...Option) *Solver {
	return &Solver{defaults: defaults}
}

func (s *Solver) config(opts []Option) config {
	c := config{seed: 1}
	for _, o := range s.defaults {
		o(&c)
	}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// checkAdaptive rejects WithAdaptivePrefix for algorithms with no
// prefix window: only AlgoPrefix has one to adapt (AlgoParallel's full
// prefix is the point of Algorithm 2, the rest are windowless).
func (c config) checkAdaptive() error {
	if c.adaptive && c.algorithm != AlgoPrefix {
		return fmt.Errorf("%w: got %q", ErrAdaptiveAlgorithm, c.algorithm)
	}
	return nil
}

// orderFor returns the priority order the configuration denotes for n
// items, serving derived orders from the Solver's cache (regenerating a
// random order is deterministic, so caching is purely an allocation
// win).
func (s *Solver) orderFor(c config, n int) (Order, error) {
	if c.order != nil {
		if c.order.Len() != n {
			return Order{}, fmt.Errorf("%w: order has %d items, input has %d", ErrOrderSize, c.order.Len(), n)
		}
		return *c.order, nil
	}
	key := orderKey{n: n, seed: c.seed}
	if ord, ok := s.orders[key]; ok {
		return ord, nil
	}
	ord := core.NewRandomOrder(n, c.seed)
	if s.orders == nil {
		s.orders = make(map[orderKey]Order)
	}
	if len(s.orders) >= maxCachedOrders {
		// Cheap wholesale eviction: regeneration is deterministic and
		// O(n); tracking recency would cost more than it saves.
		clear(s.orders)
	}
	s.orders[key] = ord
	return ord, nil
}

// observerFor adapts the facade observers to the internal round hook,
// fanning each round report out to every registered observer. With no
// observers it returns nil, so the unobserved hot path stays exactly
// the pre-observer code (and allocation-free).
func observerFor(c config) func(core.RoundStat) {
	if len(c.observers) == 0 {
		return nil
	}
	obs := c.observers
	return func(rs core.RoundStat) {
		ri := RoundInfo{
			Round:           rs.Round,
			PrefixSize:      rs.Prefix,
			Attempted:       rs.Attempted,
			Accepted:        rs.Resolved,
			EdgeInspections: rs.Inspections,
			RetryTail:       rs.RetryTail,
			CheckNS:         rs.CheckNS,
			CommitNS:        rs.CommitNS,
			ResetNS:         rs.ResetNS,
			SlideNS:         rs.SlideNS,
		}
		for _, fn := range obs {
			fn(ri)
		}
	}
}

// clockFor returns the monotonic nanosecond clock the engine brackets
// its phases with under WithPhaseProfile, or nil (no clock reads at
// all) when profiling is off. The clock lives here, not in the engine:
// the result-affecting packages are under the nodeterminism analyzer
// and never read wall time themselves — the facade injects it, and its
// readings surface only through RoundInfo telemetry.
func clockFor(c config) func() int64 {
	if !c.phaseProfile {
		return nil
	}
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// MIS computes a maximal independent set of g under the configured
// options. Long runs honor ctx: cancellation is checked once per round
// (the hot inner loops never see it), so the call returns ctx.Err()
// within one round of the context being cancelled.
func (s *Solver) MIS(ctx context.Context, g *Graph, opts ...Option) (*MISResult, error) {
	c := s.config(opts)
	if err := c.checkAdaptive(); err != nil {
		return nil, err
	}
	coreOpt := core.Options{
		PrefixFrac: c.prefixFrac,
		PrefixSize: c.prefixSize,
		Adaptive:   c.adaptive,
		Grain:      c.grain,
		Pointered:  c.pointered,
		OnRound:    observerFor(c),
		Clock:      clockFor(c),
		Workspace:  &s.misWs,
	}
	// Luby regenerates priorities from the seed every round; deriving
	// (and caching) a priority order for it would be pure waste. It has
	// no churn-stable variant either, so WithDynamic rejects it.
	if c.algorithm == AlgoLuby {
		if c.dynamic {
			return nil, fmt.Errorf("%w: got %q", ErrDynamicUnsupported, c.algorithm)
		}
		return core.LubyMISCtx(ctx, g, c.seed, coreOpt)
	}
	ord, err := s.orderFor(c, g.NumVertices())
	if err != nil {
		return nil, err
	}
	switch c.algorithm {
	case AlgoSequential:
		return core.SequentialMISCtx(ctx, g, ord, coreOpt)
	case AlgoRootSet:
		return core.RootSetMISCtx(ctx, g, ord, coreOpt)
	case AlgoParallel:
		return core.ParallelMISCtx(ctx, g, ord, coreOpt)
	default:
		return core.PrefixMISCtx(ctx, g, ord, coreOpt)
	}
}

// MM computes a maximal matching of the edge list el; the priority
// order is over edge identifiers. Cancellation follows the same
// one-round bound as MIS. AlgoLuby is rejected with ErrLubyMatching.
func (s *Solver) MM(ctx context.Context, el EdgeList, opts ...Option) (*MMResult, error) {
	c := s.config(opts)
	if c.algorithm == AlgoLuby {
		return nil, ErrLubyMatching
	}
	if err := c.checkAdaptive(); err != nil {
		return nil, err
	}
	var ord Order
	if c.dynamic {
		// Churn-stable priorities: derived from the edges themselves
		// (see WithDynamic), incompatible with an explicit identifier
		// order and never cached — (m, seed) does not determine them.
		if c.order != nil {
			return nil, fmt.Errorf("%w: WithOrder cannot combine with WithDynamic", ErrDynamicUnsupported)
		}
		ord = dynamic.EdgeOrder(el, c.seed)
	} else {
		var err error
		ord, err = s.orderFor(c, el.NumEdges())
		if err != nil {
			return nil, err
		}
	}
	opt := matching.Options{
		PrefixFrac: c.prefixFrac,
		PrefixSize: c.prefixSize,
		Adaptive:   c.adaptive,
		Grain:      c.grain,
		OnRound:    observerFor(c),
		Clock:      clockFor(c),
		Workspace:  &s.mmWs,
	}
	switch c.algorithm {
	case AlgoSequential:
		return matching.SequentialMMCtx(ctx, el, ord, opt)
	case AlgoRootSet:
		return matching.RootSetMMCtx(ctx, el, ord, opt)
	case AlgoParallel:
		return matching.ParallelMMCtx(ctx, el, ord, opt)
	default:
		return matching.PrefixMMCtx(ctx, el, ord, opt)
	}
}

// SF computes a greedy spanning forest of the edge list el — the §7
// extension. AlgoSequential runs the union-find scan; the default runs
// the prefix-based deterministic-reservations version with PBBS
// one-root semantics (see SpanningForest for the fidelity discussion).
// Other algorithms are rejected with ErrSpanningAlgorithm. Cancellation
// follows the same one-round bound as MIS.
func (s *Solver) SF(ctx context.Context, el EdgeList, opts ...Option) (*SFResult, error) {
	c := s.config(opts)
	if c.dynamic {
		return nil, fmt.Errorf("%w: spanning forest has no dynamic variant", ErrDynamicUnsupported)
	}
	switch c.algorithm {
	case AlgoPrefix, AlgoSequential:
	default:
		return nil, fmt.Errorf("%w: got %q", ErrSpanningAlgorithm, c.algorithm)
	}
	if err := c.checkAdaptive(); err != nil {
		return nil, err
	}
	ord, err := s.orderFor(c, el.NumEdges())
	if err != nil {
		return nil, err
	}
	opt := spanning.Options{
		PrefixFrac: c.prefixFrac,
		PrefixSize: c.prefixSize,
		Adaptive:   c.adaptive,
		Grain:      c.grain,
		OnRound:    observerFor(c),
		Clock:      clockFor(c),
		Workspace:  &s.sfWs,
	}
	if c.algorithm == AlgoSequential {
		return spanning.SequentialSFCtx(ctx, el, ord, opt)
	}
	return spanning.PrefixSFRelaxedCtx(ctx, el, ord, opt)
}

// Coloring computes the greedy (first-fit) coloring of g under the
// configured options: vertices in priority order, each taking the
// smallest color absent among its earlier neighbors. AlgoSequential
// runs the reference scan; the default AlgoPrefix runs the speculative
// engine and returns the identical — lexicographically-first — coloring
// at any thread count and prefix size. Other algorithms are rejected
// with ErrColoringAlgorithm, and WithDynamic with
// ErrDynamicUnsupported. Cancellation follows the same one-round bound
// as MIS.
func (s *Solver) Coloring(ctx context.Context, g *Graph, opts ...Option) (*ColoringResult, error) {
	c := s.config(opts)
	if c.dynamic {
		return nil, fmt.Errorf("%w: coloring has no dynamic variant", ErrDynamicUnsupported)
	}
	switch c.algorithm {
	case AlgoPrefix, AlgoSequential:
	default:
		return nil, fmt.Errorf("%w: got %q", ErrColoringAlgorithm, c.algorithm)
	}
	if err := c.checkAdaptive(); err != nil {
		return nil, err
	}
	ord, err := s.orderFor(c, g.NumVertices())
	if err != nil {
		return nil, err
	}
	opt := coloring.Options{
		PrefixFrac: c.prefixFrac,
		PrefixSize: c.prefixSize,
		Adaptive:   c.adaptive,
		Grain:      c.grain,
		OnRound:    observerFor(c),
		Clock:      clockFor(c),
		Workspace:  &s.colorWs,
	}
	if c.algorithm == AlgoSequential {
		return coloring.SequentialColoringCtx(ctx, g, ord, opt)
	}
	return coloring.PrefixColoringCtx(ctx, g, ord, opt)
}

// HittingSet computes the greedy hitting set of the set system sys
// under the configured options: elements in priority order, each
// joining the hitting set exactly when some set containing it is not
// yet hit. AlgoSequential runs the reference scan; the default
// AlgoPrefix runs the speculative engine and returns the identical
// greedy hitting set at any thread count and prefix size. Other
// algorithms are rejected with ErrHittingSetAlgorithm, and WithDynamic
// with ErrDynamicUnsupported. Cancellation follows the same one-round
// bound as MIS.
func (s *Solver) HittingSet(ctx context.Context, sys *System, opts ...Option) (*HittingSetResult, error) {
	c := s.config(opts)
	if c.dynamic {
		return nil, fmt.Errorf("%w: hitting set has no dynamic variant", ErrDynamicUnsupported)
	}
	switch c.algorithm {
	case AlgoPrefix, AlgoSequential:
	default:
		return nil, fmt.Errorf("%w: got %q", ErrHittingSetAlgorithm, c.algorithm)
	}
	if err := c.checkAdaptive(); err != nil {
		return nil, err
	}
	ord, err := s.orderFor(c, sys.NumElements())
	if err != nil {
		return nil, err
	}
	opt := setcover.Options{
		PrefixFrac: c.prefixFrac,
		PrefixSize: c.prefixSize,
		Adaptive:   c.adaptive,
		Grain:      c.grain,
		OnRound:    observerFor(c),
		Clock:      clockFor(c),
		Workspace:  &s.hsWs,
	}
	if c.algorithm == AlgoSequential {
		return setcover.SequentialHittingSetCtx(ctx, sys, ord, opt)
	}
	return setcover.PrefixHittingSetCtx(ctx, sys, ord, opt)
}

// solverPool backs the package free functions: one-shot callers still
// benefit from workspace reuse across calls without any Solver
// lifecycle of their own, and the pool empties under memory pressure.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}
