// Package greedy (module repro) is a Go reproduction of Blelloch,
// Fineman and Shun, "Greedy Sequential Maximal Independent Set and
// Matching are Parallel on Average" (SPAA 2012, arXiv:1202.3205).
//
// The paper's observation: the familiar sequential greedy algorithms for
// maximal independent set (MIS) and maximal matching (MM) — scan the
// items in a fixed random order, accept an item unless an earlier
// accepted neighbor forbids it — have only polylogarithmic sequential
// depth on average. Running the iterations "as early as their
// dependencies allow" therefore yields parallel algorithms that are
// simultaneously fast and deterministic: for a fixed priority order they
// return bit-identical results at any thread count, namely the
// lexicographically-first solution the sequential algorithm defines.
//
// # The Solver API
//
// The facade's primary entry point is the Solver, built for callers
// that run many computations (benchmark sweeps, serving workers):
//
//	solver := greedy.NewSolver(greedy.WithSeed(7))
//	res, err := solver.MIS(ctx, g)                    // cancellable
//	mm, err := solver.MM(ctx, g.EdgeList())
//	sf, err := solver.SF(ctx, g.EdgeList())
//	col, err := solver.Coloring(ctx, g)               // first-fit greedy coloring
//	hs, err := solver.HittingSet(ctx, greedy.HittingSystemFromEdges(g.EdgeList()))
//
// All five problems run on one shared speculative-prefix engine
// (internal/engine): per round the earliest unresolved iterates are
// checked against earlier-priority state and the winners committed, so
// every problem inherits the same determinism (sequential-greedy
// results at any thread count), window schedules (fixed or adaptive),
// cancellation and observer semantics. Coloring computes the first-fit
// greedy coloring in priority order; HittingSet computes the greedy
// hitting set of an arbitrary set system (NewSystem), with
// HittingSystemFromEdges providing the classic greedy-vertex-cover
// instance. WeightedOrder builds descending-weight priority orders
// (seeded tiebreak), turning any of the five into its weighted-greedy
// variant.
//
// A Solver owns a reusable Workspace: the per-run arrays (frontier,
// status flags, reservations, priority orders) are allocated once,
// sized up lazily, and reused across runs on same-or-smaller inputs —
// results stay bit-identical to fresh-memory runs while steady-state
// allocation drops to little more than the returned Result. A Solver
// is not safe for concurrent use; keep one per goroutine.
//
// Every Solver method takes a context, checked once per round of the
// round-synchronous algorithms (the hot inner loops never see it), so
// cancelling aborts a long run within one round and returns ctx.Err().
// WithRoundObserver streams per-round statistics (RoundInfo: round
// index, prefix size, accepted count, edge inspections — the paper's
// Figure 1 quantities) as the run progresses. Configuration mistakes
// (AlgoLuby for matching, a mismatched WithOrder) come back as errors,
// not panics.
//
// # One-shot helpers
//
// The original free functions remain as thin wrappers over an internal
// Solver pool, for quick scripts and tests:
//
//	g := greedy.RandomGraph(1_000_000, 5_000_000, 42)
//	res := greedy.MaximalIndependentSet(g, greedy.WithSeed(7))
//	fmt.Println(res.Size(), res.Stats)
//
// Migration from the free functions to the Solver API:
//
//	MaximalIndependentSet(g, opts...)  ->  solver.MIS(ctx, g, opts...)
//	MaximalMatching(g, opts...)        ->  solver.MM(ctx, g.EdgeList(), opts...)
//	MaximalMatchingEdges(el, opts...)  ->  solver.MM(ctx, el, opts...)
//	SpanningForest(g, opts...)         ->  solver.SF(ctx, g.EdgeList(), opts...)
//	SpanningForestEdges(el, opts...)   ->  solver.SF(ctx, el, opts...)
//
// The wrappers preserve the historical panic-on-misuse behavior; the
// Solver methods return those conditions as errors (ErrLubyMatching,
// ErrOrderSize, ErrSpanningAlgorithm, ErrColoringAlgorithm,
// ErrHittingSetAlgorithm). GreedyColoring and GreedyHittingSet are the
// one-shot wrappers for the two newest problems.
//
// # Dynamic graphs
//
// Solver.MISDynamic and Solver.MMDynamic return session handles that
// maintain a solution under streams of edge insertions and deletions:
// each Apply drains a change-driven priority frontier — seeded only by
// the directly-perturbed items and expanded to an item's downstream
// neighbors only when its membership actually flipped — instead of
// recomputing, and the maintained result is always bit-identical to a
// from-scratch sequential greedy run on the mutated graph:
//
//	sess, err := solver.MISDynamic(ctx, g)
//	stats, err := sess.Apply(ctx, []greedy.DynamicUpdate{{Op: greedy.OpAdd, U: 1, V: 2}})
//	res := sess.Result()
//
// The returned RepairStats speak frontier: Seeds, Visited (distinct
// items re-decided), Flipped (membership flips propagated — items that
// re-derive their old decision stop the propagation, so an unaffected
// hub costs one decision, not its fan-out), FrontierPeak, and Changed.
//
// WithDynamic selects the same churn-stable priorities for one-shot
// runs (a no-op for MIS, hash-derived edge priorities for MM), which
// is what lets the service answer a dynamic-plan job by repair or by
// recompute interchangeably.
//
// # Plans
//
// A Plan is the resolved, serializable form of an option list and
// round-trips through JSON with canonical algorithm names — the wire
// form the service layer uses for job submission and deduplication.
//
// The internal packages hold the substance: internal/engine (the one
// speculative check/commit round loop all problems share),
// internal/core (MIS, priority-DAG analyzers), internal/matching (MM),
// internal/spanning, internal/coloring (first-fit greedy coloring),
// internal/setcover (greedy hitting set over dual-CSR set systems),
// internal/reservations (the deterministic-reservations framework),
// internal/dynamic (incremental MIS/MM maintenance under edge churn),
// internal/graph (CSR graphs, generators, I/O), internal/parallel
// (fork-join primitives), internal/service (the greedyd serving layer
// with cancellable jobs, graph versioning via PATCH, and live
// progress) and internal/bench (the experiment harness reproducing
// every figure; see cmd/bench and EXPERIMENTS.md).
package greedy
