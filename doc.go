// Package greedy (module repro) is a Go reproduction of Blelloch,
// Fineman and Shun, "Greedy Sequential Maximal Independent Set and
// Matching are Parallel on Average" (SPAA 2012, arXiv:1202.3205).
//
// The paper's observation: the familiar sequential greedy algorithms for
// maximal independent set (MIS) and maximal matching (MM) — scan the
// items in a fixed random order, accept an item unless an earlier
// accepted neighbor forbids it — have only polylogarithmic sequential
// depth on average. Running the iterations "as early as their
// dependencies allow" therefore yields parallel algorithms that are
// simultaneously fast and deterministic: for a fixed priority order they
// return bit-identical results at any thread count, namely the
// lexicographically-first solution the sequential algorithm defines.
//
// This package is the stable facade over the implementation packages:
//
//   - MaximalIndependentSet and MaximalMatching run the paper's
//     algorithms with functional options selecting the algorithm
//     (sequential, prefix-based, root-set, fully parallel, or Luby's
//     baseline), the prefix size (the work/parallelism dial of the
//     paper's Figure 1), and the random seed.
//   - SpanningForest is the paper's §7 extension: the same prefix
//     technique applied to greedy spanning forest.
//   - Graph constructors (NewGraph, RandomGraph, RMatGraph) and the
//     verifiers used in the paper's methodology are re-exported.
//
// Quick start:
//
//	g := greedy.RandomGraph(1_000_000, 5_000_000, 42)
//	res := greedy.MaximalIndependentSet(g, greedy.WithSeed(7))
//	fmt.Println(res.Size(), res.Stats)
//
// The internal packages hold the substance: internal/core (MIS,
// priority-DAG analyzers), internal/matching (MM), internal/spanning,
// internal/reservations (the deterministic-reservations framework),
// internal/graph (CSR graphs, generators, I/O), internal/parallel
// (fork-join primitives) and internal/bench (the experiment harness
// reproducing every figure; see cmd/bench and EXPERIMENTS.md).
package greedy
