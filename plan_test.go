package greedy_test

import (
	"encoding/json"
	"strings"
	"testing"

	greedy "repro"
)

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []greedy.Algorithm{
		greedy.AlgoPrefix, greedy.AlgoSequential, greedy.AlgoRootSet,
		greedy.AlgoParallel, greedy.AlgoLuby,
	} {
		got, err := greedy.ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %q -> %v", a, a.String(), got)
		}
	}
	if _, err := greedy.ParseAlgorithm("frobnicate"); err == nil {
		t.Fatal("bad algorithm name accepted")
	}
	if a, err := greedy.ParseAlgorithm(""); err != nil || a != greedy.AlgoPrefix {
		t.Fatalf("empty name: got %v, %v; want default prefix", a, err)
	}
}

func TestResolvePlanDefaultsAndRoundTrip(t *testing.T) {
	def := greedy.ResolvePlan()
	if def.Algorithm != greedy.AlgoPrefix || def.Seed != 1 || def.ExplicitOrder {
		t.Fatalf("bad default plan: %+v", def)
	}
	p := greedy.ResolvePlan(
		greedy.WithAlgorithm(greedy.AlgoRootSet),
		greedy.WithSeed(99),
		greedy.WithPrefixFrac(0.01),
		greedy.WithGrain(512),
		greedy.WithPointer(),
	)
	want := greedy.Plan{Algorithm: greedy.AlgoRootSet, Seed: 99, PrefixFrac: 0.01, Grain: 512, Pointered: true}
	if p != want {
		t.Fatalf("resolved plan %+v, want %+v", p, want)
	}
	if back := greedy.ResolvePlan(p.Options()...); back != want {
		t.Fatalf("plan options round trip %+v, want %+v", back, want)
	}
	ord := greedy.NewRandomOrder(10, 1)
	if !greedy.ResolvePlan(greedy.WithOrder(ord)).ExplicitOrder {
		t.Fatal("explicit order not flagged")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plans := []greedy.Plan{
		{},
		greedy.ResolvePlan(),
		{Algorithm: greedy.AlgoLuby, Seed: 42},
		{Algorithm: greedy.AlgoRootSet, Seed: 7, PrefixFrac: 0.005, Grain: 128, Pointered: true},
		{Algorithm: greedy.AlgoSequential, PrefixSize: 1024, ExplicitOrder: true},
		{Algorithm: greedy.AlgoPrefix, Seed: 3, AdaptivePrefix: true},
		{Algorithm: greedy.AlgoPrefix, Seed: 3, AdaptivePrefix: true, PrefixFrac: 0.01},
	}
	for _, p := range plans {
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		var back greedy.Plan
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%+v: unmarshal %s: %v", p, raw, err)
		}
		if back != p {
			t.Fatalf("round trip %+v -> %s -> %+v", p, raw, back)
		}
	}
}

func TestPlanJSONCanonicalNames(t *testing.T) {
	raw, err := json.Marshal(greedy.Plan{Algorithm: greedy.AlgoRootSet, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := `"algorithm":"rootset"`
	if !json.Valid(raw) || string(raw) == "" || !strings.Contains(string(raw), want) {
		t.Fatalf("marshaled plan %s does not carry the canonical name %s", raw, want)
	}

	var p greedy.Plan
	if err := json.Unmarshal([]byte(`{"algorithm":"luby","seed":9}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != greedy.AlgoLuby || p.Seed != 9 {
		t.Fatalf("decoded %+v", p)
	}
	// Absent algorithm selects the default.
	if err := json.Unmarshal([]byte(`{"seed":1}`), &p); err != nil || p.Algorithm != greedy.AlgoPrefix {
		t.Fatalf("absent algorithm: %+v, %v", p, err)
	}
	// Unknown algorithm names and typoed fields fail loudly.
	if err := json.Unmarshal([]byte(`{"algorithm":"frobnicate"}`), &p); err == nil {
		t.Fatal("unknown algorithm name accepted")
	}
	if err := json.Unmarshal([]byte(`{"prefix":0.5}`), &p); err == nil {
		t.Fatal("unknown plan field accepted")
	}
}

// TestPlanIsSoundDedupKey is the service-layer contract: equal plans on
// the same graph give bit-identical results even across algorithms'
// thread-count variation (exercised elsewhere), while different seeds
// give different results with overwhelming probability.
func TestPlanIsSoundDedupKey(t *testing.T) {
	g := greedy.RandomGraph(2000, 10000, 5)
	p := greedy.ResolvePlan(greedy.WithSeed(7))
	r1 := greedy.MaximalIndependentSet(g, p.Options()...)
	r2 := greedy.MaximalIndependentSet(g, p.Options()...)
	if !r1.Equal(r2) {
		t.Fatal("same plan, different results")
	}
	r3 := greedy.MaximalIndependentSet(g, greedy.ResolvePlan(greedy.WithSeed(8)).Options()...)
	if r1.Equal(r3) {
		t.Fatal("different seeds produced identical MIS (suspicious)")
	}
}
