// Command greedylint runs the repo's determinism and concurrency
// analyzers (internal/analysis) over the named packages — the
// machine-checked form of the invariants every PR otherwise re-proves
// by hand: no clock/env/map-order reads on result paths, no mixed
// atomic/plain field access, cancellation reachable inside every round
// loop, nil-guarded recorder methods with a lean critical section, and
// race-free parallel loop bodies.
//
// Usage:
//
//	greedylint [-json] [-list] [packages...]
//
// Packages default to ./... . Exit status is 0 when no findings, 1 when
// findings were reported, 2 on a load or usage error. When the
// GITHUB_STEP_SUMMARY environment variable names a writable file (as it
// does inside GitHub Actions), a Markdown summary of the findings is
// appended to it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("greedylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "greedylint: %v\n", err)
		return 2
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "greedylint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	writeJobSummary(diags, len(pkgs))

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "greedylint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// writeJobSummary appends a Markdown findings table to the GitHub
// Actions step summary file, when one is configured.
func writeJobSummary(diags []analysis.Diagnostic, pkgCount int) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	if len(diags) == 0 {
		fmt.Fprintf(f, "### greedylint\n\nNo findings in %d packages. ✅\n", pkgCount)
		return
	}
	fmt.Fprintf(f, "### greedylint\n\n%d finding(s) in %d packages:\n\n", len(diags), pkgCount)
	fmt.Fprintf(f, "| Location | Analyzer | Finding |\n|---|---|---|\n")
	for _, d := range diags {
		fmt.Fprintf(f, "| `%s:%d` | %s | %s |\n", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
	}
}
