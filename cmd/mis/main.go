// Command mis computes a maximal independent set of a graph with any of
// the library's algorithms and reports the result and its cost counters.
// The input is a graph file (PBBS AdjacencyGraph, EdgeArray, or the
// library's binary format, auto-detected) or a generated graph.
//
// Usage:
//
//	mis -in graph.adj -algorithm prefix -prefix 0.01
//	mis -gen random -n 100000 -m 500000 -algorithm rootset
//	mis -gen rmat -n 65536 -m 500000 -algorithm luby -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	greedy "repro"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph file (empty: use -gen)")
		gen       = flag.String("gen", "random", "generator when no -in: random|rmat")
		n         = flag.Int("n", 100_000, "generated vertex count")
		m         = flag.Int("m", 500_000, "generated edge count")
		seed      = flag.Uint64("seed", 42, "seed for generator and priorities")
		algorithm = flag.String("algorithm", "prefix", "sequential|parallel|rootset|prefix|luby")
		prefix    = flag.Float64("prefix", 0, "prefix fraction for the prefix algorithm (0 = default)")
		pointered = flag.Bool("pointered", false, "use the Lemma 4.1 parent-pointer optimization")
		verify    = flag.Bool("verify", false, "verify maximality (and lex-first equality for deterministic algorithms)")
		quiet     = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	g, err := loadOrGenerate(*in, *gen, *n, *m, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mis: %v\n", err)
		os.Exit(2)
	}
	ord := core.NewRandomOrder(g.NumVertices(), *seed+1)
	opt := core.Options{PrefixFrac: *prefix, Pointered: *pointered}

	algo, err := greedy.ParseAlgorithm(*algorithm)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mis: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	var res *core.Result
	switch algo {
	case greedy.AlgoSequential:
		res = core.SequentialMIS(g, ord)
	case greedy.AlgoParallel:
		res = core.ParallelMIS(g, ord, opt)
	case greedy.AlgoRootSet:
		res = core.RootSetMIS(g, ord, opt)
	case greedy.AlgoLuby:
		res = core.LubyMIS(g, *seed+9, opt)
	default:
		res = core.PrefixMIS(g, ord, opt)
	}
	elapsed := time.Since(start)

	if !*quiet {
		fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())
		fmt.Printf("algorithm: %s\n", *algorithm)
		fmt.Printf("stats: %s\n", res.Stats)
	}
	fmt.Printf("mis: size=%d time=%v\n", res.Size(), elapsed)

	if *verify {
		if !core.IsMaximalIndependentSet(g, res.InSet) {
			fmt.Fprintln(os.Stderr, "mis: VERIFICATION FAILED: not a maximal independent set")
			os.Exit(1)
		}
		if algo != greedy.AlgoLuby {
			if err := core.VerifyLexFirst(g, ord, res); err != nil {
				fmt.Fprintf(os.Stderr, "mis: VERIFICATION FAILED: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Println("verify: ok")
	}
}

func loadOrGenerate(in, gen string, n, m int, seed uint64) (*graph.Graph, error) {
	if in != "" {
		return loadGraph(in)
	}
	switch gen {
	case "random":
		return graph.Random(n, m, seed), nil
	case "rmat":
		logn := 0
		for 1<<logn < n {
			logn++
		}
		return graph.RMat(logn, m, seed, graph.DefaultRMatOptions()), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadAuto(f)
}
