// Command mis computes a maximal independent set of a graph with any of
// the library's algorithms and reports the result and its cost counters.
// The input is a graph file (PBBS AdjacencyGraph, EdgeArray, or the
// library's binary format, auto-detected) or a generated graph. It runs
// on the Solver API: Ctrl-C cancels a long run within one round, and
// -progress streams the per-round profile (the paper's Figure 1
// quantities) to stderr as the run advances.
//
// Usage:
//
//	mis -in graph.adj -algorithm prefix -prefix 0.01
//	mis -gen random -n 100000 -m 500000 -algorithm rootset
//	mis -gen rmat -n 65536 -m 500000 -algorithm luby -verify
//	mis -n 10000000 -m 50000000 -progress
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	greedy "repro"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph file (empty: use -gen)")
		gen       = flag.String("gen", "random", "generator when no -in: random|rmat")
		n         = flag.Int("n", 100_000, "generated vertex count")
		m         = flag.Int("m", 500_000, "generated edge count")
		seed      = flag.Uint64("seed", 42, "seed for generator and priorities")
		algorithm = flag.String("algorithm", "prefix", "sequential|parallel|rootset|prefix|luby")
		prefix    = flag.Float64("prefix", 0, "prefix fraction for the prefix algorithm (0 = default)")
		pointered = flag.Bool("pointered", false, "use the Lemma 4.1 parent-pointer optimization")
		verify    = flag.Bool("verify", false, "verify maximality (and lex-first equality for deterministic algorithms)")
		progress  = flag.Bool("progress", false, "stream per-round stats to stderr")
		quiet     = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	g, err := loadOrGenerate(*in, *gen, *n, *m, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mis: %v\n", err)
		os.Exit(2)
	}

	algo, err := greedy.ParseAlgorithm(*algorithm)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mis: %v\n", err)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the run within one round instead of
	// killing the process mid-computation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ord := core.NewRandomOrder(g.NumVertices(), *seed+1)
	opts := []greedy.Option{
		greedy.WithAlgorithm(algo),
		greedy.WithOrder(ord),
		greedy.WithPrefixFrac(*prefix),
		// Luby ignores the order and derives fresh priorities from the
		// seed; +9 keeps parity with the seeds used by cmd/bench.
		greedy.WithSeed(*seed + 9),
	}
	if *pointered {
		opts = append(opts, greedy.WithPointer())
	}
	if *progress {
		opts = append(opts, greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
			fmt.Fprintf(os.Stderr, "round %6d: prefix=%d attempted=%d accepted=%d inspections=%d\n",
				ri.Round, ri.PrefixSize, ri.Attempted, ri.Accepted, ri.EdgeInspections)
		}))
	}

	solver := greedy.NewSolver()
	start := time.Now()
	res, err := solver.MIS(ctx, g, opts...)
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "mis: cancelled after %v\n", elapsed)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "mis: %v\n", err)
		os.Exit(1)
	}

	if !*quiet {
		fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())
		fmt.Printf("algorithm: %s\n", *algorithm)
		fmt.Printf("stats: %s\n", res.Stats)
	}
	fmt.Printf("mis: size=%d time=%v\n", res.Size(), elapsed)

	if *verify {
		if !core.IsMaximalIndependentSet(g, res.InSet) {
			fmt.Fprintln(os.Stderr, "mis: VERIFICATION FAILED: not a maximal independent set")
			os.Exit(1)
		}
		if algo != greedy.AlgoLuby {
			if err := core.VerifyLexFirst(g, ord, res); err != nil {
				fmt.Fprintf(os.Stderr, "mis: VERIFICATION FAILED: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Println("verify: ok")
	}
}

func loadOrGenerate(in, gen string, n, m int, seed uint64) (*graph.Graph, error) {
	if in != "" {
		return loadGraph(in)
	}
	switch gen {
	case "random":
		return graph.Random(n, m, seed), nil
	case "rmat":
		logn := 0
		for 1<<logn < n {
			logn++
		}
		return graph.RMat(logn, m, seed, graph.DefaultRMatOptions()), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadAuto(f)
}
