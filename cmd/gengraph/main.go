// Command gengraph generates the paper's input graphs (and the library's
// structured test graphs) and writes them in the PBBS AdjacencyGraph
// text format or the library's binary format.
//
// Usage:
//
//	gengraph -kind random -n 1000000 -m 5000000 -o random.adj
//	gengraph -kind rmat -logn 20 -m 5000000 -format binary -o rmat.bin
//	gengraph -kind grid -rows 1000 -cols 1000 -o grid.adj
//	gengraph -kind random -n 1000 -m 5000 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, writes the
// graph to stdout (or -o), stats and problems to stderr, and returns
// the process exit code (0 ok, 1 write error, 2 usage/build error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "random", "random|rmat|grid|torus|complete|star|path|cycle|tree|bipartite|regular")
		n      = fs.Int("n", 1_000_000, "vertex count (random, star, path, cycle, tree, complete, regular)")
		m      = fs.Int("m", 5_000_000, "edge count (random, rmat, bipartite)")
		logn   = fs.Int("logn", 20, "log2 vertex count (rmat)")
		rows   = fs.Int("rows", 1000, "rows (grid, torus)")
		cols   = fs.Int("cols", 1000, "cols (grid, torus)")
		left   = fs.Int("left", 1000, "left part size (bipartite)")
		right  = fs.Int("right", 1000, "right part size (bipartite)")
		degree = fs.Int("degree", 8, "target degree (regular)")
		seed   = fs.Uint64("seed", 42, "generator seed")
		format = fs.String("format", "adjacency", "adjacency|edges|binary")
		out    = fs.String("o", "-", "output file (- for stdout)")
		stats  = fs.Bool("stats", false, "print graph statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, err := build(*kind, *n, *m, *logn, *rows, *cols, *left, *right, *degree, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "gengraph: %v\n", err)
		return 2
	}
	if *stats {
		fmt.Fprintf(stderr, "%s\n", graph.Stats(g))
	}

	w := stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "gengraph: %v\n", err)
			return 1
		}
		w = f
	}
	switch *format {
	case "adjacency":
		err = graph.WriteAdjacency(w, g)
	case "edges":
		err = graph.WriteEdgeArray(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if f != nil {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("close: %w", cerr)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "gengraph: %v\n", err)
		return 1
	}
	return 0
}

func build(kind string, n, m, logn, rows, cols, left, right, degree int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "random":
		return graph.Random(n, m, seed), nil
	case "rmat":
		return graph.RMat(logn, m, seed, graph.DefaultRMatOptions()), nil
	case "grid":
		return graph.Grid2D(rows, cols), nil
	case "torus":
		return graph.Torus2D(rows, cols), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "bipartite":
		return graph.RandomBipartite(left, right, m, seed), nil
	case "regular":
		return graph.NearRegular(n, degree, seed), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
