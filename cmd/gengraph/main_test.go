package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestRunFormatsRoundTrip generates a small graph in every output
// format and parses each back, checking the graph survives.
func TestRunFormatsRoundTrip(t *testing.T) {
	for _, format := range []string{"adjacency", "edges", "binary"} {
		t.Run(format, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run([]string{"-kind", "random", "-n", "200", "-m", "600", "-seed", "11", "-format", format}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb.String())
			}
			g, err := graph.ReadAuto(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("parse %s output back: %v", format, err)
			}
			if g.NumVertices() != 200 {
				t.Errorf("round-tripped n = %d, want 200", g.NumVertices())
			}
			if g.NumEdges() == 0 {
				t.Error("round-tripped graph has no edges")
			}
		})
	}
}

// TestRunDeterministic: same flags, same bytes — generated inputs must
// be reproducible across runs and machines.
func TestRunDeterministic(t *testing.T) {
	args := []string{"-kind", "tree", "-n", "400", "-seed", "6"}
	var a, b bytes.Buffer
	if code := run(args, &a, &b); code != 0 {
		t.Fatalf("first run exit %d: %s", code, b.String())
	}
	var c, d bytes.Buffer
	if code := run(args, &c, &d); code != 0 {
		t.Fatalf("second run exit %d: %s", code, d.String())
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("same flags produced different graph bytes")
	}
}

// TestRunToFileWithStats writes to -o and checks the stats side channel
// lands on stderr, not in the output file.
func TestRunToFileWithStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.adj")
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "grid", "-rows", "6", "-cols", "7", "-stats", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty with -o: %q", out.String())
	}
	if !strings.Contains(errb.String(), "n=42") {
		t.Errorf("stats line missing from stderr: %q", errb.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadAuto(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 42 {
		t.Errorf("file graph n = %d, want 42", g.NumVertices())
	}
}

// TestRunBadFlags: unknown kind and unknown format exit with the
// documented codes.
func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-kind", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown kind: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown kind") {
		t.Errorf("stderr %q does not name the bad kind", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-kind", "path", "-n", "10", "-format", "nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown format: exit %d, want 1", code)
	}
}
