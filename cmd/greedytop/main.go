// Command greedytop is a live terminal dashboard for a running
// greedyd: it tails the daemon's /v1/events stream (Server-Sent
// Events) and renders job throughput, per-problem round and engine
// phase breakdowns, and dynamic-repair rates, refreshing in place like
// top(1).
//
// Everything shown comes from pushed events — greedytop never polls
// job status. The phase columns need the daemon to run with round
// sampling on (greedyd -trace-sample N), which also enables the
// engine's phase profiler for sampled jobs.
//
// Usage:
//
//	greedytop -addr http://localhost:8080
//	greedytop -addr http://localhost:8080 -refresh 500ms
//	greedytop -addr http://localhost:8080 -job J42AB...   # one job only
//	greedytop -plain                                      # no ANSI, append-only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "greedyd base URL")
		refresh = flag.Duration("refresh", time.Second, "screen refresh interval")
		jobID   = flag.String("job", "", "show only events of one job id")
		window  = flag.Duration("window", 10*time.Second, "sliding window for throughput rates")
		plain   = flag.Bool("plain", false, "append-only output without ANSI cursor control (for logs and pipes)")
	)
	flag.Parse()

	client := &service.Client{BaseURL: strings.TrimRight(*addr, "/")}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if _, err := client.Metrics(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "greedytop: server unreachable at %s: %v\n", *addr, err)
		os.Exit(1)
	}

	st := newState(*window)
	var streamErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop() // stream gone -> stop rendering
		streamErr = client.Events(ctx, service.EventFilter{Job: *jobID}, st.ingest)
	}()

	ticker := time.NewTicker(*refresh)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-ctx.Done():
			running = false
		case <-ticker.C:
		}
		frame := st.render(*addr)
		if *plain {
			os.Stdout.WriteString(frame)
		} else {
			// Home the cursor and clear each drawn line to its end, then
			// clear below the frame: flicker-free in-place redraw.
			os.Stdout.WriteString("\x1b[H" + strings.ReplaceAll(frame, "\n", "\x1b[K\n") + "\x1b[J")
		}
	}
	wg.Wait()
	if streamErr != nil {
		fmt.Fprintf(os.Stderr, "greedytop: event stream ended: %v\n", streamErr)
		os.Exit(1)
	}
}

// problemAgg accumulates one problem's round/phase/repair telemetry.
type problemAgg struct {
	done, failed int64
	rounds       int64
	attempted    int64
	accepted     int64
	inspections  int64

	phaseSamples int64
	checkMS      float64
	commitMS     float64
	resetMS      float64
	slideMS      float64
	retryTail    int64 // last sampled retry tail

	repairBatches int64
	visited       int64
	flipped       int64
}

// state is the dashboard model: everything the ingest goroutine learns
// from the stream, behind one mutex the renderer shares.
type state struct {
	mu sync.Mutex

	window     time.Duration
	started    time.Time
	events     uint64
	dropped    uint64
	submits    int64
	dedups     int64
	doneTimes  []time.Time // completions inside the sliding window
	byProblem  map[string]*problemAgg
	jobProblem map[string]string // job id -> problem (from submit events)
	lastEvent  time.Time
}

func newState(window time.Duration) *state {
	return &state{
		window:     window,
		started:    time.Now(),
		byProblem:  make(map[string]*problemAgg),
		jobProblem: make(map[string]string),
	}
}

// jobProblemCap bounds the job->problem map; oldest entries are not
// tracked individually, the map is simply reset when it fills (a
// dashboard, not a database).
const jobProblemCap = 1 << 16

func (s *state) agg(job string) *problemAgg {
	problem, ok := s.jobProblem[job]
	if !ok {
		problem = "?"
	}
	a := s.byProblem[problem]
	if a == nil {
		a = &problemAgg{}
		s.byProblem[problem] = a
	}
	return a
}

// ingest consumes one stream frame. It is the client.Events callback.
func (s *state) ingest(msg service.StreamEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if msg.IsComment() {
		if _, after, ok := strings.Cut(msg.Comment, "dropped="); ok {
			fmt.Sscanf(after, "%d", &s.dropped)
		}
		return nil
	}
	ev, err := msg.TraceEvent()
	if err != nil {
		return nil // tolerate unknown frames from a newer server
	}
	s.events++
	s.lastEvent = ev.Time
	switch ev.Kind {
	case trace.KindSubmit:
		if ev.Name == "dedup" {
			s.dedups++
			return nil
		}
		s.submits++
		if len(s.jobProblem) >= jobProblemCap {
			s.jobProblem = make(map[string]string)
		}
		s.jobProblem[ev.Job] = ev.Name
	case trace.KindDone:
		a := s.agg(ev.Job)
		if ev.Name == "done" {
			a.done++
			s.doneTimes = append(s.doneTimes, time.Now())
		} else {
			a.failed++
		}
	case trace.KindRound:
		a := s.agg(ev.Job)
		a.rounds++
		a.attempted += ev.Attempted
		a.accepted += ev.Accepted
		a.inspections += ev.Inspections
	case trace.KindPhase:
		a := s.agg(ev.Job)
		a.phaseSamples++
		a.checkMS += ev.CheckMS
		a.commitMS += ev.CommitMS
		a.resetMS += ev.ResetMS
		a.slideMS += ev.SlideMS
		a.retryTail = int64(ev.RetryTail)
	case trace.KindRepair:
		a := s.agg(ev.Job)
		a.repairBatches++
		a.visited += int64(ev.Visited)
		a.flipped += int64(ev.Flipped)
	}
	return nil
}

// render draws one frame into a string (the caller decides how to put
// it on screen).
func (s *state) render(addr string) string {
	s.mu.Lock()
	defer s.mu.Unlock()

	now := time.Now()
	// Expire completions that slid out of the rate window.
	cut := 0
	for cut < len(s.doneTimes) && now.Sub(s.doneTimes[cut]) > s.window {
		cut++
	}
	s.doneTimes = s.doneTimes[cut:]
	rate := float64(len(s.doneTimes)) / s.window.Seconds()

	var b strings.Builder
	fmt.Fprintf(&b, "greedytop — %s — up %v — %d events, %d stream drops\n",
		addr, now.Sub(s.started).Round(time.Second), s.events, s.dropped)
	fmt.Fprintf(&b, "jobs: %d submitted, %d dedup hits, %.1f done/s (last %v)\n",
		s.submits, s.dedups, rate, s.window)
	if !s.lastEvent.IsZero() {
		fmt.Fprintf(&b, "last event %v ago\n", now.Sub(s.lastEvent).Round(time.Millisecond))
	}
	b.WriteString("\n")

	problems := make([]string, 0, len(s.byProblem))
	for p := range s.byProblem {
		problems = append(problems, p)
	}
	sort.Strings(problems)
	if len(problems) == 0 {
		b.WriteString("waiting for job events...\n")
		return b.String()
	}

	fmt.Fprintf(&b, "%-10s %7s %6s %8s %10s %12s  %s\n",
		"PROBLEM", "DONE", "FAIL", "ROUNDS", "ACC/ATT", "INSPECTIONS", "PHASES (sampled round time)")
	for _, p := range problems {
		a := s.byProblem[p]
		accAtt := "-"
		if a.attempted > 0 {
			accAtt = fmt.Sprintf("%.0f%%", 100*float64(a.accepted)/float64(a.attempted))
		}
		fmt.Fprintf(&b, "%-10s %7d %6d %8d %10s %12d  %s\n",
			p, a.done, a.failed, a.rounds, accAtt, a.inspections, phaseBar(a))
	}

	var repairs []string
	for _, p := range problems {
		a := s.byProblem[p]
		if a.repairBatches > 0 {
			repairs = append(repairs, fmt.Sprintf("%s: %d batches, %d visited, %d flipped (%.1f visited/batch)",
				p, a.repairBatches, a.visited, a.flipped, float64(a.visited)/float64(a.repairBatches)))
		}
	}
	if len(repairs) > 0 {
		b.WriteString("\nrepair:\n")
		for _, line := range repairs {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String()
}

// phaseBar renders one problem's phase split as percentages plus the
// last sampled retry tail, e.g.
// "check 62% commit 21% reset 0% slide 17% tail=128".
func phaseBar(a *problemAgg) string {
	total := a.checkMS + a.commitMS + a.resetMS + a.slideMS
	if a.phaseSamples == 0 || total <= 0 {
		return "(no phase samples; run greedyd with -trace-sample)"
	}
	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", 100*v/total) }
	return fmt.Sprintf("check %s commit %s reset %s slide %s tail=%d",
		pct(a.checkMS), pct(a.commitMS), pct(a.resetMS), pct(a.slideMS), a.retryTail)
}
