// Command loadgen drives closed-loop mixed MIS/MM/SF traffic against a
// running greedyd and reports throughput and latency percentiles. Each
// worker repeatedly submits a job for a random (problem, seed) pair
// drawn from a bounded pool — so a configurable fraction of traffic
// hits the daemon's idempotency cache, as deterministic traffic would
// in production — then polls until the job finishes.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -duration 10s -concurrency 8
//	loadgen -addr http://localhost:8080 -gen rmat -n 131072 -m 1000000
//	loadgen -addr http://localhost:8080 -job-seeds 1000000   # ~all unique
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "greedyd base URL")
		gen         = flag.String("gen", "random", "graph family: random|rmat (internal/bench workload kinds)")
		n           = flag.Int("n", 100_000, "vertex count of the generated graph")
		m           = flag.Int("m", 500_000, "edge count of the generated graph")
		shrink      = flag.Int("shrink", -1, "if >= 0, use the paper's workload scaled by 2^-shrink instead of -n/-m")
		graphSeed   = flag.Uint64("graph-seed", 42, "generator seed")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		problems    = flag.String("problems", "mis,mm,sf", "comma-separated problem mix")
		algorithm   = flag.String("algorithm", "prefix", "algorithm for every job")
		jobSeeds    = flag.Int("job-seeds", 16, "size of the job-seed pool (larger = fewer dedup hits)")
		prefixFrac  = flag.Float64("prefix", 0, "prefix fraction for prefix jobs (0 = library default)")
		rngSeed     = flag.Int64("rng-seed", 1, "client-side traffic shuffle seed")
		poll        = flag.Duration("poll", time.Millisecond, "job status poll interval")
	)
	flag.Parse()

	if *jobSeeds < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -job-seeds must be >= 1")
		os.Exit(2)
	}
	if *concurrency < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -concurrency must be >= 1")
		os.Exit(2)
	}
	mix := strings.Split(*problems, ",")
	for _, p := range mix {
		if _, err := service.ParseProblem(strings.TrimSpace(p)); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
	}

	w := bench.Workload{Kind: *gen, N: *n, M: *m, Seed: *graphSeed}
	if *shrink >= 0 {
		w = bench.DefaultScale(*gen, uint(*shrink))
	}

	client := &service.Client{BaseURL: strings.TrimRight(*addr, "/")}
	ctx := context.Background()

	gresp, err := client.Generate(ctx, service.GenSpec{
		Generator: w.Kind, N: w.N, M: w.M, Seed: w.Seed, Label: w.String(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: generating %s: %v\n", w, err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: workload %s -> graph %s (n=%d m=%d, %d bytes, deduped=%v)\n",
		w, gresp.ID, gresp.N, gresp.M, gresp.Bytes, gresp.Deduped)

	before, err := client.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
		os.Exit(1)
	}

	type sample struct {
		problem string
		latency time.Duration
	}
	var (
		mu       sync.Mutex
		samples  []sample
		failures int
	)
	started := time.Now()
	deadline := started.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*rngSeed + int64(worker)))
			for time.Now().Before(deadline) {
				problem := strings.TrimSpace(mix[rng.Intn(len(mix))])
				seed := uint64(rng.Intn(*jobSeeds))
				start := time.Now()
				resp, err := client.Submit(ctx, service.JobRequest{
					GraphID:    gresp.ID,
					Problem:    problem,
					Algorithm:  *algorithm,
					Seed:       seed,
					PrefixFrac: *prefixFrac,
				})
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				st := resp.JobStatus
				if st.State != service.StateDone && st.State != service.StateFailed {
					st, err = client.Wait(ctx, st.ID, *poll)
					if err != nil {
						mu.Lock()
						failures++
						mu.Unlock()
						continue
					}
				}
				lat := time.Since(start)
				mu.Lock()
				if st.State == service.StateDone {
					samples = append(samples, sample{problem: problem, latency: lat})
				} else {
					failures++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	// Measured wall time, not the nominal -duration: workers finish
	// their in-flight job after the deadline, and throughput must not
	// be overstated by dividing by the shorter nominal window.
	elapsed := time.Since(started)

	after, err := client.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
		os.Exit(1)
	}

	total := len(samples)
	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("loadgen: %d jobs ok, %d failed in %v -> %.1f jobs/s (%d workers)\n",
		total, failures, elapsed.Round(time.Millisecond), rate, *concurrency)
	submitted := after.Jobs.Submitted - before.Jobs.Submitted
	dedup := after.Jobs.DedupHits - before.Jobs.DedupHits
	executed := after.Jobs.Executed - before.Jobs.Executed
	pct := 0.0
	if submitted > 0 {
		pct = 100 * float64(dedup) / float64(submitted)
	}
	fmt.Printf("loadgen: server saw %d submissions, %d dedup hits (%.1f%%), %d executions\n",
		submitted, dedup, pct, executed)

	byProblem := map[string][]time.Duration{}
	var all []time.Duration
	for _, s := range samples {
		byProblem[s.problem] = append(byProblem[s.problem], s.latency)
		all = append(all, s.latency)
	}
	printLine := func(name string, lats []time.Duration) {
		if len(lats) == 0 {
			return
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		fmt.Printf("loadgen: %-5s n=%-6d p50=%-10v p90=%-10v p99=%-10v max=%v\n",
			name, len(lats), q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	printLine("all", all)
	names := make([]string, 0, len(byProblem))
	for p := range byProblem {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		printLine(p, byProblem[p])
	}

	if failures > 0 {
		os.Exit(1)
	}
}
