// Command loadgen drives closed-loop mixed traffic (any of the five
// problems: mis, mm, sf, coloring, hittingset — see -problems) against
// a running greedyd and reports overall and per-problem throughput,
// latency percentiles, and the server's allocation cost per executed
// job. Each worker repeatedly
// submits a job for a random (problem, seed) pair drawn from a bounded
// pool — so a configurable fraction of traffic hits the daemon's
// idempotency cache, as deterministic traffic would in production —
// then polls until the job finishes.
//
// With -cancel-demo it instead demonstrates job cancellation: it
// submits a deliberately long-running job on a large graph, waits for
// the daemon to report round progress, issues DELETE /v1/jobs/{id},
// and measures how long the running job takes to acknowledge the
// cancellation (bounded by one round of the algorithm).
//
// With -churn it drives the dynamic-graph path: alongside the submit
// workers, a churner goroutine PATCHes the newest graph version with
// randomized edge-update batches (mirrored locally so every batch is
// valid), the submit workers target the newest version with dynamic
// plans, and the report shows how many executions the daemon answered
// by incremental session repair instead of recompute.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -duration 10s -concurrency 8
//	loadgen -addr http://localhost:8080 -gen rmat -n 131072 -m 1000000
//	loadgen -addr http://localhost:8080 -job-seeds 1000000   # ~all unique
//	loadgen -addr http://localhost:8080 -cancel-demo -n 2000000 -m 10000000
//	loadgen -addr http://localhost:8080 -churn -churn-batch 8 -churn-interval 50ms
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	greedy "repro"
	"repro/internal/bench"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "greedyd base URL")
		gen         = flag.String("gen", "random", "graph family: random|rmat (internal/bench workload kinds)")
		n           = flag.Int("n", 100_000, "vertex count of the generated graph")
		m           = flag.Int("m", 500_000, "edge count of the generated graph")
		shrink      = flag.Int("shrink", -1, "if >= 0, use the paper's workload scaled by 2^-shrink instead of -n/-m")
		graphSeed   = flag.Uint64("graph-seed", 42, "generator seed")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		problems    = flag.String("problems", "mis,mm,sf", "comma-separated problem mix")
		algorithm   = flag.String("algorithm", "prefix", "algorithm for every job")
		adaptive    = flag.Bool("adaptive", false, "submit adaptive-prefix plans (prefix algorithm only)")
		jobSeeds    = flag.Int("job-seeds", 16, "size of the job-seed pool (larger = fewer dedup hits)")
		prefixFrac  = flag.Float64("prefix", 0, "prefix fraction for prefix jobs (0 = library default)")
		rngSeed     = flag.Int64("rng-seed", 1, "client-side traffic shuffle seed")
		poll        = flag.Duration("poll", time.Millisecond, "job status poll interval")
		cancelDemo  = flag.Bool("cancel-demo", false, "run the cancellation demonstration instead of load")
		churn       = flag.Bool("churn", false, "mixed submit/update workload: PATCH edge churn + dynamic-plan jobs on the newest version")
		churnBatch  = flag.Int("churn-batch", 8, "updates per PATCH batch in -churn mode")
		churnEvery  = flag.Duration("churn-interval", 50*time.Millisecond, "delay between PATCH batches in -churn mode")
		traceSlow   = flag.Bool("trace", false, "after the run, fetch and pretty-print the server-side trace of the slowest completed job")
		watch       = flag.Bool("watch", false, "subscribe to the server's /v1/events stream during the run and print a live status line every second")
	)
	flag.Parse()

	algo, err := greedy.ParseAlgorithm(*algorithm)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if *adaptive && algo != greedy.AlgoPrefix {
		fmt.Fprintf(os.Stderr, "loadgen: -adaptive requires -algorithm prefix, got %q\n", algo)
		os.Exit(2)
	}
	// Overload answers (429 queue-full, 503 draining/ingest-paused) are
	// retried inside the client, honoring the server's Retry-After, so
	// the submit loop below only counts genuine failures.
	client := &service.Client{
		BaseURL: strings.TrimRight(*addr, "/"),
		Retry:   service.BackoffPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond},
	}
	ctx := context.Background()

	// Fail fast with a non-zero exit when the server is unreachable,
	// instead of spinning submit failures for the whole duration and
	// printing an all-zero report.
	if _, perr := client.Metrics(ctx); perr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: server unreachable at %s: %v\n", *addr, perr)
		os.Exit(1)
	}

	if *cancelDemo {
		if derr := runCancelDemo(ctx, client, *n, *m, *graphSeed, *poll); derr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: cancel demo: %v\n", derr)
			os.Exit(1)
		}
		return
	}

	if *jobSeeds < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -job-seeds must be >= 1")
		os.Exit(2)
	}
	if *concurrency < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -concurrency must be >= 1")
		os.Exit(2)
	}
	mix := strings.Split(*problems, ",")
	for _, p := range mix {
		if _, perr := service.ParseProblem(strings.TrimSpace(p)); perr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", perr)
			os.Exit(2)
		}
	}
	if *churn && algo == greedy.AlgoLuby {
		// Every dynamic plan with Luby would be rejected at submission.
		fmt.Fprintln(os.Stderr, "loadgen: -churn submits dynamic plans, which cannot use -algorithm luby")
		os.Exit(2)
	}
	if *churn {
		// Dynamic plans exist for MIS and MM only; drop the other
		// problems from the mix rather than submitting jobs the daemon
		// must reject.
		kept := mix[:0]
		for _, p := range mix {
			switch strings.TrimSpace(p) {
			case "mis", "mm":
				kept = append(kept, p)
			}
		}
		if len(kept) < len(mix) {
			fmt.Fprintln(os.Stderr, "loadgen: -churn keeps only mis/mm in the problem mix (dynamic plans exist for those alone)")
		}
		mix = kept
		if len(mix) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -churn needs mis and/or mm in -problems")
			os.Exit(2)
		}
	}

	w := bench.Workload{Kind: *gen, N: *n, M: *m, Seed: *graphSeed}
	if *shrink >= 0 {
		w = bench.DefaultScale(*gen, uint(*shrink))
	}

	gresp, err := client.Generate(ctx, service.GenSpec{
		Generator: w.Kind, N: w.N, M: w.M, Seed: w.Seed, Label: w.String(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: generating %s: %v\n", w, err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: workload %s -> graph %s (n=%d m=%d, %d bytes, deduped=%v)\n",
		w, gresp.ID, gresp.N, gresp.M, gresp.Bytes, gresp.Deduped)

	before, err := client.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
		os.Exit(1)
	}

	type sample struct {
		problem string
		latency time.Duration
		jobID   string
	}
	var (
		mu       sync.Mutex
		samples  []sample
		failures int
	)
	started := time.Now()
	deadline := started.Add(*duration)

	// The newest graph version; submit workers read it, the churner
	// replaces it after every successful PATCH.
	var latestID atomic.Value
	latestID.Store(gresp.ID)
	var patches, patchFailures, patchedEdges int64
	var churnWG sync.WaitGroup
	if *churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runChurner(ctx, client, w, &latestID, deadline,
				*churnBatch, *churnEvery, *rngSeed, &patches, &patchFailures, &patchedEdges)
		}()
	}

	// The watcher consumes the server's live event stream alongside the
	// load: it observes completions and sampled phase profiles as the
	// server emits them, rather than polling.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var watchWG sync.WaitGroup
	if *watch {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			runWatcher(watchCtx, client)
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*rngSeed + int64(worker)))
			for time.Now().Before(deadline) {
				problem := strings.TrimSpace(mix[rng.Intn(len(mix))])
				seed := uint64(rng.Intn(*jobSeeds))
				start := time.Now()
				resp, serr := client.Submit(ctx, service.JobRequest{
					GraphID: latestID.Load().(string),
					Problem: problem,
					Plan: greedy.Plan{Algorithm: algo, Seed: seed, PrefixFrac: *prefixFrac,
						AdaptivePrefix: *adaptive, Dynamic: *churn},
				})
				if serr != nil {
					// The client already backed off through transient
					// overload; whatever reaches here is a real failure.
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				st := resp.JobStatus
				if st.State != service.StateDone && st.State != service.StateFailed {
					st, serr = client.Wait(ctx, st.ID, *poll)
					if serr != nil {
						mu.Lock()
						failures++
						mu.Unlock()
						continue
					}
				}
				lat := time.Since(start)
				if lat < 0 {
					// Clock stepped backwards mid-measurement; a negative
					// latency would corrupt the percentile report.
					lat = 0
				}
				mu.Lock()
				if st.State == service.StateDone {
					samples = append(samples, sample{problem: problem, latency: lat, jobID: st.ID})
				} else {
					failures++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	churnWG.Wait()
	stopWatch()
	watchWG.Wait()
	// Measured wall time, not the nominal -duration: workers finish
	// their in-flight job after the deadline, and throughput must not
	// be overstated by dividing by the shorter nominal window.
	elapsed := time.Since(started)

	after, err := client.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
		os.Exit(1)
	}

	total := len(samples)
	// Degenerate runs — the server went away mid-run, every submission
	// failed, or the duration was too short for a single job — must not
	// print an all-zero report that reads like a healthy measurement.
	if total == 0 {
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: no job completed (%d failures in %v); server down or rejecting?\n",
				failures, elapsed.Round(time.Millisecond))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: no job was submitted in %v; increase -duration\n",
			elapsed.Round(time.Millisecond))
		os.Exit(1)
	}
	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("loadgen: %d jobs ok, %d failed in %v -> %.1f jobs/s (%d workers)\n",
		total, failures, elapsed.Round(time.Millisecond), rate, *concurrency)
	// Counter deltas are clamped at zero: a server restart mid-run
	// resets its counters, and a negative or wrapped delta would turn
	// the percentage and per-job lines into nonsense (negative, NaN on
	// 0/0, or astronomically large from uint64 wraparound).
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	submitted := clamp(after.Jobs.Submitted - before.Jobs.Submitted)
	dedup := clamp(after.Jobs.DedupHits - before.Jobs.DedupHits)
	executed := clamp(after.Jobs.Executed - before.Jobs.Executed)
	pct := 0.0
	if submitted > 0 {
		pct = 100 * float64(dedup) / float64(submitted)
	}
	fmt.Printf("loadgen: server saw %d submissions, %d dedup hits (%.1f%%), %d executions\n",
		submitted, dedup, pct, executed)
	if *churn {
		repaired := clamp(after.Jobs.Repaired - before.Jobs.Repaired)
		serverPatches := clamp(after.Registry.Patches - before.Registry.Patches)
		repairedPct := 0.0
		if executed > 0 {
			repairedPct = 100 * float64(repaired) / float64(executed)
		}
		fmt.Printf("loadgen: churn: %d PATCH batches ok (%d updates, %d failures), server counted %d patches\n",
			patches, patchedEdges, patchFailures, serverPatches)
		fmt.Printf("loadgen: churn: %d/%d executions answered by incremental repair (%.1f%%), final version %s\n",
			repaired, executed, repairedPct, latestID.Load().(string))
		if patches > 0 && repaired == 0 && executed > 0 {
			fmt.Fprintln(os.Stderr, "loadgen: churn: WARNING: no execution was repaired; is -dynamic-sessions disabled on the server?")
		}
	}
	switch {
	case executed > 0 && after.Runtime.Mallocs >= before.Runtime.Mallocs &&
		after.Runtime.TotalAllocBytes >= before.Runtime.TotalAllocBytes:
		mallocs := after.Runtime.Mallocs - before.Runtime.Mallocs
		allocBytes := after.Runtime.TotalAllocBytes - before.Runtime.TotalAllocBytes
		gcs := after.Runtime.NumGC - before.Runtime.NumGC
		fmt.Printf("loadgen: server allocation: %.0f mallocs/executed job, %.0f KiB/executed job, %d GCs (per-worker Solver reuse)\n",
			float64(mallocs)/float64(executed), float64(allocBytes)/1024/float64(executed), gcs)
	case executed > 0:
		fmt.Println("loadgen: server allocation: unavailable (runtime counters went backwards; server restarted mid-run?)")
	}

	byProblem := map[string][]time.Duration{}
	var all []time.Duration
	for _, s := range samples {
		byProblem[s.problem] = append(byProblem[s.problem], s.latency)
		all = append(all, s.latency)
	}
	// Each line reports a problem's own completion rate alongside its
	// latency percentiles: the mix is drawn uniformly at random, so a
	// problem whose rate lags its share of the mix is the one holding
	// workers (and the overall jobs/s) back.
	printLine := func(name string, lats []time.Duration) {
		if len(lats) == 0 {
			return
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		fmt.Printf("loadgen: %-10s n=%-6d %6.1f jobs/s p50=%-10v p90=%-10v p99=%-10v p999=%-10v max=%v\n",
			name, len(lats), float64(len(lats))/elapsed.Seconds(),
			q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), q(0.999).Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond))
	}
	printLine("all", all)
	names := make([]string, 0, len(byProblem))
	for p := range byProblem {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		printLine(p, byProblem[p])
	}

	if *traceSlow {
		slowest := samples[0]
		for _, s := range samples[1:] {
			if s.latency > slowest.latency {
				slowest = s
			}
		}
		printSlowestTrace(ctx, client, slowest.jobID, slowest.problem, slowest.latency)
	}

	if failures > 0 {
		os.Exit(1)
	}
}

// runWatcher tails the server's /v1/events stream (done + phase events)
// for the duration of the run and prints a one-line status every
// second: completion throughput as the server reports it, which engine
// phase is eating the sampled round time, and how many events the
// stream dropped on the floor for this subscriber (from the server's
// heartbeat comments).
func runWatcher(ctx context.Context, client *service.Client) {
	var done, phaseSamples int64
	var phaseMS [4]float64 // check, commit, reset, slide
	phaseNames := [4]string{"check", "commit", "reset", "slide"}
	var dropped uint64
	start := time.Now()
	last := start
	status := func() {
		elapsed := time.Since(start).Seconds()
		if elapsed <= 0 {
			return
		}
		slowest := 0
		var total float64
		for i, ms := range phaseMS {
			total += ms
			if ms > phaseMS[slowest] {
				slowest = i
			}
		}
		line := fmt.Sprintf("loadgen: watch: %.1f jobs/s done", float64(done)/elapsed)
		if total > 0 {
			line += fmt.Sprintf(", slowest phase %s (%.0f%% of %d sampled rounds)",
				phaseNames[slowest], 100*phaseMS[slowest]/total, phaseSamples)
		}
		line += fmt.Sprintf(", stream drops %d", dropped)
		fmt.Println(line)
	}
	err := client.Events(ctx, service.EventFilter{Kinds: []string{"done", "phase"}},
		func(ev service.StreamEvent) error {
			if ev.IsComment() {
				// Heartbeats read ": hb dropped=N".
				if _, after, ok := strings.Cut(ev.Comment, "dropped="); ok {
					fmt.Sscanf(after, "%d", &dropped)
				}
			} else if te, terr := ev.TraceEvent(); terr == nil {
				switch te.Kind {
				case trace.KindDone:
					done++
				case trace.KindPhase:
					phaseSamples++
					phaseMS[0] += te.CheckMS
					phaseMS[1] += te.CommitMS
					phaseMS[2] += te.ResetMS
					phaseMS[3] += te.SlideMS
				}
			}
			if time.Since(last) >= time.Second {
				last = time.Now()
				status()
			}
			return nil
		})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "loadgen: watch: stream ended: %v\n", err)
	}
	status()
}

// printSlowestTrace fetches and pretty-prints the server-side trace of
// the run's slowest completed job: each event at its offset from the
// job's first recorded event, with the fields that carry information
// for its kind. A long queue span points at saturation, a slow run
// span with few sampled rounds at a hard input, repeated repair events
// at patch churn.
func printSlowestTrace(ctx context.Context, client *service.Client, jobID, problem string, lat time.Duration) {
	tr, err := client.JobTrace(ctx, jobID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: trace of slowest job %s unavailable: %v\n", jobID, err)
		return
	}
	fmt.Printf("loadgen: slowest job %s (%s, client-observed %v): %d trace events\n",
		jobID, problem, lat.Round(time.Microsecond), len(tr.Events))
	if len(tr.Events) == 0 {
		fmt.Println("loadgen:   (events already overwritten in the server's ring buffer)")
		return
	}
	t0 := tr.Events[0].Time
	for _, ev := range tr.Events {
		var detail []string
		add := func(format string, args ...any) { detail = append(detail, fmt.Sprintf(format, args...)) }
		if ev.Name != "" {
			add("%s", ev.Name)
		}
		if ev.DurMS != 0 {
			add("dur=%.3fms", ev.DurMS)
		}
		if ev.Round != 0 {
			add("round=%d prefix=%d attempted=%d accepted=%d inspections=%d",
				ev.Round, ev.Prefix, ev.Attempted, ev.Accepted, ev.Inspections)
		}
		if ev.Kind == trace.KindRepair {
			add("batch=%d seeds=%d visited=%d flipped=%d frontier_peak=%d changed=%d",
				ev.Batch, ev.Seeds, ev.Visited, ev.Flipped, ev.FrontierPeak, ev.Changed)
		}
		fmt.Printf("loadgen:   +%-12v %-9s %s\n",
			ev.Time.Sub(t0).Round(time.Microsecond), ev.Kind, strings.Join(detail, " "))
	}
}

// runChurner mirrors the server-side graph locally (via the bench
// harness's ChurnMutator, the same generator the churn matrix uses)
// and drives PATCH batches against the newest version until the
// deadline. Batches are drawn without touching the mirror and
// committed only after the server accepts them, so a PATCH failure
// leaves the mirror consistent and is counted instead of retried
// blindly.
func runChurner(ctx context.Context, client *service.Client, w bench.Workload, latestID *atomic.Value,
	deadline time.Time, batchSize int, interval time.Duration, seed int64,
	patches, failures, updates *int64) {
	g := w.Build()
	if g.NumVertices() < 2 {
		return
	}
	cm := bench.NewChurnMutator(g, uint64(seed)+7919)
	for time.Now().Before(deadline) {
		time.Sleep(interval)
		if !time.Now().Before(deadline) {
			return
		}
		batch := cm.Draw(batchSize)
		if len(batch) == 0 {
			continue
		}
		req := service.PatchRequest{}
		for _, up := range batch {
			req.Updates = append(req.Updates, service.PatchUpdate{Op: up.Op.String(), U: up.U, V: up.V})
		}
		resp, err := client.Patch(ctx, latestID.Load().(string), req)
		if err != nil {
			atomic.AddInt64(failures, 1)
			continue
		}
		cm.Commit(batch)
		latestID.Store(resp.ID)
		atomic.AddInt64(patches, 1)
		atomic.AddInt64(updates, int64(len(batch)))
	}
}

// runCancelDemo submits one long-running job (the prefix algorithm
// with a tiny absolute prefix on a large random graph keeps a worker
// busy for a while while checking cancellation at every round
// boundary), waits until the daemon reports it running, cancels it,
// and reports how long the round loop took to acknowledge.
func runCancelDemo(ctx context.Context, client *service.Client, n, m int, seed uint64, poll time.Duration) error {
	gresp, err := client.Generate(ctx, service.GenSpec{Generator: "random", N: n, M: m, Seed: seed})
	if err != nil {
		return fmt.Errorf("generating graph: %w", err)
	}
	fmt.Printf("loadgen: cancel demo on graph %s (n=%d m=%d)\n", gresp.ID, gresp.N, gresp.M)

	// A tiny absolute prefix makes the prefix algorithm take ~n/prefix
	// rounds: long overall, yet each round is microseconds, so the
	// one-round cancellation bound predicts near-immediate abort.
	sub, err := client.Submit(ctx, service.JobRequest{
		GraphID: gresp.ID,
		Problem: "mis",
		Plan:    greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 1, PrefixSize: 2},
	})
	if err != nil {
		return fmt.Errorf("submitting job: %w", err)
	}
	fmt.Printf("loadgen: submitted long job %s (prefix_size=2 => ~n/2 rounds)\n", sub.ID)

	// Wait until it is actually running and has made round progress.
	deadline := time.Now().Add(30 * time.Second)
	var st service.JobStatus
	for {
		st, err = client.Status(ctx, sub.ID)
		if err != nil {
			return err
		}
		if st.State == service.StateRunning && st.Progress != nil && st.Progress.Rounds > 0 {
			break
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return fmt.Errorf("job finished before it could be cancelled (state %s); use a larger -n/-m", st.State)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job never started running")
		}
		time.Sleep(poll)
	}
	fmt.Printf("loadgen: job running, progress: rounds=%d attempted=%d resolved=%d inspections=%d\n",
		st.Progress.Rounds, st.Progress.Attempted, st.Progress.Resolved, st.Progress.EdgeInspections)

	cancelAt := time.Now()
	if _, cerr := client.Cancel(ctx, sub.ID); cerr != nil {
		return fmt.Errorf("DELETE: %w", cerr)
	}
	final, err := client.Wait(ctx, sub.ID, poll)
	if err != nil {
		return err
	}
	ack := time.Since(cancelAt)
	if final.State != service.StateCancelled {
		return fmt.Errorf("job ended %s, want cancelled", final.State)
	}
	rounds := int64(0)
	if final.Progress != nil {
		rounds = final.Progress.Rounds
	}
	fmt.Printf("loadgen: DELETE acknowledged in %v (state=%s after %d rounds, run_ms=%.1f)\n",
		ack.Round(time.Microsecond), final.State, rounds, final.RunMS)
	fmt.Printf("loadgen: cancel demo ok: a running job aborted within one round\n")
	return nil
}
