// Command bench regenerates the paper's evaluation: every figure panel
// of Blelloch, Fineman and Shun (SPAA 2012) plus the theory-validation
// and ablation tables described in DESIGN.md.
//
// Usage:
//
//	bench -experiment all                       # everything, default scale
//	bench -experiment fig1 -graph rmat          # one figure, one input
//	bench -experiment fig3 -threads 1,2,4,8
//	bench -shrink 5                             # smaller inputs (2^-5 of paper size)
//	bench -n 1000000 -m 5000000                 # explicit sizes
//
// Experiments: fig1 (MIS prefix sweep), fig2 (MM prefix sweep), fig3
// (MIS thread scaling), fig4 (MM thread scaling), luby-ratio, theory,
// ablation, spanning, all.
//
// The scenario matrix (-matrix, or -smoke for the smallest sizes) is
// the reproducible fixed-vs-adaptive prefix harness: it runs MIS, MM
// and SF over random / rMat / grid / line-graph inputs with fixed
// seeds, verifies every answer against the sequential baseline, and
// writes a machine-readable report (default BENCH_pr3.json) whose
// machine-independent columns later PRs diff against:
//
//	bench -matrix                               # full matrix -> BENCH_pr3.json
//	bench -smoke                                # CI smoke leg, seconds
//	bench -matrix -out /tmp/report.json -reps 5
//
// The churn matrix (-churn) is the dynamic-graph harness: it maintains
// MIS and MM under randomized update batches over random / rMat / grid
// inputs, times change-driven frontier repair against from-scratch
// sequential recompute per batch size, verifies the maintained
// solutions bit-identical to sequential, records the repaired-region
// shape (visited, flipped, frontier peak) per cell, and writes
// BENCH_pr5.json. -assert-speedup turns cells into regression guards:
//
//	bench -churn                                # full scale (1M-vertex random)
//	bench -churn -smoke                         # CI churn-smoke leg, seconds
//	bench -churn -smoke -assert-speedup rmat:mm:1:1.0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|fig2|fig3|fig4|luby-ratio|theory|ablation|spanning|orders|all")
		graphKind  = flag.String("graph", "both", "random|rmat|both")
		shrink     = flag.Uint("shrink", 5, "scale workloads to 2^-shrink of paper size (0 = paper size)")
		n          = flag.Int("n", 0, "override vertex count (0 = use -shrink)")
		m          = flag.Int("m", 0, "override edge count (0 = use -shrink)")
		seed       = flag.Uint64("seed", 42, "generator/permutation seed")
		reps       = flag.Int("reps", 3, "timing repetitions (median reported)")
		threads    = flag.String("threads", "1,2,4", "comma-separated GOMAXPROCS values for fig3/fig4")
		fracs      = flag.String("fracs", "", "comma-separated prefix fractions for fig1/fig2 (default: built-in sweep)")
		prefixFrac = flag.Float64("prefix", 0, "prefix fraction for fig3/fig4 (0 = default)")
		matrix     = flag.Bool("matrix", false, "run the fixed-vs-adaptive scenario matrix and write a JSON report")
		churn      = flag.Bool("churn", false, "run the dynamic-graph churn matrix (repair vs recompute) and write a JSON report")
		smoke      = flag.Bool("smoke", false, "matrix/churn at the smallest sizes (implies -matrix unless -churn; the CI smoke legs)")
		batches    = flag.Int("batches", 0, "timed update batches per churn cell (0: default 16)")
		out        = flag.String("out", "", "output path of the JSON report (default BENCH_pr3.json for -matrix, BENCH_pr5.json for -churn)")
		asserts    = flag.String("assert-speedup", "", "comma-separated churn speedup assertions scenario:problem:batch:min (e.g. rmat:mm:1:1.0); exit 1 on violation")
		obsCost    = flag.Bool("observer-overhead", false, "measure round-observer and trace-recording overhead on the selected workloads and print a table")
	)
	flag.Parse()

	if *obsCost {
		fmt.Printf("# %s\n\n", bench.Env())
		for _, w := range buildWorkloads(*graphKind, *shrink, *n, *m, *seed) {
			fmt.Println(bench.ObserverTable(bench.ObserverOverhead(w, *reps)))
			fmt.Println()
		}
		return
	}

	if *churn {
		var churnAsserts []bench.ChurnAssertion
		if *asserts != "" {
			for _, spec := range strings.Split(*asserts, ",") {
				a, err := bench.ParseChurnAssertion(strings.TrimSpace(spec))
				if err != nil {
					fmt.Fprintf(os.Stderr, "bench: bad -assert-speedup: %v\n", err)
					os.Exit(2)
				}
				churnAsserts = append(churnAsserts, a)
			}
		}
		report := bench.RunChurn(bench.ChurnConfig{Smoke: *smoke, Reps: *reps, Batches: *batches})
		path := *out
		if path == "" {
			path = "BENCH_pr5.json"
		}
		if err := os.WriteFile(path, report.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Println(bench.ChurnTable(report))
		fmt.Printf("wrote %s\n", path)
		if failures := report.CheckAssertions(churnAsserts); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "bench: speedup assertion failed: %s\n", f)
			}
			os.Exit(1)
		} else if len(churnAsserts) > 0 {
			fmt.Printf("all %d speedup assertions held\n", len(churnAsserts))
		}
		return
	}

	if *matrix || *smoke {
		fracList, err := parseFloats(*fracs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: bad -fracs: %v\n", err)
			os.Exit(2)
		}
		report := bench.RunMatrix(bench.MatrixConfig{Smoke: *smoke, Reps: *reps, Fracs: fracList})
		path := *out
		if path == "" {
			path = "BENCH_pr3.json"
		}
		if err := os.WriteFile(path, report.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Println(bench.MatrixTable(report))
		fmt.Printf("wrote %s\n", path)
		return
	}

	workloads := buildWorkloads(*graphKind, *shrink, *n, *m, *seed)
	threadList, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -threads: %v\n", err)
		os.Exit(2)
	}
	fracList, err := parseFloats(*fracs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -fracs: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("# %s\n\n", bench.Env())
	run := func(name string, enabled bool, f func()) {
		if !enabled {
			return
		}
		fmt.Printf("### experiment %s\n\n", name)
		f()
	}
	want := func(names ...string) bool {
		if *experiment == "all" {
			return true
		}
		for _, n := range names {
			if n == *experiment {
				return true
			}
		}
		return false
	}

	run("fig1 (MIS prefix sweep)", want("fig1"), func() {
		for _, w := range workloads {
			fmt.Println(bench.MISPrefixSweep(bench.SweepConfig{Workload: w, Fracs: fracList, Reps: *reps}))
		}
	})
	run("fig2 (MM prefix sweep)", want("fig2"), func() {
		for _, w := range workloads {
			fmt.Println(bench.MMPrefixSweep(bench.SweepConfig{Workload: w, Fracs: fracList, Reps: *reps}))
		}
	})
	run("fig3 (MIS thread scaling)", want("fig3"), func() {
		for _, w := range workloads {
			fmt.Println(bench.MISThreadScaling(bench.ThreadConfig{
				Workload: w, Threads: threadList, PrefixFrac: *prefixFrac, Reps: *reps,
			}))
		}
	})
	run("fig4 (MM thread scaling)", want("fig4"), func() {
		for _, w := range workloads {
			fmt.Println(bench.MMThreadScaling(bench.ThreadConfig{
				Workload: w, Threads: threadList, PrefixFrac: *prefixFrac, Reps: *reps,
			}))
		}
	})
	run("luby-ratio (in-text claim)", want("luby-ratio"), func() {
		for _, w := range workloads {
			fmt.Println(bench.LubyWorkRatio(w, *reps))
		}
	})
	run("theory (Theorem 3.5, Lemmas 3.1/3.3/4.3)", want("theory"), func() {
		theoryN := 4 * (1_000_000 >> *shrink)
		fmt.Println(bench.TheoryDependenceLength(nil, 10, *seed))
		fmt.Println(bench.TheoryPrefixPath(theoryN, 10, *seed))
		fmt.Println(bench.TheoryDegreeReduction(theoryN, 10, *seed))
		fmt.Println(bench.TheoryPrefixSparsity(theoryN, 10, *seed))
	})
	run("ablation (AB1 pointer, AB2 algorithms)", want("ablation"), func() {
		for _, w := range workloads {
			fmt.Println(bench.AblationPointer(w, *reps))
			fmt.Println(bench.AblationAlgorithms(w, *reps))
		}
	})
	run("spanning (Section 7 extension)", want("spanning"), func() {
		for _, w := range workloads {
			fmt.Println(bench.SpanningForestExperiment(w, *reps))
		}
	})
	run("orders (random vs structured priority orders)", want("orders"), func() {
		fmt.Println(bench.OrderSensitivity(1_000_000>>*shrink, *seed))
	})
}

func buildWorkloads(kind string, shrink uint, n, m int, seed uint64) []bench.Workload {
	kinds := []string{"random", "rmat"}
	switch kind {
	case "both":
	case "random", "rmat":
		kinds = []string{kind}
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown -graph %q\n", kind)
		os.Exit(2)
	}
	var out []bench.Workload
	for _, k := range kinds {
		w := bench.DefaultScale(k, shrink)
		if n > 0 {
			w.N = n
		}
		if m > 0 {
			w.M = m
		}
		w.Seed = seed
		out = append(out, w)
	}
	return out
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
