// Command analyze reports the paper's analytical quantities for a graph:
// degree statistics, the dependence length of the MIS and MM priority
// DAGs under random and structured orders, the longest priority-DAG
// path, and per-prefix diagnostics (longest path in the prefix, max
// remaining degree, internal edge counts). It is the command-line face
// of the internal/core and internal/matching analyzers.
//
// Usage:
//
//	analyze -gen random -n 100000 -m 500000
//	analyze -in graph.adj -orders -prefixes
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, writes the
// report to stdout and problems to stderr, and returns the process exit
// code (0 ok, 2 usage/load error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input graph file (empty: use -gen)")
		gen      = fs.String("gen", "random", "generator when no -in: random|rmat|grid|hypercube|ba|smallworld")
		n        = fs.Int("n", 100_000, "generated vertex count")
		m        = fs.Int("m", 500_000, "generated edge count")
		seed     = fs.Uint64("seed", 42, "seed for generator and priorities")
		orders   = fs.Bool("orders", false, "also analyze structured (non-random) orders")
		prefixes = fs.Bool("prefixes", false, "also analyze prefix diagnostics (Lemmas 3.1/3.3/4.3)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, err := load(*in, *gen, *n, *m, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "analyze: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "graph: %s\n", graph.Stats(g))
	nn := g.NumVertices()
	ord := core.NewRandomOrder(nn, *seed+1)
	lg := math.Log2(float64(nn))

	info := core.DependenceSteps(g, ord)
	fmt.Fprintf(stdout, "MIS (random order): dependence length=%d  longest path=%d  log2(n)^2=%.0f  |MIS|=%d\n",
		info.Steps, core.LongestPath(g, ord), lg*lg, countTrue(info.InSet))

	el := g.EdgeList()
	if el.NumEdges() > 0 {
		mmOrd := core.NewRandomOrder(el.NumEdges(), *seed+2)
		mmInfo := matching.DependenceSteps(el, mmOrd)
		fmt.Fprintf(stdout, "MM  (random order): dependence length=%d  |MM|=%d\n",
			mmInfo.Steps, countTrue(mmInfo.InMatching))
	}

	if *orders {
		fmt.Fprintln(stdout, "\nMIS dependence length by priority order:")
		for _, o := range []struct {
			name string
			ord  core.Order
		}{
			{"random", ord},
			{"identity", core.IdentityOrder(nn)},
			{"reverse-random", core.Reverse(ord)},
			{"bfs", core.BFSOrder(g, 0)},
			{"degree-asc", core.DegreeOrder(g, true)},
			{"degree-desc", core.DegreeOrder(g, false)},
		} {
			fmt.Fprintf(stdout, "  %-15s %d\n", o.name, core.DependenceSteps(g, o.ord).Steps)
		}
	}

	if *prefixes {
		d := g.MaxDegree()
		if d == 0 {
			return 0
		}
		fmt.Fprintln(stdout, "\nprefix diagnostics (multiples of n/maxdeg):")
		fmt.Fprintf(stdout, "  %10s %12s %12s %14s %14s\n", "prefix", "longestPath", "maxRemDeg", "internalEdges", "vWithInternal")
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8} {
			p := int(mult * float64(nn) / float64(d))
			if p < 1 {
				p = 1
			}
			if p > nn {
				p = nn
			}
			edges, withInt := core.PrefixInternalEdges(g, ord, p)
			fmt.Fprintf(stdout, "  %10d %12d %12d %14d %14d\n",
				p,
				core.PrefixLongestPath(g, ord, p),
				core.MaxDegreeAfterPrefix(g, ord, p),
				edges, withInt)
		}
	}
	return 0
}

func countTrue(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}

func load(in, gen string, n, m int, seed uint64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadAuto(f)
	}
	switch gen {
	case "random":
		return graph.Random(n, m, seed), nil
	case "rmat":
		logn := 0
		for 1<<logn < n {
			logn++
		}
		return graph.RMat(logn, m, seed, graph.DefaultRMatOptions()), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid2D(side, side), nil
	case "hypercube":
		d := 0
		for 1<<(d+1) <= n {
			d++
		}
		return graph.Hypercube(d), nil
	case "ba":
		return graph.BarabasiAlbert(n, 3, seed), nil
	case "smallworld":
		return graph.WattsStrogatz(n, 6, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
