package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestRunSmoke drives the full report (orders + prefixes) on a small
// generated graph and checks each section appears.
func TestRunSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-gen", "random", "-n", "500", "-m", "2000", "-seed", "9", "-orders", "-prefixes"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"graph: ",
		"MIS (random order): dependence length=",
		"MM  (random order): dependence length=",
		"MIS dependence length by priority order:",
		"degree-desc",
		"prefix diagnostics",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q\n%s", want, out.String())
		}
	}
	if errb.Len() != 0 {
		t.Errorf("unexpected stderr: %s", errb.String())
	}
}

// TestRunDeterministic: same flags, same bytes — the report is part of
// the repo's reproducibility surface.
func TestRunDeterministic(t *testing.T) {
	args := []string{"-gen", "ba", "-n", "300", "-seed", "4", "-orders"}
	var a, b bytes.Buffer
	if code := run(args, &a, &b); code != 0 {
		t.Fatalf("first run exit %d: %s", code, b.String())
	}
	var c, d bytes.Buffer
	if code := run(args, &c, &d); code != 0 {
		t.Fatalf("second run exit %d: %s", code, d.String())
	}
	if a.String() != c.String() {
		t.Fatalf("same flags produced different reports:\n--- a ---\n%s\n--- b ---\n%s", a.String(), c.String())
	}
}

// TestRunFromFile round-trips through -in: write an adjacency file,
// analyze it, and check the vertex count in the stats line.
func TestRunFromFile(t *testing.T) {
	g := graph.Grid2D(8, 8)
	path := filepath.Join(t.TempDir(), "g.adj")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteAdjacency(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-in", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "n=64") {
		t.Errorf("stats line does not mention n=64:\n%s", out.String())
	}
}

// TestRunBadFlags: unknown generator and missing file are reported on
// stderr with exit code 2, not a panic or a silent zero report.
func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown generator: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown generator") {
		t.Errorf("stderr %q does not name the bad generator", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-in", filepath.Join(t.TempDir(), "missing.adj")}, &out, &errb); code != 2 {
		t.Errorf("missing input file: exit %d, want 2", code)
	}
}
