// Command greedyd serves the library's graph algorithms over HTTP: a
// graph registry (upload or server-side generation) and an async job
// engine running MIS, maximal matching and spanning forest jobs on a
// bounded worker pool, with idempotency-key deduplication of identical
// deterministic computations.
//
// Usage:
//
//	greedyd -addr :8080 -cache-bytes 1073741824 -workers 0 -ttl 15m
//
// See README.md for the API and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheBytes = flag.Int64("cache-bytes", 1<<30, "graph registry byte budget (<0: unlimited)")
		workers    = flag.Int("workers", 0, "job worker pool size (0: GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 4096, "maximum queued jobs")
		ttl        = flag.Duration("ttl", 15*time.Minute, "finished-job retention")
		maxUpload  = flag.Int64("max-upload-bytes", 512<<20, "maximum graph upload size")
		dynSess    = flag.Int("dynamic-sessions", 0, "cached dynamic sessions (0: default 8, <0: disable repair)")
	)
	flag.Parse()

	svc := service.New(service.Config{
		CacheBytes:      *cacheBytes,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		ResultTTL:       *ttl,
		MaxUploadBytes:  *maxUpload,
		DynamicSessions: *dynSess,
	})
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("greedyd: listening on %s (cache %d bytes, workers %d)", *addr, *cacheBytes, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("greedyd: %v", err)
	}
	log.Printf("greedyd: shut down")
}
