// Command greedyd serves the library's graph algorithms over HTTP: a
// graph registry (upload or server-side generation) and an async job
// engine running MIS, maximal matching and spanning forest jobs on a
// bounded worker pool, with idempotency-key deduplication of identical
// deterministic computations.
//
// Observability: structured logs (slog, -log-format text|json), a
// Prometheus exposition at GET /metrics, a trace flight recorder
// served at GET /v1/trace/recent and GET /v1/jobs/{id}/trace, a live
// Server-Sent Events stream of trace events at GET /v1/events (see
// cmd/greedytop for a terminal dashboard over it), and — when
// -debug-addr is set — net/http/pprof on a separate listener so
// profiling is never exposed on the public API address.
//
// Usage:
//
//	greedyd -addr :8080 -cache-bytes 1073741824 -workers 0 -ttl 15m
//	greedyd -log-format json -log-level debug -debug-addr localhost:6060
//	greedyd -trace-capacity 65536 -trace-sample 8
//
// See README.md for the API and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

// buildLogger maps the -log-format/-log-level flags onto a slog
// handler writing to stderr.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// debugHandler mounts net/http/pprof on an explicit mux (the package's
// init registers on http.DefaultServeMux, which greedyd never serves —
// explicit registration keeps the profiling surface intentional).
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cacheBytes = flag.Int64("cache-bytes", 1<<30, "graph registry byte budget (<0: unlimited)")
		workers    = flag.Int("workers", 0, "job worker pool size (0: GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 4096, "maximum queued jobs")
		ttl        = flag.Duration("ttl", 15*time.Minute, "finished-job retention")
		maxUpload  = flag.Int64("max-upload-bytes", 512<<20, "maximum graph upload size")
		dynSess    = flag.Int("dynamic-sessions", 0, "cached dynamic sessions (0: default 8, <0: disable repair)")
		traceCap   = flag.Int("trace-capacity", 0, "trace ring buffer capacity in events (0: default 16384, <0: disable tracing)")
		traceSamp  = flag.Int("trace-sample", 0, "record every Nth solver round as a trace event (0: no round stream; also enables per-phase engine profiling)")
		streamSubs = flag.Int("stream-subscribers", 0, "maximum concurrent /v1/events subscribers (0: default 16, <0: disable streaming)")
		streamQ    = flag.Int("stream-queue", 0, "per-subscriber event queue capacity (0: default 1024)")
		streamHB   = flag.Duration("stream-heartbeat", 0, "/v1/events heartbeat interval (0: default 10s)")
		logFormat  = flag.String("log-format", "text", "log output format: text|json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug|info|warn|error (debug shows the access log)")
		debugAddr  = flag.String("debug-addr", "", "if set, serve net/http/pprof under /debug/pprof/ on this extra address (e.g. localhost:6060)")
		dataDir    = flag.String("data-dir", "", "if set, persist graphs and the job journal here; restart recovers acknowledged jobs (empty: in-memory only)")
		drainTO    = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown window for in-flight jobs before they are cancelled")
		watermark  = flag.Float64("ingest-watermark", 0, "fraction of -cache-bytes at which graph ingest pauses with 503 (0: default 0.9, <0: disable)")
		failpoints = flag.String("failpoints", "", "arm fault-injection failpoints, e.g. persist.fsync=error*1 (also via GREEDYD_FAILPOINTS; testing only)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "greedyd: %v\n", err)
		os.Exit(2)
	}

	spec := *failpoints
	if spec == "" {
		spec = os.Getenv("GREEDYD_FAILPOINTS")
	}
	if spec != "" {
		if err := fault.ArmSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "greedyd: -failpoints: %v\n", err)
			os.Exit(2)
		}
		logger.Warn("fault injection armed", "spec", spec)
	}

	svc, err := service.New(service.Config{
		CacheBytes:        *cacheBytes,
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		ResultTTL:         *ttl,
		MaxUploadBytes:    *maxUpload,
		DynamicSessions:   *dynSess,
		TraceCapacity:     *traceCap,
		TraceRoundSample:  *traceSamp,
		StreamSubscribers: *streamSubs,
		StreamQueue:       *streamQ,
		StreamHeartbeat:   *streamHB,
		Logger:            logger,
		DataDir:           *dataDir,
		IngestWatermark:   *watermark,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "greedyd: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server error", "addr", *debugAddr, "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	svcDone := make(chan struct{})
	go func() {
		<-ctx.Done()
		logger.Info("shutdown signal received", "drain_timeout", drainTO.String())
		// Drain the service first: Shutdown closes the shutdown channel,
		// so /v1/events streams emit their terminal "shutdown" frame and
		// return, which in turn lets srv.Shutdown below finish waiting
		// for active handlers.
		go func() {
			svc.Shutdown(*drainTO)
			close(svcDone)
		}()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO+10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	started := time.Now()
	logger.Info("greedyd listening",
		"addr", *addr,
		"cache_bytes", *cacheBytes,
		"workers", *workers,
		"queue_depth", *queueDepth,
		"ttl", ttl.String(),
		"data_dir", *dataDir,
		"trace_capacity", *traceCap,
		"trace_round_sample", *traceSamp,
		"pid", os.Getpid())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		svc.Close()
		logger.Error("server error", "error", err)
		os.Exit(1)
	}
	// ErrServerClosed means the signal goroutine ran srv.Shutdown; wait
	// for the concurrent service drain (worker pool + journal + blobs)
	// to finish before the process exits.
	<-svcDone
	logger.Info("greedyd shut down", "uptime", time.Since(started).Round(time.Millisecond).String())
}
