package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The chaos harness: boot the real greedyd binary, acknowledge a burst
// of jobs, SIGKILL the process mid-burst, restart it on the same data
// directory, and hold it to the durability contract — every
// acknowledged job is eventually served, under its original id, with
// a checksum byte-identical to a control run that never crashed.

// buildGreedyd compiles the daemon once per test run.
func buildGreedyd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "greedyd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one live greedyd process under test control.
type daemon struct {
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
}

// startDaemon boots greedyd with the given extra flags and waits for
// /healthz. The caller owns shutdown (kill or sigkill).
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var logs bytes.Buffer
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr, logs: &logs}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_ = d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("greedyd never became healthy at %s\nlogs:\n%s", addr, logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sigkill delivers an uncatchable kill — the crash the journal's
// fsync-before-ack discipline is designed to survive — and reaps the
// process.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

func (d *daemon) postJSON(t *testing.T, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(d.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: bad body %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

func (d *daemon) getJSON(t *testing.T, path string, out any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad body %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, raw
}

type jobAck struct {
	ID string `json:"job_id"`
}

type jobState struct {
	ID    string `json:"job_id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// chaosSpecs is the job burst both the control and the chaos run
// submit: one long job that wedges the single worker plus quick jobs
// acknowledged behind it, so a kill right after the acks is guaranteed
// to catch unserved acknowledgements.
func chaosSpecs(bigID, smallID string) []string {
	specs := []string{fmt.Sprintf(
		`{"graph_id":%q,"problem":"mis","plan":{"algorithm":"prefix","seed":7,"prefix_size":2}}`, bigID)}
	for seed := 10; seed < 14; seed++ {
		specs = append(specs, fmt.Sprintf(
			`{"graph_id":%q,"problem":"mis","plan":{"algorithm":"prefix","seed":%d}}`, smallID, seed))
	}
	return specs
}

// ingestChaosGraphs registers the two graphs every run uses and
// returns their content-addressed ids (identical across runs by
// construction).
func ingestChaosGraphs(t *testing.T, d *daemon) (bigID, smallID string) {
	t.Helper()
	var g struct {
		ID string `json:"id"`
	}
	if code := d.postJSON(t, "/v1/graphs", `{"generator":"random","n":300000,"m":600000,"seed":1}`, &g); code >= 300 {
		t.Fatalf("generate big graph: HTTP %d", code)
	}
	bigID = g.ID
	if code := d.postJSON(t, "/v1/graphs", `{"generator":"random","n":2000,"m":8000,"seed":2}`, &g); code >= 300 {
		t.Fatalf("generate small graph: HTTP %d", code)
	}
	return bigID, g.ID
}

// waitServed polls a job until it reaches state done and returns its
// result checksum.
func waitServed(t *testing.T, d *daemon, id string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st jobState
		code, raw := d.getJSON(t, "/v1/jobs/"+id, &st)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d %s", id, code, raw)
		}
		switch st.State {
		case "done":
			var res struct {
				Checksum string `json:"checksum"`
			}
			if code, raw := d.getJSON(t, "/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
				t.Fatalf("result %s: HTTP %d %s", id, code, raw)
			}
			if res.Checksum == "" {
				t.Fatalf("job %s served without a checksum", id)
			}
			return res.Checksum
		case "failed", "cancelled", "deadline_exceeded":
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never served (state %s)\nlogs:\n%s", id, st.State, d.logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestChaosKillRecoverServesEveryAck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	bin := buildGreedyd(t)

	// Control run: no crash, collect the expected checksum per spec.
	control := startDaemon(t, bin, "-data-dir", t.TempDir(), "-workers", "2")
	bigID, smallID := ingestChaosGraphs(t, control)
	specs := chaosSpecs(bigID, smallID)
	want := make([]string, len(specs))
	for i, spec := range specs {
		var ack jobAck
		if code := submitJob(t, control, spec, &ack); code != http.StatusAccepted {
			t.Fatalf("control submit %d: HTTP %d", i, code)
		}
		want[i] = waitServed(t, control, ack.ID)
	}
	control.sigkill(t)

	// Chaos run: workers wedged via the fault-injection flag so no job
	// can complete, a burst of acks, then kill -9 — the harshest
	// ack-but-never-serve crash the journal must cover.
	dataDir := t.TempDir()
	chaos := startDaemon(t, bin, "-data-dir", dataDir, "-workers", "1",
		"-failpoints", "worker.run=sleep:300s")
	cb, cs := ingestChaosGraphs(t, chaos)
	if cb != bigID || cs != smallID {
		t.Fatalf("content addressing drifted across runs: %s/%s vs %s/%s", cb, cs, bigID, smallID)
	}
	acked := make([]string, len(specs))
	for i, spec := range specs {
		var ack jobAck
		if code := submitJob(t, chaos, spec, &ack); code != http.StatusAccepted {
			t.Fatalf("chaos submit %d: HTTP %d", i, code)
		}
		acked[i] = ack.ID
	}
	chaos.sigkill(t)

	// Restart on the same directory: every acknowledged job must be
	// served with the control run's exact checksum, under its old id.
	revived := startDaemon(t, bin, "-data-dir", dataDir, "-workers", "2")
	for i, id := range acked {
		if got := waitServed(t, revived, id); got != want[i] {
			t.Fatalf("job %s (spec %d): checksum %s after recovery, control said %s", id, i, got, want[i])
		}
	}

	// The metrics must attribute the re-served jobs to recovery and the
	// Prometheus exposition must carry the durability families.
	var snap struct {
		Jobs struct {
			Recovered int64 `json:"recovered"`
		} `json:"jobs"`
		Persist struct {
			Enabled bool `json:"enabled"`
		} `json:"persist"`
	}
	if code, raw := revived.getJSON(t, "/v1/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d %s", code, raw)
	}
	if snap.Jobs.Recovered < 1 {
		t.Fatalf("recovered = %d, want >= 1", snap.Jobs.Recovered)
	}
	if !snap.Persist.Enabled {
		t.Fatal("persist reports disabled on a -data-dir boot")
	}
	_, prom := revived.getJSON(t, "/metrics", nil)
	for _, family := range []string{"greedyd_persist_enabled 1", "greedyd_jobs_recovered_total", "greedyd_persist_wal_appends_total"} {
		if !bytes.Contains(prom, []byte(family)) {
			t.Fatalf("prometheus exposition missing %q", family)
		}
	}
}

// submitJob posts one job spec.
func submitJob(t *testing.T, d *daemon, spec string, ack *jobAck) int {
	t.Helper()
	return d.postJSON(t, "/v1/jobs", spec, ack)
}
