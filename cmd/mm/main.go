// Command mm computes a maximal matching of a graph with any of the
// library's algorithms and reports the result and its cost counters.
// It runs on the Solver API: Ctrl-C cancels a long run within one
// round, and -progress streams the per-round profile to stderr.
//
// Usage:
//
//	mm -in graph.adj -algorithm prefix -prefix 0.01
//	mm -gen random -n 100000 -m 500000 -algorithm rootset -verify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	greedy "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph file (empty: use -gen)")
		gen       = flag.String("gen", "random", "generator when no -in: random|rmat")
		n         = flag.Int("n", 100_000, "generated vertex count")
		m         = flag.Int("m", 500_000, "generated edge count")
		seed      = flag.Uint64("seed", 42, "seed for generator and priorities")
		algorithm = flag.String("algorithm", "prefix", "sequential|parallel|rootset|prefix")
		prefix    = flag.Float64("prefix", 0, "prefix fraction (0 = default)")
		verify    = flag.Bool("verify", false, "verify maximality and lex-first equality")
		progress  = flag.Bool("progress", false, "stream per-round stats to stderr")
		quiet     = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	g, err := loadOrGenerate(*in, *gen, *n, *m, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mm: %v\n", err)
		os.Exit(2)
	}
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), *seed+2)

	algo, err := greedy.ParseAlgorithm(*algorithm)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mm: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []greedy.Option{
		greedy.WithAlgorithm(algo),
		greedy.WithOrder(ord),
		greedy.WithPrefixFrac(*prefix),
	}
	if *progress {
		opts = append(opts, greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
			fmt.Fprintf(os.Stderr, "round %6d: prefix=%d attempted=%d accepted=%d inspections=%d\n",
				ri.Round, ri.PrefixSize, ri.Attempted, ri.Accepted, ri.EdgeInspections)
		}))
	}

	solver := greedy.NewSolver()
	start := time.Now()
	res, err := solver.MM(ctx, el, opts...)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "mm: cancelled after %v\n", elapsed)
			os.Exit(130)
		case errors.Is(err, greedy.ErrLubyMatching):
			fmt.Fprintf(os.Stderr, "mm: %v\n", err)
			os.Exit(2)
		default:
			fmt.Fprintf(os.Stderr, "mm: %v\n", err)
			os.Exit(1)
		}
	}

	if !*quiet {
		fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())
		fmt.Printf("algorithm: %s\n", *algorithm)
		fmt.Printf("stats: %s\n", res.Stats)
	}
	fmt.Printf("mm: size=%d time=%v\n", res.Size(), elapsed)

	if *verify {
		if !matching.IsMaximalMatching(el, res.InMatching) {
			fmt.Fprintln(os.Stderr, "mm: VERIFICATION FAILED: not a maximal matching")
			os.Exit(1)
		}
		if err := matching.VerifyLexFirst(el, ord, res); err != nil {
			fmt.Fprintf(os.Stderr, "mm: VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verify: ok")
	}
}

func loadOrGenerate(in, gen string, n, m int, seed uint64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadAuto(f)
	}
	switch gen {
	case "random":
		return graph.Random(n, m, seed), nil
	case "rmat":
		logn := 0
		for 1<<logn < n {
			logn++
		}
		return graph.RMat(logn, m, seed, graph.DefaultRMatOptions()), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
