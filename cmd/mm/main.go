// Command mm computes a maximal matching of a graph with any of the
// library's algorithms and reports the result and its cost counters.
//
// Usage:
//
//	mm -in graph.adj -algorithm prefix -prefix 0.01
//	mm -gen random -n 100000 -m 500000 -algorithm rootset -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	greedy "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph file (empty: use -gen)")
		gen       = flag.String("gen", "random", "generator when no -in: random|rmat")
		n         = flag.Int("n", 100_000, "generated vertex count")
		m         = flag.Int("m", 500_000, "generated edge count")
		seed      = flag.Uint64("seed", 42, "seed for generator and priorities")
		algorithm = flag.String("algorithm", "prefix", "sequential|parallel|rootset|prefix")
		prefix    = flag.Float64("prefix", 0, "prefix fraction (0 = default)")
		verify    = flag.Bool("verify", false, "verify maximality and lex-first equality")
		quiet     = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	g, err := loadOrGenerate(*in, *gen, *n, *m, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mm: %v\n", err)
		os.Exit(2)
	}
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), *seed+2)
	opt := matching.Options{PrefixFrac: *prefix}

	algo, err := greedy.ParseAlgorithm(*algorithm)
	if err != nil || algo == greedy.AlgoLuby {
		if err == nil {
			err = fmt.Errorf("greedy: Luby's algorithm applies to MIS only")
		}
		fmt.Fprintf(os.Stderr, "mm: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	var res *matching.Result
	switch algo {
	case greedy.AlgoSequential:
		res = matching.SequentialMM(el, ord)
	case greedy.AlgoParallel:
		res = matching.ParallelMM(el, ord, opt)
	case greedy.AlgoRootSet:
		res = matching.RootSetMM(el, ord, opt)
	default:
		res = matching.PrefixMM(el, ord, opt)
	}
	elapsed := time.Since(start)

	if !*quiet {
		fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())
		fmt.Printf("algorithm: %s\n", *algorithm)
		fmt.Printf("stats: %s\n", res.Stats)
	}
	fmt.Printf("mm: size=%d time=%v\n", res.Size(), elapsed)

	if *verify {
		if !matching.IsMaximalMatching(el, res.InMatching) {
			fmt.Fprintln(os.Stderr, "mm: VERIFICATION FAILED: not a maximal matching")
			os.Exit(1)
		}
		if err := matching.VerifyLexFirst(el, ord, res); err != nil {
			fmt.Fprintf(os.Stderr, "mm: VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verify: ok")
	}
}

func loadOrGenerate(in, gen string, n, m int, seed uint64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadAuto(f)
	}
	switch gen {
	case "random":
		return graph.Random(n, m, seed), nil
	case "rmat":
		logn := 0
		for 1<<logn < n {
			logn++
		}
		return graph.RMat(logn, m, seed, graph.DefaultRMatOptions()), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
