package greedy

import (
	"context"
	"fmt"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/setcover"
	"repro/internal/spanning"
)

// Re-exported graph types: the facade and the internal packages share
// representations, so no conversion costs are ever paid.
type (
	// Graph is an immutable undirected graph in CSR form.
	Graph = graph.Graph
	// Edge is an undirected edge {U, V}.
	Edge = graph.Edge
	// EdgeList is the edge-array view used by the matching algorithms.
	EdgeList = graph.EdgeList
	// Vertex indexes a vertex.
	Vertex = graph.Vertex
	// Order is a priority permutation (the paper's pi).
	Order = core.Order
	// MISResult is the outcome of a maximal independent set run.
	MISResult = core.Result
	// MMResult is the outcome of a maximal matching run.
	MMResult = matching.Result
	// SFResult is the outcome of a spanning forest run.
	SFResult = spanning.Result
	// ColoringResult is the outcome of a greedy coloring run.
	ColoringResult = coloring.Result
	// HittingSetResult is the outcome of a greedy hitting set run.
	HittingSetResult = setcover.Result
	// System is an immutable set system (universe of elements, family of
	// sets) for the hitting set problem.
	System = setcover.System
	// Stats holds the machine-independent cost counters (rounds,
	// attempts, edge inspections) the paper plots.
	Stats = core.Stats
)

// Graph constructors.

// NewGraph builds a simple undirected graph on n vertices from an edge
// list; self loops are dropped and duplicates merged.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// RandomGraph returns the paper's first experimental input family: a
// uniform sparse random graph with n vertices and m edges.
func RandomGraph(n, m int, seed uint64) *Graph { return graph.Random(n, m, seed) }

// RMatGraph returns the paper's second input family: an rMat graph with
// 2^logN vertices, m edges and power-law degrees.
func RMatGraph(logN, m int, seed uint64) *Graph {
	return graph.RMat(logN, m, seed, graph.DefaultRMatOptions())
}

// NewRandomOrder returns a uniformly random priority order on n items,
// deterministic in (n, seed).
func NewRandomOrder(n int, seed uint64) Order { return core.NewRandomOrder(n, seed) }

// WeightedOrder returns the priority order that ranks items by
// descending weight, with seed-hashed tiebreaks (see
// core.WeightedOrder). Combined with WithOrder, it turns any of the
// deterministic algorithms into its weighted-greedy variant —
// highest-weight-first MIS, matching, coloring or hitting set — with
// the usual bit-identical determinism at any thread count.
func WeightedOrder(weights []float64, seed uint64) Order {
	return core.WeightedOrder(weights, seed)
}

// NewSystem builds a set system over numElements elements for the
// hitting set problem; each set is a list of element ids in
// [0, numElements).
func NewSystem(numElements int, sets [][]int32) (*System, error) {
	return setcover.FromSets(numElements, sets)
}

// HittingSystemFromEdges builds the vertex-cover system of an edge
// list: one two-element set per edge, over the vertices as elements.
// The greedy hitting set of this system is the greedy vertex cover.
func HittingSystemFromEdges(el EdgeList) *System { return setcover.FromEdges(el) }

// Algorithm selects an implementation strategy.
type Algorithm int

const (
	// AlgoPrefix is the paper's experimental algorithm (Algorithm 3):
	// prefix-based speculative execution, the default.
	AlgoPrefix Algorithm = iota
	// AlgoSequential is the greedy sequential algorithm (Algorithm 1).
	AlgoSequential
	// AlgoRootSet is the linear-work root-set implementation (Lemma
	// 4.2 for MIS, Lemma 5.3 for MM).
	AlgoRootSet
	// AlgoParallel is Algorithm 2/4: the full input processed as one
	// prefix every round.
	AlgoParallel
	// AlgoLuby is Luby's Algorithm A (MIS only); unlike the others it
	// does not return the lexicographically-first answer.
	AlgoLuby
)

// String returns the canonical lower-case name of a, the inverse of
// ParseAlgorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoPrefix:
		return "prefix"
	case AlgoSequential:
		return "sequential"
	case AlgoRootSet:
		return "rootset"
	case AlgoParallel:
		return "parallel"
	case AlgoLuby:
		return "luby"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a canonical algorithm name (as produced by
// Algorithm.String and accepted by the cmd tools) to its Algorithm
// value. The empty string selects the default, AlgoPrefix.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "prefix":
		return AlgoPrefix, nil
	case "sequential", "seq":
		return AlgoSequential, nil
	case "rootset":
		return AlgoRootSet, nil
	case "parallel":
		return AlgoParallel, nil
	case "luby":
		return AlgoLuby, nil
	default:
		return AlgoPrefix, fmt.Errorf("greedy: unknown algorithm %q (want sequential|parallel|rootset|prefix|luby)", s)
	}
}

type config struct {
	algorithm    Algorithm
	seed         uint64
	order        *Order
	prefixFrac   float64
	prefixSize   int
	adaptive     bool
	dynamic      bool
	grain        int
	pointered    bool
	phaseProfile bool
	observers    []func(RoundInfo)
}

// An Option configures the solver entry points.
type Option func(*config)

// WithAlgorithm selects the implementation (default AlgoPrefix).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithSeed sets the seed from which the priority order is derived
// (default 1). Two runs with the same graph and seed return identical
// results for every deterministic algorithm at any thread count.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithOrder fixes an explicit priority order instead of deriving one
// from the seed.
func WithOrder(ord Order) Option { return func(c *config) { c.order = &ord } }

// WithPrefixFrac sets the prefix size as a fraction of the input — the
// work/parallelism dial of the paper's Figure 1. 1.0 is maximally
// parallel; values around 0.005 are near the running-time optimum.
func WithPrefixFrac(frac float64) Option { return func(c *config) { c.prefixFrac = frac } }

// WithPrefixSize sets an absolute prefix size (overrides WithPrefixFrac).
func WithPrefixSize(size int) Option { return func(c *config) { c.prefixSize = size } }

// WithAdaptivePrefix replaces the fixed prefix window of AlgoPrefix
// with a measured, self-tuning schedule: after every round the window
// doubles while the resolved/attempted ratio stays high and halves
// when it collapses or the edge-inspection cost per resolved iterate
// explodes, bounded by [1, input size]. Results are bit-identical to
// the fixed-prefix and sequential paths — the window changes only how
// many of the earliest unresolved iterates run per round, never their
// order — and the schedule is a deterministic function of the run, so
// adaptive plans remain sound dedup keys. WithPrefixSize/WithPrefixFrac
// seed the initial window when set; otherwise the run starts at one
// grain-sized chunk and doubles its way up. Requesting it with any
// algorithm other than AlgoPrefix is reported as ErrAdaptiveAlgorithm.
func WithAdaptivePrefix() Option { return func(c *config) { c.adaptive = true } }

// WithDynamic selects churn-stable priorities, the ones the dynamic
// subsystem maintains incrementally (see Solver.MISDynamic/MMDynamic):
// MIS keeps the usual per-vertex random order (already stable — the
// vertex set does not change under edge churn), while MM derives each
// edge's priority from a hash of (seed, endpoints) instead of a
// permutation of edge identifiers, so an edge keeps its priority no
// matter when it enters or leaves the graph. A one-shot Solver.MM run
// with WithDynamic computes exactly the matching a dynamic session
// with the same seed maintains — which is what lets the service layer
// answer a dynamic-plan job either by repair or by recompute
// interchangeably. Spanning forest and Luby have no churn-stable
// variant; requesting them with WithDynamic is reported as
// ErrDynamicUnsupported.
func WithDynamic() Option { return func(c *config) { c.dynamic = true } }

// WithGrain sets the parallel-loop grain size (default 256, as in the
// paper).
func WithGrain(grain int) Option { return func(c *config) { c.grain = grain } }

// WithPointer enables the Lemma 4.1 parent-pointer optimization in the
// prefix-based MIS.
func WithPointer() Option { return func(c *config) { c.pointered = true } }

// WithPhaseProfile enables per-phase wall-time attribution in the
// round-synchronous engine: each RoundInfo reported to a
// WithRoundObserver carries the round's check/commit/reset/slide
// durations (CheckNS..SlideNS) and retry-tail size. The profile is
// telemetry only — it never influences the computation, so it does NOT
// participate in a Plan (two runs differing only in profiling are the
// same computation and remain dedup-equal). Without an observer the
// durations are measured and discarded; without this option the engine
// performs no clock reads at all, keeping the dark path byte-identical
// and allocation-free.
func WithPhaseProfile() Option { return func(c *config) { c.phaseProfile = true } }

func buildConfig(opts []Option) config {
	c := config{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Plan is the resolved configuration an option list denotes: the
// algorithm, seed and tuning knobs after defaults are applied. Because
// every deterministic algorithm returns bit-identical results for a
// fixed (graph, Plan) at any thread count, a Plan is a valid cache or
// idempotency key for a computation — the property the service layer
// relies on to deduplicate submissions. An explicit WithOrder is not
// representable in a Plan (orders are not serializable values) and is
// reported by ExplicitOrder.
type Plan struct {
	Algorithm  Algorithm
	Seed       uint64
	PrefixFrac float64
	PrefixSize int
	// AdaptivePrefix selects the measured window schedule of
	// WithAdaptivePrefix. The schedule is deterministic per (graph,
	// plan), so adaptive plans stay valid dedup keys; on the wire it
	// travels as "prefix": "adaptive".
	AdaptivePrefix bool
	// Dynamic selects the churn-stable priorities of WithDynamic. It
	// participates in dedup keys: a dynamic MM plan selects a different
	// (hash-priority) matching than the identifier-permutation plans.
	Dynamic   bool
	Grain     int
	Pointered bool
	// ExplicitOrder reports that WithOrder was supplied; such a
	// configuration must not be used as a dedup key.
	ExplicitOrder bool
}

// ResolvePlan applies opts over the defaults and returns the resulting
// Plan — the exact option→configuration mapping the solver entry points
// use internally.
func ResolvePlan(opts ...Option) Plan {
	c := buildConfig(opts)
	return Plan{
		Algorithm:      c.algorithm,
		Seed:           c.seed,
		PrefixFrac:     c.prefixFrac,
		PrefixSize:     c.prefixSize,
		AdaptivePrefix: c.adaptive,
		Dynamic:        c.dynamic,
		Grain:          c.grain,
		Pointered:      c.pointered,
		ExplicitOrder:  c.order != nil,
	}
}

// Options converts p back to an option list accepted by the solver
// entry points. ResolvePlan(p.Options()...) round-trips every field
// except ExplicitOrder.
func (p Plan) Options() []Option {
	opts := []Option{WithAlgorithm(p.Algorithm), WithSeed(p.Seed)}
	if p.PrefixFrac != 0 {
		opts = append(opts, WithPrefixFrac(p.PrefixFrac))
	}
	if p.PrefixSize != 0 {
		opts = append(opts, WithPrefixSize(p.PrefixSize))
	}
	if p.AdaptivePrefix {
		opts = append(opts, WithAdaptivePrefix())
	}
	if p.Dynamic {
		opts = append(opts, WithDynamic())
	}
	if p.Grain != 0 {
		opts = append(opts, WithGrain(p.Grain))
	}
	if p.Pointered {
		opts = append(opts, WithPointer())
	}
	return opts
}

// MaximalIndependentSet computes an MIS of g. With the default options
// it runs the paper's prefix-based algorithm under a random order
// derived from seed 1 and returns the lexicographically-first MIS for
// that order.
//
// It is a thin wrapper over a pooled Solver, kept for one-shot callers;
// it panics on configuration errors a Solver would return (a mismatched
// WithOrder). Long-lived callers should hold a Solver: it exposes
// cancellation and reuses its workspace deterministically.
func MaximalIndependentSet(g *Graph, opts ...Option) *MISResult {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	res, err := s.MIS(context.Background(), g, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// MaximalMatching computes a maximal matching of g; the priority order
// is over g's canonical edge list.
func MaximalMatching(g *Graph, opts ...Option) *MMResult {
	return MaximalMatchingEdges(g.EdgeList(), opts...)
}

// MaximalMatchingEdges computes a maximal matching of an explicit edge
// list. Like MaximalIndependentSet it wraps a pooled Solver and panics
// on configuration errors (AlgoLuby, mismatched WithOrder).
func MaximalMatchingEdges(el EdgeList, opts ...Option) *MMResult {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	res, err := s.MM(context.Background(), el, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// SpanningForest computes a greedy spanning forest of g — the §7
// extension. AlgoSequential runs the union-find scan and returns the
// lexicographically-first forest. The default runs the prefix-based
// deterministic-reservations version with PBBS one-root semantics
// (spanning.PrefixSFRelaxed): the forest is valid and deterministic for
// a fixed order and prefix at any thread count, but is not necessarily
// the sequential one — reproducing the sequential forest in parallel
// (spanning.PrefixSF) serializes on hub components, the honest finding
// of this reproduction's §7 experiment (see EXPERIMENTS.md).
func SpanningForest(g *Graph, opts ...Option) *SFResult {
	return SpanningForestEdges(g.EdgeList(), opts...)
}

// SpanningForestEdges computes a greedy spanning forest of an explicit
// edge list, for callers that already hold the edge-array view (e.g.
// the service layer, which caches it per graph). Like the other free
// functions it wraps a pooled Solver and panics on configuration
// errors (an unsupported algorithm, mismatched WithOrder).
func SpanningForestEdges(el EdgeList, opts ...Option) *SFResult {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	res, err := s.SF(context.Background(), el, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// GreedyColoring computes the first-fit greedy coloring of g: vertices
// in priority order, each taking the smallest color absent among its
// earlier neighbors — the lexicographically-first greedy coloring. Like
// the other free functions it wraps a pooled Solver and panics on
// configuration errors (an unsupported algorithm, mismatched
// WithOrder).
func GreedyColoring(g *Graph, opts ...Option) *ColoringResult {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	res, err := s.Coloring(context.Background(), g, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// GreedyHittingSet computes the greedy hitting set of a set system:
// elements in priority order, each joining exactly when some set
// containing it is not yet hit. Like the other free functions it wraps
// a pooled Solver and panics on configuration errors (an unsupported
// algorithm, mismatched WithOrder).
func GreedyHittingSet(sys *System, opts ...Option) *HittingSetResult {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	res, err := s.HittingSet(context.Background(), sys, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// Verifiers, re-exported for callers that want the paper's checks.

// IsMaximalIndependentSet reports whether inSet is independent and
// maximal in g.
func IsMaximalIndependentSet(g *Graph, inSet []bool) bool {
	return core.IsMaximalIndependentSet(g, inSet)
}

// IsMaximalMatching reports whether inMatching is a maximal matching of
// el.
func IsMaximalMatching(el EdgeList, inMatching []bool) bool {
	return matching.IsMaximalMatching(el, inMatching)
}

// VerifyLexFirstMIS checks that result is exactly the sequential greedy
// MIS under ord.
func VerifyLexFirstMIS(g *Graph, ord Order, result *MISResult) error {
	return core.VerifyLexFirst(g, ord, result)
}

// VerifyLexFirstMM checks that result is exactly the sequential greedy
// matching under ord.
func VerifyLexFirstMM(el EdgeList, ord Order, result *MMResult) error {
	return matching.VerifyLexFirst(el, ord, result)
}

// VerifyColoring checks that colors is a proper coloring of g (every
// vertex colored, no monochromatic edge).
func VerifyColoring(g *Graph, colors []int32) error {
	return coloring.Verify(g, colors)
}

// VerifyHittingSet checks that inSet hits every nonempty set of sys.
func VerifyHittingSet(sys *System, inSet []bool) error {
	return sys.Verify(inSet)
}

// DependenceLength returns the dependence length of (g, ord): the number
// of rounds Algorithm 2 needs, which Theorem 3.5 bounds by O(log^2 n)
// w.h.p. for random orders.
func DependenceLength(g *Graph, ord Order) int {
	return core.DependenceSteps(g, ord).Steps
}
