// Quickstart: build a graph, compute a maximal independent set and a
// maximal matching with the paper's prefix-based parallel algorithms,
// and verify both against the sequential greedy specification.
package main

import (
	"fmt"
	"log"

	greedy "repro"
)

func main() {
	// The paper's first experimental input family at a small scale: a
	// sparse random graph, here with 100k vertices and 500k edges.
	g := greedy.RandomGraph(100_000, 500_000, 42)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Maximal independent set. The default algorithm is the paper's
	// prefix-based one; the seed fixes the random priority order, and
	// with it the exact answer.
	mis := greedy.MaximalIndependentSet(g, greedy.WithSeed(7))
	fmt.Printf("MIS: size=%d  %s\n", mis.Size(), mis.Stats)

	// The answer is the lexicographically-first MIS: exactly what the
	// sequential greedy algorithm returns for the same order.
	ord := greedy.NewRandomOrder(g.NumVertices(), 7)
	if err := greedy.VerifyLexFirstMIS(g, ord, mis); err != nil {
		log.Fatalf("determinism violated: %v", err)
	}
	fmt.Println("MIS matches the sequential greedy answer exactly")

	// Maximal matching over a random edge order, same guarantees.
	mm := greedy.MaximalMatching(g, greedy.WithSeed(7))
	fmt.Printf("MM: size=%d  %s\n", mm.Size(), mm.Stats)
	if !greedy.IsMaximalMatching(g.EdgeList(), mm.InMatching) {
		log.Fatal("matching not maximal")
	}

	// The prefix size dials between work and parallelism (Figure 1 of
	// the paper): prefix 1 is sequential, the full prefix is maximally
	// parallel but does ~2.5x the work.
	for _, frac := range []float64{0.0001, 0.01, 1.0} {
		r := greedy.MaximalIndependentSet(g, greedy.WithSeed(7), greedy.WithPrefixFrac(frac))
		fmt.Printf("prefix %6.4f: rounds=%6d work/N=%.3f (same set: %v)\n",
			frac, r.Stats.Rounds,
			float64(r.Stats.Attempts)/float64(g.NumVertices()),
			r.Equal(mis))
	}

	// The spanning forest extension from the paper's conclusion.
	sf := greedy.SpanningForest(g, greedy.WithSeed(7))
	fmt.Printf("spanning forest: %d edges\n", sf.Size())
}
