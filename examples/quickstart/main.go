// Quickstart: build a graph, compute a maximal independent set and a
// maximal matching with the paper's prefix-based parallel algorithms
// through the Solver API — reusable workspaces, cancellable runs, and
// per-round progress — and verify both against the sequential greedy
// specification.
package main

import (
	"context"
	"fmt"
	"log"

	greedy "repro"
)

func main() {
	// The paper's first experimental input family at a small scale: a
	// sparse random graph, here with 100k vertices and 500k edges.
	g := greedy.RandomGraph(100_000, 500_000, 42)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// A Solver owns a reusable workspace: every run below shares the
	// same frontier/flag buffers and cached priority orders. One-shot
	// callers can use the free functions (greedy.MaximalIndependentSet)
	// instead, which draw Solvers from an internal pool.
	solver := greedy.NewSolver(greedy.WithSeed(7))
	ctx := context.Background()

	// Maximal independent set. The default algorithm is the paper's
	// prefix-based one; the seed fixes the random priority order, and
	// with it the exact answer.
	mis, err := solver.MIS(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIS: size=%d  %s\n", mis.Size(), mis.Stats)

	// The answer is the lexicographically-first MIS: exactly what the
	// sequential greedy algorithm returns for the same order.
	ord := greedy.NewRandomOrder(g.NumVertices(), 7)
	if err := greedy.VerifyLexFirstMIS(g, ord, mis); err != nil {
		log.Fatalf("determinism violated: %v", err)
	}
	fmt.Println("MIS matches the sequential greedy answer exactly")

	// Maximal matching over a random edge order, same guarantees.
	el := g.EdgeList()
	mm, err := solver.MM(ctx, el)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MM: size=%d  %s\n", mm.Size(), mm.Stats)
	if !greedy.IsMaximalMatching(el, mm.InMatching) {
		log.Fatal("matching not maximal")
	}

	// The prefix size dials between work and parallelism (Figure 1 of
	// the paper): prefix 1 is sequential, the full prefix is maximally
	// parallel but does ~2.5x the work. The same solver workspace
	// serves every configuration.
	for _, frac := range []float64{0.0001, 0.01, 1.0} {
		r, err := solver.MIS(ctx, g, greedy.WithPrefixFrac(frac))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prefix %6.4f: rounds=%6d work/N=%.3f (same set: %v)\n",
			frac, r.Stats.Rounds,
			float64(r.Stats.Attempts)/float64(g.NumVertices()),
			r.Equal(mis))
	}

	// A round observer streams the paper's Figure 1 quantities live;
	// here it also demonstrates cancellation: cancel mid-run and the
	// solver returns ctx.Err() within one round.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var rounds int64
	_, err = solver.MIS(runCtx, g, greedy.WithPrefixFrac(0.001),
		greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
			rounds = ri.Round
			if ri.Round == 10 {
				cancel() // enough progress: abort the run
			}
		}))
	fmt.Printf("cancelled run: observed %d rounds, err=%v\n", rounds, err)
}
