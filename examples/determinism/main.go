// Determinism: the paper's second headline claim — "once an ordering is
// fixed, the approach guarantees the same result whether run in parallel
// or sequentially or, in fact, choosing any schedule of the iterations
// that respects the dependences."
//
// This example runs every deterministic algorithm variant, at several
// prefix sizes, grain sizes and GOMAXPROCS settings, and shows that all
// of them produce the same fingerprint; Luby's algorithm, which redraws
// priorities each round, is included as the intentional counterexample.
package main

import (
	"fmt"
	"runtime"

	greedy "repro"
	"repro/internal/rng"
)

func fingerprintBools(bs []bool) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i, b := range bs {
		if b {
			h = rng.Hash2(h, uint64(i))
		}
	}
	return h
}

func main() {
	g := greedy.RandomGraph(50_000, 250_000, 99)
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("host: %d CPUs\n\n", runtime.NumCPU())

	type variant struct {
		name string
		opts []greedy.Option
	}
	variants := []variant{
		{"sequential", []greedy.Option{greedy.WithAlgorithm(greedy.AlgoSequential)}},
		{"rootset", []greedy.Option{greedy.WithAlgorithm(greedy.AlgoRootSet)}},
		{"parallel-full", []greedy.Option{greedy.WithAlgorithm(greedy.AlgoParallel)}},
		{"prefix-default", nil},
		{"prefix-0.1%", []greedy.Option{greedy.WithPrefixFrac(0.001)}},
		{"prefix-50%", []greedy.Option{greedy.WithPrefixFrac(0.5)}},
		{"prefix-grain-16", []greedy.Option{greedy.WithPrefixFrac(0.5), greedy.WithGrain(16)}},
		{"prefix-pointered", []greedy.Option{greedy.WithPointer()}},
	}

	fmt.Println("MIS fingerprints (seed 5), across algorithms x GOMAXPROCS:")
	var reference uint64
	consistent := true
	for _, procs := range []int{1, 2, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, v := range variants {
			opts := append([]greedy.Option{greedy.WithSeed(5)}, v.opts...)
			res := greedy.MaximalIndependentSet(g, opts...)
			fp := fingerprintBools(res.InSet)
			if reference == 0 {
				reference = fp
			}
			if fp != reference {
				consistent = false
			}
			fmt.Printf("  procs=%d %-18s size=%-6d fp=%016x\n", procs, v.name, res.Size(), fp)
		}
		runtime.GOMAXPROCS(old)
	}
	if consistent {
		fmt.Println("=> every deterministic variant agrees, at every thread count")
	} else {
		fmt.Println("=> DETERMINISM VIOLATED (this is a bug)")
	}

	fmt.Println("\nchanging the seed changes the (equally valid) answer:")
	for _, seed := range []uint64{5, 6, 7} {
		res := greedy.MaximalIndependentSet(g, greedy.WithSeed(seed))
		fmt.Printf("  seed=%d size=%-6d fp=%016x\n", seed, res.Size(), fingerprintBools(res.InSet))
	}

	fmt.Println("\nLuby's algorithm (fresh priorities each round) is deterministic in its")
	fmt.Println("seed but computes a different MIS than the greedy order:")
	luby := greedy.MaximalIndependentSet(g, greedy.WithSeed(5), greedy.WithAlgorithm(greedy.AlgoLuby))
	fmt.Printf("  luby seed=5 size=%-6d fp=%016x\n", luby.Size(), fingerprintBools(luby.InSet))

	fmt.Println("\nsame story for maximal matching:")
	mmRef := greedy.MaximalMatching(g, greedy.WithSeed(5), greedy.WithAlgorithm(greedy.AlgoSequential))
	for _, v := range []variant{
		{"rootset", []greedy.Option{greedy.WithAlgorithm(greedy.AlgoRootSet)}},
		{"parallel-full", []greedy.Option{greedy.WithAlgorithm(greedy.AlgoParallel)}},
		{"prefix-default", nil},
	} {
		opts := append([]greedy.Option{greedy.WithSeed(5)}, v.opts...)
		res := greedy.MaximalMatching(g, opts...)
		fmt.Printf("  %-18s size=%-6d same-as-sequential=%v\n", v.name, res.Size(), res.Equal(mmRef))
	}
}
