// Example service boots an in-process greedyd, ingests a graph two
// ways (server-side generation and a binary upload of the same graph),
// submits duplicate MIS jobs to show idempotency-key deduplication,
// cancels a long-running job mid-run via DELETE /v1/jobs/{id}, and
// prints the metrics snapshot the daemon exposes at /v1/metrics.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	greedy "repro"
	"repro/internal/graph"
	"repro/internal/service"
)

func main() {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &service.Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Ingest path 1: ask the daemon to generate the paper's random
	// graph family server-side.
	gen, err := client.Generate(ctx, service.GenSpec{Generator: "random", N: 50_000, M: 250_000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %s n=%d m=%d (%d bytes resident)\n", gen.ID, gen.N, gen.M, gen.Bytes)

	// Ingest path 2: upload the same graph serialized in the binary
	// format. Content addressing dedups it onto the same id.
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, greedy.RandomGraph(50_000, 250_000, 42)); err != nil {
		log.Fatal(err)
	}
	up, err := client.Upload(ctx, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded:  %s deduped=%v\n", up.ID, up.Deduped)

	// Submit the same deterministic job twice: one execution, two
	// byte-identical results.
	req := service.JobRequest{GraphID: gen.ID, Problem: "mis", Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 7}}
	first, err := client.Submit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	second, err := client.Submit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs: %s and %s deduped=%v\n", first.ID, second.ID, second.Deduped)

	if _, err := client.Wait(ctx, first.ID, time.Millisecond); err != nil {
		log.Fatal(err)
	}
	raw1, _, err := client.Result(ctx, first.ID)
	if err != nil {
		log.Fatal(err)
	}
	raw2, _, err := client.Result(ctx, second.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results byte-identical: %v (%d bytes)\n", bytes.Equal(raw1, raw2), len(raw1))

	// Cancellation: on a larger graph, a tiny prefix makes the job take
	// ~n/2 rounds; the DELETE below aborts the round loop within one
	// round and the job ends in state "cancelled", its worker
	// immediately free again.
	bigGraph, err := client.Generate(ctx, service.GenSpec{Generator: "random", N: 1_000_000, M: 2_000_000, Seed: 43})
	if err != nil {
		log.Fatal(err)
	}
	long, err := client.Submit(ctx, service.JobRequest{
		GraphID: bigGraph.ID, Problem: "mis",
		Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 1, PrefixSize: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	running := false
	for {
		st, err := client.Status(ctx, long.ID)
		if err != nil {
			log.Fatal(err)
		}
		if st.State == service.StateRunning && st.Progress != nil && st.Progress.Rounds > 0 {
			fmt.Printf("long job %s running: rounds=%d attempted=%d\n",
				long.ID, st.Progress.Rounds, st.Progress.Attempted)
			running = true
			break
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			fmt.Printf("long job %s finished before cancellation (state %s)\n", long.ID, st.State)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if running {
		if _, err := client.Cancel(ctx, long.ID); err != nil {
			log.Fatal(err)
		}
		final, err := client.Wait(ctx, long.ID, time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("long job after DELETE: state=%s run_ms=%.1f\n", final.State, final.RunMS)
	}

	snap, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: submitted=%d dedup_hits=%d executed=%d cancelled=%d graphs=%d resident=%dB\n",
		snap.Jobs.Submitted, snap.Jobs.DedupHits, snap.Jobs.Executed, snap.Jobs.Cancelled,
		snap.Registry.Graphs, snap.Registry.BytesResident)
}
