// Switch scheduling: maximal matching as the arbiter of an input-queued
// crossbar switch. Each time slot, every input port may forward one
// packet to one output port; the set of (input, output) pairs forwarded
// in a slot must be a matching of the demand graph. Computing a maximal
// matching per slot is the classic crossbar arbitration strategy, and a
// deterministic parallel matching means the switch's behavior is
// reproducible across runs and across the number of arbiter threads.
//
// The example simulates a virtual-output-queued switch under random
// traffic and reports per-slot matching sizes and total throughput.
package main

import (
	"fmt"

	greedy "repro"
	"repro/internal/rng"
)

const (
	ports       = 64
	arrivalProb = 0.9 // per (input, output) Bernoulli arrivals per slot
	slots       = 40
	seed        = 7
)

func main() {
	// voq[i][o] is the queue length of packets at input i destined to
	// output o.
	voq := make([][]int, ports)
	for i := range voq {
		voq[i] = make([]int, ports)
	}
	x := rng.NewXoshiro256(seed)

	totalArrived, totalForwarded := 0, 0
	for slot := 1; slot <= slots; slot++ {
		// Arrivals.
		arrived := 0
		for i := 0; i < ports; i++ {
			for o := 0; o < ports; o++ {
				if x.Float64() < arrivalProb/float64(ports) {
					voq[i][o]++
					arrived++
				}
			}
		}
		totalArrived += arrived

		// Demand graph: bipartite, inputs [0, ports) and outputs
		// [ports, 2*ports); an edge per nonempty VOQ.
		var demand []greedy.Edge
		for i := 0; i < ports; i++ {
			for o := 0; o < ports; o++ {
				if voq[i][o] > 0 {
					demand = append(demand, greedy.Edge{U: int32(i), V: int32(ports + o)})
				}
			}
		}
		if len(demand) == 0 {
			fmt.Printf("slot %2d: idle\n", slot)
			continue
		}
		el := greedy.EdgeList{N: 2 * ports, Edges: demand}

		// One maximal matching = one crossbar configuration. The seed
		// mixes in the slot number so different slots use different
		// priorities, but each slot is still fully deterministic.
		res := greedy.MaximalMatchingEdges(el, greedy.WithSeed(seed+uint64(slot)))

		// Forward one packet per matched pair.
		for _, pair := range res.Pairs {
			in, out := int(pair.U), int(pair.V)-ports
			voq[in][out]--
			totalForwarded++
		}
		backlog := 0
		for i := 0; i < ports; i++ {
			for o := 0; o < ports; o++ {
				backlog += voq[i][o]
			}
		}
		fmt.Printf("slot %2d: arrivals=%3d matched=%3d/%d backlog=%4d\n",
			slot, arrived, res.Size(), ports, backlog)
	}
	fmt.Printf("throughput: forwarded %d of %d arrived packets (%.1f%%)\n",
		totalForwarded, totalArrived, 100*float64(totalForwarded)/float64(totalArrived))
	fmt.Println("a maximal matching guarantees no input and output both idle while traffic waits")
}
