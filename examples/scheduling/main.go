// Scheduling: the paper's motivating application for MIS — "if the
// vertices represent tasks and each edge represents the constraint that
// two tasks cannot run in parallel, the MIS finds a maximal set of tasks
// to run in parallel."
//
// This example builds a synthetic task system in which tasks conflict
// when they touch a shared resource, then schedules it into time slots
// by repeatedly extracting a maximal independent set of the remaining
// conflict graph (greedy coloring by MIS layers). Because the MIS is the
// deterministic lexicographically-first one, the schedule is
// reproducible bit-for-bit at any thread count: a scheduler you can
// debug.
package main

import (
	"fmt"

	greedy "repro"
	"repro/internal/rng"
)

const (
	numTasks     = 20_000
	numResources = 4_000
	usesPerTask  = 3
	seed         = 2024
)

func main() {
	// Each task grabs a few resources; two tasks conflict when they
	// share one. (A classic dining-philosophers-at-scale workload.)
	x := rng.NewXoshiro256(seed)
	resources := make([][]int32, numResources)
	for task := 0; task < numTasks; task++ {
		for k := 0; k < usesPerTask; k++ {
			r := x.Intn(numResources)
			resources[r] = append(resources[r], int32(task))
		}
	}
	var conflicts []greedy.Edge
	for _, holders := range resources {
		for i := 0; i < len(holders); i++ {
			for j := i + 1; j < len(holders); j++ {
				if holders[i] != holders[j] {
					conflicts = append(conflicts, greedy.Edge{U: holders[i], V: holders[j]})
				}
			}
		}
	}
	g, err := greedy.NewGraph(numTasks, conflicts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("task system: %d tasks, %d pairwise conflicts, max conflicts per task %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Schedule: repeatedly run tasks that have no earlier conflicting
	// neighbor. Each round is one MIS of the remaining subgraph; re-use
	// one global priority order so the whole schedule is a pure function
	// of (tasks, seed).
	remaining := make([]bool, numTasks)
	for i := range remaining {
		remaining[i] = true
	}
	left := numTasks
	slot := 0
	cur := g
	// idOf maps current-subgraph vertex ids back to original task ids.
	idOf := make([]int32, numTasks)
	for i := range idOf {
		idOf[i] = int32(i)
	}
	for left > 0 {
		slot++
		res := greedy.MaximalIndependentSet(cur, greedy.WithSeed(seed+uint64(0)))
		ran := 0
		var keep []int32
		for v := 0; v < cur.NumVertices(); v++ {
			if res.InSet[v] {
				remaining[idOf[v]] = false
				ran++
			} else {
				keep = append(keep, int32(v))
			}
		}
		left -= ran
		fmt.Printf("slot %2d: ran %5d tasks, %5d remain\n", slot, ran, left)
		if left == 0 {
			break
		}
		cur, idOf = subgraphRemap(cur, keep, idOf)
	}
	fmt.Printf("schedule complete in %d slots (vs %d max-conflicts+1 upper bound)\n",
		slot, g.MaxDegree()+1)
	fmt.Println("re-running produces the identical schedule at any GOMAXPROCS — try it.")
}

// subgraphRemap builds the induced subgraph on keep (ids in cur) and
// composes the id mapping back to original task ids.
func subgraphRemap(cur *greedy.Graph, keep []int32, idOf []int32) (*greedy.Graph, []int32) {
	inKeep := make([]int32, cur.NumVertices())
	for i := range inKeep {
		inKeep[i] = -1
	}
	for i, v := range keep {
		inKeep[v] = int32(i)
	}
	var edges []greedy.Edge
	for _, v := range keep {
		for _, u := range cur.Neighbors(v) {
			if u > v && inKeep[u] != -1 {
				edges = append(edges, greedy.Edge{U: inKeep[v], V: inKeep[u]})
			}
		}
	}
	sub, err := greedy.NewGraph(len(keep), edges)
	if err != nil {
		panic(err)
	}
	newID := make([]int32, len(keep))
	for i, v := range keep {
		newID[i] = idOf[v]
	}
	return sub, newID
}
