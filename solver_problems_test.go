package greedy_test

import (
	"context"
	"errors"
	"testing"

	greedy "repro"
)

// TestSolverReuseAcrossProblems cycles ONE pooled Solver through all
// five problems, twice, comparing every run against a fresh solver:
// the pooled buffers (engine window/outcome plus each problem's state
// arrays) must carry no state across problem kinds.
func TestSolverReuseAcrossProblems(t *testing.T) {
	g := greedy.RandomGraph(8_000, 40_000, 23)
	el := g.EdgeList()
	sys := greedy.HittingSystemFromEdges(el)
	ctx := context.Background()
	s := greedy.NewSolver(greedy.WithSeed(4))
	fresh := func() *greedy.Solver { return greedy.NewSolver(greedy.WithSeed(4)) }

	for cycle := 0; cycle < 2; cycle++ {
		mis, err := s.MIS(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		wantMIS, err := fresh().MIS(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !mis.Equal(wantMIS) || mis.Stats != wantMIS.Stats {
			t.Fatalf("cycle %d: MIS on shared solver diverged", cycle)
		}

		col, err := s.Coloring(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		wantCol, err := fresh().Coloring(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !col.Equal(wantCol) || col.Stats != wantCol.Stats {
			t.Fatalf("cycle %d: coloring on shared solver diverged", cycle)
		}
		if err := greedy.VerifyColoring(g, col.Colors); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}

		mm, err := s.MM(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		wantMM, err := fresh().MM(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		if !mm.Equal(wantMM) || mm.Stats != wantMM.Stats {
			t.Fatalf("cycle %d: MM on shared solver diverged", cycle)
		}

		hs, err := s.HittingSet(ctx, sys)
		if err != nil {
			t.Fatal(err)
		}
		wantHS, err := fresh().HittingSet(ctx, sys)
		if err != nil {
			t.Fatal(err)
		}
		if !hs.Equal(wantHS) || hs.Stats != wantHS.Stats {
			t.Fatalf("cycle %d: hitting set on shared solver diverged", cycle)
		}
		if err := greedy.VerifyHittingSet(sys, hs.InSet); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}

		sf, err := s.SF(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		wantSF, err := fresh().SF(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		if !sf.Equal(wantSF) || sf.Stats != wantSF.Stats {
			t.Fatalf("cycle %d: SF on shared solver diverged", cycle)
		}
	}
}

// TestSolverCrossProblemAllocsFlat pins the pooling contract across
// problem kinds: after one warmup cycle through all five problems, a
// further cycle allocates strictly less than fresh solvers do, and
// repeated warm cycles stay flat (the buffers have reached their
// steady-state sizes — no problem regrows another problem's arrays).
func TestSolverCrossProblemAllocsFlat(t *testing.T) {
	g := greedy.RandomGraph(20_000, 100_000, 29)
	el := g.EdgeList()
	sys := greedy.HittingSystemFromEdges(el)
	ctx := context.Background()

	cycle := func(s *greedy.Solver) {
		if _, err := s.MIS(ctx, g); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Coloring(ctx, g); err != nil {
			t.Fatal(err)
		}
		if _, err := s.MM(ctx, el); err != nil {
			t.Fatal(err)
		}
		if _, err := s.HittingSet(ctx, sys); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SF(ctx, el); err != nil {
			t.Fatal(err)
		}
	}

	freshAllocs := testing.AllocsPerRun(3, func() { cycle(greedy.NewSolver()) })

	s := greedy.NewSolver()
	cycle(s) // warmup sizes every pooled buffer
	warm1 := testing.AllocsPerRun(3, func() { cycle(s) })
	warm2 := testing.AllocsPerRun(3, func() { cycle(s) })

	if !(warm1 < freshAllocs) {
		t.Errorf("warm cross-problem cycle allocates %.0f, fresh %.0f; want strictly less", warm1, freshAllocs)
	}
	// Flat: later cycles must not keep growing buffers. A small slack
	// absorbs scheduler-dependent goroutine allocations in the parallel
	// runtime.
	if warm2 > warm1+8 {
		t.Errorf("warm cycle allocations grew: %.0f then %.0f", warm1, warm2)
	}
	t.Logf("cross-problem allocs/cycle: fresh=%.0f warm1=%.0f warm2=%.0f", freshAllocs, warm1, warm2)
}

// The new facades report configuration errors through sentinels, like
// the existing problems.
func TestColoringAndHittingSetErrors(t *testing.T) {
	g := greedy.RandomGraph(200, 800, 1)
	sys := greedy.HittingSystemFromEdges(g.EdgeList())
	ctx := context.Background()
	s := greedy.NewSolver()

	if _, err := s.Coloring(ctx, g, greedy.WithAlgorithm(greedy.AlgoRootSet)); !errors.Is(err, greedy.ErrColoringAlgorithm) {
		t.Errorf("coloring/rootset returned %v, want ErrColoringAlgorithm", err)
	}
	if _, err := s.Coloring(ctx, g, greedy.WithDynamic()); !errors.Is(err, greedy.ErrDynamicUnsupported) {
		t.Errorf("dynamic coloring returned %v, want ErrDynamicUnsupported", err)
	}
	if _, err := s.HittingSet(ctx, sys, greedy.WithAlgorithm(greedy.AlgoLuby)); !errors.Is(err, greedy.ErrHittingSetAlgorithm) {
		t.Errorf("hittingset/luby returned %v, want ErrHittingSetAlgorithm", err)
	}
	if _, err := s.HittingSet(ctx, sys, greedy.WithDynamic()); !errors.Is(err, greedy.ErrDynamicUnsupported) {
		t.Errorf("dynamic hitting set returned %v, want ErrDynamicUnsupported", err)
	}
	bad := greedy.NewRandomOrder(7, 1)
	if _, err := s.Coloring(ctx, g, greedy.WithOrder(bad)); !errors.Is(err, greedy.ErrOrderSize) {
		t.Errorf("mismatched coloring order returned %v, want ErrOrderSize", err)
	}
	if _, err := s.HittingSet(ctx, sys, greedy.WithOrder(bad)); !errors.Is(err, greedy.ErrOrderSize) {
		t.Errorf("mismatched hitting set order returned %v, want ErrOrderSize", err)
	}
}

// WeightedOrder realizes weighted greedy on any problem: the highest
// weight gets rank 0, ties break pseudo-randomly by seed, and running
// a prefix algorithm under it reproduces its own sequential scan.
func TestWeightedOrderGreedy(t *testing.T) {
	g := greedy.RandomGraph(2_000, 8_000, 31)
	n := g.NumVertices()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(i % 17)
	}
	ord := greedy.WeightedOrder(weights, 99)

	// Highest-weight vertices come first; within a weight class the seed
	// decides, so a different seed permutes the class internally.
	prev := weights[ord.Order[0]]
	for _, v := range ord.Order[1:] {
		if weights[v] > prev {
			t.Fatalf("weighted order not descending: %g after %g", weights[v], prev)
		}
		prev = weights[v]
	}
	other := greedy.WeightedOrder(weights, 100)
	same := true
	for r := range ord.Order {
		if ord.Order[r] != other.Order[r] {
			same = false
			break
		}
	}
	if same {
		t.Error("tiebreak seed had no effect on equal-weight ranks")
	}

	ctx := context.Background()
	s := greedy.NewSolver()
	seq, err := s.MIS(ctx, g, greedy.WithOrder(ord), greedy.WithAlgorithm(greedy.AlgoSequential))
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.MIS(ctx, g, greedy.WithOrder(ord))
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(seq) {
		t.Error("prefix MIS under a weighted order differs from its sequential scan")
	}
	colSeq, err := s.Coloring(ctx, g, greedy.WithOrder(ord), greedy.WithAlgorithm(greedy.AlgoSequential))
	if err != nil {
		t.Fatal(err)
	}
	colPar, err := s.Coloring(ctx, g, greedy.WithOrder(ord))
	if err != nil {
		t.Fatal(err)
	}
	if !colPar.Equal(colSeq) {
		t.Error("prefix coloring under a weighted order differs from its sequential scan")
	}
}
