package engine_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/parallel"
	"repro/internal/rng"
)

const maxRank = int32(1<<31 - 1)

// residueProblem is a minimal reservation-based Problem: item i belongs
// to class i%k, and the earliest-priority item of each class commits
// while every other member drops — the toy analogue of the MIS/MM
// write-min pattern, exercising all three phases (Check bids, Commit
// resolves the winning bidder, Reset clears the bids).
type residueProblem struct {
	k      int32
	rank   []int32 // item -> priority rank
	owner  []int32 // class -> committed rank, maxRank while unowned
	reserv []int32 // class -> this round's write-min bid
	result []int32 // item -> final outcome code
}

func newResidueProblem(n int, k int32, rank []int32) *residueProblem {
	p := &residueProblem{k: k, rank: rank,
		owner:  make([]int32, k),
		reserv: make([]int32, k),
		result: make([]int32, n),
	}
	for c := range p.owner {
		p.owner[c] = maxRank
		p.reserv[c] = maxRank
	}
	return p
}

func (p *residueProblem) Check(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		id := act[i]
		cls := id % p.k
		if atomic.LoadInt32(&p.owner[cls]) < p.rank[id] {
			outcome[i] = engine.Dropped
			p.result[id] = engine.Dropped
			continue
		}
		parallel.WriteMin32(&p.reserv[cls], p.rank[id])
	}
	return int64(hi - lo)
}

func (p *residueProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != engine.Undecided {
			continue
		}
		id := act[i]
		cls := id % p.k
		if atomic.LoadInt32(&p.reserv[cls]) == p.rank[id] {
			atomic.StoreInt32(&p.owner[cls], p.rank[id])
			outcome[i] = engine.Committed
			p.result[id] = engine.Committed
		}
	}
	return 0
}

func (p *residueProblem) Reset(act, outcome []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.StoreInt32(&p.reserv[act[i]%p.k], maxRank)
	}
}

// sequentialResidue is the oracle: scan in rank order, first item of
// each class wins.
func sequentialResidue(n int, k int32, order []int32) []int32 {
	result := make([]int32, n)
	taken := make([]bool, k)
	for _, id := range order {
		if cls := id % k; !taken[cls] {
			taken[cls] = true
			result[id] = engine.Committed
		} else {
			result[id] = engine.Dropped
		}
	}
	return result
}

func ranksOf(order []int32) []int32 { return rng.InversePerm(order) }

// The engine must produce the sequential greedy result for every window
// schedule and grain — on a problem with real cross-round retries (a
// class whose earliest member is late in rank order keeps its other
// members bidding and losing until the winner enters the window).
func TestRunMatchesSequentialEverySchedule(t *testing.T) {
	const n, k = 3000, 37
	order := rng.Perm(n, 7)
	rank := ranksOf(order)
	want := sequentialResidue(n, k, order)
	for _, opt := range []engine.Options{
		{PrefixSize: 1},
		{PrefixSize: 5, Grain: 2},
		{PrefixFrac: 0.01},
		{PrefixFrac: 0.3, Grain: 64},
		{PrefixFrac: 1},
		{},
		{Adaptive: true},
		{Adaptive: true, PrefixSize: 3},
		{Adaptive: true, PrefixFrac: 0.02, Grain: 5},
	} {
		p := newResidueProblem(n, k, rank)
		stats, err := engine.Run(context.Background(), order, p, opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		for id := range p.result {
			if p.result[id] != want[id] {
				t.Fatalf("opts %+v: item %d = %d, want %d", opt, id, p.result[id], want[id])
			}
		}
		if stats.Rounds <= 0 || stats.Attempts < int64(n) || stats.EdgeInspections <= 0 {
			t.Fatalf("opts %+v: implausible stats %+v", opt, stats)
		}
	}
}

// Thread-count independence: the same schedule at different GOMAXPROCS
// resolves identically (the paper's central operational claim, held by
// the engine for every Problem honoring the contract).
func TestRunThreadIndependent(t *testing.T) {
	const n, k = 5000, 11
	order := rng.Perm(n, 13)
	rank := ranksOf(order)
	want := sequentialResidue(n, k, order)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		p := newResidueProblem(n, k, rank)
		if _, err := engine.Run(context.Background(), order, p, engine.Options{PrefixFrac: 0.05, Grain: 3}); err != nil {
			t.Fatal(err)
		}
		for id := range p.result {
			if p.result[id] != want[id] {
				t.Fatalf("GOMAXPROCS=%d: item %d diverged", procs, id)
			}
		}
	}
}

// chainProblem resolves item v only after item v-1 has resolved, and
// leaves outcome slots UNTOUCHED to mean retry — the Problem style that
// depends on the engine re-zeroing its pooled outcome buffer every
// round. A stale nonzero value would silently drop a retried iterate.
type chainProblem struct {
	done      []int32
	committed atomic.Int64
}

func (p *chainProblem) Check(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		v := act[i]
		if v == 0 || atomic.LoadInt32(&p.done[v-1]) == 1 {
			outcome[i] = engine.Committed
		}
	}
	return int64(hi - lo)
}

func (p *chainProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] == engine.Committed {
			atomic.StoreInt32(&p.done[act[i]], 1)
			p.committed.Add(1)
		}
	}
	return 0
}

// Reusing one Workspace across runs must not leak the previous run's
// outcomes into the next: the second run here retries most iterates
// many times (reverse order = one resolution per round at the chain
// head), so any stale Committed slot from run one would break it.
func TestWorkspaceReuseRezeroesOutcomes(t *testing.T) {
	const n = 300
	ws := new(engine.Workspace)
	run := func(order []int32, opt engine.Options) *chainProblem {
		p := &chainProblem{done: make([]int32, n)}
		opt.Workspace = ws
		if _, err := engine.Run(context.Background(), order, p, opt); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Run 1 resolves everything in one round (identity order, full
	// window), leaving the pooled outcome buffer all-Committed.
	first := run(rng.Identity(n), engine.Options{PrefixFrac: 1})
	if got := first.committed.Load(); got != n {
		t.Fatalf("run 1 committed %d of %d", got, n)
	}
	// Run 2 starts from the tail of the chain: every iterate except the
	// head must stay Undecided for many rounds.
	rev := make([]int32, n)
	for i := range rev {
		rev[i] = int32(n - 1 - i)
	}
	second := run(rev, engine.Options{PrefixFrac: 1})
	if got := second.committed.Load(); got != n {
		t.Fatalf("run 2 committed %d of %d (stale pooled outcomes?)", got, n)
	}
	for v, d := range second.done {
		if d != 1 {
			t.Fatalf("run 2 left item %d unresolved", v)
		}
	}
}

// The per-round observer sees a consistent view: attempted sums to
// Stats.Attempts, resolved sums to n, prefix never exceeds the final
// Stats.PrefixSize, and rounds arrive in order.
func TestOnRoundStatsConsistent(t *testing.T) {
	const n, k = 2000, 17
	order := rng.Perm(n, 3)
	p := newResidueProblem(n, k, ranksOf(order))
	var attempted, resolved, inspections int64
	lastRound := int64(0)
	maxPrefix := 0
	stats, err := engine.Run(context.Background(), order, p, engine.Options{Adaptive: true, OnRound: func(rs engine.RoundStat) {
		if rs.Round != lastRound+1 {
			t.Fatalf("round %d after %d", rs.Round, lastRound)
		}
		lastRound = rs.Round
		attempted += int64(rs.Attempted)
		resolved += int64(rs.Resolved)
		inspections += rs.Inspections
		if rs.Prefix > maxPrefix {
			maxPrefix = rs.Prefix
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if lastRound != stats.Rounds {
		t.Fatalf("observer saw %d rounds, stats %d", lastRound, stats.Rounds)
	}
	if attempted != stats.Attempts {
		t.Fatalf("observer attempted %d, stats %d", attempted, stats.Attempts)
	}
	if resolved != n {
		t.Fatalf("observer resolved %d, want %d", resolved, n)
	}
	if inspections != stats.EdgeInspections {
		t.Fatalf("observer inspections %d, stats %d", inspections, stats.EdgeInspections)
	}
	if maxPrefix > stats.PrefixSize {
		t.Fatalf("observer max prefix %d exceeds stats %d", maxPrefix, stats.PrefixSize)
	}
}

// Cancellation aborts between rounds with ctx.Err().
func TestRunCancel(t *testing.T) {
	const n = 1000
	order := rng.Perm(n, 1)
	p := newResidueProblem(n, 7, ranksOf(order))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.Run(ctx, order, p, engine.Options{}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// PrefixFor / AdaptiveInitial / CeilFrac edge cases.
func TestWindowResolution(t *testing.T) {
	cases := []struct {
		opt  engine.Options
		n    int
		want int
	}{
		{engine.Options{PrefixSize: 10}, 100, 10},
		{engine.Options{PrefixSize: 10}, 5, 5},     // clamp to n
		{engine.Options{PrefixFrac: 0.5}, 10, 5},   // ceil(0.5*10)
		{engine.Options{PrefixFrac: 0.001}, 10, 1}, // floor at 1
		{engine.Options{}, 1000, engine.CeilFrac(engine.DefaultPrefixFrac, 1000)},
		{engine.Options{PrefixSize: 3, PrefixFrac: 0.9}, 100, 3}, // size wins
	}
	for _, c := range cases {
		if got := c.opt.PrefixFor(c.n); got != c.want {
			t.Errorf("PrefixFor(%+v, %d) = %d, want %d", c.opt, c.n, got, c.want)
		}
	}
	if got := (engine.Options{}).AdaptiveInitial(1 << 20); got != engine.AdaptiveStartWindow {
		t.Errorf("AdaptiveInitial default = %d, want %d", got, engine.AdaptiveStartWindow)
	}
	if got := (engine.Options{}).AdaptiveInitial(10); got != 10 {
		t.Errorf("AdaptiveInitial clamp = %d, want 10", got)
	}
	if got := (engine.Options{PrefixSize: 64}).AdaptiveInitial(1 << 20); got != 64 {
		t.Errorf("AdaptiveInitial explicit = %d, want 64", got)
	}
}

// An empty order resolves immediately with zero rounds.
func TestRunEmpty(t *testing.T) {
	p := newResidueProblem(0, 1, nil)
	stats, err := engine.Run(context.Background(), nil, p, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.Attempts != 0 {
		t.Fatalf("empty run produced stats %+v", stats)
	}
}
