package engine

import "fmt"

// Stats records machine-independent cost measures of a run, the
// quantities plotted by the paper's Figures 1 and 2.
type Stats struct {
	// Rounds is the number of outer-loop rounds: prefixes taken by the
	// prefix-based algorithm (one per round, failed iterates retried),
	// steps of the step-synchronous algorithms, or rounds of Luby. The
	// paper uses it as the (inverse) parallelism estimate in Figures
	// 1(b)/1(e). A sequential run has Rounds == number of items.
	Rounds int64
	// Attempts is the total number of iterate-processings summed over
	// rounds, the paper's "total work" (Figures 1(a)/1(d)): a sequential
	// run attempts each item exactly once, so Attempts == items; parallel
	// runs retry failed iterates and so do more work.
	Attempts int64
	// EdgeInspections counts neighbor-status reads, a finer-grained work
	// measure reported alongside Attempts.
	EdgeInspections int64
	// PrefixSize is the resolved prefix size used by prefix-based runs
	// (0 for the other algorithms). Adaptive runs report the largest
	// window any round actually used (a growth decision after the final
	// round is not reported — no round ran at that size).
	PrefixSize int
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d attempts=%d inspections=%d prefix=%d",
		s.Rounds, s.Attempts, s.EdgeInspections, s.PrefixSize)
}

// RoundStat describes one completed round of a round-synchronous
// algorithm, passed to Options.OnRound. Summed over a run, Attempted is
// the paper's total work (Figure 1(a)/1(d)), the number of callbacks is
// Rounds (Figure 1(b)/1(e)), and Inspections is the edge-inspection
// work measure — so an observer sees the paper's Figure 1 quantities
// accumulate live.
type RoundStat struct {
	// Round is the 1-based round index.
	Round int64
	// Prefix is the window size of this round: the maximum number of
	// iterates attempted (0 for algorithms without a prefix window).
	// Fixed-prefix runs report the same value every round; adaptive
	// runs report the controller's current window, so an observer
	// watches the schedule evolve.
	Prefix int
	// Attempted is the number of iterates processed this round.
	Attempted int
	// Resolved is the number of iterates that reached their final
	// status (accepted into the solution or ruled out) this round.
	Resolved int
	// Inspections is the number of neighbor/endpoint status reads
	// performed this round.
	Inspections int64
}
