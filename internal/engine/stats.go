package engine

import "fmt"

// Stats records machine-independent cost measures of a run, the
// quantities plotted by the paper's Figures 1 and 2.
type Stats struct {
	// Rounds is the number of outer-loop rounds: prefixes taken by the
	// prefix-based algorithm (one per round, failed iterates retried),
	// steps of the step-synchronous algorithms, or rounds of Luby. The
	// paper uses it as the (inverse) parallelism estimate in Figures
	// 1(b)/1(e). A sequential run has Rounds == number of items.
	Rounds int64
	// Attempts is the total number of iterate-processings summed over
	// rounds, the paper's "total work" (Figures 1(a)/1(d)): a sequential
	// run attempts each item exactly once, so Attempts == items; parallel
	// runs retry failed iterates and so do more work.
	Attempts int64
	// EdgeInspections counts neighbor-status reads, a finer-grained work
	// measure reported alongside Attempts.
	EdgeInspections int64
	// PrefixSize is the resolved prefix size used by prefix-based runs
	// (0 for the other algorithms). Adaptive runs report the largest
	// window any round actually used (a growth decision after the final
	// round is not reported — no round ran at that size).
	PrefixSize int
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d attempts=%d inspections=%d prefix=%d",
		s.Rounds, s.Attempts, s.EdgeInspections, s.PrefixSize)
}

// RoundStat describes one completed round of a round-synchronous
// algorithm, passed to Options.OnRound. Summed over a run, Attempted is
// the paper's total work (Figure 1(a)/1(d)), the number of callbacks is
// Rounds (Figure 1(b)/1(e)), and Inspections is the edge-inspection
// work measure — so an observer sees the paper's Figure 1 quantities
// accumulate live.
type RoundStat struct {
	// Round is the 1-based round index.
	Round int64
	// Prefix is the window size of this round: the maximum number of
	// iterates attempted (0 for algorithms without a prefix window).
	// Fixed-prefix runs report the same value every round; adaptive
	// runs report the controller's current window, so an observer
	// watches the schedule evolve.
	Prefix int
	// Attempted is the number of iterates processed this round.
	Attempted int
	// Resolved is the number of iterates that reached their final
	// status (accepted into the solution or ruled out) this round.
	Resolved int
	// Inspections is the number of neighbor/endpoint status reads
	// performed this round.
	Inspections int64
	// RetryTail is the number of attempted iterates left Undecided this
	// round — the retry set carried into the next round (Attempted -
	// Resolved for prefix runs). A persistently large tail relative to
	// the window is the signature of a hot dependency chain.
	RetryTail int
	// CheckNS/CommitNS/ResetNS/SlideNS decompose the round's wall time
	// by phase, in nanoseconds: the check fork-join, the commit
	// fork-join, the reservation-reset fork-join (0 for problems without
	// one), and everything else — window refill, outcome fill, the
	// pack-and-slide of the retry tail, and adaptive-controller
	// bookkeeping. All four are 0 unless Options.Clock is set; when it
	// is, consecutive rounds tile the loop's span with no gaps, so the
	// per-phase sums over a run reconstruct where the loop's wall time
	// went (the work/span decomposition the paper's Figure 1 analysis
	// reasons about).
	CheckNS  int64
	CommitNS int64
	ResetNS  int64
	SlideNS  int64
}
