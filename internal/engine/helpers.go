package engine

import "math"

// Pooled-buffer and window-arithmetic helpers, the single source of
// truth the algorithm packages share (they used to carry per-package
// copies).

// Grow32 returns *buf resized to n int32s, reallocating only when the
// pooled capacity is insufficient. Contents are unspecified: callers
// must reinitialize the slice (Fill32 or full overwrite) before reads.
func Grow32(buf *[]int32, n int) []int32 {
	s := *buf
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	*buf = s
	return s
}

// Fill32 sets every element of s to v.
func Fill32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

// GrowActive returns an empty int32 slice with capacity at least n
// backed by *buf, for frontier/window arrays rebuilt by appends.
func GrowActive(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, 0, n)
	}
	return (*buf)[:0]
}

// DefaultPrefixFrac is the default prefix fraction, chosen near the
// running-time optimum the paper observes (prefix/input between 1e-3
// and 1e-2 on both inputs).
const DefaultPrefixFrac = 0.005

// CeilFrac returns ⌈frac·n⌉ with integer rounding semantics: a decimal
// fraction whose binary representation lands the product a hair above
// an integer (0.005·1000 = 5.000000000000001 in float64) still yields
// that integer, not one past it. The product is nudged down by one part
// in 10^12 — orders of magnitude above the representation error of any
// (frac, n) pair in range, orders of magnitude below one iterate —
// before the ceiling, so the result is the documented value on every
// platform instead of whatever int truncation of the raw product gives.
// frac ≥ 1 returns n; frac ≤ 0 or n ≤ 0 returns 0.
func CeilFrac(frac float64, n int) int {
	if n <= 0 || frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	return int(math.Ceil(frac * float64(n) * (1 - 1e-12)))
}
