// Package engine is the repo's single implementation of the paper's
// prefix-based speculative round loop — the pattern every greedy
// problem here shares: take the earliest unresolved iterates in
// priority-rank order as the active window, check each against the
// state left by strictly earlier-priority iterates, commit the winners,
// and retry the losers next round together with newly admitted
// iterates. MIS, maximal matching, spanning forest (strict and
// relaxed), greedy coloring and greedy hitting set all ride this one
// loop; what differs between them — how an iterate is checked and what
// committing it writes — is supplied through the Problem interface,
// exactly the factoring of parlaylib's speculative_for.
//
// The engine owns everything the four formerly hand-specialized loops
// duplicated: window refill and the shrink-tail slide that keeps the
// active set equal to the earliest unresolved iterates in rank order,
// the two-phase fork-join execution over parallel.ForRange, adaptive
// window control (AdaptiveController), per-round context checks,
// pooled window/outcome buffers, and the per-round observer hook.
//
// Determinism contract: a Problem's Check phase may read only state
// written in previous rounds (plus per-iterate reservation bids made
// through the parallel package's atomic write-min helpers), and its
// Commit phase may write only state no other in-flight iterate writes.
// Under that contract the committed solution is a pure function of the
// priority order — identical for every window schedule, grain and
// GOMAXPROCS — which is the paper's Theorem 4.5 argument and the
// property the service layer's idempotency keys rely on.
package engine

import (
	"context"
	"sync/atomic"

	"repro/internal/parallel"
)

// Per-iterate outcome codes. The engine itself gives meaning only to
// Undecided: an iterate whose outcome is still Undecided after the
// commit phase is retried next round; any other value resolves it.
// Committed and Dropped are the conventional values (aligned with the
// in/out status codes of the problem packages); a Problem may store any
// nonzero payload instead — greedy coloring records color+1 — as long
// as zero keeps meaning "retry".
const (
	Undecided int32 = 0
	Committed int32 = 1
	Dropped   int32 = 2
)

// A Problem supplies the two phases of one speculative round over a
// chunk [lo, hi) of the active window act. Both phases run under
// parallel.ForRange, so an implementation is called once per chunk —
// one dynamic dispatch per grain-sized block, not per iterate — and
// runs concurrently with itself on disjoint chunks. The fork-join
// barrier between the phases is the only synchronization the engine
// provides; it is also all the round-synchronous algorithms need.
//
// Check decides iterates against the state of previous rounds: for
// each i in [lo, hi) it may write outcome[i] (leave Undecided to
// retry) and place reservation bids, but must not write state another
// active iterate's Check reads this round. Commit applies the
// decisions: it may write the problem's solution state for iterates it
// resolves, and must set outcome[i] nonzero for every iterate resolved
// this round. Both return the number of neighbor/endpoint inspections
// performed, the paper's fine-grained work measure.
type Problem interface {
	Check(act, outcome []int32, lo, hi int) int64
	Commit(act, outcome []int32, lo, hi int) int64
}

// A Resetter is implemented by reservation-based problems that must
// clear this round's bids after the commit phase so stale bids cannot
// block future rounds. Reset runs as a third fork-join phase.
type Resetter interface {
	Reset(act, outcome []int32, lo, hi int)
}

// Options configures one engine run; the zero value runs the default
// fixed window (DefaultPrefixFrac of the input) at the default grain.
type Options struct {
	// PrefixSize fixes the number of iterates examined per round. If
	// zero, PrefixFrac is used instead.
	PrefixSize int
	// PrefixFrac sets the window as ⌈PrefixFrac·n⌉ (see CeilFrac); if
	// both are zero, DefaultPrefixFrac applies.
	PrefixFrac float64
	// Adaptive replaces the fixed window with the measured
	// doubling/halving schedule of AdaptiveController. An explicit
	// PrefixSize/PrefixFrac seeds the initial window; otherwise runs
	// start at AdaptiveStartWindow. The schedule is a deterministic
	// function of the per-round counters, so adaptive runs remain
	// bit-identical across machines and reruns.
	Adaptive bool
	// Grain is the parallel-loop grain; 0 means parallel.DefaultGrain.
	Grain int
	// OnRound, if non-nil, is called after every round with that
	// round's statistics, on the round loop's goroutine.
	OnRound func(RoundStat)
	// Clock, if non-nil, enables per-phase wall-time attribution: it is
	// read at every phase boundary and the deltas are reported through
	// RoundStat's CheckNS/CommitNS/ResetNS/SlideNS fields. It must be a
	// monotonic nanosecond clock. The engine itself never reads wall
	// time (results are pure functions of the order, and this package is
	// in nodeterminism's scope) — the caller injects the clock, and only
	// telemetry ever sees its values. nil keeps the dark path
	// byte-identical: no clock reads, no extra work beyond one nil test
	// per phase.
	Clock func() int64
	// Workspace, if non-nil, supplies the pooled window/outcome buffers
	// reused across runs. nil allocates fresh buffers.
	Workspace *Workspace
}

// PrefixFor resolves the fixed window size the options denote for an
// input of n iterates: PrefixSize, else ⌈PrefixFrac·n⌉, else
// ⌈DefaultPrefixFrac·n⌉, clamped to [1, n].
func (o Options) PrefixFor(n int) int {
	p := o.PrefixSize
	if p <= 0 {
		frac := o.PrefixFrac
		if frac <= 0 {
			frac = DefaultPrefixFrac
		}
		p = CeilFrac(frac, n)
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// AdaptiveInitial resolves the initial window of an adaptive run: an
// explicit PrefixSize or PrefixFrac seeds the controller (the fixed
// configuration becomes the starting point), otherwise the run starts
// at AdaptiveStartWindow, clamped to [1, n].
func (o Options) AdaptiveInitial(n int) int {
	if o.PrefixSize > 0 || o.PrefixFrac > 0 {
		return o.PrefixFor(n)
	}
	w := AdaptiveStartWindow
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) grain() int {
	if o.Grain <= 0 {
		return parallel.DefaultGrain
	}
	return o.Grain
}

// Workspace holds the engine's pooled per-run buffers (the active
// window and the per-iterate outcome array), reused across runs on
// same-or-smaller inputs. Problem-side state (statuses, mates,
// reservations) lives in the problem packages' own workspaces. Not
// safe for concurrent use; the zero value is ready.
type Workspace struct {
	active  []int32
	outcome []int32
}

// Run executes the speculative-prefix round loop over the iterates of
// order (a rank→iterate array: order[r] is the iterate with priority
// rank r) until all of them are resolved, and returns the run's cost
// counters. ctx is checked once per round — the hot phases never see
// it — so a cancelled context aborts within one round and returns
// ctx.Err().
func Run(ctx context.Context, order []int32, p Problem, opt Options) (Stats, error) {
	n := len(order)
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	// The window is the per-round cap on attempted iterates: the fixed
	// prefix, or — under adaptive scheduling — whatever the controller
	// settled on after the previous round. Any window sequence yields
	// the same committed solution for a deterministic Problem: the
	// active set always holds the earliest unresolved iterates in rank
	// order, and Check only commits iterates whose earlier-priority
	// dependencies are resolved.
	window := opt.PrefixFor(n)
	grain := opt.grain()
	var ctrl *AdaptiveController
	if opt.Adaptive {
		ctrl = NewAdaptiveController(opt.AdaptiveInitial(n), AdaptiveGrowCap(n), n)
		window = ctrl.Window()
	}
	maxWindow := window

	stats := Stats{}
	active := GrowActive(&ws.active, window)
	// Hand grown frontier storage back to the workspace: adaptive
	// windows outgrow the initial capacity by appends, which would
	// otherwise leave the pooled buffer at its original size.
	defer func() { ws.active = active[:0] }()
	var outcome []int32
	resetter, hasReset := p.(Resetter)
	nextRank := 0
	resolved := 0
	var inspections atomic.Int64
	var prevInspections int64
	// Phase profiling: tPrev carries the last clock reading across
	// phase boundaries, so consecutive deltas tile the clock's span with
	// no gaps — the inter-round work (OnRound callbacks, the ctx check,
	// window refill) lands in the next round's slide bucket rather than
	// vanishing. tPrev starts at the clock's epoch (solver entry, where
	// the facade constructs the clock), not at loop entry, so one-time
	// setup before the loop — priority-order derivation, workspace
	// growth — is charged to the first round's slide bucket and the
	// per-phase sums over a run reconstruct the run's wall time up to
	// result extraction, not just the loop's.
	clock := opt.Clock
	var tPrev int64

	for resolved < n {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// Refill the window with the earliest unresolved iterates.
		for len(active) < window && nextRank < n {
			active = append(active, order[nextRank])
			nextRank++
		}
		// A shrunken window attempts only the earliest unresolved
		// iterates; the tail of the active set waits for a later round.
		act := active
		if len(act) > window {
			act = act[:window]
		}
		roundWindow := window
		if roundWindow > maxWindow {
			maxWindow = roundWindow
		}
		stats.Rounds++
		stats.Attempts += int64(len(act))
		// The outcome array starts every round all-Undecided: problems
		// are entitled to leave a slot untouched to mean "retry", so
		// stale values from the previous round must not leak through the
		// pooled buffer.
		outcome = Grow32(&ws.outcome, len(act))
		Fill32(outcome, Undecided)

		var checkNS, commitNS, resetNS, slideNS int64
		if clock != nil {
			t := clock()
			slideNS = t - tPrev
			tPrev = t
		}

		// Check phase: decide each active iterate against the state of
		// previous rounds. The problem writes outcome[i] (and places
		// reservation bids); the fork-join barrier below makes those
		// writes visible to the commit phase.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			inspections.Add(p.Check(act, outcome, lo, hi))
		})
		if clock != nil {
			t := clock()
			checkNS = t - tPrev
			tPrev = t
		}

		// Commit phase: apply the decisions to the problem's state.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			inspections.Add(p.Commit(act, outcome, lo, hi))
		})
		if clock != nil {
			t := clock()
			commitNS = t - tPrev
			tPrev = t
		}

		// Reset phase (reservation-based problems only): clear this
		// round's bids.
		if hasReset {
			parallel.ForRange(len(act), grain, func(lo, hi int) {
				resetter.Reset(act, outcome, lo, hi)
			})
			if clock != nil {
				t := clock()
				resetNS = t - tPrev
				tPrev = t
			}
		}

		before := len(act)
		kept := parallel.PackInPlace(act, grain, func(i int) bool {
			return outcome[i] == Undecided
		})
		if len(act) < len(active) {
			// Slide the unattempted tail up against the kept retries;
			// both are rank-sorted and every kept retry precedes the
			// tail, so the active set stays the earliest unresolved
			// iterates in order.
			moved := copy(active[len(kept):], active[len(act):])
			active = active[:len(kept)+moved]
		} else {
			active = kept
		}
		resolvedThis := before - len(kept)
		resolved += resolvedThis
		cur := inspections.Load()
		if ctrl != nil {
			ctrl.Observe(before, resolvedThis, cur-prevInspections)
			window = ctrl.Window()
		}
		if clock != nil {
			t := clock()
			slideNS += t - tPrev
			tPrev = t
		}
		if opt.OnRound != nil {
			opt.OnRound(RoundStat{
				Round:       stats.Rounds,
				Prefix:      roundWindow,
				Attempted:   before,
				Resolved:    resolvedThis,
				Inspections: cur - prevInspections,
				RetryTail:   len(kept),
				CheckNS:     checkNS,
				CommitNS:    commitNS,
				ResetNS:     resetNS,
				SlideNS:     slideNS,
			})
		}
		prevInspections = cur
	}
	stats.PrefixSize = maxWindow
	stats.EdgeInspections = inspections.Load()
	return stats, nil
}
