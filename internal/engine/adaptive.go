package engine

import "repro/internal/parallel"

// Adaptive prefix scheduling: a per-run controller that resizes the
// prefix window between rounds of the prefix-based algorithms.
//
// The prefix size is the paper's central work/parallelism knob (Figure
// 1): small windows approach the sequential algorithm (no redundant
// work, n rounds), large windows approach Algorithm 2 (maximum
// parallelism, maximum retries). The paper finds fixed fractions
// between 1e-3 and 1e-2 near the running-time optimum, but the optimum
// drifts with graph structure and core count. The controller replaces
// the fixed fraction with a measured schedule in the style of Birn et
// al. (Efficient Parallel and External Matching): after every round it
// looks at the fraction of attempted iterates that resolved and at the
// edge-inspection cost per unit of progress, and doubles the window
// while acceptance is high, halves it when acceptance collapses or the
// marginal inspection cost explodes, always bounded by [1, n].
//
// Correctness is unaffected by any window schedule: the window only
// changes HOW MANY of the earliest unresolved iterates run in a round,
// never their relative order, and the prefix-based algorithms commit an
// iterate only when every earlier neighbor is resolved — so MIS and MM
// return the sequential greedy result for every schedule, exactly as
// they do for every fixed prefix (Theorem 4.5 does not use the prefix
// size, only the prefix-of-the-unresolved invariant). The schedule
// itself is deterministic: it is a pure function of the per-round
// (attempted, resolved, inspections) counters, which are identical at
// any thread count and grain, so adaptive runs remain bit-identical
// across machines and reruns — the property the service layer's
// idempotency keys rely on.

// Controller policy constants. The grow threshold is deliberately high:
// with acceptance ~e^(-d·δ/2) on a degree-d graph at window fraction δ,
// growing while ≥ 90% of attempts resolve caps redundant work at ~11%
// over sequential while still reaching windows well past the paper's
// fixed 0.005 sweet spot (fewer, fatter rounds — less barrier
// overhead).
const (
	// adaptiveGrowRatio is the resolved/attempted ratio at or above
	// which the window doubles.
	adaptiveGrowRatio = 0.90
	// adaptiveShrinkRatio is the ratio below which the window halves.
	adaptiveShrinkRatio = 0.50
	// adaptiveCostBrake halves the window whenever this round's
	// inspections-per-resolved exceeds the running average by this
	// factor, regardless of the acceptance ratio — the guard against
	// windows whose retries inflate edge-inspection work faster than
	// they retire iterates.
	adaptiveCostBrake = 2.0
	// adaptiveCostAlpha is the EWMA weight of the newest cost sample.
	adaptiveCostAlpha = 0.25
	// AdaptiveStartWindow is the initial window when no explicit
	// PrefixSize/PrefixFrac seeds the controller: one default grain
	// chunk, small enough that the doubling phase costs only
	// ~log2(optimum) cheap rounds.
	AdaptiveStartWindow = 256
	// AdaptiveSlackChunks caps window GROWTH at this many default-grain
	// chunks per processor. A round's window exists to feed the cores;
	// beyond a handful of chunks of slack per core, enlarging it buys
	// no additional parallelism while still paying redundant work and
	// cache pressure — measurably so at GOMAXPROCS=1, where the
	// uncapped controller happily doubles to the full input because
	// acceptance stays high (the paper's Figure 1 work curve is mild)
	// even though every retried iterate is pure loss on one core. The
	// cap makes the schedule parallelism-aware the same way the paper's
	// fixed sweet spot is machine-tuned, and it scales with the
	// machine: 8·P·256 is frac ~0.01 of a 200k-vertex input at P=1 and
	// the full paper band at 32 cores. It is computed from the DEFAULT
	// grain, not Options.Grain, so the schedule never depends on the
	// chunking knob; ratio-driven shrinking is never capped.
	AdaptiveSlackChunks = 8
)

// AdaptiveController resizes the prefix window of one run. It is not
// safe for concurrent use; the round loop calls it between rounds.
type AdaptiveController struct {
	window  int
	growCap int
	max     int
	cost    float64 // EWMA of inspections per resolved iterate
}

// NewAdaptiveController returns a controller starting at window
// initial, bounded by [1, max]; growth (but not the initial window,
// which an explicit prefix may pin higher, nor shrinking) stops at
// growCap.
func NewAdaptiveController(initial, growCap, max int) *AdaptiveController {
	if max < 1 {
		max = 1
	}
	if initial < 1 {
		initial = 1
	}
	if initial > max {
		initial = max
	}
	if growCap > max {
		growCap = max
	}
	if growCap < 1 {
		growCap = 1
	}
	return &AdaptiveController{window: initial, growCap: growCap, max: max}
}

// AdaptiveGrowCap returns the parallel-slack growth cap for an input
// of n items: adaptiveSlackChunks default-grain chunks per processor,
// clamped to [AdaptiveStartWindow, n]. Deterministic for a fixed
// GOMAXPROCS — the only machine knob the schedule reads.
func AdaptiveGrowCap(n int) int {
	//lint:allow nodeterminism the cap only bounds how fast the window may grow; the committed prefix is decided by the order alone, so the RESULT is identical at every processor count (verified by TestAdaptiveMISMatchesSequential)
	c := AdaptiveSlackChunks * parallel.Procs() * parallel.DefaultGrain
	if c < AdaptiveStartWindow {
		c = AdaptiveStartWindow
	}
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Window returns the window to use for the next round.
func (c *AdaptiveController) Window() int { return c.window }

// Observe feeds one completed round's counters into the controller and
// updates the window for the next round: double on high acceptance,
// halve on low acceptance or exploding marginal cost, clamp to
// [1, max]. Deterministic: equal inputs produce equal schedules.
func (c *AdaptiveController) Observe(attempted, resolved int, inspections int64) {
	if attempted <= 0 {
		return
	}
	ratio := float64(resolved) / float64(attempted)
	den := resolved
	if den < 1 {
		den = 1
	}
	cost := float64(inspections) / float64(den)
	switch {
	case c.cost > 0 && cost > adaptiveCostBrake*c.cost:
		c.window /= 2
	case ratio >= adaptiveGrowRatio && c.window < c.growCap:
		if c.window > c.growCap/2 {
			c.window = c.growCap
		} else {
			c.window *= 2
		}
	case ratio < adaptiveShrinkRatio:
		c.window /= 2
	}
	if c.window < 1 {
		c.window = 1
	}
	if c.window > c.max {
		c.window = c.max
	}
	if c.cost == 0 {
		c.cost = cost
	} else {
		c.cost += adaptiveCostAlpha * (cost - c.cost)
	}
}
