package graph

import "testing"

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.NumVertices() != 16 {
		t.Errorf("Q4 n = %d", g.NumVertices())
	}
	if g.NumEdges() != 32 { // n*d/2 = 16*4/2
		t.Errorf("Q4 m = %d, want 32", g.NumEdges())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(Vertex(v)) != 4 {
			t.Fatalf("Q4 degree(%d) = %d, want 4", v, g.Degree(Vertex(v)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if Hypercube(0).NumVertices() != 1 {
		t.Error("Q0 should be a single vertex")
	}
}

func TestHypercubeBipartite(t *testing.T) {
	// Q_d is bipartite by parity of popcount; no edge joins same-parity
	// vertices.
	g := Hypercube(5)
	parity := func(v Vertex) int {
		p := 0
		for x := v; x != 0; x &= x - 1 {
			p ^= 1
		}
		return p
	}
	for _, e := range g.Edges() {
		if parity(e.U) == parity(e.V) {
			t.Fatalf("edge %v joins same-parity vertices", e)
		}
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 4, 5)
	if g.NumVertices() != 60 {
		t.Errorf("n = %d", g.NumVertices())
	}
	// Edges: (x-1)yz + x(y-1)z + xy(z-1) = 2*4*5 + 3*3*5 + 3*4*4 = 40+45+48.
	if g.NumEdges() != 133 {
		t.Errorf("m = %d, want 133", g.NumEdges())
	}
	if g.MaxDegree() != 6 {
		t.Errorf("maxdeg = %d, want 6", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	// beta=0: pure ring lattice, exactly nk/2 edges, all degree k.
	g := WattsStrogatz(100, 4, 0, 1)
	if g.NumEdges() != 200 {
		t.Errorf("lattice m = %d, want 200", g.NumEdges())
	}
	for v := 0; v < 100; v++ {
		if g.Degree(Vertex(v)) != 4 {
			t.Fatalf("lattice degree(%d) = %d", v, g.Degree(Vertex(v)))
		}
	}
	// beta=0.3: still close to nk/2 edges (duplicates merged), valid.
	r := WattsStrogatz(500, 6, 0.3, 2)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() < 1400 || r.NumEdges() > 1500 {
		t.Errorf("rewired m = %d, want near 1500", r.NumEdges())
	}
	// Determinism.
	a, b := WattsStrogatz(200, 4, 0.5, 9), WattsStrogatz(200, 4, 0.5, 9)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("WattsStrogatz not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("WattsStrogatz not deterministic")
		}
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd k accepted")
		}
	}()
	WattsStrogatz(10, 3, 0.1, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// m = C(k+1,2) + (n-k-1)*k.
	want := 6 + (2000-4)*3
	if g.NumEdges() != want {
		t.Errorf("m = %d, want %d", g.NumEdges(), want)
	}
	// Heavy tail: max degree far above the mean.
	st := Stats(g)
	if float64(st.Max) < 5*st.Mean {
		t.Errorf("BA graph not skewed: max=%d mean=%.1f", st.Max, st.Mean)
	}
	// Connected by construction.
	if st.ConnectedComps != 1 {
		t.Errorf("BA graph has %d components", st.ConnectedComps)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(300, 2, 5)
	b := BarabasiAlbert(300, 2, 5)
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("BarabasiAlbert not deterministic")
		}
	}
}
