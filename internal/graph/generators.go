package graph

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Random returns a uniform sparse random graph with n vertices and m
// distinct undirected edges (the G(n,m) model). This is the paper's
// first experimental input ("a sparse random graph with 10^7 vertices
// and 5x10^7 edges"), here parameterized so the harness can scale it to
// the host machine. It panics if m exceeds the number of possible edges.
func Random(n, m int, seed uint64) *Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("graph: Random(%d, %d) requests more than %d possible edges", n, m, maxEdges))
	}
	if n <= 1 || m == 0 {
		return Empty(n)
	}
	x := rng.NewXoshiro256(seed)
	sample := func(count int, out []uint64) []uint64 {
		for i := 0; i < count; i++ {
			u := x.Int31n(int32(n))
			v := x.Int31n(int32(n))
			for v == u {
				v = x.Int31n(int32(n))
			}
			if u > v {
				u, v = v, u
			}
			out = append(out, uint64(u)*uint64(n)+uint64(v))
		}
		return out
	}
	keys := sample(m, make([]uint64, 0, m+m/16+64))
	keys = dedupSortedKeys(keys)
	for len(keys) < m {
		// Top up the shortfall caused by duplicate samples; for sparse
		// graphs this loop runs once or twice with tiny batches.
		short := m - len(keys)
		keys = sample(2*short+16, keys)
		keys = dedupSortedKeys(keys)
	}
	keys = keys[:m]
	return graphFromKeys(n, keys)
}

func dedupSortedKeys(keys []uint64) []uint64 {
	parallel.SortUint64(keys)
	w := 0
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			keys[w] = k
			w++
		}
	}
	return keys[:w]
}

// graphFromKeys builds a graph from sorted, deduplicated edge keys
// u*n+v with u < v.
func graphFromKeys(n int, keys []uint64) *Graph {
	edges := make([]Edge, len(keys))
	parallel.For(len(keys), 4096, func(i int) {
		k := keys[i]
		edges[i] = Edge{U: Vertex(k / uint64(n)), V: Vertex(k % uint64(n))}
	})
	return fromCanonicalEdges(n, edges)
}

// RMatOptions configures the R-MAT recursive generator of Chakrabarti,
// Zhan and Faloutsos (SIAM SDM 2004), the paper's second experimental
// input. A, B and C are the probabilities of the top-left, top-right and
// bottom-left quadrants; the bottom-right gets the remainder. The
// defaults (0.5, 0.1, 0.1, leaving 0.3) are the ones used by the PBBS
// inputs and produce the power-law degree distribution the paper
// mentions.
type RMatOptions struct {
	A, B, C float64
}

// DefaultRMatOptions returns the PBBS rMat parameters.
func DefaultRMatOptions() RMatOptions {
	return RMatOptions{A: 0.5, B: 0.1, C: 0.1}
}

// RMat returns an rMat graph with 2^logN vertices and m distinct
// undirected edges (self loops and duplicates are discarded and
// resampled). The generator is fully deterministic in (logN, m, seed):
// the quadrant choices for edge i are drawn from a hash of (seed, i,
// level), so the edge set does not depend on scheduling.
func RMat(logN, m int, seed uint64, opt RMatOptions) *Graph {
	if logN < 0 || logN > 30 {
		panic(fmt.Sprintf("graph: RMat logN=%d out of range [0,30]", logN))
	}
	n := 1 << uint(logN)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("graph: RMat(2^%d, %d) requests more than %d possible edges", logN, m, maxEdges))
	}
	if n <= 1 || m == 0 {
		return Empty(n)
	}
	if opt.A <= 0 && opt.B <= 0 && opt.C <= 0 {
		opt = DefaultRMatOptions()
	}
	// Cumulative quadrant thresholds scaled to 2^53 for integer
	// comparison against hash bits.
	const scale = 1 << 53
	tA := uint64(opt.A * scale)
	tB := tA + uint64(opt.B*scale)
	tC := tB + uint64(opt.C*scale)

	drawEdge := func(i uint64) (Vertex, Vertex) {
		var u, v uint32
		for level := 0; level < logN; level++ {
			h := rng.Hash3(seed, i, uint64(level)) >> 11 // 53 random bits
			u <<= 1
			v <<= 1
			switch {
			case h < tA:
				// top-left: both bits 0
			case h < tB:
				v |= 1 // top-right
			case h < tC:
				u |= 1 // bottom-left
			default:
				u |= 1
				v |= 1 // bottom-right
			}
		}
		return Vertex(u), Vertex(v)
	}

	keys := make([]uint64, 0, m+m/4+64)
	var counter uint64
	for len(keys) < m {
		need := m - len(keys)
		batch := need + need/4 + 64
		for i := 0; i < batch; i++ {
			u, v := drawEdge(counter)
			counter++
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			keys = append(keys, uint64(u)*uint64(n)+uint64(v))
		}
		keys = dedupSortedKeys(keys)
	}
	keys = keys[:m]
	return graphFromKeys(n, keys)
}

// Grid2D returns the rows x cols grid graph: vertex r*cols+c is adjacent
// to its horizontal and vertical neighbors. Grids are a standard
// bounded-degree adversarial-structure input for MIS.
func Grid2D(rows, cols int) *Graph {
	edges := make([]Edge, 0, 2*rows*cols)
	id := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return MustFromEdges(rows*cols, edges)
}

// Torus2D returns the rows x cols torus (grid with wraparound). Every
// vertex has degree exactly 4 when rows, cols >= 3.
func Torus2D(rows, cols int) *Graph {
	edges := make([]Edge, 0, 2*rows*cols)
	id := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, Edge{U: id(r, c), V: id(r, (c+1)%cols)})
			edges = append(edges, Edge{U: id(r, c), V: id((r+1)%rows, c)})
		}
	}
	return MustFromEdges(rows*cols, edges)
}

// Complete returns the complete graph K_n. The paper uses K_n as the
// example where the longest path in the priority DAG is Omega(n) but the
// dependence length is O(1).
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: Vertex(u), V: Vertex(v)})
		}
	}
	return MustFromEdges(n, edges)
}

// Star returns the star K_{1,n-1} with center 0, the extreme
// high-degree-skew input.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: 0, V: Vertex(v)})
	}
	return MustFromEdges(n, edges)
}

// Path returns the path 0-1-...-(n-1), the graph whose priority DAG can
// have the longest chains among bounded-degree graphs.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{U: Vertex(v), V: Vertex(v + 1)})
	}
	return MustFromEdges(n, edges)
}

// Cycle returns the cycle on n vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n)
	}
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{U: Vertex(v), V: Vertex((v + 1) % n)})
	}
	return MustFromEdges(n, edges)
}

// CompleteBipartite returns K_{a,b} with parts [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *Graph {
	edges := make([]Edge, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, Edge{U: Vertex(u), V: Vertex(a + v)})
		}
	}
	return MustFromEdges(a+b, edges)
}

// RandomBipartite returns a random bipartite graph with parts of size a
// and b and m distinct edges; useful for the switch-scheduling example
// where maximal matchings drive a crossbar.
func RandomBipartite(a, b, m int, seed uint64) *Graph {
	maxEdges := int64(a) * int64(b)
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("graph: RandomBipartite(%d,%d,%d) exceeds %d possible edges", a, b, m, maxEdges))
	}
	x := rng.NewXoshiro256(seed)
	keys := make([]uint64, 0, m+m/8+16)
	for len(keys) < m {
		need := m - len(keys)
		for i := 0; i < need+need/4+16; i++ {
			u := uint64(x.Intn(a))
			v := uint64(x.Intn(b))
			keys = append(keys, u*uint64(b)+v)
		}
		keys = dedupSortedKeys(keys)
	}
	keys = keys[:m]
	edges := make([]Edge, len(keys))
	for i, k := range keys {
		edges[i] = Edge{U: Vertex(k / uint64(b)), V: Vertex(uint64(a) + k%uint64(b))}
	}
	return MustFromEdges(a+b, edges)
}

// RandomTree returns a uniform-attachment random tree: vertex i >= 1
// attaches to a parent chosen uniformly from [0, i).
func RandomTree(n int, seed uint64) *Graph {
	x := rng.NewXoshiro256(seed)
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		p := Vertex(x.Intn(v))
		edges = append(edges, Edge{U: p, V: Vertex(v)})
	}
	return MustFromEdges(n, edges)
}

// NearRegular returns a graph where every vertex has degree close to d,
// built as the union of ceil(d/2) random Hamiltonian cycles (duplicate
// edges merged, so degrees can fall slightly below d). It approximates a
// random d-regular graph well enough for degree-uniformity experiments;
// it is not a uniform sample from d-regular graphs.
func NearRegular(n, d int, seed uint64) *Graph {
	if d >= n {
		panic(fmt.Sprintf("graph: NearRegular degree %d >= n %d", d, n))
	}
	cycles := (d + 1) / 2
	edges := make([]Edge, 0, cycles*n)
	for c := 0; c < cycles; c++ {
		p := rng.Perm(n, rng.Hash2(seed, uint64(c)))
		for i := 0; i < n; i++ {
			u, v := p[i], p[(i+1)%n]
			if u != v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	return MustFromEdges(n, edges)
}
