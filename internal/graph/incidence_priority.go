package graph

import "repro/internal/parallel"

// BuildIncidenceByPriority builds the vertex-to-incident-edge CSR with
// every per-vertex list already in increasing priority-rank order, in
// O(n + m) work — the bucket-sort construction the paper invokes for
// Lemma 5.3 ("the initial sort to order the edges incident on each
// vertex can be done in O(m) work ... using bucket sorting"): edges are
// distributed to their endpoints' buckets in a single sweep over the
// priority order, so each bucket ends up sorted without any comparison
// sort.
//
// order is the edge priority permutation (order[r] = edge id with rank
// r). The result is identical to BuildIncidence followed by
// SortIncidenceByPriority, at a lower asymptotic cost; both are kept so
// tests can cross-check them.
func BuildIncidenceByPriority(el EdgeList, order []int32) Incidence {
	n := el.N
	counts := make([]int64, n+1)
	for _, e := range el.Edges {
		counts[e.U]++
		counts[e.V]++
	}
	offsets := make([]int64, n+1)
	total := parallel.ExclusiveScan(offsets[:n], counts[:n], 4096)
	offsets[n] = total
	ids := make([]EdgeID, total)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	// The single priority-ordered sweep: appending to each endpoint's
	// bucket in rank order leaves every bucket sorted by rank.
	for _, e := range order {
		edge := el.Edges[e]
		ids[cursor[edge.U]] = e
		cursor[edge.U]++
		ids[cursor[edge.V]] = e
		cursor[edge.V]++
	}
	return Incidence{Offsets: offsets, EdgeIDs: ids}
}
