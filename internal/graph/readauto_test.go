package graph

import (
	"errors"
	"strings"
	"testing"
)

// Format round trips through ReadAuto are covered by
// TestReadAutoAllFormats in incidence_priority_test.go; these tests
// pin down the hardened rejection behavior.

func TestReadAutoRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"whitespace":    "   \n",
		"random text":   "hello world\n1 2\n",
		"header prefix": "AdjacencyGraphX\n1\n0\n0\n",
		"edge prefix":   "EdgeArrayLike\n0 1\n",
		"short binary":  "\x01\x02\x03",
		"wrong magic":   "\x00\x00\x00\x00\x00\x00\x00\x00 trailing",
	}
	for name, input := range cases {
		if _, err := ReadAuto(strings.NewReader(input)); err == nil {
			t.Errorf("%s: garbage accepted", name)
		} else if !errors.Is(err, ErrUnknownFormat) {
			t.Errorf("%s: error %v does not wrap ErrUnknownFormat", name, err)
		}
	}
}

func TestReadAutoHeaderNeedsWhitespaceBoundary(t *testing.T) {
	// A valid header followed immediately by a newline (no padding to
	// the sniff length) must still be detected — the file may be
	// shorter than the peek window.
	tiny := "EdgeArray\n0 1\n"
	g, err := ReadAuto(strings.NewReader(tiny))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("tiny edge array misparsed: %v", g)
	}
}
