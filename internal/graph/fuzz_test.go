package graph

import (
	"bytes"
	"testing"
)

// FuzzReadAdjacency checks that the text parser never panics and that
// anything it accepts is a valid graph that survives a write/read round
// trip. Run with `go test -fuzz=FuzzReadAdjacency ./internal/graph`;
// the seed corpus also runs under plain `go test`.
func FuzzReadAdjacency(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteAdjacency(&seed, Complete(4)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("AdjacencyGraph\n0\n0\n"))
	f.Add([]byte("AdjacencyGraph\n2\n2\n0\n1\n1\n0\n"))
	f.Add([]byte("AdjacencyGraph\n1\n-1\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadAdjacency(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteAdjacency(&out, g); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadAdjacency(&out)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
	})
}

// FuzzReadBinary does the same for the binary parser.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, Random(10, 20, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("short"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}

// FuzzFromEdges checks the builder's invariants over arbitrary edge
// soup: any accepted input yields a validated graph whose edge set is a
// subset of the (cleaned) input.
func FuzzFromEdges(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 0})
	f.Add(uint8(3), []byte{0, 0, 1, 1})
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, rawN uint8, pairs []byte) {
		n := int(rawN)
		edges := make([]Edge, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			edges = append(edges, Edge{U: Vertex(pairs[i]), V: Vertex(pairs[i+1])})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			// Must only fail for out-of-range endpoints.
			for _, e := range edges {
				if e.U >= Vertex(n) || e.V >= Vertex(n) || e.U < 0 || e.V < 0 {
					return
				}
			}
			t.Fatalf("FromEdges rejected in-range input: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		for _, e := range g.Edges() {
			found := false
			for _, in := range edges {
				c := in.Canonical()
				if c == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("built graph contains edge %v not in input", e)
			}
		}
	})
}
