package graph

import (
	"fmt"

	"repro/internal/rng"
)

// This file adds graph families beyond the paper's two experimental
// inputs. They broaden the dependence-length study (the paper's bound
// holds for ANY graph under a random order, so a reproduction should
// check structurally diverse inputs) and give the examples realistic
// workloads.

// Hypercube returns the d-dimensional hypercube Q_d: 2^d vertices, two
// vertices adjacent when their ids differ in exactly one bit. Regular
// of degree d with logarithmic diameter.
func Hypercube(d int) *Graph {
	if d < 0 || d > 27 {
		panic(fmt.Sprintf("graph: Hypercube dimension %d out of range [0,27]", d))
	}
	n := 1 << uint(d)
	edges := make([]Edge, 0, n*d/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				edges = append(edges, Edge{U: Vertex(v), V: Vertex(u)})
			}
		}
	}
	return MustFromEdges(n, edges)
}

// Grid3D returns the x*y*z grid graph, the bounded-degree (<=6) mesh of
// scientific computing workloads.
func Grid3D(x, y, z int) *Graph {
	id := func(i, j, k int) Vertex { return Vertex((i*y+j)*z + k) }
	edges := make([]Edge, 0, 3*x*y*z)
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					edges = append(edges, Edge{U: id(i, j, k), V: id(i+1, j, k)})
				}
				if j+1 < y {
					edges = append(edges, Edge{U: id(i, j, k), V: id(i, j+1, k)})
				}
				if k+1 < z {
					edges = append(edges, Edge{U: id(i, j, k), V: id(i, j, k+1)})
				}
			}
		}
	}
	return MustFromEdges(x*y*z, edges)
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors (k even), with each edge
// rewired to a random endpoint with probability beta. beta=0 is the
// pure lattice (long dependence chains under bad orders), beta=1 is
// near-random.
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	if k%2 != 0 || k < 2 || k >= n {
		panic(fmt.Sprintf("graph: WattsStrogatz requires even 2 <= k < n, got k=%d n=%d", k, n))
	}
	x := rng.NewXoshiro256(seed)
	edges := make([]Edge, 0, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if x.Float64() < beta {
				// Rewire the far endpoint to a uniform non-self vertex;
				// duplicates are merged by the builder, which slightly
				// reduces m exactly as in the standard construction.
				u = x.Intn(n)
				for u == v {
					u = x.Intn(n)
				}
			}
			edges = append(edges, Edge{U: Vertex(v), V: Vertex(u)})
		}
	}
	return MustFromEdges(n, edges)
}

// BarabasiAlbert returns a preferential-attachment graph: vertices
// arrive one at a time and attach k edges to existing vertices chosen
// proportionally to their current degree (via the repeated-endpoints
// trick: sampling a uniform endpoint of a uniform existing edge).
// Produces the heavy-tailed degree distributions of web-like graphs —
// an independent power-law family to contrast with rMat.
func BarabasiAlbert(n, k int, seed uint64) *Graph {
	if k < 1 || k >= n {
		panic(fmt.Sprintf("graph: BarabasiAlbert requires 1 <= k < n, got k=%d n=%d", k, n))
	}
	x := rng.NewXoshiro256(seed)
	// endpoint multiset: each edge contributes both endpoints, so a
	// uniform sample from it is degree-proportional.
	endpoints := make([]Vertex, 0, 2*n*k)
	edges := make([]Edge, 0, n*k)
	// Seed clique on the first k+1 vertices.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			edges = append(edges, Edge{U: Vertex(u), V: Vertex(v)})
			endpoints = append(endpoints, Vertex(u), Vertex(v))
		}
	}
	chosen := make([]Vertex, 0, k)
	for v := k + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < k {
			t := endpoints[x.Intn(len(endpoints))]
			if int(t) == v {
				continue
			}
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			edges = append(edges, Edge{U: Vertex(v), V: t})
			endpoints = append(endpoints, Vertex(v), t)
		}
	}
	return MustFromEdges(n, edges)
}
