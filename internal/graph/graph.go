// Package graph provides the graph substrate for the reproduction of
// Blelloch, Fineman and Shun (SPAA 2012): a compact CSR (compressed
// sparse row) representation of undirected graphs, builders, the paper's
// two experimental input generators (sparse random G(n,m) and rMat) plus
// a family of structured generators for testing, text and binary I/O in
// the PBBS AdjacencyGraph format, line graphs, induced subgraphs and
// basic statistics.
//
// All graphs in this package are simple undirected graphs: no self loops
// and no parallel edges. An edge {u,v} is stored twice in the adjacency
// array, once in each direction, so the adjacency array has length 2m
// for a graph with m undirected edges.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// Vertex identifies a vertex as an index in [0, NumVertices). The 32-bit
// representation halves the memory traffic of the hot loops, which
// matters for the memory-bound algorithms in this library; it limits
// graphs to about 2 billion vertices, far above what the experiments
// need.
type Vertex = int32

// Graph is an immutable undirected graph in CSR form. Use FromEdges or a
// generator to construct one; the zero value is the empty graph.
type Graph struct {
	offsets []int64  // len n+1; offsets[v]..offsets[v+1] delimit v's neighbors
	adj     []Vertex // len 2m; neighbor lists, each sorted ascending
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int {
	return len(g.adj) / 2
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the neighbor list of v, sorted ascending. The
// returned slice aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u,v} is present, by
// binary search over the smaller adjacency list.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// MaxDegree returns the maximum vertex degree Δ, or 0 for the empty
// graph. This is the a-priori Δ of the paper's Corollary 3.2.
func (g *Graph) MaxDegree() int {
	n := g.NumVertices()
	return int(parallel.MaxInt64(n, 4096, 0, func(i int) int64 {
		return int64(g.Degree(Vertex(i)))
	}))
}

// AvgDegree returns the average vertex degree 2m/n, or 0 for the empty
// graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(n)
}

// Edges returns the canonical edge list of g: every undirected edge
// exactly once as {U, V} with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	n := g.NumVertices()
	counts := make([]int64, n+1)
	parallel.For(n, 2048, func(i int) {
		v := Vertex(i)
		c := int64(0)
		for _, u := range g.Neighbors(v) {
			if u > v {
				c++
			}
		}
		counts[i] = c
	})
	total := parallel.ExclusiveScan(counts, counts[:n], 2048)
	counts[n] = total
	edges := make([]Edge, total)
	parallel.For(n, 2048, func(i int) {
		v := Vertex(i)
		pos := counts[i]
		for _, u := range g.Neighbors(v) {
			if u > v {
				edges[pos] = Edge{U: v, V: u}
				pos++
			}
		}
	})
	return edges
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d maxdeg=%d}", g.NumVertices(), g.NumEdges(), g.MaxDegree())
}

// Validate checks the structural invariants of the CSR representation:
// monotone offsets covering the adjacency array, in-range sorted
// neighbor lists, no self loops, no duplicate edges, and symmetry
// (u lists v if and only if v lists u). It returns nil if all hold.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n == 0 {
		if len(g.adj) != 0 {
			return errors.New("graph: empty offsets with nonempty adjacency")
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		nbrs := g.Neighbors(Vertex(v))
		for i, u := range nbrs {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: vertex %d has a self loop", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: neighbors of %d not strictly sorted at position %d", v, i)
			}
		}
	}
	// Symmetry: every directed arc must have its reverse.
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(Vertex(v)) {
			if !g.hasArc(u, Vertex(v)) {
				return fmt.Errorf("graph: edge %d->%d present but %d->%d missing", v, u, u, v)
			}
		}
	}
	return nil
}

func (g *Graph) hasArc(u, v Vertex) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		offsets: make([]int64, len(g.offsets)),
		adj:     make([]Vertex, len(g.adj)),
	}
	copy(c.offsets, g.offsets)
	copy(c.adj, g.adj)
	return c
}

// Raw exposes the CSR arrays (offsets of length n+1 and the adjacency
// array of length 2m) for algorithms that need direct indexed access.
// The returned slices alias the graph and must not be modified.
func (g *Graph) Raw() (offsets []int64, adj []Vertex) {
	return g.offsets, g.adj
}
