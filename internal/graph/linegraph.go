package graph

import "fmt"

// LineGraph returns the line graph L(g): one vertex per undirected edge
// of g, with two line-graph vertices adjacent when the corresponding
// edges of g share an endpoint. Vertex i of L(g) corresponds to edge i
// of g.EdgeList() (canonical order).
//
// The paper uses the line graph to prove Lemma 5.1 — greedy maximal
// matching on g behaves exactly like greedy MIS on L(g) — while warning
// that materializing L(g) can be asymptotically larger than g (it has
// sum-of-degrees-squared size). This implementation therefore exists for
// testing and for small inputs; the efficient matching algorithms never
// build it.
func LineGraph(g *Graph) (*Graph, EdgeList) {
	el := g.EdgeList()
	m := el.NumEdges()
	inc := BuildIncidence(el)
	var lineEdges []Edge
	// Two edges are adjacent iff they co-occur in some vertex's incident
	// list; enumerate unordered pairs within each list.
	for v := 0; v < el.N; v++ {
		ids := inc.Incident(Vertex(v))
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a > b {
					a, b = b, a
				}
				lineEdges = append(lineEdges, Edge{U: a, V: b})
			}
		}
	}
	lg, err := FromEdges(m, lineEdges)
	if err != nil {
		panic(fmt.Sprintf("graph: internal error building line graph: %v", err))
	}
	return lg, el
}

// LineGraphSize returns the number of vertices and edges L(g) would
// have, without building it: |V| = m and |E| = sum_v C(deg(v), 2) minus
// nothing (simple graphs cannot create duplicate line-graph edges
// because two edges share at most one endpoint).
func LineGraphSize(g *Graph) (vertices, edges int64) {
	n := g.NumVertices()
	var e int64
	for v := 0; v < n; v++ {
		d := int64(g.Degree(Vertex(v)))
		e += d * (d - 1) / 2
	}
	return int64(g.NumEdges()), e
}
