package graph

import "repro/internal/parallel"

// InducedSubgraph returns the subgraph of g induced by the given
// vertices (G[U] in the paper's notation: the vertices of U and every
// edge with both endpoints in U), together with the mapping from new
// vertex ids to original ids. Duplicate vertices in the input are an
// error expressed by panic, as this is an internal programming mistake.
func InducedSubgraph(g *Graph, vertices []Vertex) (*Graph, []Vertex) {
	n := g.NumVertices()
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vertices {
		if remap[v] != -1 {
			panic("graph: InducedSubgraph given duplicate vertex")
		}
		remap[v] = int32(i)
	}
	k := len(vertices)
	counts := make([]int64, k+1)
	parallel.For(k, 1024, func(i int) {
		c := int64(0)
		for _, u := range g.Neighbors(vertices[i]) {
			if remap[u] != -1 {
				c++
			}
		}
		counts[i] = c
	})
	offsets := make([]int64, k+1)
	total := parallel.ExclusiveScan(offsets[:k], counts[:k], 1024)
	offsets[k] = total
	adj := make([]Vertex, total)
	parallel.For(k, 1024, func(i int) {
		pos := offsets[i]
		for _, u := range g.Neighbors(vertices[i]) {
			if w := remap[u]; w != -1 {
				adj[pos] = w
				pos++
			}
		}
	})
	sub := &Graph{offsets: offsets, adj: adj}
	sub.sortAdjacency()
	mapping := append([]Vertex(nil), vertices...)
	return sub, mapping
}

// EdgeInducedSubgraph returns the subgraph G[E'] containing exactly the
// given edges and all n original vertices (matching the paper's
// edge-induced subgraph, which keeps incident vertices; we keep the full
// vertex set so vertex ids are stable).
func EdgeInducedSubgraph(g *Graph, edges []Edge) *Graph {
	sub, err := FromEdges(g.NumVertices(), edges)
	if err != nil {
		panic("graph: EdgeInducedSubgraph given out-of-range edge: " + err.Error())
	}
	return sub
}
