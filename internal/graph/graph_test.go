package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmptyGraph(t *testing.T) {
	g := Empty(0)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("Empty(0) = %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Empty(0).Validate() = %v", err)
	}
	g5 := Empty(5)
	if g5.NumVertices() != 5 || g5.NumEdges() != 0 || g5.MaxDegree() != 0 {
		t.Errorf("Empty(5) wrong: %v", g5)
	}
	if err := g5.Validate(); err != nil {
		t.Errorf("Empty(5).Validate() = %v", err)
	}
}

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("cycle4: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong on cycle4")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromEdgesDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 0}, {1, 2}, {1, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("m = %d, want 2 after dedup", g.NumEdges())
	}
	if g.HasEdge(0, 0) {
		t.Error("self loop survived")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
}

// TestFromEdgesTable exercises the builder's cleaning and rejection
// paths: duplicates merge, self loops drop, and out-of-range endpoints
// are rejected with an error naming the offending edge index — the
// detail a caller feeding a million-edge list needs to find the bad
// entry.
func TestFromEdgesTable(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		edges   []Edge
		wantM   int    // expected edge count on success
		wantErr string // substring the error must contain; "" means success
	}{
		{"empty", 0, nil, 0, ""},
		{"duplicates both orientations", 3, []Edge{{0, 1}, {1, 0}, {0, 1}}, 1, ""},
		{"self loops dropped", 3, []Edge{{2, 2}, {0, 1}, {1, 1}}, 1, ""},
		{"mixed cleanup", 4, []Edge{{3, 3}, {1, 3}, {3, 1}, {0, 2}}, 2, ""},
		{"out of range names index 0", 2, []Edge{{0, 5}}, 0, "edge 0 ="},
		{"out of range names index 2", 3, []Edge{{0, 1}, {1, 2}, {0, 7}}, 0, "edge 2 ="},
		{"negative endpoint names index 1", 3, []Edge{{0, 1}, {-1, 2}}, 0, "edge 1 ="},
		{"negative n", -1, nil, 0, "negative vertex count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := FromEdges(tc.n, tc.edges)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("accepted, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not name the offender (%q)", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() != tc.wantM {
				t.Fatalf("m = %d, want %d", g.NumEdges(), tc.wantM)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEdgesCanonicalRoundTrip(t *testing.T) {
	g := Random(200, 600, 42)
	edges := g.Edges()
	if len(edges) != 600 {
		t.Fatalf("Edges() returned %d, want 600", len(edges))
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %d = %v not canonical", i, e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Fatalf("edges not sorted at %d: %v then %v", i, prev, e)
			}
		}
	}
	g2, err := FromEdges(g.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(Vertex(v)) != g2.Degree(Vertex(v)) {
			t.Fatalf("round trip changed degree of %d", v)
		}
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestFromAdjacency(t *testing.T) {
	// Triangle as raw CSR.
	offsets := []int64{0, 2, 4, 6}
	adj := []Vertex{1, 2, 0, 2, 0, 1}
	g, err := FromAdjacency(offsets, adj)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Errorf("triangle m = %d", g.NumEdges())
	}
	// Asymmetric input must be rejected.
	if _, err := FromAdjacency([]int64{0, 1, 1}, []Vertex{1}); err == nil {
		t.Error("asymmetric adjacency accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Random(50, 100, 7)
	c := g.Clone()
	coff, _ := c.Raw()
	coff[0] = 999 // corrupt the clone
	goff, _ := g.Raw()
	if goff[0] == 999 {
		t.Error("Clone shares storage with original")
	}
}

func TestRandomGraphProperties(t *testing.T) {
	const n, m = 1000, 5000
	g := Random(n, m, 123)
	if g.NumVertices() != n {
		t.Errorf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != m {
		t.Errorf("m = %d, want %d", g.NumEdges(), m)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Mean degree should be 2m/n = 10.
	if avg := g.AvgDegree(); avg < 9.9 || avg > 10.1 {
		t.Errorf("avg degree = %v, want 10", avg)
	}
}

func TestRandomGraphDeterministicAcrossCalls(t *testing.T) {
	a := Random(500, 2000, 99)
	b := Random(500, 2000, 99)
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("Random not deterministic at edge %d", i)
		}
	}
	c := Random(500, 2000, 100)
	diff := false
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomGraphDense(t *testing.T) {
	// Request every possible edge: must terminate and produce K_n.
	g := Random(30, 30*29/2, 5)
	if g.NumEdges() != 30*29/2 {
		t.Errorf("dense random: m = %d", g.NumEdges())
	}
	if g.MaxDegree() != 29 {
		t.Errorf("dense random: maxdeg = %d", g.MaxDegree())
	}
}

func TestRandomGraphPanicsOnImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Random with too many edges did not panic")
		}
	}()
	Random(4, 100, 1)
}

func TestRMatProperties(t *testing.T) {
	g := RMat(12, 20000, 77, DefaultRMatOptions())
	if g.NumVertices() != 1<<12 {
		t.Errorf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 20000 {
		t.Errorf("m = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Power-law skew: the max degree should far exceed the mean.
	mean := g.AvgDegree()
	if float64(g.MaxDegree()) < 5*mean {
		t.Errorf("rMat does not look skewed: max=%d mean=%.1f", g.MaxDegree(), mean)
	}
}

func TestRMatDeterministic(t *testing.T) {
	a := RMat(10, 3000, 5, DefaultRMatOptions())
	b := RMat(10, 3000, 5, DefaultRMatOptions())
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("rMat edge counts differ across identical calls")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("rMat not deterministic at edge %d", i)
		}
	}
}

func TestRMatMoreSkewedThanRandom(t *testing.T) {
	rmat := RMat(13, 40000, 3, DefaultRMatOptions())
	rand := Random(1<<13, 40000, 3)
	if rmat.MaxDegree() <= rand.MaxDegree() {
		t.Errorf("expected rMat max degree (%d) > random max degree (%d)",
			rmat.MaxDegree(), rand.MaxDegree())
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 5)
	if g.NumVertices() != 20 {
		t.Errorf("n = %d", g.NumVertices())
	}
	// Grid edges: 4*(5-1) horizontal + (4-1)*5 vertical = 16+15 = 31.
	if g.NumEdges() != 31 {
		t.Errorf("m = %d, want 31", g.NumEdges())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("maxdeg = %d, want 4", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(4, 5)
	if g.NumEdges() != 40 {
		t.Errorf("torus m = %d, want 40", g.NumEdges())
	}
	for v := 0; v < 20; v++ {
		if g.Degree(Vertex(v)) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(Vertex(v)))
		}
	}
}

func TestCompleteStarPathCycle(t *testing.T) {
	k := Complete(6)
	if k.NumEdges() != 15 || k.MaxDegree() != 5 {
		t.Errorf("K6: m=%d maxdeg=%d", k.NumEdges(), k.MaxDegree())
	}
	s := Star(10)
	if s.NumEdges() != 9 || s.Degree(0) != 9 || s.Degree(5) != 1 {
		t.Errorf("Star(10) wrong")
	}
	p := Path(5)
	if p.NumEdges() != 4 || p.Degree(0) != 1 || p.Degree(2) != 2 {
		t.Errorf("Path(5) wrong")
	}
	c := Cycle(5)
	if c.NumEdges() != 5 || c.Degree(0) != 2 {
		t.Errorf("Cycle(5) wrong")
	}
	if Cycle(2).NumEdges() != 1 {
		t.Errorf("Cycle(2) should degrade to an edge")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.NumVertices() != 7 || g.NumEdges() != 12 {
		t.Errorf("K(3,4): n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// No edges within parts.
	for u := Vertex(0); u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			if g.HasEdge(u, v) {
				t.Errorf("edge inside left part: %d-%d", u, v)
			}
		}
	}
}

func TestRandomBipartite(t *testing.T) {
	g := RandomBipartite(50, 60, 400, 11)
	if g.NumVertices() != 110 || g.NumEdges() != 400 {
		t.Errorf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		left := e.U < 50
		right := e.V >= 50
		if !left || !right {
			t.Fatalf("non-bipartite edge %v", e)
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(500, 9)
	if g.NumEdges() != 499 {
		t.Errorf("tree m = %d, want 499", g.NumEdges())
	}
	comps, largest := components(g)
	if comps != 1 || largest != 500 {
		t.Errorf("tree components = %d (largest %d), want 1 connected", comps, largest)
	}
}

func TestNearRegular(t *testing.T) {
	g := NearRegular(200, 6, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Stats(g)
	if st.Max > 6 {
		t.Errorf("NearRegular(200, 6) max degree %d > 6", st.Max)
	}
	if st.Mean < 5.0 {
		t.Errorf("NearRegular(200, 6) mean degree %.2f too low", st.Mean)
	}
}

func TestGeneratorsValidateQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64) bool {
		n := int(rawN%60) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := Random(n, m, seed)
		return g.Validate() == nil && g.NumEdges() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, mapping := InducedSubgraph(g, []Vertex{1, 3, 5})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Errorf("induced K3: n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if len(mapping) != 3 || mapping[0] != 1 || mapping[1] != 3 || mapping[2] != 5 {
		t.Errorf("mapping = %v", mapping)
	}
	if err := sub.Validate(); err != nil {
		t.Error(err)
	}
	// Induced subgraph of a path by its endpoints has no edges.
	p := Path(5)
	sub2, _ := InducedSubgraph(p, []Vertex{0, 4})
	if sub2.NumEdges() != 0 {
		t.Errorf("induced endpoints: m = %d", sub2.NumEdges())
	}
}

func TestInducedSubgraphPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate vertex accepted")
		}
	}()
	InducedSubgraph(Complete(3), []Vertex{0, 0})
}

func TestEdgeInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub := EdgeInducedSubgraph(g, []Edge{{0, 1}, {2, 3}})
	if sub.NumVertices() != 5 || sub.NumEdges() != 2 {
		t.Errorf("edge-induced: n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
}

func TestLineGraphTriangle(t *testing.T) {
	// L(K3) = K3.
	lg, el := LineGraph(Complete(3))
	if lg.NumVertices() != 3 || lg.NumEdges() != 3 {
		t.Errorf("L(K3): n=%d m=%d, want 3 and 3", lg.NumVertices(), lg.NumEdges())
	}
	if el.NumEdges() != 3 {
		t.Errorf("edge list size %d", el.NumEdges())
	}
}

func TestLineGraphPath(t *testing.T) {
	// L(P_n) = P_{n-1}.
	lg, _ := LineGraph(Path(6))
	if lg.NumVertices() != 5 || lg.NumEdges() != 4 {
		t.Errorf("L(P6): n=%d m=%d, want 5 and 4", lg.NumVertices(), lg.NumEdges())
	}
}

func TestLineGraphStar(t *testing.T) {
	// L(K_{1,k}) = K_k.
	lg, _ := LineGraph(Star(5))
	if lg.NumVertices() != 4 || lg.NumEdges() != 6 {
		t.Errorf("L(Star5): n=%d m=%d, want K4", lg.NumVertices(), lg.NumEdges())
	}
}

func TestLineGraphSizeMatches(t *testing.T) {
	g := Random(100, 300, 21)
	lg, _ := LineGraph(g)
	v, e := LineGraphSize(g)
	if int64(lg.NumVertices()) != v || int64(lg.NumEdges()) != e {
		t.Errorf("LineGraphSize = (%d,%d), actual (%d,%d)", v, e, lg.NumVertices(), lg.NumEdges())
	}
}

func TestIncidence(t *testing.T) {
	g := Complete(4)
	el := g.EdgeList()
	inc := BuildIncidence(el)
	for v := Vertex(0); v < 4; v++ {
		ids := inc.Incident(v)
		if len(ids) != 3 {
			t.Fatalf("vertex %d has %d incident edges, want 3", v, len(ids))
		}
		for _, id := range ids {
			e := el.Edges[id]
			if e.U != v && e.V != v {
				t.Fatalf("edge %v listed as incident to %d", e, v)
			}
		}
	}
}

func TestSortIncidenceByPriority(t *testing.T) {
	g := Random(80, 400, 31)
	el := g.EdgeList()
	inc := BuildIncidence(el)
	rank := rng.Perm(el.NumEdges(), 8)
	SortIncidenceByPriority(inc, rank)
	for v := 0; v < el.N; v++ {
		ids := inc.Incident(Vertex(v))
		for i := 1; i < len(ids); i++ {
			if rank[ids[i-1]] > rank[ids[i]] {
				t.Fatalf("vertex %d incident list not sorted by rank at %d", v, i)
			}
		}
	}
}

func TestEdgeListValidate(t *testing.T) {
	good := EdgeList{N: 3, Edges: []Edge{{0, 1}, {1, 2}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	loop := EdgeList{N: 3, Edges: []Edge{{1, 1}}}
	if err := loop.Validate(); err == nil {
		t.Error("self loop accepted")
	}
	oob := EdgeList{N: 3, Edges: []Edge{{0, 9}}}
	if err := oob.Validate(); err == nil {
		t.Error("out of range accepted")
	}
}

func TestStats(t *testing.T) {
	g := Star(11) // center degree 10, leaves degree 1
	s := Stats(g)
	if s.Max != 10 || s.Min != 1 || s.ConnectedComps != 1 || s.LargestComponent != 11 {
		t.Errorf("star stats wrong: %+v", s)
	}
	if s.DegeneracyEstimate != 1 {
		t.Errorf("star degeneracy = %d, want 1", s.DegeneracyEstimate)
	}
	k := Complete(5)
	ks := Stats(k)
	if ks.DegeneracyEstimate != 4 {
		t.Errorf("K5 degeneracy = %d, want 4", ks.DegeneracyEstimate)
	}
	e := Empty(4)
	es := Stats(e)
	if es.ConnectedComps != 4 || es.IsolatedVertices != 4 {
		t.Errorf("empty stats wrong: %+v", es)
	}
	if Stats(Empty(0)).N != 0 {
		t.Error("Stats on the 0-vertex graph failed")
	}
	_ = s.String() // must not panic
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(Star(5))
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("star histogram = %v", h)
	}
}

func TestComponentsDisconnected(t *testing.T) {
	// Two triangles.
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	c, largest := components(g)
	if c != 2 || largest != 3 {
		t.Errorf("components = %d largest = %d", c, largest)
	}
}

func BenchmarkRandomGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Random(100000, 500000, uint64(i))
	}
}

func BenchmarkRMat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RMat(17, 500000, uint64(i), DefaultRMatOptions())
	}
}
