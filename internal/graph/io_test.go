package graph

import (
	"bytes"
	"strings"
	"testing"
)

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		Empty(0),
		Empty(3),
		Complete(5),
		Random(100, 400, 3),
		Star(7),
	} {
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAdjacency(&buf)
		if err != nil {
			t.Fatalf("ReadAdjacency: %v", err)
		}
		graphsEqual(t, g, got)
	}
}

func TestAdjacencyFormatShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, Path(3)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header, n, m(arcs), 3 offsets, 4 arcs.
	if lines[0] != "AdjacencyGraph" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "3" || lines[2] != "4" {
		t.Errorf("n,m lines = %q,%q, want 3,4", lines[1], lines[2])
	}
	if len(lines) != 3+3+4 {
		t.Errorf("total lines = %d, want 10", len(lines))
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":        "NotAGraph\n1\n0\n0\n",
		"negative n":        "AdjacencyGraph\n-1\n0\n",
		"truncated offsets": "AdjacencyGraph\n3\n4\n0\n",
		"offset range":      "AdjacencyGraph\n2\n2\n0\n5\n0\n0\n",
		"arc out of range":  "AdjacencyGraph\n2\n2\n0\n1\n1\n5\n",
		"self loop":         "AdjacencyGraph\n2\n2\n0\n1\n0\n1\n",
		"not a number":      "AdjacencyGraph\nx\n0\n",
		"empty":             "",
	}
	for name, input := range cases {
		if _, err := ReadAdjacency(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestReadAdjacencyAsymmetricRejected(t *testing.T) {
	// Arc 0->1 without 1->0.
	input := "AdjacencyGraph\n2\n1\n0\n1\n1\n"
	if _, err := ReadAdjacency(strings.NewReader(input)); err == nil {
		t.Error("asymmetric graph accepted")
	}
}

func TestEdgeArrayRoundTrip(t *testing.T) {
	g := Random(60, 150, 17)
	var buf bytes.Buffer
	if err := WriteEdgeArray(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ReadEdgeArray infers n from the max endpoint, which may be smaller
	// than the original if trailing vertices are isolated; compare edges.
	ea, eb := g.Edges(), got.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge count %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestReadEdgeArrayErrors(t *testing.T) {
	if _, err := ReadEdgeArray(strings.NewReader("WrongHeader\n0 1\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadEdgeArray(strings.NewReader("EdgeArray\n0\n")); err == nil {
		t.Error("dangling endpoint accepted")
	}
	if _, err := ReadEdgeArray(strings.NewReader("EdgeArray\n-1 2\n")); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		Empty(0),
		Empty(10),
		Complete(6),
		Random(500, 2500, 77),
		RMat(10, 2000, 5, DefaultRMatOptions()),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, g, got)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("short")); err == nil {
		t.Error("truncated binary accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Complete(3)); err != nil {
		t.Fatal(err)
	}
	corrupted := buf.Bytes()
	corrupted[0] ^= 0xff // break the magic
	if _, err := ReadBinary(bytes.NewReader(corrupted)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Random(100, 300, 1)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated payload accepted")
	}
}
