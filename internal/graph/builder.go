package graph

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// Edge is an undirected edge between vertices U and V. The canonical
// form has U < V; builders accept either orientation.
type Edge struct {
	U, V Vertex
}

// Canonical returns the edge with endpoints ordered U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not
// an endpoint.
func (e Edge) Other(v Vertex) Vertex {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// FromEdges builds a simple undirected graph on n vertices from an edge
// list. Self loops are dropped and duplicate edges (in either
// orientation) are merged. Endpoints must lie in [0, n).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	canon := make([]Edge, 0, len(edges))
	for i, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge %d = %v out of range [0,%d)", i, e, n)
		}
		if e.U == e.V {
			continue // drop self loop
		}
		canon = append(canon, e.Canonical())
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].U != canon[j].U {
			return canon[i].U < canon[j].U
		}
		return canon[i].V < canon[j].V
	})
	// Deduplicate in place.
	w := 0
	for i, e := range canon {
		if i == 0 || e != canon[i-1] {
			canon[w] = e
			w++
		}
	}
	canon = canon[:w]
	return fromCanonicalEdges(n, canon), nil
}

// MustFromEdges is FromEdges but panics on error; convenient in tests
// and generators where inputs are known valid.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// fromCanonicalEdges builds a Graph from edges already canonical
// (U < V), sorted and deduplicated.
func fromCanonicalEdges(n int, edges []Edge) *Graph {
	degrees := make([]int64, n+1)
	for _, e := range edges {
		degrees[e.U]++
		degrees[e.V]++
	}
	offsets := make([]int64, n+1)
	total := parallel.ExclusiveScan(offsets[:n], degrees[:n], 4096)
	offsets[n] = total
	adj := make([]Vertex, total)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj}
	g.sortAdjacency()
	return g
}

// sortAdjacency sorts every neighbor list ascending, in parallel over
// vertices.
func (g *Graph) sortAdjacency() {
	n := g.NumVertices()
	parallel.For(n, 512, func(i int) {
		nbrs := g.adj[g.offsets[i]:g.offsets[i+1]]
		if len(nbrs) > 1 {
			sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		}
	})
}

// FromAdjacency builds a graph directly from CSR arrays. offsets must
// have length n+1 with offsets[0] == 0 and offsets[n] == len(adj); the
// arrays are copied. The input must already describe a symmetric simple
// graph; Validate is run and its error returned if it does not.
func FromAdjacency(offsets []int64, adj []Vertex) (*Graph, error) {
	if len(offsets) == 0 {
		return &Graph{}, nil
	}
	g := &Graph{
		offsets: append([]int64(nil), offsets...),
		adj:     append([]Vertex(nil), adj...),
	}
	g.sortAdjacency()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromCSRUnchecked wraps CSR arrays in a Graph without copying, sorting
// or validation. The caller must guarantee the Graph invariants hold
// (offsets of length n+1 covering adj, strictly sorted in-range
// neighbor lists, no self loops, symmetry) and must not retain the
// slices. It exists for trusted builders that already produce canonical
// CSR — the dynamic overlay's compaction emits merged sorted adjacency
// directly, and re-validating symmetry there would turn an O(n + m)
// compaction into an O(m log m) one.
func FromCSRUnchecked(offsets []int64, adj []Vertex) *Graph {
	return &Graph{offsets: offsets, adj: adj}
}

// Empty returns the graph with n vertices and no edges.
func Empty(n int) *Graph {
	return &Graph{offsets: make([]int64, n+1)}
}
