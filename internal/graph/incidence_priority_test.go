package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func incidenceEqual(a, b Incidence) bool {
	if len(a.Offsets) != len(b.Offsets) || len(a.EdgeIDs) != len(b.EdgeIDs) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] {
			return false
		}
	}
	return true
}

func TestBuildIncidenceByPriorityMatchesSorting(t *testing.T) {
	for _, g := range []*Graph{
		Random(100, 400, 1),
		Complete(20),
		Star(30),
		Grid2D(8, 9),
		Empty(10),
	} {
		el := g.EdgeList()
		order := rng.Perm(el.NumEdges(), 7)
		rank := rng.InversePerm(order)

		bucketed := BuildIncidenceByPriority(el, order)
		sorted := BuildIncidence(el)
		SortIncidenceByPriority(sorted, rank)
		if !incidenceEqual(bucketed, sorted) {
			t.Errorf("bucket-sorted incidence differs from comparison-sorted on %v", g)
		}
	}
}

func TestBuildIncidenceByPriorityQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64) bool {
		n := int(rawN%50) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := Random(n, m, seed)
		el := g.EdgeList()
		order := rng.Perm(el.NumEdges(), seed+1)
		rank := rng.InversePerm(order)
		inc := BuildIncidenceByPriority(el, order)
		// Every list sorted by rank, and every edge present at both
		// endpoints exactly once.
		seen := make([]int, el.NumEdges())
		for v := 0; v < n; v++ {
			ids := inc.Incident(Vertex(v))
			for i, e := range ids {
				seen[e]++
				edge := el.Edges[e]
				if edge.U != Vertex(v) && edge.V != Vertex(v) {
					return false
				}
				if i > 0 && rank[ids[i-1]] > rank[e] {
					return false
				}
			}
		}
		for _, c := range seen {
			if c != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReadAutoAllFormats(t *testing.T) {
	g := Random(80, 240, 5)
	writers := map[string]func(*Graph, *bytes.Buffer) error{
		"adjacency": func(g *Graph, buf *bytes.Buffer) error { return WriteAdjacency(buf, g) },
		"edges":     func(g *Graph, buf *bytes.Buffer) error { return WriteEdgeArray(buf, g) },
		"binary":    func(g *Graph, buf *bytes.Buffer) error { return WriteBinary(buf, g) },
	}
	for name, w := range writers {
		var buf bytes.Buffer
		if err := w(g, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadAuto(&buf)
		if err != nil {
			t.Fatalf("%s: ReadAuto: %v", name, err)
		}
		graphsEqual(t, g, got)
	}
}

// ReadAuto's rejection of malformed input is covered in
// readauto_test.go, which also asserts the error wraps
// ErrUnknownFormat.
