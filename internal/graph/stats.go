package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DegreeHistogram returns a map from degree to the number of vertices
// with that degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(Vertex(v))]++
	}
	return h
}

// DegreeStats summarizes the degree distribution of a graph. The rMat
// input's power-law skew versus the random graph's concentration around
// 2m/n is the structural difference behind the two columns of the
// paper's figures.
type DegreeStats struct {
	N, M               int
	Min, Max           int
	Mean               float64
	Median             int
	P90, P99           int
	IsolatedVertices   int
	ConnectedComps     int
	LargestComponent   int
	DegeneracyEstimate int // max over the degree-peeling order (exact degeneracy)
}

// Stats computes DegreeStats for g. It runs in O(n + m) plus a sort of
// the degree sequence.
func Stats(g *Graph) DegreeStats {
	n := g.NumVertices()
	s := DegreeStats{N: n, M: g.NumEdges()}
	if n == 0 {
		return s
	}
	degs := make([]int, n)
	minD, maxD, sum := int(^uint(0)>>1), 0, 0
	for v := 0; v < n; v++ {
		d := g.Degree(Vertex(v))
		degs[v] = d
		sum += d
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
		if d == 0 {
			s.IsolatedVertices++
		}
	}
	s.Min, s.Max = minD, maxD
	s.Mean = float64(sum) / float64(n)
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	s.Median = sorted[n/2]
	s.P90 = sorted[(n*9)/10]
	s.P99 = sorted[(n*99)/100]
	s.ConnectedComps, s.LargestComponent = components(g)
	s.DegeneracyEstimate = degeneracy(g, degs)
	return s
}

func (s DegreeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d deg[min=%d med=%d mean=%.2f p90=%d p99=%d max=%d] ",
		s.N, s.M, s.Min, s.Median, s.Mean, s.P90, s.P99, s.Max)
	fmt.Fprintf(&b, "isolated=%d components=%d largest=%d degeneracy=%d",
		s.IsolatedVertices, s.ConnectedComps, s.LargestComponent, s.DegeneracyEstimate)
	return b.String()
}

// components returns the number of connected components and the size of
// the largest, via an iterative BFS.
func components(g *Graph) (count, largest int) {
	n := g.NumVertices()
	visited := make([]bool, n)
	queue := make([]Vertex, 0, 1024)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		count++
		size := 0
		visited[start] = true
		queue = append(queue[:0], Vertex(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// degeneracy computes the graph degeneracy (the max min-degree over the
// peeling order) with the standard bucket-queue algorithm in O(n + m).
func degeneracy(g *Graph, degs []int) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	maxD := 0
	for _, d := range degs {
		if d > maxD {
			maxD = d
		}
	}
	deg := append([]int(nil), degs...)
	buckets := make([][]Vertex, maxD+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], Vertex(v))
	}
	removed := make([]bool, n)
	k := 0
	cur := 0
	for processed := 0; processed < n; {
		for cur <= maxD && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxD {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		processed++
		if cur > k {
			k = cur
		}
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
	}
	return k
}
