package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrUnknownFormat is returned by ReadAuto when the input matches none
// of the three supported graph formats.
var ErrUnknownFormat = errors.New("graph: unrecognized format (want PBBS AdjacencyGraph, PBBS EdgeArray, or GSMIS binary)")

// ReadAuto parses a graph from r, auto-detecting the format by its
// header: the PBBS "AdjacencyGraph" or "EdgeArray" text formats, or the
// library's binary format. It is the reader behind the cmd tools and
// the service ingest path, which accept any of the three
// interchangeably.
//
// Detection is by exact sniff rather than fallback: a text header must
// be the whole first token (so "AdjacencyGraphX" is rejected, not
// misparsed), the binary format is recognized by its 8-byte magic, and
// anything else — including empty input — fails with ErrUnknownFormat
// instead of a misleading downstream parse error.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	// The longest sniff we need is the adjacency header plus one byte
	// to confirm the token ends there.
	head, err := br.Peek(len(adjacencyHeader) + 1)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("graph: sniffing format: %w", err)
	}
	if len(head) == 0 {
		return nil, fmt.Errorf("graph: empty input: %w", ErrUnknownFormat)
	}
	switch {
	case isTextHeader(head, adjacencyHeader):
		return ReadAdjacency(br)
	case isTextHeader(head, edgeArrayHeader):
		return ReadEdgeArray(br)
	case len(head) >= 8 && binary.LittleEndian.Uint64(head) == binaryMagic:
		return ReadBinary(br)
	default:
		return nil, ErrUnknownFormat
	}
}

// isTextHeader reports whether head starts with the given header token
// followed by end-of-input or whitespace (i.e. the header is the whole
// first token).
func isTextHeader(head []byte, header string) bool {
	if len(head) < len(header) || string(head[:len(header)]) != header {
		return false
	}
	if len(head) == len(header) {
		return true
	}
	switch head[len(header)] {
	case ' ', '\t', '\r', '\n':
		return true
	}
	return false
}
