package graph

import (
	"bufio"
	"fmt"
	"io"
)

// ReadAuto parses a graph from r, auto-detecting the format by its
// header: the PBBS "AdjacencyGraph" or "EdgeArray" text formats, or the
// library's binary format. It is the reader behind the cmd tools, which
// accept any of the three interchangeably.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(len(adjacencyHeader))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("graph: sniffing format: %w", err)
	}
	switch {
	case len(head) >= len(adjacencyHeader) && string(head) == adjacencyHeader:
		return ReadAdjacency(br)
	case len(head) >= len(edgeArrayHeader) && string(head[:len(edgeArrayHeader)]) == edgeArrayHeader:
		return ReadEdgeArray(br)
	default:
		return ReadBinary(br)
	}
}
