package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
)

// This file implements graph serialization in three formats:
//
//   - The PBBS "AdjacencyGraph" text format used by the problem-based
//     benchmark suite the paper's implementation ships with: a header
//     line, n, m, then n offsets and m directed-arc targets. Because our
//     graphs are symmetric, m here is the number of directed arcs (2x
//     the undirected edge count).
//   - The PBBS "EdgeArray" text format: a header line followed by one
//     "u v" pair per line.
//   - A compact little-endian binary format for fast round trips.

const (
	adjacencyHeader = "AdjacencyGraph"
	edgeArrayHeader = "EdgeArray"
	binaryMagic     = uint64(0x47534d4953303031) // "GSMIS001"
)

// WriteAdjacency writes g to w in the PBBS AdjacencyGraph text format.
func WriteAdjacency(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", adjacencyHeader, n, len(g.adj)); err != nil {
		return err
	}
	buf := make([]byte, 0, 20)
	for v := 0; v < n; v++ {
		buf = strconv.AppendInt(buf[:0], g.offsets[v], 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, u := range g.adj {
		buf = strconv.AppendInt(buf[:0], int64(u), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAdjacency parses a graph in the PBBS AdjacencyGraph text format.
// The input must describe a symmetric simple graph (every arc paired
// with its reverse, no self loops); Validate is applied to the result.
func ReadAdjacency(r io.Reader) (*Graph, error) {
	sc := newTokenScanner(r)
	header, err := sc.token()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if header != adjacencyHeader {
		return nil, fmt.Errorf("graph: bad header %q, want %q", header, adjacencyHeader)
	}
	n, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("graph: reading n: %w", err)
	}
	arcs, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("graph: reading m: %w", err)
	}
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("graph: negative sizes n=%d m=%d", n, arcs)
	}
	offsets := make([]int64, n+1)
	for v := 0; v < int(n); v++ {
		o, err := sc.int()
		if err != nil {
			return nil, fmt.Errorf("graph: reading offset %d: %w", v, err)
		}
		if o < 0 || o > arcs {
			return nil, fmt.Errorf("graph: offset %d = %d out of range [0,%d]", v, o, arcs)
		}
		offsets[v] = o
	}
	offsets[n] = arcs
	adj := make([]Vertex, arcs)
	for i := 0; i < int(arcs); i++ {
		t, err := sc.int()
		if err != nil {
			return nil, fmt.Errorf("graph: reading arc %d: %w", i, err)
		}
		if t < 0 || t >= n {
			return nil, fmt.Errorf("graph: arc target %d out of range [0,%d)", t, n)
		}
		adj[i] = Vertex(t)
	}
	g := &Graph{offsets: offsets, adj: adj}
	g.sortAdjacency()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeArray writes the canonical undirected edge list of g in the
// PBBS EdgeArray text format.
func WriteEdgeArray(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%s\n", edgeArrayHeader); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeArray parses a PBBS EdgeArray file into a graph with n =
// 1 + the largest endpoint mentioned.
func ReadEdgeArray(r io.Reader) (*Graph, error) {
	sc := newTokenScanner(r)
	header, err := sc.token()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if header != edgeArrayHeader {
		return nil, fmt.Errorf("graph: bad header %q, want %q", header, edgeArrayHeader)
	}
	var edges []Edge
	maxV := int64(-1)
	for {
		u, err := sc.int()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", len(edges), err)
		}
		v, err := sc.int()
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", len(edges), err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: negative endpoint in edge %d", len(edges))
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		edges = append(edges, Edge{U: Vertex(u), V: Vertex(v)})
	}
	return FromEdges(int(maxV+1), edges)
}

// WriteBinary writes g in the library's compact binary format: magic,
// n, arc count, offsets, and 32-bit adjacency, all little-endian.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	hdr := []uint64{binaryMagic, uint64(n), uint64(len(g.adj))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the binary format written by WriteBinary and
// validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [3]uint64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %#x", hdr[0])
	}
	n, arcs := int(hdr[1]), int(hdr[2])
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("graph: bad binary sizes n=%d arcs=%d", n, arcs)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]Vertex, arcs),
	}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, fmt.Errorf("graph: reading binary offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.adj); err != nil {
		return nil, fmt.Errorf("graph: reading binary adjacency: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// tokenScanner reads whitespace-separated tokens without per-token
// allocation beyond the token itself.
type tokenScanner struct {
	br *bufio.Reader
}

func newTokenScanner(r io.Reader) *tokenScanner {
	return &tokenScanner{br: bufio.NewReaderSize(r, 1<<20)}
}

func (sc *tokenScanner) token() (string, error) {
	// Skip whitespace.
	var c byte
	var err error
	for {
		c, err = sc.br.ReadByte()
		if err != nil {
			return "", err
		}
		if c != ' ' && c != '\n' && c != '\r' && c != '\t' {
			break
		}
	}
	tok := []byte{c}
	for {
		c, err = sc.br.ReadByte()
		if err == io.EOF {
			return string(tok), nil
		}
		if err != nil {
			return "", err
		}
		if c == ' ' || c == '\n' || c == '\r' || c == '\t' {
			return string(tok), nil
		}
		tok = append(tok, c)
	}
}

func (sc *tokenScanner) int() (int64, error) {
	tok, err := sc.token()
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseInt(tok, 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("bad integer token %q: %w", tok, perr)
	}
	return v, nil
}
