package graph

import (
	"fmt"

	"repro/internal/parallel"
)

// EdgeID identifies an edge as an index into an EdgeList.
type EdgeID = int32

// EdgeList is the edge-array view of a graph used by the maximal
// matching algorithms, which iterate over edges rather than vertices.
// Edges[i] is the edge with identifier i; the maximal matching
// algorithms impose a random priority order on these identifiers.
type EdgeList struct {
	N     int    // number of vertices
	Edges []Edge // canonical undirected edges, each exactly once
}

// NumEdges returns the number of edges m.
func (el EdgeList) NumEdges() int { return len(el.Edges) }

// EdgeList returns the edge-array view of g. Edge identifiers are
// assigned in the canonical (sorted U<V) order produced by
// (*Graph).Edges, so they are deterministic for a given graph.
func (g *Graph) EdgeList() EdgeList {
	return EdgeList{N: g.NumVertices(), Edges: g.Edges()}
}

// Validate checks that all endpoints are in range and no edge is a self
// loop.
func (el EdgeList) Validate() error {
	for i, e := range el.Edges {
		if e.U < 0 || int(e.U) >= el.N || e.V < 0 || int(e.V) >= el.N {
			return fmt.Errorf("graph: edge %d = %v out of range [0,%d)", i, e, el.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self loop at %d", i, e.U)
		}
	}
	return nil
}

// Incidence is a CSR mapping from each vertex to the identifiers of its
// incident edges. It is the structure behind the paper's linear-work
// maximal matching (Lemma 5.3), which keeps "for each vertex an array of
// its incident edges sorted by priority".
type Incidence struct {
	Offsets []int64  // len n+1
	EdgeIDs []EdgeID // len 2m; edge ids incident to each vertex
}

// Incident returns the edge identifiers incident to v. The slice aliases
// the structure's storage.
func (inc Incidence) Incident(v Vertex) []EdgeID {
	return inc.EdgeIDs[inc.Offsets[v]:inc.Offsets[v+1]]
}

// BuildIncidence builds the vertex-to-incident-edge CSR for el. Within
// each vertex, edge ids appear in increasing id order; callers that need
// priority order (the linear-work matching) re-sort with
// SortIncidenceByPriority.
func BuildIncidence(el EdgeList) Incidence {
	n := el.N
	counts := make([]int64, n+1)
	for _, e := range el.Edges {
		counts[e.U]++
		counts[e.V]++
	}
	offsets := make([]int64, n+1)
	total := parallel.ExclusiveScan(offsets[:n], counts[:n], 4096)
	offsets[n] = total
	ids := make([]EdgeID, total)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i, e := range el.Edges {
		ids[cursor[e.U]] = EdgeID(i)
		cursor[e.U]++
		ids[cursor[e.V]] = EdgeID(i)
		cursor[e.V]++
	}
	return Incidence{Offsets: offsets, EdgeIDs: ids}
}

// SortIncidenceByPriority reorders every per-vertex incident edge list
// so that edges appear in increasing rank (highest priority first).
// rank[e] is the priority rank of edge e: smaller is earlier. The paper
// notes this initial sort is done with a bucket sort in O(m) work; here
// each per-vertex list is sorted independently in parallel, which for
// the sparse graphs of the experiments is equally effective.
func SortIncidenceByPriority(inc Incidence, rank []int32) {
	n := len(inc.Offsets) - 1
	parallel.For(n, 256, func(v int) {
		lst := inc.EdgeIDs[inc.Offsets[v]:inc.Offsets[v+1]]
		// Insertion sort for short lists, otherwise a simple quicksort;
		// per-vertex lists in sparse graphs are nearly always short.
		sortEdgeIDsByRank(lst, rank)
	})
}

func sortEdgeIDsByRank(lst []EdgeID, rank []int32) {
	if len(lst) < 24 {
		for i := 1; i < len(lst); i++ {
			e := lst[i]
			j := i - 1
			for j >= 0 && rank[lst[j]] > rank[e] {
				lst[j+1] = lst[j]
				j--
			}
			lst[j+1] = e
		}
		return
	}
	// Median-of-three quicksort on ranks.
	lo, hi := 0, len(lst)-1
	mid := (lo + hi) / 2
	if rank[lst[mid]] < rank[lst[lo]] {
		lst[mid], lst[lo] = lst[lo], lst[mid]
	}
	if rank[lst[hi]] < rank[lst[lo]] {
		lst[hi], lst[lo] = lst[lo], lst[hi]
	}
	if rank[lst[hi]] < rank[lst[mid]] {
		lst[hi], lst[mid] = lst[mid], lst[hi]
	}
	pivot := rank[lst[mid]]
	i, j := lo, hi
	for i <= j {
		for rank[lst[i]] < pivot {
			i++
		}
		for rank[lst[j]] > pivot {
			j--
		}
		if i <= j {
			lst[i], lst[j] = lst[j], lst[i]
			i++
			j--
		}
	}
	sortEdgeIDsByRank(lst[:j+1], rank)
	sortEdgeIDsByRank(lst[i:], rank)
}
