package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// randomGraphAndOrder builds a deterministic test instance.
func randomGraphAndOrder(n, m int, seed uint64) (*graph.Graph, Order) {
	g := graph.Random(n, m, seed)
	return g, NewRandomOrder(n, seed+1)
}

func TestOrderValidate(t *testing.T) {
	o := NewRandomOrder(100, 3)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 100 {
		t.Errorf("Len = %d", o.Len())
	}
	id := IdentityOrder(5)
	if !id.Earlier(0, 4) || id.Earlier(4, 0) {
		t.Error("identity order Earlier wrong")
	}
}

func TestFromOrderFromRankRoundTrip(t *testing.T) {
	p := rng.Perm(50, 9)
	a := FromOrder(p)
	b := FromRank(a.Rank)
	for i := range p {
		if a.Order[i] != b.Order[i] || a.Rank[i] != b.Rank[i] {
			t.Fatalf("FromOrder/FromRank mismatch at %d", i)
		}
	}
}

func TestFromOrderRejectsNonPerm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromOrder accepted a non-permutation")
		}
	}()
	FromOrder([]int32{0, 0})
}

func TestSequentialMISSmall(t *testing.T) {
	// Path 0-1-2-3 with identity order: greedy picks 0, skips 1, picks
	// 2, skips 3.
	g := graph.Path(4)
	r := SequentialMIS(g, IdentityOrder(4))
	want := []graph.Vertex{0, 2}
	if len(r.Set) != 2 || r.Set[0] != want[0] || r.Set[1] != want[1] {
		t.Errorf("Set = %v, want %v", r.Set, want)
	}
	if r.Stats.Rounds != 4 || r.Stats.Attempts != 4 {
		t.Errorf("sequential stats %+v, want rounds=attempts=n", r.Stats)
	}
}

func TestSequentialMISOrderMatters(t *testing.T) {
	// Star: if the center is first it alone is the MIS; otherwise all
	// leaves are.
	g := graph.Star(5)
	centerFirst := SequentialMIS(g, IdentityOrder(5))
	if centerFirst.Size() != 1 || !centerFirst.InSet[0] {
		t.Errorf("center-first MIS = %v", centerFirst.Set)
	}
	leafFirst := SequentialMIS(g, FromOrder([]int32{1, 2, 3, 4, 0}))
	if leafFirst.Size() != 4 || leafFirst.InSet[0] {
		t.Errorf("leaf-first MIS = %v", leafFirst.Set)
	}
}

func TestSequentialMISEmptyAndSingleton(t *testing.T) {
	if r := SequentialMIS(graph.Empty(0), IdentityOrder(0)); r.Size() != 0 {
		t.Error("empty graph MIS not empty")
	}
	if r := SequentialMIS(graph.Empty(1), IdentityOrder(1)); r.Size() != 1 {
		t.Error("singleton graph MIS wrong")
	}
	// Edgeless graph: everything is in the MIS.
	if r := SequentialMIS(graph.Empty(10), NewRandomOrder(10, 1)); r.Size() != 10 {
		t.Error("edgeless graph MIS should be all vertices")
	}
}

func TestSequentialMISIsMaximal(t *testing.T) {
	g, ord := randomGraphAndOrder(500, 2500, 7)
	r := SequentialMIS(g, ord)
	if !IsMaximalIndependentSet(g, r.InSet) {
		t.Error("sequential MIS not maximal independent")
	}
}

func TestSequentialMISPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch not caught")
		}
	}()
	SequentialMIS(graph.Empty(3), IdentityOrder(4))
}

// allDeterministicAlgorithms runs every deterministic MIS implementation
// on the instance and returns the results keyed by name.
func allDeterministicAlgorithms(g *graph.Graph, ord Order) map[string]*Result {
	return map[string]*Result{
		"sequential":        SequentialMIS(g, ord),
		"parallel-full":     ParallelMIS(g, ord, Options{}),
		"rootset":           RootSetMIS(g, ord, Options{}),
		"prefix-default":    PrefixMIS(g, ord, Options{}),
		"prefix-1":          PrefixMIS(g, ord, Options{PrefixSize: 1}),
		"prefix-7":          PrefixMIS(g, ord, Options{PrefixSize: 7}),
		"prefix-frac-0.1":   PrefixMIS(g, ord, Options{PrefixFrac: 0.1}),
		"prefix-pointered":  PrefixMIS(g, ord, Options{PrefixFrac: 0.05, Pointered: true}),
		"prefix-tiny-grain": PrefixMIS(g, ord, Options{PrefixFrac: 0.2, Grain: 2}),
	}
}

func TestAllAlgorithmsMatchSequential(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		seed uint64
	}{
		{"random-sparse", graph.Random(300, 900, 1), 10},
		{"random-dense", graph.Random(100, 2000, 2), 11},
		{"rmat", graph.RMat(9, 2000, 3, graph.DefaultRMatOptions()), 12},
		{"grid", graph.Grid2D(17, 19), 13},
		{"complete", graph.Complete(60), 14},
		{"star", graph.Star(80), 15},
		{"path", graph.Path(200), 16},
		{"cycle", graph.Cycle(201), 17},
		{"tree", graph.RandomTree(150, 5), 18},
		{"empty", graph.Empty(50), 19},
		{"bipartite", graph.CompleteBipartite(20, 30), 20},
	}
	for _, c := range cases {
		ord := NewRandomOrder(c.g.NumVertices(), c.seed)
		want := SequentialMIS(c.g, ord)
		for name, got := range allDeterministicAlgorithms(c.g, ord) {
			if !got.Equal(want) {
				t.Errorf("%s/%s: set differs from sequential greedy (got %d, want %d vertices)",
					c.name, name, got.Size(), want.Size())
			}
			if err := VerifyLexFirst(c.g, ord, got); err != nil {
				t.Errorf("%s/%s: %v", c.name, name, err)
			}
		}
	}
}

func TestAlgorithmsMatchQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64) bool {
		n := int(rawN%80) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		ord := NewRandomOrder(n, seed^0xdead)
		want := SequentialMIS(g, ord)
		for _, got := range []*Result{
			ParallelMIS(g, ord, Options{}),
			RootSetMIS(g, ord, Options{}),
			PrefixMIS(g, ord, Options{PrefixSize: 3}),
			PrefixMIS(g, ord, Options{PrefixFrac: 0.3, Pointered: true}),
		} {
			if !got.Equal(want) {
				return false
			}
		}
		return IsMaximalIndependentSet(g, want.InSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismAcrossRepeatedRuns(t *testing.T) {
	g, ord := randomGraphAndOrder(2000, 10000, 99)
	first := PrefixMIS(g, ord, Options{PrefixFrac: 0.02})
	for trial := 0; trial < 5; trial++ {
		again := PrefixMIS(g, ord, Options{PrefixFrac: 0.02})
		if !again.Equal(first) {
			t.Fatalf("trial %d: prefix MIS differs across identical runs", trial)
		}
	}
	// Different prefix sizes must also agree (the paper's determinism
	// guarantee covers the whole work/parallelism tradeoff).
	for _, frac := range []float64{0.001, 0.01, 0.5, 1.0} {
		r := PrefixMIS(g, ord, Options{PrefixFrac: frac})
		if !r.Equal(first) {
			t.Fatalf("prefix frac %v changed the result", frac)
		}
	}
}

func TestPrefixSize1IsSequential(t *testing.T) {
	g, ord := randomGraphAndOrder(400, 1200, 3)
	r := PrefixMIS(g, ord, Options{PrefixSize: 1})
	if r.Stats.Rounds != int64(g.NumVertices()) {
		t.Errorf("prefix-1 rounds = %d, want n = %d", r.Stats.Rounds, g.NumVertices())
	}
	if r.Stats.Attempts != int64(g.NumVertices()) {
		t.Errorf("prefix-1 attempts = %d, want n = %d", r.Stats.Attempts, g.NumVertices())
	}
}

func TestPrefixWorkGrowsWithPrefix(t *testing.T) {
	g, ord := randomGraphAndOrder(3000, 15000, 5)
	small := PrefixMIS(g, ord, Options{PrefixSize: 8})
	full := PrefixMIS(g, ord, Options{PrefixFrac: 1})
	if small.Stats.Attempts > full.Stats.Attempts {
		t.Errorf("expected attempts to grow with prefix size: small=%d full=%d",
			small.Stats.Attempts, full.Stats.Attempts)
	}
	if small.Stats.Rounds < full.Stats.Rounds {
		t.Errorf("expected rounds to shrink with prefix size: small=%d full=%d",
			small.Stats.Rounds, full.Stats.Rounds)
	}
}

func TestParallelMISRoundsTrackDependenceLength(t *testing.T) {
	// With the full input as the prefix, the executed round count lies
	// between the dependence length and twice the dependence length
	// plus one: discarded vertices self-discover their MIS neighbor one
	// round after it is admitted (exactly like the PBBS implementation
	// the paper measures), while the idealized Algorithm 2 removes them
	// in the same step. RootSetMIS implements the idealized semantics
	// and is tested for exact equality separately.
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random", graph.Random(800, 4000, 8)},
		{"rmat", graph.RMat(9, 1500, 9, graph.DefaultRMatOptions())},
		{"complete", graph.Complete(50)},
		{"path", graph.Path(300)},
	} {
		ord := NewRandomOrder(c.g.NumVertices(), 31)
		r := ParallelMIS(c.g, ord, Options{})
		info := DependenceSteps(c.g, ord)
		if int(r.Stats.Rounds) < info.Steps || int(r.Stats.Rounds) > 2*info.Steps+1 {
			t.Errorf("%s: ParallelMIS rounds %d outside [depLen, 2*depLen+1] for depLen %d",
				c.name, r.Stats.Rounds, info.Steps)
		}
	}
}

func TestFullPrefixWorkExceedsSequential(t *testing.T) {
	// The paper's Figure 1(a): at the full prefix, total work (attempts)
	// is well above N because blocked vertices retry every round.
	g, ord := randomGraphAndOrder(5000, 25000, 77)
	full := ParallelMIS(g, ord, Options{})
	ratio := float64(full.Stats.Attempts) / float64(g.NumVertices())
	if ratio < 1.5 {
		t.Errorf("full-prefix work/N = %.2f, expected the paper's ~2-3x regime", ratio)
	}
	if ratio > 10 {
		t.Errorf("full-prefix work/N = %.2f, implausibly high", ratio)
	}
}

func TestRootSetStepsEqualDependenceLength(t *testing.T) {
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random", graph.Random(500, 2000, 8)},
		{"rmat", graph.RMat(9, 1500, 9, graph.DefaultRMatOptions())},
		{"grid", graph.Grid2D(20, 20)},
		{"complete", graph.Complete(40)},
		{"path", graph.Path(300)},
	} {
		ord := NewRandomOrder(c.g.NumVertices(), 21)
		r := RootSetMIS(c.g, ord, Options{})
		info := DependenceSteps(c.g, ord)
		if int(r.Stats.Rounds) != info.Steps {
			t.Errorf("%s: rootset steps %d != analyzer dependence length %d",
				c.name, r.Stats.Rounds, info.Steps)
		}
	}
}

func TestDependenceStepsMatchesSequentialSet(t *testing.T) {
	g, ord := randomGraphAndOrder(800, 4000, 33)
	info := DependenceSteps(g, ord)
	want := SequentialMIS(g, ord)
	for v := 0; v < g.NumVertices(); v++ {
		if info.InSet[v] != want.InSet[v] {
			t.Fatalf("analyzer and sequential disagree on vertex %d", v)
		}
	}
}

func TestDependenceCompleteGraphIsO1(t *testing.T) {
	// On K_n the dependence length is O(1): the first vertex kills
	// everyone.
	g := graph.Complete(500)
	info := DependenceSteps(g, NewRandomOrder(500, 4))
	if info.Steps != 1 {
		t.Errorf("K_500 dependence length = %d, want 1", info.Steps)
	}
	if lp := LongestPath(g, NewRandomOrder(500, 4)); lp != 500 {
		t.Errorf("K_500 longest path = %d, want 500 (the paper's contrast)", lp)
	}
}

func TestDependencePathIdentityOrderIsWorstCase(t *testing.T) {
	// Path with identity order: vertex 2k waits for 2k-2, giving a
	// dependence chain of about n/2.
	n := 100
	g := graph.Path(n)
	info := DependenceSteps(g, IdentityOrder(n))
	if info.Steps < n/2-1 {
		t.Errorf("identity-order path dependence = %d, want about n/2", info.Steps)
	}
	// Random order drops it to O(log n).
	randInfo := DependenceSteps(g, NewRandomOrder(n, 77))
	if randInfo.Steps >= info.Steps {
		t.Errorf("random order (%d) not better than identity (%d)", randInfo.Steps, info.Steps)
	}
}

func TestDependenceLengthPolylogGrowth(t *testing.T) {
	// Theorem 3.5: dependence length should be O(log^2 n) w.h.p.
	// Empirically for sparse random graphs it is well under
	// 4*log2(n)^2; assert that generous envelope so the test is robust.
	for _, n := range []int{1000, 4000, 16000} {
		g := graph.Random(n, 5*n, uint64(n))
		info := DependenceSteps(g, NewRandomOrder(n, uint64(n)+1))
		log2n := 0
		for v := n; v > 1; v >>= 1 {
			log2n++
		}
		bound := 4 * log2n * log2n
		if info.Steps > bound {
			t.Errorf("n=%d: dependence length %d exceeds envelope %d", n, info.Steps, bound)
		}
	}
}

func TestLongestPathUpperBoundsDependence(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64) bool {
		n := int(rawN%60) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		ord := NewRandomOrder(n, seed+5)
		return DependenceSteps(g, ord).Steps <= LongestPath(g, ord)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPrefixLongestPathMonotone(t *testing.T) {
	g, ord := randomGraphAndOrder(1000, 5000, 6)
	prev := 0
	for _, p := range []int{10, 100, 500, 1000} {
		lp := PrefixLongestPath(g, ord, p)
		if lp < prev {
			t.Errorf("prefix longest path decreased: %d at %d", lp, p)
		}
		prev = lp
	}
	if full := PrefixLongestPath(g, ord, 1000); full != LongestPath(g, ord) {
		t.Errorf("full-prefix longest path %d != longest path %d", full, LongestPath(g, ord))
	}
}

func TestMaxDegreeAfterPrefixDecreases(t *testing.T) {
	// Lemma 3.1: after processing an (l/d)-prefix, remaining degrees
	// drop below d. Check the trend on a random graph.
	g, ord := randomGraphAndOrder(4000, 40000, 12)
	d0 := g.MaxDegree()
	dHalf := MaxDegreeAfterPrefix(g, ord, 2000)
	dAll := MaxDegreeAfterPrefix(g, ord, 4000)
	if dHalf >= d0 {
		t.Errorf("degree did not decrease: before=%d after-half=%d", d0, dHalf)
	}
	if dAll != 0 {
		t.Errorf("after processing everything max degree = %d, want 0", dAll)
	}
}

func TestPrefixInternalEdgesSparse(t *testing.T) {
	// Lemma 4.3: a (k/d)-prefix has O(k|P|) internal edges in
	// expectation. With k = 0.5 the internal edge count should be well
	// below |P|.
	n := 10000
	g := graph.Random(n, 5*n, 3) // average degree 10
	ord := NewRandomOrder(n, 4)
	d := g.MaxDegree()
	prefix := n / (2 * d) // k = 1/2
	edges, withInternal := PrefixInternalEdges(g, ord, prefix)
	if edges > int64(prefix) {
		t.Errorf("(1/2d)-prefix has %d internal edges for |P|=%d, want sublinear", edges, prefix)
	}
	if withInternal > 2*int(edges) {
		t.Errorf("vertices with internal edges %d > 2x internal edges %d (Lemma 4.4 violated)",
			withInternal, edges)
	}
}

func TestLubyProducesMaximalIndependentSet(t *testing.T) {
	for _, c := range []*graph.Graph{
		graph.Random(500, 2500, 31),
		graph.RMat(9, 2000, 32, graph.DefaultRMatOptions()),
		graph.Complete(50),
		graph.Star(60),
		graph.Empty(40),
	} {
		r := LubyMIS(c, 123, Options{})
		if !IsMaximalIndependentSet(c, r.InSet) {
			t.Errorf("Luby result not a maximal independent set on %v", c)
		}
	}
}

func TestLubyDeterministicInSeed(t *testing.T) {
	g := graph.Random(600, 3000, 2)
	a := LubyMIS(g, 7, Options{})
	b := LubyMIS(g, 7, Options{})
	if !a.Equal(b) {
		t.Error("Luby not deterministic for a fixed seed")
	}
	c := LubyMIS(g, 8, Options{})
	if a.Equal(c) {
		t.Log("Luby produced identical sets for different seeds (possible but unlikely)")
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	// Luby's algorithm finishes in O(log n) rounds w.h.p.
	g := graph.Random(20000, 100000, 5)
	r := LubyMIS(g, 1, Options{})
	if r.Stats.Rounds > 40 {
		t.Errorf("Luby rounds = %d on n=20000, want O(log n)", r.Stats.Rounds)
	}
}

func TestLubyDoesMoreWorkThanPrefix(t *testing.T) {
	// The paper's practical point: the prefix-based algorithm with a
	// good prefix size performs less work than Luby.
	g, ord := randomGraphAndOrder(20000, 100000, 44)
	luby := LubyMIS(g, 3, Options{})
	pref := PrefixMIS(g, ord, Options{PrefixFrac: 0.01})
	if luby.Stats.EdgeInspections <= pref.Stats.EdgeInspections {
		t.Errorf("expected Luby (%d inspections) to exceed prefix-based (%d)",
			luby.Stats.EdgeInspections, pref.Stats.EdgeInspections)
	}
}

func TestVerifyLexFirstCatchesWrongSet(t *testing.T) {
	g, ord := randomGraphAndOrder(100, 300, 8)
	r := SequentialMIS(g, ord)
	// Corrupt: flip one vertex.
	bad := &Result{InSet: append([]bool(nil), r.InSet...), Set: r.Set}
	bad.InSet[ord.Order[0]] = !bad.InSet[ord.Order[0]]
	if err := VerifyLexFirst(g, ord, bad); err == nil {
		t.Error("VerifyLexFirst accepted a corrupted result")
	}
	short := &Result{InSet: make([]bool, 5)}
	if err := VerifyLexFirst(g, ord, short); err == nil {
		t.Error("VerifyLexFirst accepted a short result")
	}
}

func TestIsIndependentSetAndMaximal(t *testing.T) {
	g := graph.Path(4)
	if !IsIndependentSet(g, []bool{true, false, true, false}) {
		t.Error("independent set rejected")
	}
	if IsIndependentSet(g, []bool{true, true, false, false}) {
		t.Error("adjacent pair accepted")
	}
	if IsMaximalIndependentSet(g, []bool{true, false, false, false}) {
		t.Error("non-maximal set accepted")
	}
	if !IsMaximalIndependentSet(g, []bool{false, true, false, true}) {
		t.Error("maximal set rejected")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Rounds: 3, Attempts: 10, EdgeInspections: 20, PrefixSize: 5}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestResultSetSorted(t *testing.T) {
	g, ord := randomGraphAndOrder(1000, 4000, 2)
	r := PrefixMIS(g, ord, Options{})
	for i := 1; i < len(r.Set); i++ {
		if r.Set[i-1] >= r.Set[i] {
			t.Fatalf("Set not sorted at %d", i)
		}
	}
	count := 0
	for _, in := range r.InSet {
		if in {
			count++
		}
	}
	if count != r.Size() {
		t.Errorf("InSet count %d != Set size %d", count, r.Size())
	}
}

func BenchmarkSequentialMIS(b *testing.B) {
	g, ord := randomGraphAndOrder(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SequentialMIS(g, ord)
	}
}

func BenchmarkPrefixMIS(b *testing.B) {
	g, ord := randomGraphAndOrder(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PrefixMIS(g, ord, Options{PrefixFrac: 0.01})
	}
}

func BenchmarkRootSetMIS(b *testing.B) {
	g, ord := randomGraphAndOrder(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RootSetMIS(g, ord, Options{})
	}
}

func BenchmarkLubyMIS(b *testing.B) {
	g, _ := randomGraphAndOrder(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LubyMIS(g, uint64(i), Options{})
	}
}
