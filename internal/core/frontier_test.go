package core

import (
	"testing"
)

// TestFrontierQueueDrainOrder checks that buckets come out in
// increasing key order regardless of push order.
func TestFrontierQueueDrainOrder(t *testing.T) {
	var q FrontierQueue
	q.Reset(130) // spans three bitmap words
	pushes := []struct {
		item int32
		key  int
	}{{7, 129}, {1, 0}, {2, 0}, {5, 64}, {3, 63}, {6, 65}, {4, 63}}
	for _, p := range pushes {
		q.Push(p.item, p.key)
	}
	var gotKeys []int
	var gotItems []int32
	for {
		var buf []int32
		buf, key, ok := q.PopBucket(buf)
		if !ok {
			break
		}
		gotKeys = append(gotKeys, key)
		gotItems = append(gotItems, buf...)
	}
	wantKeys := []int{0, 63, 64, 65, 129}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("drained %v buckets, want %v", gotKeys, wantKeys)
	}
	for i, k := range wantKeys {
		if gotKeys[i] != k {
			t.Fatalf("bucket %d has key %d, want %d", i, gotKeys[i], k)
		}
	}
	wantItems := []int32{1, 2, 3, 4, 5, 6, 7}
	for i, it := range wantItems {
		if gotItems[i] != it {
			t.Fatalf("item %d is %d, want %d (all: %v)", i, gotItems[i], it, gotItems)
		}
	}
}

// TestFrontierQueueSameBucketPushes checks the PopBucket/TakeCurrent
// fixed-point protocol: pushes into the bucket being drained are
// visible through TakeCurrent and never alias the popped items.
func TestFrontierQueueSameBucketPushes(t *testing.T) {
	var q FrontierQueue
	q.Reset(8)
	q.Push(1, 3)
	q.Push(2, 3)
	active, key, ok := q.PopBucket(nil)
	if !ok || key != 3 || len(active) != 2 {
		t.Fatalf("PopBucket = %v key %d ok %v", active, key, ok)
	}
	// Simulate a flip during the drain: push back into bucket 3 and
	// into a later bucket.
	q.Push(9, 3)
	q.Push(8, 5)
	if active[0] != 1 || active[1] != 2 {
		t.Fatalf("same-bucket push clobbered the popped items: %v", active)
	}
	active = q.TakeCurrent(active[:0])
	if len(active) != 1 || active[0] != 9 {
		t.Fatalf("TakeCurrent = %v, want [9]", active)
	}
	if got := q.TakeCurrent(active[:0]); len(got) != 0 {
		t.Fatalf("second TakeCurrent = %v, want empty", got)
	}
	active, key, ok = q.PopBucket(active[:0])
	if !ok || key != 5 || len(active) != 1 || active[0] != 8 {
		t.Fatalf("PopBucket after drain = %v key %d ok %v", active, key, ok)
	}
	if _, _, ok := q.PopBucket(nil); ok {
		t.Fatal("queue should be empty")
	}
}

// TestFrontierQueueResetAfterAbort checks that Reset empties buckets an
// aborted drain left behind, whether the key space shrinks or grows
// (growth must not lose the old bitmap, or the leftovers survive).
func TestFrontierQueueResetAfterAbort(t *testing.T) {
	var q FrontierQueue
	q.Reset(100)
	q.Push(1, 99)
	q.Push(2, 0)
	// Abort without draining; a smaller universe must not see leftovers.
	q.Reset(10)
	q.Push(5, 4)
	active, key, ok := q.PopBucket(nil)
	if !ok || key != 4 || len(active) != 1 || active[0] != 5 {
		t.Fatalf("PopBucket after Reset = %v key %d ok %v", active, key, ok)
	}
	if _, _, ok := q.PopBucket(nil); ok {
		t.Fatal("leftover items survived a shrinking Reset")
	}
	// Abort again, then grow the key space past the bitmap's capacity:
	// the leftover in bucket 5 must not resurface.
	q.Push(7, 5)
	q.Reset(640)
	q.Push(8, 5)
	active, key, ok = q.PopBucket(nil)
	if !ok || key != 5 || len(active) != 1 || active[0] != 8 {
		t.Fatalf("PopBucket after growing Reset = %v key %d ok %v", active, key, ok)
	}
	if _, _, ok := q.PopBucket(nil); ok {
		t.Fatal("leftover items survived a growing Reset")
	}
}

// TestFrontierBucketShift checks the width chooser: at most target
// buckets, never wider than needed.
func TestFrontierBucketShift(t *testing.T) {
	cases := []struct {
		n, target int
		want      uint
	}{
		{0, 1024, 0},
		{1, 1024, 0},
		{1024, 1024, 0},
		{1025, 1024, 1},
		{2048, 1024, 1},
		{2049, 1024, 2},
		{1 << 20, 1024, 10},
		{5, 0, 3}, // target clamps to 1
	}
	for _, c := range cases {
		if got := FrontierBucketShift(c.n, c.target); got != c.want {
			t.Errorf("FrontierBucketShift(%d, %d) = %d, want %d", c.n, c.target, got, c.want)
		}
		if c.n > 0 {
			shift := FrontierBucketShift(c.n, c.target)
			buckets := ((c.n - 1) >> shift) + 1
			target := c.target
			if target < 1 {
				target = 1
			}
			if buckets > target {
				t.Errorf("n=%d target=%d: %d buckets exceeds target", c.n, c.target, buckets)
			}
		}
	}
}
