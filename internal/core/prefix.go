package core

import (
	"context"

	"repro/internal/engine"
	"repro/internal/graph"
)

// PrefixMIS computes the lexicographically-first MIS of g under ord with
// the paper's Algorithm 3 / Theorem 4.5: the prefix-based algorithm used
// in all of the paper's experiments. Each round takes the earliest (up
// to) prefix-size unresolved vertices as the active window and runs one
// step of Algorithm 2 on it: every active vertex checks its earlier
// neighbors against the state at the start of the round, vertices whose
// earlier neighbors are all out join the MIS, vertices with an earlier
// MIS neighbor drop out, and the rest retry in the next round together
// with newly admitted vertices.
//
// Rounds are strictly synchronous — the check phase reads only statuses
// written in previous rounds, and the update phase writes each vertex's
// own status — so the result is the sequential greedy MIS for any prefix
// size and thread count, and no atomics are needed at all (the fork-join
// barrier between phases is the only synchronization). One deliberate
// fidelity note: like the PBBS implementation the paper measures,
// discarded vertices discover their accepted neighbor by checking, one
// round after it is admitted, so the executed round count for a full
// prefix lies between the dependence length and twice the dependence
// length plus one; RootSetMIS implements the idealized "remove roots
// and their children in the same step" semantics and its step count
// equals the dependence length exactly.
//
// The prefix size trades work for parallelism (the subject of Figure 1):
// prefix 1 is the sequential algorithm (Attempts = n, Rounds = n); the
// full prefix is Algorithm 2 (Rounds = dependence length, maximum
// redundant work).
func PrefixMIS(g *graph.Graph, ord Order, opt Options) *Result {
	res, err := PrefixMISCtx(context.Background(), g, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixMISCtx is PrefixMIS with cooperative cancellation: ctx is
// checked once per round (the hot inner loops never see it), so a
// cancelled context aborts the run within one round and returns
// ctx.Err(). Pooled buffers come from opt.Workspace when set.
//
// The round loop itself is the shared speculative-prefix engine
// (internal/engine); this function contributes only the MIS problem:
// the check that decides a vertex against its earlier neighbors and
// the commit that publishes the decision.
func PrefixMISCtx(ctx context.Context, g *graph.Graph, ord Order, opt Options) (*Result, error) {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("core: order size does not match graph")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := Grow32(&ws.status, n)
	Fill32(status, statusUndecided)

	var prob engine.Problem
	if opt.Pointered {
		ptr := Grow32(&ws.ptr, n)
		Fill32(ptr, 0)
		prob = &misPointeredProblem{status: status, parents: buildParents(g, ord), ptr: ptr}
	} else {
		prob = &misProblem{g: g, rank: ord.Rank, status: status}
	}
	stats, err := engine.Run(ctx, ord.Order, prob, opt.engineOptions(&ws.eng))
	if err != nil {
		return nil, err
	}
	return newResult(status, stats), nil
}

// misProblem is the engine adapter for the PBBS-style scratch check:
// the check phase reads only statuses written in previous rounds, and
// the commit phase writes each vertex's own status — no atomics at
// all, the fork-join barrier between phases is the synchronization.
type misProblem struct {
	g      *graph.Graph
	rank   []int32
	status []int32
}

func (p *misProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		var insp int64
		outcome[i], insp = checkScratch(p.g, act[i], p.rank, p.status)
		local += insp
	}
	return local
}

func (p *misProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != statusUndecided {
			p.status[act[i]] = outcome[i]
		}
	}
	return 0
}

// misPointeredProblem is the engine adapter for the Lemma 4.1
// parent-pointer check; ptr[v] is v's private scan cursor, written only
// by v's own check, so the phase stays write-disjoint.
type misPointeredProblem struct {
	status  []int32
	parents *parentsCSR
	ptr     []int32
}

func (p *misPointeredProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		var insp int64
		outcome[i], insp = checkPointered(act[i], p.status, p.parents, p.ptr)
		local += insp
	}
	return local
}

func (p *misPointeredProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != statusUndecided {
			p.status[act[i]] = outcome[i]
		}
	}
	return 0
}

// checkScratch decides vertex v by scanning all of its earlier neighbors
// (the PBBS-style check the paper measures): if any earlier neighbor is
// in the MIS, v is out; if all are out, v is in; otherwise v stays
// undecided and is retried next round. Returns the decision and the
// number of neighbor inspections performed.
func checkScratch(g *graph.Graph, v int32, rank []int32, status []int32) (int32, int64) {
	rv := rank[v]
	sawUndecided := false
	var inspections int64
	for _, u := range g.Neighbors(v) {
		if rank[u] >= rv {
			continue
		}
		inspections++
		switch status[u] {
		case statusIn:
			return statusOut, inspections
		case statusUndecided:
			sawUndecided = true
		}
	}
	if sawUndecided {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// checkPointered is checkScratch with the parent-pointer optimization of
// Lemma 4.1: the scan resumes at the first parent that blocked the
// previous attempt, charging each skipped (dead) parent once. This caps
// total check work at O(m) regardless of the number of retries, at the
// cost of building the parent lists up front.
func checkPointered(v int32, status []int32, parents *parentsCSR, ptr []int32) (int32, int64) {
	ps := parents.of(v)
	i := ptr[v]
	var inspections int64
	for int(i) < len(ps) {
		inspections++
		switch status[ps[i]] {
		case statusOut:
			i++
		case statusIn:
			ptr[v] = i
			return statusOut, inspections
		default: // undecided: stall here and retry next round
			ptr[v] = i
			return statusUndecided, inspections
		}
	}
	ptr[v] = i
	return statusIn, inspections
}

// ParallelMIS is Algorithm 2: the prefix-based algorithm run with the
// full remaining input as the prefix, i.e. every undecided vertex is
// attempted every round. Its Rounds statistic is exactly the dependence
// length of the priority DAG, the quantity Theorem 3.5 bounds by
// O(log^2 n).
func ParallelMIS(g *graph.Graph, ord Order, opt Options) *Result {
	res, err := ParallelMISCtx(context.Background(), g, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// ParallelMISCtx is ParallelMIS with cooperative cancellation and
// workspace reuse (see PrefixMISCtx).
func ParallelMISCtx(ctx context.Context, g *graph.Graph, ord Order, opt Options) (*Result, error) {
	opt.Adaptive = false // the full prefix is the point of Algorithm 2
	opt.PrefixSize = g.NumVertices()
	if opt.PrefixSize == 0 {
		opt.PrefixSize = 1
	}
	return PrefixMISCtx(ctx, g, ord, opt)
}
