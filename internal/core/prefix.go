package core

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// PrefixMIS computes the lexicographically-first MIS of g under ord with
// the paper's Algorithm 3 / Theorem 4.5: the prefix-based algorithm used
// in all of the paper's experiments. Each round takes the earliest (up
// to) prefix-size unresolved vertices as the active window and runs one
// step of Algorithm 2 on it: every active vertex checks its earlier
// neighbors against the state at the start of the round, vertices whose
// earlier neighbors are all out join the MIS, vertices with an earlier
// MIS neighbor drop out, and the rest retry in the next round together
// with newly admitted vertices.
//
// Rounds are strictly synchronous — the check phase reads only statuses
// written in previous rounds, and the update phase writes each vertex's
// own status — so the result is the sequential greedy MIS for any prefix
// size and thread count, and no atomics are needed at all (the fork-join
// barrier between phases is the only synchronization). One deliberate
// fidelity note: like the PBBS implementation the paper measures,
// discarded vertices discover their accepted neighbor by checking, one
// round after it is admitted, so the executed round count for a full
// prefix lies between the dependence length and twice the dependence
// length plus one; RootSetMIS implements the idealized "remove roots
// and their children in the same step" semantics and its step count
// equals the dependence length exactly.
//
// The prefix size trades work for parallelism (the subject of Figure 1):
// prefix 1 is the sequential algorithm (Attempts = n, Rounds = n); the
// full prefix is Algorithm 2 (Rounds = dependence length, maximum
// redundant work).
func PrefixMIS(g *graph.Graph, ord Order, opt Options) *Result {
	res, err := PrefixMISCtx(context.Background(), g, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixMISCtx is PrefixMIS with cooperative cancellation: ctx is
// checked once per round (the hot inner loops never see it), so a
// cancelled context aborts the run within one round and returns
// ctx.Err(). Pooled buffers come from opt.Workspace when set.
func PrefixMISCtx(ctx context.Context, g *graph.Graph, ord Order, opt Options) (*Result, error) {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("core: order size does not match graph")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := Grow32(&ws.status, n)
	Fill32(status, statusUndecided)
	prefix := opt.prefixFor(n)
	grain := opt.grain()
	rank := ord.Rank
	// The window is the per-round cap on attempted iterates: the fixed
	// prefix, or — under adaptive scheduling — whatever the controller
	// settled on after the previous round. Any window sequence yields
	// the sequential greedy MIS: the active set always holds the
	// earliest unresolved vertices in rank order, and the check phase
	// only commits vertices whose earlier neighbors are all resolved.
	window := prefix
	var ctrl *AdaptiveController
	if opt.Adaptive {
		ctrl = NewAdaptiveController(opt.adaptiveInitial(n), AdaptiveGrowCap(n), n)
		window = ctrl.Window()
	}
	maxWindow := window

	var parents *parentsCSR
	var ptr []int32
	if opt.Pointered {
		parents = buildParents(g, ord)
		ptr = Grow32(&ws.ptr, n)
		Fill32(ptr, 0)
	}

	stats := Stats{}
	active := GrowActive(&ws.active, window)
	// Hand grown frontier storage back to the workspace: adaptive
	// windows outgrow the initial capacity by appends, which would
	// otherwise leave the pooled buffer at its original size.
	defer func() { ws.active = active[:0] }()
	var outcome []int32
	nextRank := 0
	resolved := 0
	var inspections atomic.Int64
	var prevInspections int64

	for resolved < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Refill the window with the earliest unresolved vertices.
		for len(active) < window && nextRank < n {
			active = append(active, ord.Order[nextRank])
			nextRank++
		}
		// A shrunken window attempts only the earliest unresolved
		// vertices; the tail of the active set waits for a later round.
		act := active
		if len(act) > window {
			act = act[:window]
		}
		roundWindow := window
		if roundWindow > maxWindow {
			maxWindow = roundWindow
		}
		stats.Rounds++
		stats.Attempts += int64(len(act))
		outcome = Grow32(&ws.outcome, len(act))

		// Check phase: decide each active vertex against the statuses
		// of the previous rounds. Statuses are not written here, so the
		// reads are stable and race-free.
		if opt.Pointered {
			parallel.ForRange(len(act), grain, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					var insp int64
					outcome[i], insp = checkPointered(act[i], status, parents, ptr)
					local += insp
				}
				inspections.Add(local)
			})
		} else {
			parallel.ForRange(len(act), grain, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					var insp int64
					outcome[i], insp = checkScratch(g, act[i], rank, status)
					local += insp
				}
				inspections.Add(local)
			})
		}

		// Update phase: apply the decisions. Each vertex writes only its
		// own status.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if outcome[i] != statusUndecided {
					status[act[i]] = outcome[i]
				}
			}
		})

		before := len(act)
		kept := parallel.PackInPlace(act, grain, func(i int) bool {
			return outcome[i] == statusUndecided
		})
		if len(act) < len(active) {
			// Slide the unattempted tail up against the kept retries;
			// both are rank-sorted and every kept retry precedes the
			// tail, so the active set stays the earliest unresolved
			// vertices in order.
			moved := copy(active[len(kept):], active[len(act):])
			active = active[:len(kept)+moved]
		} else {
			active = kept
		}
		resolvedThis := before - len(kept)
		resolved += resolvedThis
		cur := inspections.Load()
		if ctrl != nil {
			ctrl.Observe(before, resolvedThis, cur-prevInspections)
			window = ctrl.Window()
		}
		if opt.OnRound != nil {
			opt.OnRound(RoundStat{
				Round:       stats.Rounds,
				Prefix:      roundWindow,
				Attempted:   before,
				Resolved:    resolvedThis,
				Inspections: cur - prevInspections,
			})
		}
		prevInspections = cur
	}
	stats.PrefixSize = maxWindow
	stats.EdgeInspections = inspections.Load()
	return newResult(status, stats), nil
}

// checkScratch decides vertex v by scanning all of its earlier neighbors
// (the PBBS-style check the paper measures): if any earlier neighbor is
// in the MIS, v is out; if all are out, v is in; otherwise v stays
// undecided and is retried next round. Returns the decision and the
// number of neighbor inspections performed.
func checkScratch(g *graph.Graph, v int32, rank []int32, status []int32) (int32, int64) {
	rv := rank[v]
	sawUndecided := false
	var inspections int64
	for _, u := range g.Neighbors(v) {
		if rank[u] >= rv {
			continue
		}
		inspections++
		switch status[u] {
		case statusIn:
			return statusOut, inspections
		case statusUndecided:
			sawUndecided = true
		}
	}
	if sawUndecided {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// checkPointered is checkScratch with the parent-pointer optimization of
// Lemma 4.1: the scan resumes at the first parent that blocked the
// previous attempt, charging each skipped (dead) parent once. This caps
// total check work at O(m) regardless of the number of retries, at the
// cost of building the parent lists up front.
func checkPointered(v int32, status []int32, parents *parentsCSR, ptr []int32) (int32, int64) {
	ps := parents.of(v)
	i := ptr[v]
	var inspections int64
	for int(i) < len(ps) {
		inspections++
		switch status[ps[i]] {
		case statusOut:
			i++
		case statusIn:
			ptr[v] = i
			return statusOut, inspections
		default: // undecided: stall here and retry next round
			ptr[v] = i
			return statusUndecided, inspections
		}
	}
	ptr[v] = i
	return statusIn, inspections
}

// ParallelMIS is Algorithm 2: the prefix-based algorithm run with the
// full remaining input as the prefix, i.e. every undecided vertex is
// attempted every round. Its Rounds statistic is exactly the dependence
// length of the priority DAG, the quantity Theorem 3.5 bounds by
// O(log^2 n).
func ParallelMIS(g *graph.Graph, ord Order, opt Options) *Result {
	res, err := ParallelMISCtx(context.Background(), g, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// ParallelMISCtx is ParallelMIS with cooperative cancellation and
// workspace reuse (see PrefixMISCtx).
func ParallelMISCtx(ctx context.Context, g *graph.Graph, ord Order, opt Options) (*Result, error) {
	opt.Adaptive = false // the full prefix is the point of Algorithm 2
	opt.PrefixSize = g.NumVertices()
	if opt.PrefixSize == 0 {
		opt.PrefixSize = 1
	}
	return PrefixMISCtx(ctx, g, ord, opt)
}
