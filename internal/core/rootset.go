package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// RootSetMIS computes the lexicographically-first MIS of g under ord
// with the linear-work implementation of Lemma 4.2: the algorithm
// explicitly maintains the set of roots of the remaining priority DAG.
// Each step adds the roots to the MIS, marks their children out, and
// runs a misCheck on the out-neighbors' children to discover the next
// root set. Each parent edge is skipped past at most once (the lazy
// deletion argument of Lemma 4.1), so total work is O(n + m); the number
// of steps equals the dependence length of the priority DAG exactly,
// which Theorem 3.5 bounds by O(log^2 n) w.h.p. for random orders.
func RootSetMIS(g *graph.Graph, ord Order, opt Options) *Result {
	res, err := RootSetMISCtx(context.Background(), g, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// RootSetMISCtx is RootSetMIS with cooperative cancellation (ctx is
// checked once per step) and workspace reuse.
func RootSetMISCtx(ctx context.Context, g *graph.Graph, ord Order, opt Options) (*Result, error) {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("core: order size does not match graph")
	}
	grain := opt.grain()
	parents := buildParents(g, ord)
	children := buildChildren(g, ord)

	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := Grow32(&ws.status, n)
	Fill32(status, statusUndecided)
	// ptr[v] indexes the first not-yet-skipped parent of v; parents
	// before it are known dead (lazy deletion, Lemma 4.1).
	ptr := Grow32(&ws.ptr, n)
	Fill32(ptr, 0)
	// claimStamp[v] records the last step at which some neighbor claimed
	// the right to misCheck v. This is the concurrent-write
	// deduplication of Lemma 4.2 ("whichever write succeeds is
	// responsible for the check"): per step, at most one worker checks v.
	claimStamp := Grow32(&ws.claim, n)
	Fill32(claimStamp, -1)

	stats := Stats{}
	var inspections atomic.Int64
	var prevInspections int64

	// Initial roots: vertices with no parents at all.
	frontier := parallel.PackIndex(n, grain, func(i int) bool {
		return parents.offsets[i] == parents.offsets[i+1]
	})

	undecided := n
	for undecided > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(frontier) == 0 {
			panic("core: RootSetMIS frontier empty with undecided vertices")
		}
		step := int32(stats.Rounds)
		stats.Rounds++
		stats.Attempts += int64(len(frontier))

		// Phase 1: accept roots and mark their children out. (A root's
		// earlier neighbors are already dead by definition.) The CAS
		// assigns each killed vertex to exactly one root so phase 2
		// traverses each killed vertex once.
		killedPerRoot := make([][]int32, len(frontier))
		var decidedThisStep atomic.Int64
		parallel.ForRange(len(frontier), grain, func(lo, hi int) {
			var local, decidedLocal int64
			for i := lo; i < hi; i++ {
				v := frontier[i]
				atomic.StoreInt32(&status[v], statusIn)
				decidedLocal++
				var killed []int32
				kids := children.of(v)
				local += int64(len(kids))
				for _, c := range kids {
					if atomic.CompareAndSwapInt32(&status[c], statusUndecided, statusOut) {
						killed = append(killed, c)
						decidedLocal++
					}
				}
				killedPerRoot[i] = killed
			}
			inspections.Add(local)
			decidedThisStep.Add(decidedLocal)
		})
		undecided -= int(decidedThisStep.Load())

		// Phase 2: misCheck the children of killed vertices; the
		// successful claimant packs ready vertices into the next
		// frontier. Claim-once-per-step means each candidate is examined
		// at most once per step.
		var mu sync.Mutex
		var chunks [][]int32
		parallel.ForRange(len(frontier), grain, func(lo, hi int) {
			var local int64
			var found []int32
			for i := lo; i < hi; i++ {
				for _, w := range killedPerRoot[i] {
					kids := children.of(w)
					local += int64(len(kids))
					for _, c := range kids {
						if atomic.LoadInt32(&status[c]) != statusUndecided {
							continue
						}
						old := atomic.LoadInt32(&claimStamp[c])
						if old == step || !atomic.CompareAndSwapInt32(&claimStamp[c], old, step) {
							continue // someone else claimed c this step
						}
						ready, insp := misCheck(c, status, parents, ptr)
						local += insp
						if ready {
							found = append(found, c)
						}
					}
				}
			}
			inspections.Add(local)
			if len(found) > 0 {
				mu.Lock()
				chunks = append(chunks, found)
				mu.Unlock()
			}
		})
		total := 0
		for _, ch := range chunks {
			total += len(ch)
		}
		next := make([]int32, 0, total)
		for _, ch := range chunks {
			next = append(next, ch...)
		}
		if opt.OnRound != nil {
			cur := inspections.Load()
			opt.OnRound(RoundStat{
				Round:       stats.Rounds,
				Attempted:   len(frontier),
				Resolved:    int(decidedThisStep.Load()),
				Inspections: cur - prevInspections,
			})
			prevInspections = cur
		}
		frontier = next
	}
	stats.EdgeInspections = inspections.Load()
	return newResult(status, stats), nil
}

// misCheck is the operation of Lemma 4.1: scan v's remaining parents,
// lazily deleting dead ones by advancing the pointer, and report whether
// none remain (v is a root of the remaining priority DAG). Work is
// charged to deleted edges plus O(1) per call.
func misCheck(v int32, status []int32, parents *parentsCSR, ptr []int32) (ready bool, inspections int64) {
	ps := parents.of(v)
	i := ptr[v]
	for int(i) < len(ps) {
		inspections++
		if atomic.LoadInt32(&status[ps[i]]) == statusUndecided {
			ptr[v] = i
			return false, inspections
		}
		i++
	}
	ptr[v] = i
	return true, inspections
}
