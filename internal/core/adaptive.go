package core

import "repro/internal/engine"

// Adaptive prefix scheduling lives in internal/engine since the round
// loop itself moved there (the controller is part of the engine's
// window machinery); these aliases keep the core package's historical
// surface — the one the sibling packages, the facade and the tests
// grew against — pointing at the single implementation. See
// engine/adaptive.go for the policy discussion.

// AdaptiveController resizes the prefix window of one run. It is not
// safe for concurrent use; the round loop calls it between rounds.
type AdaptiveController = engine.AdaptiveController

// AdaptiveStartWindow is the initial window when no explicit
// PrefixSize/PrefixFrac seeds the controller.
const AdaptiveStartWindow = engine.AdaptiveStartWindow

// NewAdaptiveController returns a controller starting at window
// initial, bounded by [1, max]; growth stops at growCap.
func NewAdaptiveController(initial, growCap, max int) *AdaptiveController {
	return engine.NewAdaptiveController(initial, growCap, max)
}

// AdaptiveGrowCap returns the parallel-slack growth cap for an input
// of n items (see engine.AdaptiveGrowCap).
func AdaptiveGrowCap(n int) int { return engine.AdaptiveGrowCap(n) }

// adaptiveInitial resolves the initial window of an adaptive run: an
// explicit PrefixSize or PrefixFrac seeds the controller (the fixed
// configuration becomes the starting point), otherwise the run starts
// at AdaptiveStartWindow, clamped to [1, n].
func (o Options) adaptiveInitial(n int) int {
	return o.engineOptions(nil).AdaptiveInitial(n)
}

// adaptiveSlackChunks mirrors engine.AdaptiveSlackChunks for the cap
// arithmetic tests pinned in this package.
const adaptiveSlackChunks = engine.AdaptiveSlackChunks
