// Package core implements the paper's primary contribution for maximal
// independent set: the sequential greedy algorithm (Algorithm 1), its
// trivial parallelization (Algorithm 2), the linear-work root-set
// implementation (Lemma 4.2), the prefix-based algorithm used in the
// paper's experiments (Algorithm 3 / Theorem 4.5), Luby's Algorithm A as
// the baseline, and analyzers for the priority-DAG quantities the
// theory section bounds (dependence length, longest paths in prefixes,
// degree reduction).
//
// All deterministic algorithms are parameterized by an Order (a
// permutation of the vertices, the paper's pi). For a fixed order they
// return bit-identical results — the lexicographically-first MIS —
// regardless of the number of threads or the prefix size. Luby's
// algorithm intentionally does not share this property: it regenerates
// priorities every round.
package core

import (
	"fmt"

	"repro/internal/rng"
)

// Order is a total priority order over n items (vertices here; the
// matching package reuses it for edges). Order[r] is the item with rank
// r and Rank[v] is the rank of item v; rank 0 is the earliest (highest
// priority). The two arrays are inverse permutations of each other.
type Order struct {
	Order []int32
	Rank  []int32
}

// NewRandomOrder returns a uniformly random Order on n items,
// deterministic in (n, seed).
func NewRandomOrder(n int, seed uint64) Order {
	ord := rng.Perm(n, seed)
	return Order{Order: ord, Rank: rng.InversePerm(ord)}
}

// IdentityOrder returns the order in which item i has rank i. Greedy MIS
// under the identity order on adversarial inputs is the P-complete
// lexicographically-first MIS instance; it is useful in tests to build
// worst-case dependence chains.
func IdentityOrder(n int) Order {
	id := rng.Identity(n)
	return Order{Order: id, Rank: rng.Identity(n)}
}

// FromOrder builds an Order from an explicit permutation giving the item
// at each rank. It panics if order is not a permutation.
func FromOrder(order []int32) Order {
	if !rng.IsPerm(order) {
		panic("core: FromOrder argument is not a permutation")
	}
	o := append([]int32(nil), order...)
	return Order{Order: o, Rank: rng.InversePerm(o)}
}

// FromRank builds an Order from an explicit rank array mapping each item
// to its priority rank. It panics if rank is not a permutation.
func FromRank(rank []int32) Order {
	if !rng.IsPerm(rank) {
		panic("core: FromRank argument is not a permutation")
	}
	r := append([]int32(nil), rank...)
	return Order{Order: rng.InversePerm(r), Rank: r}
}

// Len returns the number of items ordered.
func (o Order) Len() int { return len(o.Order) }

// Earlier reports whether item a precedes item b in the order.
func (o Order) Earlier(a, b int32) bool { return o.Rank[a] < o.Rank[b] }

// Validate checks that Order and Rank are mutually inverse permutations.
func (o Order) Validate() error {
	if len(o.Order) != len(o.Rank) {
		return fmt.Errorf("core: order/rank length mismatch %d vs %d", len(o.Order), len(o.Rank))
	}
	if !rng.IsPerm(o.Order) {
		return fmt.Errorf("core: order is not a permutation")
	}
	for r, v := range o.Order {
		if o.Rank[v] != int32(r) {
			return fmt.Errorf("core: rank[%d] = %d, want %d", v, o.Rank[v], r)
		}
	}
	return nil
}
