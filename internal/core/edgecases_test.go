package core

import (
	"testing"

	"repro/internal/graph"
)

func TestLubyCompleteGraph(t *testing.T) {
	// On K_n one vertex wins round 1 and kills everyone: exactly one
	// round, one MIS member.
	g := graph.Complete(200)
	r := LubyMIS(g, 5, Options{})
	if r.Size() != 1 {
		t.Errorf("K200 Luby MIS size = %d, want 1", r.Size())
	}
	if r.Stats.Rounds != 1 {
		t.Errorf("K200 Luby rounds = %d, want 1", r.Stats.Rounds)
	}
}

func TestLubyEmptyAndEdgeless(t *testing.T) {
	if r := LubyMIS(graph.Empty(0), 1, Options{}); r.Size() != 0 {
		t.Error("Luby on empty graph returned vertices")
	}
	r := LubyMIS(graph.Empty(100), 1, Options{})
	if r.Size() != 100 {
		t.Errorf("Luby on edgeless graph: size %d, want 100", r.Size())
	}
	if r.Stats.Rounds != 1 {
		t.Errorf("Luby on edgeless graph: rounds %d, want 1", r.Stats.Rounds)
	}
}

func TestPrefixMISIsolatedVertices(t *testing.T) {
	// A matching plus isolated vertices: isolates always join the MIS.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g := graph.MustFromEdges(10, edges)
	ord := NewRandomOrder(10, 3)
	r := PrefixMIS(g, ord, Options{PrefixFrac: 1})
	for v := graph.Vertex(4); v < 10; v++ {
		if !r.InSet[v] {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
	if r.Size() != 8 { // one endpoint per edge + 6 isolates
		t.Errorf("MIS size = %d, want 8", r.Size())
	}
	if err := VerifyLexFirst(g, ord, r); err != nil {
		t.Error(err)
	}
}

func TestRootSetMISIsolatedOnlyGraph(t *testing.T) {
	g := graph.Empty(50)
	r := RootSetMIS(g, NewRandomOrder(50, 1), Options{})
	if r.Size() != 50 || r.Stats.Rounds != 1 {
		t.Errorf("edgeless rootset: size=%d rounds=%d", r.Size(), r.Stats.Rounds)
	}
}

func TestPrefixMISTwoVertices(t *testing.T) {
	g := graph.Path(2)
	for seed := uint64(0); seed < 8; seed++ {
		ord := NewRandomOrder(2, seed)
		r := PrefixMIS(g, ord, Options{PrefixSize: 2})
		// Exactly the earlier vertex is in the MIS.
		first := ord.Order[0]
		if !r.InSet[first] || r.InSet[1-first] {
			t.Errorf("seed %d: wrong K2 MIS %v", seed, r.Set)
		}
	}
}

func TestDependenceStepsEmptyGraph(t *testing.T) {
	info := DependenceSteps(graph.Empty(0), IdentityOrder(0))
	if info.Steps != 0 {
		t.Errorf("empty graph dependence = %d", info.Steps)
	}
	one := DependenceSteps(graph.Empty(7), NewRandomOrder(7, 1))
	if one.Steps != 1 {
		t.Errorf("edgeless dependence = %d, want 1", one.Steps)
	}
}

func TestMaxDegreeAfterPrefixEdgeCases(t *testing.T) {
	g := graph.Complete(10)
	ord := IdentityOrder(10)
	if d := MaxDegreeAfterPrefix(g, ord, 0); d != 9 {
		t.Errorf("empty prefix leaves max degree %d, want 9", d)
	}
	if d := MaxDegreeAfterPrefix(g, ord, 10); d != 0 {
		t.Errorf("full prefix leaves max degree %d, want 0", d)
	}
	// Prefix larger than n is clamped.
	if d := MaxDegreeAfterPrefix(g, ord, 99); d != 0 {
		t.Errorf("overlong prefix leaves max degree %d", d)
	}
}

func TestPrefixInternalEdgesFullPrefix(t *testing.T) {
	g := graph.Complete(8)
	ord := IdentityOrder(8)
	edges, with := PrefixInternalEdges(g, ord, 8)
	if edges != 28 {
		t.Errorf("full-prefix internal edges = %d, want 28", edges)
	}
	if with != 8 {
		t.Errorf("vertices with internal edges = %d, want 8", with)
	}
}

func TestOptionsPrefixResolution(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int
	}{
		{Options{}, 1000, 5},                 // default frac 0.005, exact product
		{Options{PrefixFrac: 2.0}, 100, 100}, // clamped to n
		{Options{PrefixFrac: 1e-9}, 100, 1},  // clamped to 1
		{Options{PrefixSize: 17}, 100, 17},   // absolute wins
		{Options{PrefixSize: 500}, 100, 100}, // clamped to n
		{Options{PrefixFrac: 0.25}, 100, 25}, // frac honored
		{Options{PrefixSize: -3}, 100, 1},    // negative: ⌈0.005·100⌉ = 1
		// Ceiling semantics: a fractional product rounds UP to the
		// documented ⌈frac·n⌉ instead of truncating down.
		{Options{PrefixFrac: 0.005}, 1100, 6}, // ⌈5.5⌉, int() used to give 5
		{Options{PrefixFrac: 0.005}, 300, 2},  // ⌈1.5⌉
		{Options{PrefixFrac: 1.0 / 3}, 10, 4}, // ⌈3.33⌉
		{Options{PrefixFrac: 0.003}, 999, 3},  // ⌈2.997⌉
		// Degenerate inputs: n = 0 and n = 1.
		{Options{}, 0, 0},
		{Options{PrefixFrac: 1}, 0, 0},
		{Options{PrefixSize: 7}, 0, 0},
		{Options{}, 1, 1},
		{Options{PrefixFrac: 1e-12}, 1, 1},
		{Options{PrefixFrac: 1}, 1, 1},
		// frac → 0 and frac = 1 at larger n.
		{Options{PrefixFrac: 1e-300}, 1 << 20, 1},
		{Options{PrefixFrac: 1}, 1 << 20, 1 << 20},
	}
	for i, c := range cases {
		if got := c.opt.prefixFor(c.n); got != c.want {
			t.Errorf("case %d: prefixFor(%d) = %d, want %d", i, c.n, got, c.want)
		}
	}
}

// TestCeilFracExactness pins the rounding fix: binary-float products a
// hair above an integer (the decimal 0.005 is not exactly
// representable) must not push the ceiling one past the documented
// value, while genuinely fractional products must round up.
func TestCeilFracExactness(t *testing.T) {
	// 0.005·n is an integer in decimal for every multiple of 200; the
	// float product oscillates a few ulps around it. The documented
	// value is exactly n/200.
	for n := 200; n <= 200_000; n += 200 {
		if got := CeilFrac(0.005, n); got != n/200 {
			t.Fatalf("CeilFrac(0.005, %d) = %d, want %d", n, got, n/200)
		}
	}
	// Same for 0.1·n over multiples of 10 (0.1 is the classic
	// non-representable decimal).
	for n := 10; n <= 100_000; n += 10 {
		if got := CeilFrac(0.1, n); got != n/10 {
			t.Fatalf("CeilFrac(0.1, %d) = %d, want %d", n, got, n/10)
		}
	}
	// Non-integer products take the ceiling.
	if got := CeilFrac(0.07, 100); got != 7 {
		t.Errorf("CeilFrac(0.07, 100) = %d, want 7", got)
	}
	if got := CeilFrac(0.0051, 1000); got != 6 {
		t.Errorf("CeilFrac(0.0051, 1000) = %d, want ⌈5.1⌉ = 6", got)
	}
	// Range edges.
	if got := CeilFrac(0, 100); got != 0 {
		t.Errorf("CeilFrac(0, 100) = %d, want 0", got)
	}
	if got := CeilFrac(-0.5, 100); got != 0 {
		t.Errorf("CeilFrac(-0.5, 100) = %d, want 0", got)
	}
	if got := CeilFrac(1, 100); got != 100 {
		t.Errorf("CeilFrac(1, 100) = %d, want 100", got)
	}
	if got := CeilFrac(7.5, 100); got != 100 {
		t.Errorf("CeilFrac(7.5, 100) = %d, want 100 (frac > 1 clamps)", got)
	}
	if got := CeilFrac(0.5, 0); got != 0 {
		t.Errorf("CeilFrac(0.5, 0) = %d, want 0", got)
	}
}

func TestLubyDifferentFromGreedyUsually(t *testing.T) {
	// Not a guarantee, but on a decent-size graph Luby's set should
	// differ from the greedy one for at least one of several seeds —
	// the "different results" the paper contrasts determinism against.
	g := graph.Random(500, 2500, 11)
	ord := NewRandomOrder(500, 12)
	want := SequentialMIS(g, ord)
	differs := false
	for seed := uint64(0); seed < 5; seed++ {
		if !LubyMIS(g, seed, Options{}).Equal(want) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("Luby agreed with greedy for 5 seeds straight (vanishingly unlikely)")
	}
}
