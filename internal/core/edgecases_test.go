package core

import (
	"testing"

	"repro/internal/graph"
)

func TestLubyCompleteGraph(t *testing.T) {
	// On K_n one vertex wins round 1 and kills everyone: exactly one
	// round, one MIS member.
	g := graph.Complete(200)
	r := LubyMIS(g, 5, Options{})
	if r.Size() != 1 {
		t.Errorf("K200 Luby MIS size = %d, want 1", r.Size())
	}
	if r.Stats.Rounds != 1 {
		t.Errorf("K200 Luby rounds = %d, want 1", r.Stats.Rounds)
	}
}

func TestLubyEmptyAndEdgeless(t *testing.T) {
	if r := LubyMIS(graph.Empty(0), 1, Options{}); r.Size() != 0 {
		t.Error("Luby on empty graph returned vertices")
	}
	r := LubyMIS(graph.Empty(100), 1, Options{})
	if r.Size() != 100 {
		t.Errorf("Luby on edgeless graph: size %d, want 100", r.Size())
	}
	if r.Stats.Rounds != 1 {
		t.Errorf("Luby on edgeless graph: rounds %d, want 1", r.Stats.Rounds)
	}
}

func TestPrefixMISIsolatedVertices(t *testing.T) {
	// A matching plus isolated vertices: isolates always join the MIS.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	g := graph.MustFromEdges(10, edges)
	ord := NewRandomOrder(10, 3)
	r := PrefixMIS(g, ord, Options{PrefixFrac: 1})
	for v := graph.Vertex(4); v < 10; v++ {
		if !r.InSet[v] {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
	if r.Size() != 8 { // one endpoint per edge + 6 isolates
		t.Errorf("MIS size = %d, want 8", r.Size())
	}
	if err := VerifyLexFirst(g, ord, r); err != nil {
		t.Error(err)
	}
}

func TestRootSetMISIsolatedOnlyGraph(t *testing.T) {
	g := graph.Empty(50)
	r := RootSetMIS(g, NewRandomOrder(50, 1), Options{})
	if r.Size() != 50 || r.Stats.Rounds != 1 {
		t.Errorf("edgeless rootset: size=%d rounds=%d", r.Size(), r.Stats.Rounds)
	}
}

func TestPrefixMISTwoVertices(t *testing.T) {
	g := graph.Path(2)
	for seed := uint64(0); seed < 8; seed++ {
		ord := NewRandomOrder(2, seed)
		r := PrefixMIS(g, ord, Options{PrefixSize: 2})
		// Exactly the earlier vertex is in the MIS.
		first := ord.Order[0]
		if !r.InSet[first] || r.InSet[1-first] {
			t.Errorf("seed %d: wrong K2 MIS %v", seed, r.Set)
		}
	}
}

func TestDependenceStepsEmptyGraph(t *testing.T) {
	info := DependenceSteps(graph.Empty(0), IdentityOrder(0))
	if info.Steps != 0 {
		t.Errorf("empty graph dependence = %d", info.Steps)
	}
	one := DependenceSteps(graph.Empty(7), NewRandomOrder(7, 1))
	if one.Steps != 1 {
		t.Errorf("edgeless dependence = %d, want 1", one.Steps)
	}
}

func TestMaxDegreeAfterPrefixEdgeCases(t *testing.T) {
	g := graph.Complete(10)
	ord := IdentityOrder(10)
	if d := MaxDegreeAfterPrefix(g, ord, 0); d != 9 {
		t.Errorf("empty prefix leaves max degree %d, want 9", d)
	}
	if d := MaxDegreeAfterPrefix(g, ord, 10); d != 0 {
		t.Errorf("full prefix leaves max degree %d, want 0", d)
	}
	// Prefix larger than n is clamped.
	if d := MaxDegreeAfterPrefix(g, ord, 99); d != 0 {
		t.Errorf("overlong prefix leaves max degree %d", d)
	}
}

func TestPrefixInternalEdgesFullPrefix(t *testing.T) {
	g := graph.Complete(8)
	ord := IdentityOrder(8)
	edges, with := PrefixInternalEdges(g, ord, 8)
	if edges != 28 {
		t.Errorf("full-prefix internal edges = %d, want 28", edges)
	}
	if with != 8 {
		t.Errorf("vertices with internal edges = %d, want 8", with)
	}
}

func TestOptionsPrefixResolution(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int
	}{
		{Options{}, 1000, 5},                 // default frac 0.005
		{Options{PrefixFrac: 2.0}, 100, 100}, // clamped to n
		{Options{PrefixFrac: 1e-9}, 100, 1},  // clamped to 1
		{Options{PrefixSize: 17}, 100, 17},   // absolute wins
		{Options{PrefixSize: 500}, 100, 100}, // clamped to n
		{Options{PrefixFrac: 0.25}, 100, 25}, // frac honored
		{Options{PrefixSize: -3}, 100, 1},    // negative: default frac of 100 is 0.5, clamped to 1
	}
	for i, c := range cases {
		if got := c.opt.prefixFor(c.n); got != c.want {
			t.Errorf("case %d: prefixFor(%d) = %d, want %d", i, c.n, got, c.want)
		}
	}
}

func TestLubyDifferentFromGreedyUsually(t *testing.T) {
	// Not a guarantee, but on a decent-size graph Luby's set should
	// differ from the greedy one for at least one of several seeds —
	// the "different results" the paper contrasts determinism against.
	g := graph.Random(500, 2500, 11)
	ord := NewRandomOrder(500, 12)
	want := SequentialMIS(g, ord)
	differs := false
	for seed := uint64(0); seed < 5; seed++ {
		if !LubyMIS(g, seed, Options{}).Equal(want) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("Luby agreed with greedy for 5 seeds straight (vanishingly unlikely)")
	}
}
