package core

import (
	"math/bits"

	"repro/internal/graph"
)

// This file contains exact O(n + m) analyzers for the priority-DAG
// quantities the paper's theory section bounds. They process vertices in
// priority order, so every earlier neighbor is already resolved when a
// vertex is reached — a sequential sweep that computes exactly what the
// parallel execution would do without running it.

// DependenceInfo is the per-vertex outcome of the dependence analysis.
type DependenceInfo struct {
	// Steps is the dependence length: the number of iterations Algorithm
	// 2 needs (Theorem 3.5: O(log Delta log n) w.h.p. for random orders).
	Steps int
	// RemoveStep[v] is the 1-based step at which Algorithm 2 removes v
	// from the priority DAG (accepting it into the MIS or discarding it
	// as a neighbor of an accepted vertex).
	RemoveStep []int32
	// InSet[v] reports whether v belongs to the lexicographically-first
	// MIS — a byproduct that doubles as a reference implementation.
	InSet []bool
}

// DependenceSteps simulates Algorithm 2 analytically: processing
// vertices in priority order, a vertex enters the MIS one step after its
// last-removed earlier neighbor is gone, and a discarded vertex leaves
// at the step its first (earliest-accepted) MIS neighbor enters. The
// maximum removal step is the dependence length.
func DependenceSteps(g *graph.Graph, ord Order) DependenceInfo {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("core: order size does not match graph")
	}
	rank := ord.Rank
	removeStep := make([]int32, n)
	inSet := make([]bool, n)
	steps := int32(0)
	const inf = int32(1<<31 - 1)
	for r := 0; r < n; r++ {
		v := ord.Order[r]
		rv := rank[v]
		maxRemove := int32(0)
		firstIn := inf
		for _, u := range g.Neighbors(v) {
			if rank[u] >= rv {
				continue
			}
			if inSet[u] && removeStep[u] < firstIn {
				firstIn = removeStep[u]
			}
			if removeStep[u] > maxRemove {
				maxRemove = removeStep[u]
			}
		}
		if firstIn != inf {
			// v is knocked out at the step its earliest MIS neighbor is
			// accepted.
			removeStep[v] = firstIn
		} else {
			inSet[v] = true
			removeStep[v] = maxRemove + 1
		}
		if removeStep[v] > steps {
			steps = removeStep[v]
		}
	}
	return DependenceInfo{Steps: int(steps), RemoveStep: removeStep, InSet: inSet}
}

// LongestPath returns the length (number of vertices) of the longest
// directed path in the priority DAG of (g, ord). The paper notes this
// upper-bounds the dependence length but can be much larger: on the
// complete graph it is n while the dependence length is O(1).
func LongestPath(g *graph.Graph, ord Order) int {
	n := g.NumVertices()
	rank := ord.Rank
	level := make([]int32, n)
	best := int32(0)
	for r := 0; r < n; r++ {
		v := ord.Order[r]
		rv := rank[v]
		l := int32(1)
		for _, u := range g.Neighbors(v) {
			if rank[u] < rv && level[u]+1 > l {
				l = level[u] + 1
			}
		}
		level[v] = l
		if l > best {
			best = l
		}
	}
	return int(best)
}

// PrefixLongestPath returns the length of the longest directed path in
// the priority DAG induced by the first prefixSize vertices of the
// order — the quantity bounded by Lemma 3.3 / Corollary 3.4 (O(log n)
// for an O(log(n)/d)-prefix of a degree-<=d graph).
func PrefixLongestPath(g *graph.Graph, ord Order, prefixSize int) int {
	n := g.NumVertices()
	if prefixSize > n {
		prefixSize = n
	}
	rank := ord.Rank
	level := make([]int32, n)
	best := int32(0)
	for r := 0; r < prefixSize; r++ {
		v := ord.Order[r]
		rv := rank[v]
		l := int32(1)
		for _, u := range g.Neighbors(v) {
			if rank[u] < rv && level[u]+1 > l {
				l = level[u] + 1
			}
		}
		level[v] = l
		if l > best {
			best = l
		}
	}
	return int(best)
}

// MaxDegreeAfterPrefix computes the maximum degree of the graph that
// remains after the first prefixSize vertices are fully processed: the
// MIS of the prefix is computed, and the prefix plus all neighbors of
// its MIS members are removed (one round of Algorithm 3). Lemma 3.1
// shows this is at most d w.h.p. once the prefix has size l*n/d.
func MaxDegreeAfterPrefix(g *graph.Graph, ord Order, prefixSize int) int {
	n := g.NumVertices()
	if prefixSize > n {
		prefixSize = n
	}
	rank := ord.Rank
	// Sequential greedy over the prefix only.
	status := make([]int32, n)
	for r := 0; r < prefixSize; r++ {
		v := ord.Order[r]
		if status[v] != statusUndecided {
			continue
		}
		status[v] = statusIn
		for _, u := range g.Neighbors(v) {
			if status[u] == statusUndecided {
				status[u] = statusOut
			}
		}
	}
	// Remaining vertices: outside the prefix and not adjacent to the
	// prefix's MIS. (Vertices marked out are removed; undecided prefix
	// vertices cannot exist because the prefix was fully processed.)
	removed := make([]bool, n)
	for r := 0; r < prefixSize; r++ {
		removed[ord.Order[r]] = true
	}
	for v := 0; v < n; v++ {
		if status[v] == statusOut {
			removed[v] = true
		}
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if removed[v] {
			continue
		}
		d := 0
		for _, u := range g.Neighbors(int32(v)) {
			if !removed[u] {
				d++
			}
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	_ = rank
	return maxDeg
}

// ConeScratch holds the reusable marking state of downstream-cone
// computations over a fixed item universe (vertices for MIS, edge
// identifiers for MM). Marks are epoch-stamped, so repeated cones cost
// O(|cone| + frontier scans) each instead of an O(n) clear per call —
// the property the dynamic-graph subsystem relies on to keep per-batch
// repair work proportional to the affected region. The zero value is
// ready to use. Not safe for concurrent use.
type ConeScratch struct {
	mark  []int32
	epoch int32
}

// DownstreamCone computes the downstream closure of seeds in the
// priority DAG: the set of items reachable from a seed by repeatedly
// following adjacency edges to strictly later items. later(x, y)
// reports whether y comes strictly after x in the priority order; adj
// enumerates the current neighbors of an item (the caller's — possibly
// mutable-overlay — adjacency view). This is the paper's dependence
// cone: an item outside the closure has no in-DAG path from any seed,
// so by induction on priority its greedy decision cannot change when
// only the seeds' incident structure changed.
//
// The closure is returned appended to out (reset to out[:0]), seeds
// first (deduplicated), then discovered items in BFS order. n bounds
// the item identifiers.
func (cs *ConeScratch) DownstreamCone(n int, seeds []int32, out []int32, adj func(x int32, visit func(y int32)), later func(x, y int32) bool) []int32 {
	if len(cs.mark) < n {
		// Grow with slack: the matching maintainer's item universe
		// (edge slots) creeps upward one slot per net insertion, and
		// reallocating — and zeroing — a multi-megabyte mark array per
		// batch would swamp the cone-proportional repair cost the
		// scratch exists to protect.
		cs.mark = make([]int32, n+n/2+64)
		cs.epoch = 0
	}
	if cs.epoch == 1<<31-1 {
		// Epoch wrap: clear the stamps rather than alias an old epoch.
		for i := range cs.mark {
			cs.mark[i] = 0
		}
		cs.epoch = 0
	}
	cs.epoch++
	epoch := cs.epoch
	out = out[:0]
	for _, s := range seeds {
		if cs.mark[s] != epoch {
			cs.mark[s] = epoch
			out = append(out, s)
		}
	}
	for i := 0; i < len(out); i++ {
		x := out[i]
		adj(x, func(y int32) {
			if later(x, y) && cs.mark[y] != epoch {
				cs.mark[y] = epoch
				out = append(out, y)
			}
		})
	}
	return out
}

// FrontierQueue is a monotone bucket priority queue over int32 items,
// the work-frontier structure of change-driven repair. Items are
// pushed with a small integer bucket key that must be monotone in the
// priority order (equal priorities may share a bucket); buckets are
// drained in increasing key order, and pushes during a drain may only
// target the bucket currently being drained or a later one — exactly
// the discipline of downstream repair, where an item's flip can only
// disturb strictly later items. Under that discipline every operation
// is O(1) plus an amortized bitmap scan, with no per-item comparisons.
//
// Bucket storage is retained across Reset calls, so a queue owned by a
// long-lived repair state allocates only while the frontier reaches a
// new high-water mark. The zero value is ready for Reset. Not safe for
// concurrent use.
type FrontierQueue struct {
	buckets [][]int32
	words   []uint64 // bit k set <=> buckets[k] is non-empty
	cur     int      // key of the bucket currently (or last) drained
}

// Reset prepares the queue for a new drain over numBuckets keys,
// emptying any buckets left behind by an aborted previous drain.
func (q *FrontierQueue) Reset(numBuckets int) {
	if numBuckets < 1 {
		numBuckets = 1
	}
	if cap(q.buckets) >= numBuckets {
		q.buckets = q.buckets[:numBuckets]
	} else {
		grown := make([][]int32, numBuckets)
		copy(grown, q.buckets)
		q.buckets = grown
	}
	words := (numBuckets + 63) >> 6
	if cap(q.words) >= words {
		q.words = q.words[:words]
	} else {
		// Copy the old bitmap into the grown one so leftover buckets
		// from an aborted drain are still visible to the cleanup below.
		grown := make([]uint64, words)
		copy(grown, q.words)
		q.words = grown
	}
	for i, w := range q.words {
		for w != 0 {
			k := i<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			q.buckets[k] = q.buckets[k][:0]
		}
		q.words[i] = 0
	}
	q.cur = 0
}

// Push enqueues item into bucket key. key must be in [0, numBuckets)
// and at least the key of the bucket currently being drained; the
// caller (not the queue) is responsible for not enqueueing an item
// twice.
func (q *FrontierQueue) Push(item int32, key int) {
	q.buckets[key] = append(q.buckets[key], item)
	q.words[key>>6] |= 1 << (key & 63)
}

// PopBucket moves the contents of the lowest non-empty bucket at or
// after the drain cursor into dst (appended), empties that bucket, and
// advances the cursor to it. ok is false when the queue is empty; the
// key of the drained bucket is returned for callers that key their
// own bookkeeping by bucket.
func (q *FrontierQueue) PopBucket(dst []int32) (out []int32, key int, ok bool) {
	for w := q.cur >> 6; w < len(q.words); w++ {
		word := q.words[w]
		if w == q.cur>>6 {
			word &= ^uint64(0) << (q.cur & 63)
		}
		if word == 0 {
			continue
		}
		k := w<<6 + bits.TrailingZeros64(word)
		q.cur = k
		return q.take(k, dst), k, true
	}
	return dst, 0, false
}

// TakeCurrent moves any items pushed into the bucket the cursor is on
// since it was popped into dst (appended). Draining a bucket to a
// fixed point — PopBucket, then TakeCurrent after each round until it
// returns nothing — is how the repair engines absorb same-bucket
// pushes without re-scanning the whole queue.
func (q *FrontierQueue) TakeCurrent(dst []int32) []int32 {
	if q.words[q.cur>>6]&(1<<(q.cur&63)) == 0 {
		return dst
	}
	return q.take(q.cur, dst)
}

// take moves bucket k into dst. The bucket keeps its backing array
// (truncated), so later pushes into k cannot alias the returned items.
func (q *FrontierQueue) take(k int, dst []int32) []int32 {
	b := q.buckets[k]
	dst = append(dst, b...)
	q.buckets[k] = b[:0]
	q.words[k>>6] &^= 1 << (k & 63)
	return dst
}

// FrontierBucketShift returns the power-of-two bucket width, as a
// shift, that splits a universe of n priority ranks into at most
// target buckets: rank >> shift is then a valid monotone FrontierQueue
// key. Wider buckets mean fewer queue steps but more intra-bucket
// stall rounds; target bounds the queue's O(numBuckets) reset cost.
func FrontierBucketShift(n, target int) uint {
	if target < 1 {
		target = 1
	}
	shift := uint(0)
	for (n+(1<<shift)-1)>>shift > target {
		shift++
	}
	return shift
}

// PrefixInternalEdges counts the edges with both endpoints in the first
// prefixSize vertices of the order — the "internal edges" of Lemma 4.3,
// expected O(k|P|) for a (k/d)-prefix of a degree-<=d graph.
func PrefixInternalEdges(g *graph.Graph, ord Order, prefixSize int) (edges int64, verticesWithInternal int) {
	n := g.NumVertices()
	if prefixSize > n {
		prefixSize = n
	}
	inPrefix := make([]bool, n)
	for r := 0; r < prefixSize; r++ {
		inPrefix[ord.Order[r]] = true
	}
	for r := 0; r < prefixSize; r++ {
		v := ord.Order[r]
		has := false
		for _, u := range g.Neighbors(v) {
			if inPrefix[u] {
				edges++
				has = true
			}
		}
		if has {
			verticesWithInternal++
		}
	}
	return edges / 2, verticesWithInternal
}
