package core

import "repro/internal/engine"

// Workspace holds the pooled per-run buffers of the MIS algorithms so a
// caller that computes many results (a solver facade, a serving worker)
// pays the allocations once and reuses them across runs on same-or-
// smaller inputs. Buffers are sized up lazily and reinitialized at the
// start of every run, so results are bit-identical to runs on fresh
// memory. Result arrays (InSet, Set) are never pooled: they are handed
// to the caller.
//
// A Workspace may be used by one run at a time; it is not safe for
// concurrent use. The zero value is ready to use.
type Workspace struct {
	status []int32
	ptr    []int32
	claim  []int32
	active []int32
	eng    engine.Workspace
}

// Pooled-buffer helpers, forwarded from the engine package (the single
// source of truth shared by the algorithm packages).

// Grow32 returns *buf resized to n int32s, reallocating only when the
// pooled capacity is insufficient. Contents are unspecified: callers
// must reinitialize the slice (Fill32 or full overwrite) before reads.
// Exported for the sibling algorithm packages' workspaces.
func Grow32(buf *[]int32, n int) []int32 { return engine.Grow32(buf, n) }

// Fill32 sets every element of s to v.
func Fill32(s []int32, v int32) { engine.Fill32(s, v) }

// GrowActive returns an empty int32 slice with capacity at least n
// backed by *buf, for frontier/window arrays rebuilt by appends.
func GrowActive(buf *[]int32, n int) []int32 { return engine.GrowActive(buf, n) }
