package core

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// LubyMIS computes a maximal independent set with Luby's Algorithm A
// (SIAM J. Comput. 1986), the baseline the paper compares against in
// Figure 3. Each round every remaining vertex draws a fresh random
// priority; a vertex whose priority beats all remaining neighbors joins
// the MIS, and it and its neighbors leave the graph, which is then
// compacted. Regenerating priorities every round is exactly what
// distinguishes Luby from Algorithm 2 ("if Algorithm 2 regenerates the
// ordering pi randomly on each recursive call then the algorithm is
// effectively the same as Luby's Algorithm A"), and is why Luby's result
// differs from the sequential greedy MIS and why it performs more total
// work in practice — the effect the paper quantifies as its prefix-based
// algorithm being 4-8x faster.
//
// Fresh priorities come from a hash of (seed, round, vertex), so the
// result is deterministic in the seed even though it is not the
// lexicographically-first MIS. Ties are broken by vertex id; with 64-bit
// priorities they are vanishingly rare.
func LubyMIS(g *graph.Graph, seed uint64, opt Options) *Result {
	res, err := LubyMISCtx(context.Background(), g, seed, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// LubyMISCtx is LubyMIS with cooperative cancellation (ctx is checked
// once per round) and workspace reuse of the status array. The
// per-round compacted subgraphs are still allocated fresh: they shrink
// geometrically, and pooling them would pin the largest round's
// footprint for the pool's lifetime.
func LubyMISCtx(ctx context.Context, g *graph.Graph, seed uint64, opt Options) (*Result, error) {
	n := g.NumVertices()
	grain := opt.grain()
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := Grow32(&ws.status, n)
	Fill32(status, statusUndecided)

	// Current subgraph in CSR form over the live vertices. live holds
	// original vertex ids; adjacency stores original ids too, filtered
	// to live vertices at each compaction.
	live := make([]int32, n)
	offsets := make([]int64, n+1)
	var adj []int32
	{
		goffsets, gadj := g.Raw()
		copy(offsets, goffsets)
		adj = append([]int32(nil), gadj...)
		for i := range live {
			live[i] = int32(i)
		}
	}

	stats := Stats{}
	var inspections atomic.Int64
	var prevInspections int64

	for len(live) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		round := uint64(stats.Rounds)
		stats.Rounds++
		stats.Attempts += int64(len(live))

		prio := func(v int32) uint64 {
			return rng.Hash3(seed, round, uint64(v))
		}

		// Select local minima among live vertices.
		parallel.ForRange(len(live), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				v := live[i]
				pv := prio(v)
				wins := true
				nbrs := adj[offsets[i]:offsets[i+1]]
				local += int64(len(nbrs))
				for _, u := range nbrs {
					pu := prio(u)
					if pu < pv || (pu == pv && u < v) {
						wins = false
						break
					}
				}
				if wins {
					atomic.StoreInt32(&status[v], statusIn)
				}
			}
			inspections.Add(local)
		})
		// Knock out neighbors of winners. A separate pass avoids
		// read/write races on status during selection.
		parallel.ForRange(len(live), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := live[i]
				if atomic.LoadInt32(&status[v]) != statusIn {
					continue
				}
				for _, u := range adj[offsets[i]:offsets[i+1]] {
					atomic.CompareAndSwapInt32(&status[u], statusUndecided, statusOut)
				}
			}
		})

		// Compact the subgraph to the still-undecided vertices.
		liveIdx := parallel.PackIndex(len(live), grain, func(i int) bool {
			return status[live[i]] == statusUndecided
		})
		newLive := make([]int32, len(liveIdx))
		counts := make([]int64, len(liveIdx)+1)
		parallel.For(len(liveIdx), grain, func(i int) {
			oi := liveIdx[i]
			newLive[i] = live[oi]
			c := int64(0)
			for _, u := range adj[offsets[oi]:offsets[oi+1]] {
				if status[u] == statusUndecided {
					c++
				}
			}
			counts[i] = c
		})
		newOffsets := make([]int64, len(liveIdx)+1)
		total := parallel.ExclusiveScan(newOffsets[:len(liveIdx)], counts[:len(liveIdx)], grain)
		newOffsets[len(liveIdx)] = total
		newAdj := make([]int32, total)
		parallel.For(len(liveIdx), grain, func(i int) {
			oi := liveIdx[i]
			pos := newOffsets[i]
			for _, u := range adj[offsets[oi]:offsets[oi+1]] {
				if status[u] == statusUndecided {
					newAdj[pos] = u
					pos++
				}
			}
		})
		if opt.OnRound != nil {
			cur := inspections.Load()
			opt.OnRound(RoundStat{
				Round:       stats.Rounds,
				Attempted:   len(live),
				Resolved:    len(live) - len(newLive),
				Inspections: cur - prevInspections,
			})
			prevInspections = cur
		}
		live, offsets, adj = newLive, newOffsets, newAdj
	}
	stats.EdgeInspections = inspections.Load()
	return newResult(status, stats), nil
}
