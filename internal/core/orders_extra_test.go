package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestDegreeOrderSorted(t *testing.T) {
	g := graph.RMat(8, 1000, 3, graph.DefaultRMatOptions())
	asc := DegreeOrder(g, true)
	if err := asc.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < asc.Len(); r++ {
		if g.Degree(asc.Order[r-1]) > g.Degree(asc.Order[r]) {
			t.Fatalf("ascending degree order violated at rank %d", r)
		}
	}
	desc := DegreeOrder(g, false)
	for r := 1; r < desc.Len(); r++ {
		if g.Degree(desc.Order[r-1]) < g.Degree(desc.Order[r]) {
			t.Fatalf("descending degree order violated at rank %d", r)
		}
	}
}

func TestDegreeOrderTieBreakDeterministic(t *testing.T) {
	g := graph.Cycle(50) // all degrees equal: order must be identity
	ord := DegreeOrder(g, true)
	for r := 0; r < 50; r++ {
		if ord.Order[r] != int32(r) {
			t.Fatalf("tie-break not by id at rank %d: %d", r, ord.Order[r])
		}
	}
}

func TestBFSOrderIsPermutationAndLayered(t *testing.T) {
	g := graph.Grid2D(10, 10)
	ord := BFSOrder(g, 0)
	if err := ord.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rng.IsPerm(ord.Order) {
		t.Fatal("BFS order not a permutation")
	}
	// In a BFS order from a corner of a grid, a vertex's rank respects
	// its Manhattan distance layer: layer boundaries never interleave.
	dist := func(v int32) int32 { return v/10 + v%10 }
	for r := 1; r < ord.Len(); r++ {
		if dist(ord.Order[r-1]) > dist(ord.Order[r]) {
			t.Fatalf("BFS layering violated at rank %d", r)
		}
	}
}

func TestBFSOrderDisconnected(t *testing.T) {
	// Two triangles: BFS must cover both components.
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}})
	ord := BFSOrder(g, 4)
	if err := ord.Validate(); err != nil {
		t.Fatal(err)
	}
	if ord.Order[0] != 4 {
		t.Errorf("BFS did not start at the requested root: %d", ord.Order[0])
	}
	// Out-of-range root falls back to 0.
	fallback := BFSOrder(g, 99)
	if fallback.Order[0] != 0 {
		t.Errorf("out-of-range root not redirected to 0")
	}
}

func TestReverseInvolution(t *testing.T) {
	ord := NewRandomOrder(100, 5)
	back := Reverse(Reverse(ord))
	for i := range ord.Order {
		if ord.Order[i] != back.Order[i] {
			t.Fatal("Reverse(Reverse) != identity")
		}
	}
	rev := Reverse(ord)
	if rev.Order[0] != ord.Order[99] {
		t.Error("Reverse did not flip the order")
	}
}

func TestStructuredOrdersChangeDependenceLength(t *testing.T) {
	// The empirical content of the P-completeness contrast: on the path
	// graph, the identity order yields Theta(n) dependence length while
	// a random order yields O(log n).
	n := 2000
	p := graph.Path(n)
	identity := DependenceSteps(p, IdentityOrder(n)).Steps
	random := DependenceSteps(p, NewRandomOrder(n, 3)).Steps
	if identity < n/2-1 {
		t.Errorf("identity-order path dependence = %d, want ~n/2", identity)
	}
	if random > 60 {
		t.Errorf("random-order path dependence = %d, want O(log n)", random)
	}
	// Descending degree order on a star resolves in one step (center
	// first kills all leaves).
	s := graph.Star(500)
	if d := DependenceSteps(s, DegreeOrder(s, false)).Steps; d != 1 {
		t.Errorf("star with degree-desc order: dependence = %d, want 1", d)
	}
}

func TestStructuredOrdersStillGiveLexFirstForThatOrder(t *testing.T) {
	// Determinism is per-order: even adversarial orders must be
	// reproduced exactly by the parallel algorithms.
	g := graph.RMat(8, 800, 9, graph.DefaultRMatOptions())
	for _, ord := range []Order{
		DegreeOrder(g, true),
		DegreeOrder(g, false),
		BFSOrder(g, 0),
		Reverse(NewRandomOrder(g.NumVertices(), 2)),
	} {
		want := SequentialMIS(g, ord)
		got := PrefixMIS(g, ord, Options{PrefixFrac: 0.1})
		if !got.Equal(want) {
			t.Fatal("parallel MIS diverged from sequential under a structured order")
		}
	}
}
