package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// TestAdaptiveMISMatchesSequential is the adaptive tentpole contract:
// for any window schedule the prefix algorithm returns exactly the
// sequential greedy MIS, so the controller can only change costs,
// never answers.
func TestAdaptiveMISMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random":   graph.Random(4000, 20000, 7),
		"rmat":     graph.RMat(12, 20000, 7, graph.DefaultRMatOptions()),
		"grid":     graph.Grid2D(64, 64),
		"star":     graph.Star(512),
		"complete": graph.Complete(128),
		"path":     graph.Path(2048),
		"edgeless": graph.Empty(300),
	}
	for name, g := range graphs {
		n := g.NumVertices()
		for _, seed := range []uint64{1, 9} {
			ord := NewRandomOrder(n, seed)
			want := SequentialMIS(g, ord)
			got := PrefixMIS(g, ord, Options{Adaptive: true})
			if !got.Equal(want) {
				t.Errorf("%s seed %d: adaptive MIS differs from sequential", name, seed)
			}
			if err := VerifyLexFirst(g, ord, got); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
			// Pointered variant under the same schedule dynamics.
			ptr := PrefixMIS(g, ord, Options{Adaptive: true, Pointered: true})
			if !ptr.Equal(want) {
				t.Errorf("%s seed %d: adaptive pointered MIS differs", name, seed)
			}
		}
	}
}

// TestAdaptiveDeterministicAcrossGrain checks that the window schedule
// — not just the result — is independent of the parallel grain: the
// controller consumes only machine-independent counters, and the
// default start window is a constant, so Stats and the per-round
// windows are identical for any chunking.
func TestAdaptiveDeterministicAcrossGrain(t *testing.T) {
	g := graph.Random(3000, 15000, 3)
	ord := NewRandomOrder(3000, 4)
	var windows [][]int
	var stats []Stats
	for _, grain := range []int{0, 7, 256, 4096} {
		var trace []int
		r := PrefixMIS(g, ord, Options{Adaptive: true, Grain: grain, OnRound: func(rs RoundStat) {
			trace = append(trace, rs.Prefix)
		}})
		windows = append(windows, trace)
		stats = append(stats, r.Stats)
	}
	for i := 1; i < len(windows); i++ {
		if stats[i] != stats[0] {
			t.Fatalf("grain changed adaptive stats: %+v vs %+v", stats[i], stats[0])
		}
		if len(windows[i]) != len(windows[0]) {
			t.Fatalf("grain changed round count: %d vs %d", len(windows[i]), len(windows[0]))
		}
		for j := range windows[i] {
			if windows[i][j] != windows[0][j] {
				t.Fatalf("grain changed window schedule at round %d: %d vs %d", j, windows[i][j], windows[0][j])
			}
		}
	}
}

// TestAdaptiveWindowBounds checks every window stays in [1, n] and that
// growth respects the parallel-slack cap.
func TestAdaptiveWindowBounds(t *testing.T) {
	g := graph.Random(5000, 25000, 5)
	ord := NewRandomOrder(5000, 6)
	cap := AdaptiveGrowCap(5000)
	r := PrefixMIS(g, ord, Options{Adaptive: true, OnRound: func(rs RoundStat) {
		if rs.Prefix < 1 || rs.Prefix > 5000 {
			t.Errorf("round %d: window %d outside [1, n]", rs.Round, rs.Prefix)
		}
		if rs.Prefix > cap {
			t.Errorf("round %d: window %d above grow cap %d", rs.Round, rs.Prefix, cap)
		}
		if rs.Attempted > rs.Prefix {
			t.Errorf("round %d: attempted %d exceeds window %d", rs.Round, rs.Attempted, rs.Prefix)
		}
	}})
	if r.Stats.PrefixSize > cap {
		t.Errorf("max window %d above grow cap %d", r.Stats.PrefixSize, cap)
	}
}

// TestAdaptiveExplicitSeedWindow checks that an explicit prefix seeds
// the initial window (even above the grow cap) instead of the default
// start.
func TestAdaptiveExplicitSeedWindow(t *testing.T) {
	g := graph.Random(4000, 12000, 2)
	ord := NewRandomOrder(4000, 2)
	first := -1
	PrefixMIS(g, ord, Options{Adaptive: true, PrefixSize: 3000, OnRound: func(rs RoundStat) {
		if first < 0 {
			first = rs.Prefix
		}
	}})
	if first != 3000 {
		t.Errorf("explicit prefix seed: first window %d, want 3000", first)
	}
}

// TestAdaptiveControllerPolicy unit-tests the doubling/halving/brake
// decisions directly.
func TestAdaptiveControllerPolicy(t *testing.T) {
	c := NewAdaptiveController(64, 1024, 4096)
	// High acceptance doubles.
	c.Observe(64, 64, 128)
	if c.Window() != 128 {
		t.Fatalf("after full acceptance: window %d, want 128", c.Window())
	}
	// Low acceptance halves.
	c.Observe(128, 16, 256)
	if c.Window() != 64 {
		t.Fatalf("after 12.5%% acceptance: window %d, want 64", c.Window())
	}
	// Mid-band holds.
	c.Observe(64, 48, 128)
	if c.Window() != 64 {
		t.Fatalf("after 75%% acceptance: window %d, want hold at 64", c.Window())
	}
	// Cost explosion halves even at perfect acceptance: the EWMA is
	// ~2/iterate by now, so 100 inspections per resolved trips the brake.
	c.Observe(64, 64, 6400)
	if c.Window() != 32 {
		t.Fatalf("after cost explosion: window %d, want 32", c.Window())
	}

	// Growth stops at the cap and never exceeds it.
	c = NewAdaptiveController(512, 1024, 4096)
	for i := 0; i < 10; i++ {
		c.Observe(c.Window(), c.Window(), int64(2*c.Window()))
	}
	if c.Window() != 1024 {
		t.Fatalf("growth cap: window %d, want 1024", c.Window())
	}
	// Shrinking below the cap and the floor of 1.
	c = NewAdaptiveController(2, 8, 16)
	for i := 0; i < 5; i++ {
		c.Observe(16, 0, 32)
	}
	if c.Window() != 1 {
		t.Fatalf("shrink floor: window %d, want 1", c.Window())
	}
	// An initial window above the cap is kept (explicit seed), and
	// growth from there is refused.
	c = NewAdaptiveController(2048, 1024, 4096)
	if c.Window() != 2048 {
		t.Fatalf("explicit seed above cap: window %d, want 2048", c.Window())
	}
	c.Observe(2048, 2048, 4096)
	if c.Window() != 2048 {
		t.Fatalf("growth above cap: window %d, want hold at 2048", c.Window())
	}
}

// TestAdaptiveStatsAccounting checks the Figure 1 bookkeeping under a
// varying window: attempts sum over rounds, rounds equal observer
// callbacks, and PrefixSize reports the largest window used.
func TestAdaptiveStatsAccounting(t *testing.T) {
	g := graph.Random(3000, 15000, 8)
	ord := NewRandomOrder(3000, 8)
	var rounds int64
	var attempts int64
	maxW := 0
	r := PrefixMIS(g, ord, Options{Adaptive: true, OnRound: func(rs RoundStat) {
		rounds++
		attempts += int64(rs.Attempted)
		if rs.Prefix > maxW {
			maxW = rs.Prefix
		}
	}})
	if rounds != r.Stats.Rounds {
		t.Errorf("observer rounds %d, stats %d", rounds, r.Stats.Rounds)
	}
	if attempts != r.Stats.Attempts {
		t.Errorf("observer attempts %d, stats %d", attempts, r.Stats.Attempts)
	}
	if maxW != r.Stats.PrefixSize {
		t.Errorf("observer max window %d, stats PrefixSize %d", maxW, r.Stats.PrefixSize)
	}
	if r.Stats.Attempts < int64(g.NumVertices()) {
		t.Errorf("attempts %d below n", r.Stats.Attempts)
	}
}

// TestAdaptivePrefixSizeIsUsedWindow pins a subtle accounting bug: on
// an input that finishes before the grow cap is reached (an edgeless
// graph resolves everything immediately, so the controller doubles
// after every round including the last), Stats.PrefixSize must report
// the largest window a round actually RAN at, not the controller's
// decision for a round that never happened.
func TestAdaptivePrefixSizeIsUsedWindow(t *testing.T) {
	g := graph.Empty(768)
	ord := NewRandomOrder(768, 1)
	maxSeen := 0
	r := PrefixMIS(g, ord, Options{Adaptive: true, OnRound: func(rs RoundStat) {
		if rs.Prefix > maxSeen {
			maxSeen = rs.Prefix
		}
	}})
	if r.Stats.PrefixSize != maxSeen {
		t.Errorf("Stats.PrefixSize %d, but the largest executed window was %d", r.Stats.PrefixSize, maxSeen)
	}
	if maxSeen != 512 {
		t.Errorf("largest executed window %d, want 512 (256 then one doubling)", maxSeen)
	}
}

// TestAdaptiveShrinkKeepsEarliestWindow forces a shrinking schedule (a
// complete graph resolves one vertex per full-window round, so
// acceptance collapses and the controller halves repeatedly) and
// verifies the result is still the sequential MIS — i.e. the
// tail-slide after a shrunken round preserves the earliest-unresolved
// invariant.
func TestAdaptiveShrinkKeepsEarliestWindow(t *testing.T) {
	g := graph.Complete(600)
	ord := NewRandomOrder(600, 11)
	shrank := false
	prev := 0
	r := PrefixMIS(g, ord, Options{Adaptive: true, PrefixSize: 512, OnRound: func(rs RoundStat) {
		if prev > 0 && rs.Prefix < prev {
			shrank = true
		}
		prev = rs.Prefix
	}})
	if !shrank {
		t.Fatal("schedule never shrank on K600 (test premise broken)")
	}
	if !r.Equal(SequentialMIS(g, ord)) {
		t.Fatal("adaptive MIS differs from sequential after shrinking rounds")
	}
}

// TestAdaptiveGrowCapTinyGraph pins the cap arithmetic for inputs
// smaller than the parallel-slack product GOMAXPROCS·256: there the
// input size, not the slack formula, must bound the cap — and the
// AdaptiveStartWindow floor must never push the cap past n.
func TestAdaptiveGrowCapTinyGraph(t *testing.T) {
	slack := adaptiveSlackChunks * parallel.Procs() * parallel.DefaultGrain
	cases := []struct{ n, want int }{
		{0, 1},                 // degenerate: the [1, ...] clamp
		{1, 1},                 // single vertex
		{100, 100},             // below AdaptiveStartWindow: n wins over the 256 floor
		{255, 255},             // one under the start window
		{256, 256},             // exactly the start window
		{slack - 1, slack - 1}, // one under the slack product: still n
		{slack, slack},         // exactly the slack product
		{slack + 100, slack},   // above it: the slack cap takes over
		{100 * slack, slack},   // far above: unchanged
	}
	for _, tc := range cases {
		if got := AdaptiveGrowCap(tc.n); got != tc.want {
			t.Errorf("AdaptiveGrowCap(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestAdaptiveControllerTinyGraph drives a controller sized for a tiny
// input (n < GOMAXPROCS·256) through perfect-acceptance rounds: the
// window must climb to exactly n and stay there — the grow cap, the
// max bound and the doubling sequence all collapse onto the input
// size.
func TestAdaptiveControllerTinyGraph(t *testing.T) {
	const n = 100 // < 256 <= GOMAXPROCS·256
	c := NewAdaptiveController(Options{}.adaptiveInitial(n), AdaptiveGrowCap(n), n)
	if c.Window() != n {
		// adaptiveInitial clamps the 256 default start to n.
		t.Fatalf("initial window %d, want n=%d", c.Window(), n)
	}
	for i := 0; i < 20; i++ {
		w := c.Window()
		c.Observe(w, w, int64(2*w))
		if c.Window() > n {
			t.Fatalf("round %d: window %d exceeded n=%d", i, c.Window(), n)
		}
	}
	if c.Window() != n {
		t.Fatalf("steady-state window %d, want n=%d", c.Window(), n)
	}
	// A mid-size tiny input (AdaptiveStartWindow < n < slack product):
	// doubling stops exactly at n even though the slack cap is larger.
	const n2 = 300
	c2 := NewAdaptiveController(Options{}.adaptiveInitial(n2), AdaptiveGrowCap(n2), n2)
	if c2.Window() != AdaptiveStartWindow {
		t.Fatalf("initial window %d, want %d", c2.Window(), AdaptiveStartWindow)
	}
	for i := 0; i < 10; i++ {
		w := c2.Window()
		c2.Observe(w, w, int64(2*w))
	}
	if c2.Window() != n2 {
		t.Fatalf("steady-state window %d, want n=%d", c2.Window(), n2)
	}
}

// TestAdaptiveTinyGraphEndToEnd runs the adaptive prefix loop on
// inputs below every cap threshold and checks both the answer (always
// the sequential MIS) and that no executed window exceeds the input.
func TestAdaptiveTinyGraphEndToEnd(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 255} {
		g := graph.Path(n)
		ord := NewRandomOrder(n, 3)
		r := PrefixMIS(g, ord, Options{Adaptive: true, OnRound: func(rs RoundStat) {
			if rs.Prefix > n {
				t.Errorf("n=%d: executed window %d exceeds input", n, rs.Prefix)
			}
		}})
		if !r.Equal(SequentialMIS(g, ord)) {
			t.Errorf("n=%d: adaptive MIS differs from sequential", n)
		}
		if r.Stats.PrefixSize > n {
			t.Errorf("n=%d: PrefixSize %d exceeds input", n, r.Stats.PrefixSize)
		}
	}
}
