package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// This file provides structured (non-random) priority orders. The
// paper's theorem needs the order to be random: for adversarial orders
// the lexicographically-first MIS is P-complete, so some order must
// make the dependence length linear. These constructions make that
// contrast measurable (see the order-sensitivity experiment in
// internal/bench): random orders give polylog dependence length on
// every family, while structured orders can blow it up to Theta(n).

// DegreeOrder returns the order that ranks vertices by degree —
// ascending (low-degree first) or descending — breaking ties by vertex
// id. Degree-based greedy orders are common MIS heuristics (they tend
// to produce larger independent sets) but void the paper's depth
// guarantee.
func DegreeOrder(g *graph.Graph, ascending bool) Order {
	n := g.NumVertices()
	order := rng.Identity(n)
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			if ascending {
				return di < dj
			}
			return di > dj
		}
		return order[i] < order[j]
	})
	return FromOrder(order)
}

// BFSOrder returns the breadth-first visit order from the given root,
// continuing from the lowest-id unvisited vertex for further
// components. BFS orders correlate neighbor priorities strongly — the
// kind of structure that defeats the random-order analysis.
func BFSOrder(g *graph.Graph, root graph.Vertex) Order {
	n := g.NumVertices()
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]graph.Vertex, 0, 1024)
	visit := func(start graph.Vertex) {
		if visited[start] {
			return
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	if n > 0 {
		if root < 0 || int(root) >= n {
			root = 0
		}
		visit(root)
		for v := 0; v < n; v++ {
			visit(graph.Vertex(v))
		}
	}
	return FromOrder(order)
}

// Reverse returns the order with all priorities flipped: the last item
// becomes the first.
func Reverse(ord Order) Order {
	n := ord.Len()
	rev := make([]int32, n)
	for r, v := range ord.Order {
		rev[n-1-r] = v
	}
	return FromOrder(rev)
}

// WeightedOrder returns the order that ranks items by descending
// weight, breaking ties by a seed-derived hash (so equal-weight items
// are ordered pseudo-randomly, not by id — within a weight class the
// paper's random-order analysis applies) and finally by id. It realizes
// weighted greedy: running a prefix algorithm under this order computes
// the weighted-greedy solution — highest-weight-first MIS, matching,
// coloring or hitting set — with the usual determinism at any thread
// count. Deterministic in (weights, seed); weights need not be
// distinct. It panics if any weight is NaN (NaN admits no total order).
func WeightedOrder(weights []float64, seed uint64) Order {
	n := len(weights)
	for i, w := range weights {
		if w != w {
			panic(fmt.Sprintf("core: WeightedOrder weight %d is NaN", i))
		}
	}
	order := rng.Identity(n)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		wa, wb := weights[a], weights[b]
		if wa != wb {
			return wa > wb
		}
		ha := rng.Hash2(uint64(a), seed)
		hb := rng.Hash2(uint64(b), seed)
		if ha != hb {
			return ha < hb
		}
		return a < b
	})
	return FromOrder(order)
}
