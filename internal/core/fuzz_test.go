package core

import (
	"testing"

	"repro/internal/graph"
)

// FuzzMISEquivalence is the determinism invariant as a fuzz target: for
// arbitrary small graphs, seeds and prefix sizes, every parallel MIS
// variant must reproduce the sequential greedy answer bit-for-bit.
// Run with `go test -fuzz=FuzzMISEquivalence ./internal/core`.
func FuzzMISEquivalence(f *testing.F) {
	f.Add(uint8(10), uint16(20), uint64(1), uint8(4))
	f.Add(uint8(2), uint16(1), uint64(9), uint8(1))
	f.Add(uint8(60), uint16(400), uint64(3), uint8(255))
	f.Fuzz(func(t *testing.T, rawN uint8, rawM uint16, seed uint64, rawPrefix uint8) {
		n := int(rawN)%64 + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		ord := NewRandomOrder(n, seed^0xfeed)
		want := SequentialMIS(g, ord)
		if !IsMaximalIndependentSet(g, want.InSet) {
			t.Fatal("sequential answer is not a maximal independent set")
		}
		prefix := int(rawPrefix)%n + 1
		for _, got := range []*Result{
			PrefixMIS(g, ord, Options{PrefixSize: prefix, Grain: 3}),
			PrefixMIS(g, ord, Options{PrefixSize: prefix, Pointered: true}),
			RootSetMIS(g, ord, Options{Grain: 3}),
			ParallelMIS(g, ord, Options{}),
		} {
			if !got.Equal(want) {
				t.Fatalf("n=%d m=%d prefix=%d: parallel MIS diverged from sequential", n, m, prefix)
			}
		}
		if got := DependenceSteps(g, ord); got.Steps > LongestPath(g, ord) {
			t.Fatal("dependence length exceeds the longest priority-DAG path")
		}
	})
}
