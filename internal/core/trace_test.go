package core

import (
	"testing"

	"repro/internal/graph"
)

func TestOnRoundTraceConsistency(t *testing.T) {
	g, ord := randomGraphAndOrder(2000, 10000, 13)
	var rounds []int64
	var attempted, resolved []int
	var inspections int64
	res := PrefixMIS(g, ord, Options{PrefixFrac: 0.05, OnRound: func(rs RoundStat) {
		rounds = append(rounds, rs.Round)
		attempted = append(attempted, rs.Attempted)
		resolved = append(resolved, rs.Resolved)
		inspections += rs.Inspections
	}})
	if inspections != res.Stats.EdgeInspections {
		t.Errorf("trace inspections %d != stats inspections %d", inspections, res.Stats.EdgeInspections)
	}
	if int64(len(rounds)) != res.Stats.Rounds {
		t.Fatalf("trace has %d rounds, stats say %d", len(rounds), res.Stats.Rounds)
	}
	var totalAttempts, totalResolved int64
	for i := range rounds {
		if rounds[i] != int64(i+1) {
			t.Fatalf("round numbers not consecutive at %d: %d", i, rounds[i])
		}
		if resolved[i] < 0 || resolved[i] > attempted[i] {
			t.Fatalf("round %d: resolved %d out of attempted %d", i+1, resolved[i], attempted[i])
		}
		totalAttempts += int64(attempted[i])
		totalResolved += int64(resolved[i])
	}
	if totalAttempts != res.Stats.Attempts {
		t.Errorf("trace attempts %d != stats attempts %d", totalAttempts, res.Stats.Attempts)
	}
	if totalResolved != int64(g.NumVertices()) {
		t.Errorf("trace resolved %d != n %d", totalResolved, g.NumVertices())
	}
	// Every round must make progress (the speculative loop guarantees
	// the earliest active iterate resolves).
	for i, d := range resolved {
		if d == 0 {
			t.Fatalf("round %d made no progress", i+1)
		}
	}
}

func TestOnRoundNilIsDefault(t *testing.T) {
	g, ord := randomGraphAndOrder(500, 2500, 14)
	a := PrefixMIS(g, ord, Options{PrefixFrac: 0.1})
	b := PrefixMIS(g, ord, Options{PrefixFrac: 0.1, OnRound: func(RoundStat) {}})
	if !a.Equal(b) || a.Stats != b.Stats {
		t.Error("OnRound changed the computation")
	}
}

func TestOnRoundFullPrefixProfile(t *testing.T) {
	// At the full prefix the first round attempts everything and later
	// rounds shrink monotonically (only retries remain after the pool
	// is exhausted).
	g, ord := randomGraphAndOrder(3000, 15000, 15)
	var attempted []int
	ParallelMIS(g, ord, Options{OnRound: func(rs RoundStat) {
		attempted = append(attempted, rs.Attempted)
	}})
	if attempted[0] != g.NumVertices() {
		t.Errorf("first full-prefix round attempted %d, want n", attempted[0])
	}
	for i := 1; i < len(attempted); i++ {
		if attempted[i] > attempted[i-1] {
			t.Fatalf("active set grew at round %d: %d -> %d", i+1, attempted[i-1], attempted[i])
		}
	}
}

func TestVertexProgressGuarantee(t *testing.T) {
	// The earliest unresolved vertex always resolves in the next round:
	// verified indirectly by bounding rounds <= n for prefix 1 and by
	// the no-zero-progress trace check; here we additionally pin a
	// degenerate case: a clique processed with a tiny prefix.
	g := graph.Complete(30)
	ord := NewRandomOrder(30, 1)
	r := PrefixMIS(g, ord, Options{PrefixSize: 3})
	if r.Size() != 1 {
		t.Errorf("K30 MIS size = %d", r.Size())
	}
	if r.Stats.Rounds > 30 {
		t.Errorf("K30 with prefix 3 took %d rounds", r.Stats.Rounds)
	}
}
