package core

import (
	"fmt"

	"repro/internal/graph"
)

// IsIndependentSet reports whether no two vertices with inSet true are
// adjacent in g.
func IsIndependentSet(g *graph.Graph, inSet []bool) bool {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if !inSet[v] {
			continue
		}
		for _, u := range g.Neighbors(int32(v)) {
			if inSet[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether inSet is independent and
// maximal: every vertex not in the set has a neighbor in it.
func IsMaximalIndependentSet(g *graph.Graph, inSet []bool) bool {
	if !IsIndependentSet(g, inSet) {
		return false
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if inSet[v] {
			continue
		}
		covered := false
		for _, u := range g.Neighbors(int32(v)) {
			if inSet[u] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// VerifyLexFirst checks that result is exactly the lexicographically
// first MIS of g under ord, i.e. the answer of the sequential greedy
// algorithm. It returns nil on success and a descriptive error naming
// the first disagreeing vertex otherwise. This is the determinism
// property the paper emphasizes: any schedule of the parallel algorithm
// must pass this check.
func VerifyLexFirst(g *graph.Graph, ord Order, result *Result) error {
	want := SequentialMIS(g, ord)
	n := g.NumVertices()
	if len(result.InSet) != n {
		return fmt.Errorf("core: result covers %d vertices, graph has %d", len(result.InSet), n)
	}
	for r := 0; r < n; r++ {
		v := ord.Order[r]
		if result.InSet[v] != want.InSet[v] {
			return fmt.Errorf("core: vertex %d (rank %d): got in=%v, lexicographically-first MIS has in=%v",
				v, r, result.InSet[v], want.InSet[v])
		}
	}
	return nil
}
