package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Vertex statuses shared by all MIS implementations. A status is
// monotone: it moves from undecided to exactly one of in/out and never
// changes again — the invariant that makes the optimistic parallel
// attempts safe (a vertex only enters the MIS after observing final
// "out" for every earlier neighbor).
const (
	statusUndecided int32 = 0
	statusIn        int32 = 1
	statusOut       int32 = 2
)

// Stats records machine-independent cost measures of a run, the
// quantities plotted by the paper's Figures 1 and 2.
type Stats struct {
	// Rounds is the number of outer-loop rounds: prefixes taken by the
	// prefix-based algorithm (one per round, failed iterates retried),
	// steps of the step-synchronous algorithms, or rounds of Luby. The
	// paper uses it as the (inverse) parallelism estimate in Figures
	// 1(b)/1(e). A sequential run has Rounds == number of items.
	Rounds int64
	// Attempts is the total number of iterate-processings summed over
	// rounds, the paper's "total work" (Figures 1(a)/1(d)): a sequential
	// run attempts each item exactly once, so Attempts == items; parallel
	// runs retry failed iterates and so do more work.
	Attempts int64
	// EdgeInspections counts neighbor-status reads, a finer-grained work
	// measure reported alongside Attempts.
	EdgeInspections int64
	// PrefixSize is the resolved prefix size used by prefix-based runs
	// (0 for the other algorithms). Adaptive runs report the largest
	// window any round actually used (a growth decision after the final
	// round is not reported — no round ran at that size).
	PrefixSize int
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d attempts=%d inspections=%d prefix=%d",
		s.Rounds, s.Attempts, s.EdgeInspections, s.PrefixSize)
}

// Result is the outcome of an MIS computation.
type Result struct {
	// InSet[v] reports whether vertex v is in the independent set.
	InSet []bool
	// Set lists the members of the independent set in increasing vertex
	// order.
	Set []graph.Vertex
	// Stats are the cost counters of the run.
	Stats Stats
}

func newResult(status []int32, stats Stats) *Result {
	n := len(status)
	in := make([]bool, n)
	parallel.For(n, 4096, func(i int) {
		in[i] = status[i] == statusIn
	})
	set := parallel.PackIndex(n, 4096, func(i int) bool { return in[i] })
	return &Result{InSet: in, Set: set, Stats: stats}
}

// Size returns the number of vertices in the set.
func (r *Result) Size() int { return len(r.Set) }

// Equal reports whether two results select exactly the same set.
func (r *Result) Equal(other *Result) bool {
	if len(r.Set) != len(other.Set) {
		return false
	}
	for i := range r.Set {
		if r.Set[i] != other.Set[i] {
			return false
		}
	}
	return true
}

// Options configures the parallel MIS algorithms.
type Options struct {
	// PrefixSize fixes the number of iterates examined per round of the
	// prefix-based algorithm. If zero, PrefixFrac is used instead.
	PrefixSize int
	// PrefixFrac sets the prefix size as ⌈PrefixFrac·n⌉ (see CeilFrac).
	// If both PrefixSize and PrefixFrac are zero, DefaultPrefixFrac is
	// used. PrefixFrac = 1 processes the whole remaining input each
	// round (maximum parallelism, maximum redundant work); prefix size 1
	// degenerates to the sequential algorithm.
	PrefixFrac float64
	// Adaptive replaces the fixed window of the prefix-based algorithms
	// with a measured schedule: an AdaptiveController doubles or halves
	// the next round's window from the previous round's
	// resolved/attempted ratio and edge-inspection cost, bounded by
	// [1, n]. An explicit PrefixSize/PrefixFrac seeds the initial
	// window; otherwise the run starts at AdaptiveStartWindow. Results
	// are bit-identical to fixed-prefix and sequential runs: the window
	// changes only how many of the earliest unresolved iterates run per
	// round, never their order. Ignored by the non-prefix algorithms.
	Adaptive bool
	// Grain is the parallel-loop grain size; 0 means
	// parallel.DefaultGrain (256, as in the paper).
	Grain int
	// Pointered enables the parent-pointer optimization of Lemma 4.1:
	// each iterate resumes scanning its earlier neighbors where the
	// previous attempt stalled instead of rescanning from scratch. The
	// default (false) matches the PBBS implementation the paper measures
	// and its work curve.
	Pointered bool
	// OnRound, if non-nil, is called after every round of the
	// round-synchronous algorithms (prefix-based, root-set, Luby) with
	// that round's statistics. It exposes the per-round profile (how
	// failed iterates accumulate at large prefixes) at no cost when
	// unset. The callback runs on the round loop's goroutine, between
	// rounds; it must not block for long.
	OnRound func(RoundStat)
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs (see Workspace). nil means allocate fresh buffers.
	Workspace *Workspace
}

// RoundStat describes one completed round of a round-synchronous
// algorithm, passed to Options.OnRound. Summed over a run, Attempted is
// the paper's total work (Figure 1(a)/1(d)), the number of callbacks is
// Rounds (Figure 1(b)/1(e)), and Inspections is the edge-inspection
// work measure — so an observer sees the paper's Figure 1 quantities
// accumulate live.
type RoundStat struct {
	// Round is the 1-based round index.
	Round int64
	// Prefix is the window size of this round: the maximum number of
	// iterates attempted (0 for algorithms without a prefix window).
	// Fixed-prefix runs report the same value every round; adaptive
	// runs report the controller's current window, so an observer
	// watches the schedule evolve.
	Prefix int
	// Attempted is the number of iterates processed this round.
	Attempted int
	// Resolved is the number of iterates that reached their final
	// status (accepted into the solution or ruled out) this round.
	Resolved int
	// Inspections is the number of neighbor/endpoint status reads
	// performed this round.
	Inspections int64
}

// DefaultPrefixFrac is the default prefix fraction, chosen near the
// running-time optimum the paper observes (prefix/input between 1e-3
// and 1e-2 on both inputs).
const DefaultPrefixFrac = 0.005

// CeilFrac returns ⌈frac·n⌉ with integer rounding semantics: a decimal
// fraction whose binary representation lands the product a hair above
// an integer (0.005·1000 = 5.000000000000001 in float64) still yields
// that integer, not one past it. The product is nudged down by one part
// in 10^12 — orders of magnitude above the representation error of any
// (frac, n) pair in range, orders of magnitude below one iterate —
// before the ceiling, so the result is the documented value on every
// platform instead of whatever int truncation of the raw product gives.
// frac ≥ 1 returns n; frac ≤ 0 or n ≤ 0 returns 0.
func CeilFrac(frac float64, n int) int {
	if n <= 0 || frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	return int(math.Ceil(frac * float64(n) * (1 - 1e-12)))
}

func (o Options) prefixFor(n int) int {
	p := o.PrefixSize
	if p <= 0 {
		frac := o.PrefixFrac
		if frac <= 0 {
			frac = DefaultPrefixFrac
		}
		p = CeilFrac(frac, n)
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

func (o Options) grain() int {
	if o.Grain <= 0 {
		return parallel.DefaultGrain
	}
	return o.Grain
}
