package core

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Vertex statuses shared by all MIS implementations. A status is
// monotone: it moves from undecided to exactly one of in/out and never
// changes again — the invariant that makes the optimistic parallel
// attempts safe (a vertex only enters the MIS after observing final
// "out" for every earlier neighbor). The values deliberately coincide
// with the engine's Undecided/Committed/Dropped outcome codes, so the
// prefix loop's per-round outcome array and the status array speak the
// same language.
const (
	statusUndecided = engine.Undecided
	statusIn        = engine.Committed
	statusOut       = engine.Dropped
)

// Stats records machine-independent cost measures of a run, the
// quantities plotted by the paper's Figures 1 and 2. It is the
// engine's Stats type; see engine.Stats for the field conventions.
type Stats = engine.Stats

// RoundStat describes one completed round of a round-synchronous
// algorithm, passed to Options.OnRound; see engine.RoundStat.
type RoundStat = engine.RoundStat

// Result is the outcome of an MIS computation.
type Result struct {
	// InSet[v] reports whether vertex v is in the independent set.
	InSet []bool
	// Set lists the members of the independent set in increasing vertex
	// order.
	Set []graph.Vertex
	// Stats are the cost counters of the run.
	Stats Stats
}

func newResult(status []int32, stats Stats) *Result {
	n := len(status)
	in := make([]bool, n)
	parallel.For(n, 4096, func(i int) {
		in[i] = status[i] == statusIn
	})
	set := parallel.PackIndex(n, 4096, func(i int) bool { return in[i] })
	return &Result{InSet: in, Set: set, Stats: stats}
}

// Size returns the number of vertices in the set.
func (r *Result) Size() int { return len(r.Set) }

// Equal reports whether two results select exactly the same set.
func (r *Result) Equal(other *Result) bool {
	if len(r.Set) != len(other.Set) {
		return false
	}
	for i := range r.Set {
		if r.Set[i] != other.Set[i] {
			return false
		}
	}
	return true
}

// Options configures the parallel MIS algorithms.
type Options struct {
	// PrefixSize fixes the number of iterates examined per round of the
	// prefix-based algorithm. If zero, PrefixFrac is used instead.
	PrefixSize int
	// PrefixFrac sets the prefix size as ⌈PrefixFrac·n⌉ (see CeilFrac).
	// If both PrefixSize and PrefixFrac are zero, DefaultPrefixFrac is
	// used. PrefixFrac = 1 processes the whole remaining input each
	// round (maximum parallelism, maximum redundant work); prefix size 1
	// degenerates to the sequential algorithm.
	PrefixFrac float64
	// Adaptive replaces the fixed window of the prefix-based algorithms
	// with a measured schedule: an AdaptiveController doubles or halves
	// the next round's window from the previous round's
	// resolved/attempted ratio and edge-inspection cost, bounded by
	// [1, n]. An explicit PrefixSize/PrefixFrac seeds the initial
	// window; otherwise the run starts at AdaptiveStartWindow. Results
	// are bit-identical to fixed-prefix and sequential runs: the window
	// changes only how many of the earliest unresolved iterates run per
	// round, never their order. Ignored by the non-prefix algorithms.
	Adaptive bool
	// Grain is the parallel-loop grain size; 0 means
	// parallel.DefaultGrain (256, as in the paper).
	Grain int
	// Pointered enables the parent-pointer optimization of Lemma 4.1:
	// each iterate resumes scanning its earlier neighbors where the
	// previous attempt stalled instead of rescanning from scratch. The
	// default (false) matches the PBBS implementation the paper measures
	// and its work curve.
	Pointered bool
	// OnRound, if non-nil, is called after every round of the
	// round-synchronous algorithms (prefix-based, root-set, Luby) with
	// that round's statistics. It exposes the per-round profile (how
	// failed iterates accumulate at large prefixes) at no cost when
	// unset. The callback runs on the round loop's goroutine, between
	// rounds; it must not block for long.
	OnRound func(RoundStat)
	// Clock, if non-nil, enables the engine's per-phase wall-time
	// attribution (see engine.Options.Clock): a caller-injected
	// monotonic nanosecond clock whose readings surface only through
	// RoundStat's phase fields, never in results. nil (the default)
	// keeps the dark path free of clock reads.
	Clock func() int64
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs (see Workspace). nil means allocate fresh buffers.
	Workspace *Workspace
}

// engineOptions translates the MIS options into the engine's form,
// wiring the pooled window buffers when ws is non-nil.
func (o Options) engineOptions(ws *engine.Workspace) engine.Options {
	return engine.Options{
		PrefixSize: o.PrefixSize,
		PrefixFrac: o.PrefixFrac,
		Adaptive:   o.Adaptive,
		Grain:      o.Grain,
		OnRound:    o.OnRound,
		Clock:      o.Clock,
		Workspace:  ws,
	}
}

// DefaultPrefixFrac is the default prefix fraction, chosen near the
// running-time optimum the paper observes (prefix/input between 1e-3
// and 1e-2 on both inputs).
const DefaultPrefixFrac = engine.DefaultPrefixFrac

// CeilFrac returns ⌈frac·n⌉ with exact integer rounding semantics; see
// engine.CeilFrac, the single implementation.
func CeilFrac(frac float64, n int) int { return engine.CeilFrac(frac, n) }

func (o Options) prefixFor(n int) int {
	return o.engineOptions(nil).PrefixFor(n)
}

func (o Options) grain() int {
	if o.Grain <= 0 {
		return parallel.DefaultGrain
	}
	return o.Grain
}
