package core

import (
	"context"

	"repro/internal/graph"
)

// SequentialMIS computes the lexicographically-first MIS of g under ord
// with the paper's Algorithm 1: scan vertices in priority order; add a
// vertex if it has not been removed; remove it and its neighbors.
// It runs in O(n + m) time and defines the answer every deterministic
// parallel algorithm in this package must reproduce.
//
// Stats: Rounds = Attempts = n (the paper's convention that a sequential
// implementation's work and round count both equal the input size);
// EdgeInspections counts the neighbor scans of accepted vertices.
func SequentialMIS(g *graph.Graph, ord Order) *Result {
	res, err := SequentialMISCtx(context.Background(), g, ord, Options{})
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// seqCancelMask paces the cancellation checks of the sequential scans:
// ctx.Err() is consulted every seqCancelMask+1 iterations, so a
// cancelled context aborts within a few thousand O(1) iterations —
// well inside the issue-of-one-round bound the parallel loops honor.
const seqCancelMask = 1<<12 - 1

// SequentialMISCtx is SequentialMIS with cooperative cancellation and
// workspace reuse. The priority scan checks ctx every few thousand
// vertices, so cancellation is honored promptly without slowing the
// O(n + m) loop measurably.
func SequentialMISCtx(ctx context.Context, g *graph.Graph, ord Order, opt Options) (*Result, error) {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("core: order size does not match graph")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := Grow32(&ws.status, n)
	Fill32(status, statusUndecided)
	var inspections int64
	for r := 0; r < n; r++ {
		if r&seqCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v := ord.Order[r]
		if status[v] != statusUndecided {
			continue
		}
		status[v] = statusIn
		nbrs := g.Neighbors(v)
		inspections += int64(len(nbrs))
		for _, u := range nbrs {
			if status[u] == statusUndecided {
				status[u] = statusOut
			}
		}
	}
	return newResult(status, Stats{
		Rounds:          int64(n),
		Attempts:        int64(n),
		EdgeInspections: inspections,
	}), nil
}
