package core

import "repro/internal/graph"

// SequentialMIS computes the lexicographically-first MIS of g under ord
// with the paper's Algorithm 1: scan vertices in priority order; add a
// vertex if it has not been removed; remove it and its neighbors.
// It runs in O(n + m) time and defines the answer every deterministic
// parallel algorithm in this package must reproduce.
//
// Stats: Rounds = Attempts = n (the paper's convention that a sequential
// implementation's work and round count both equal the input size);
// EdgeInspections counts the neighbor scans of accepted vertices.
func SequentialMIS(g *graph.Graph, ord Order) *Result {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("core: order size does not match graph")
	}
	status := make([]int32, n)
	var inspections int64
	for r := 0; r < n; r++ {
		v := ord.Order[r]
		if status[v] != statusUndecided {
			continue
		}
		status[v] = statusIn
		nbrs := g.Neighbors(v)
		inspections += int64(len(nbrs))
		for _, u := range nbrs {
			if status[u] == statusUndecided {
				status[u] = statusOut
			}
		}
	}
	return newResult(status, Stats{
		Rounds:          int64(n),
		Attempts:        int64(n),
		EdgeInspections: inspections,
	})
}
