package core

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// parentsCSR holds, for each vertex, its neighbors that are earlier in
// the priority order (its parents in the priority DAG). The paper's
// linear-work implementation assumes "the neighbors of a vertex have
// been pre-partitioned into their parents (higher priorities) and
// children (lower priorities)"; this structure is that partition. The
// complementary children lists are obtained from the graph by filtering
// on rank, or built explicitly by childrenCSR.
type parentsCSR struct {
	offsets []int64
	items   []int32
}

func (p *parentsCSR) of(v int32) []int32 {
	return p.items[p.offsets[v]:p.offsets[v+1]]
}

// buildParents builds the parent lists in O(n + m) work. Within each
// list, parents appear in adjacency (vertex id) order; the algorithms
// that use them do not require priority order.
func buildParents(g *graph.Graph, ord Order) *parentsCSR {
	n := g.NumVertices()
	rank := ord.Rank
	counts := make([]int64, n+1)
	parallel.For(n, 1024, func(i int) {
		v := int32(i)
		rv := rank[v]
		c := int64(0)
		for _, u := range g.Neighbors(v) {
			if rank[u] < rv {
				c++
			}
		}
		counts[i] = c
	})
	offsets := make([]int64, n+1)
	total := parallel.ExclusiveScan(offsets[:n], counts[:n], 1024)
	offsets[n] = total
	items := make([]int32, total)
	parallel.For(n, 1024, func(i int) {
		v := int32(i)
		rv := rank[v]
		pos := offsets[i]
		for _, u := range g.Neighbors(v) {
			if rank[u] < rv {
				items[pos] = u
				pos++
			}
		}
	})
	return &parentsCSR{offsets: offsets, items: items}
}

// buildChildren builds the child lists (later neighbors), the mirror of
// buildParents.
func buildChildren(g *graph.Graph, ord Order) *parentsCSR {
	n := g.NumVertices()
	rank := ord.Rank
	counts := make([]int64, n+1)
	parallel.For(n, 1024, func(i int) {
		v := int32(i)
		rv := rank[v]
		c := int64(0)
		for _, u := range g.Neighbors(v) {
			if rank[u] > rv {
				c++
			}
		}
		counts[i] = c
	})
	offsets := make([]int64, n+1)
	total := parallel.ExclusiveScan(offsets[:n], counts[:n], 1024)
	offsets[n] = total
	items := make([]int32, total)
	parallel.For(n, 1024, func(i int) {
		v := int32(i)
		rv := rank[v]
		pos := offsets[i]
		for _, u := range g.Neighbors(v) {
			if rank[u] > rv {
				items[pos] = u
				pos++
			}
		}
	})
	return &parentsCSR{offsets: offsets, items: items}
}
