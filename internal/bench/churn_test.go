package bench

import (
	"strings"
	"testing"
)

// TestParseChurnAssertion covers the strict spec grammar: good specs
// round-trip, and malformed numeric fields — including trailing
// garbage, which fmt.Sscanf would have silently accepted — are
// rejected so a mistyped CI guard fails at parse time.
func TestParseChurnAssertion(t *testing.T) {
	a, err := ParseChurnAssertion("rmat:mm:1:1.0")
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenario != "rmat" || a.Problem != "mm" || a.BatchSize != 1 || a.MinSpeedup != 1.0 {
		t.Fatalf("parsed %+v", a)
	}
	for _, bad := range []string{
		"", "rmat:mm:1", "rmat:mm:1:1.0:extra",
		"rmat:mm:16x:1.0", "rmat:mm:1:1.0x", "rmat:mm::1.0", "rmat:mm:1:",
	} {
		if _, err := ParseChurnAssertion(bad); err == nil {
			t.Errorf("ParseChurnAssertion(%q) accepted a malformed spec", bad)
		}
	}
}

// TestCheckAssertions covers the evaluation paths: a held assertion,
// a violated one, and one naming a cell absent from the report.
func TestCheckAssertions(t *testing.T) {
	r := ChurnReport{
		BatchSizes: []int{1},
		Scenarios: []ChurnScenarioReport{{
			ChurnScenario: ChurnScenario{Name: "rmat"},
			Problems: []ChurnProblemReport{{
				Problem: "mm",
				Runs:    []ChurnRun{{BatchSize: 1, SpeedupVsRecompute: 45.0}},
			}},
		}},
	}
	if fails := r.CheckAssertions([]ChurnAssertion{{Scenario: "rmat", Problem: "mm", BatchSize: 1, MinSpeedup: 5}}); len(fails) != 0 {
		t.Errorf("held assertion reported failures: %v", fails)
	}
	fails := r.CheckAssertions([]ChurnAssertion{
		{Scenario: "rmat", Problem: "mm", BatchSize: 1, MinSpeedup: 100},
		{Scenario: "grid", Problem: "mis", BatchSize: 1, MinSpeedup: 1},
	})
	if len(fails) != 2 {
		t.Fatalf("want 2 failures, got %v", fails)
	}
	if !strings.Contains(fails[0], "45.00x < required 100.00x") {
		t.Errorf("violation message: %s", fails[0])
	}
	if !strings.Contains(fails[1], "no such cell") {
		t.Errorf("missing-cell message: %s", fails[1])
	}
}
