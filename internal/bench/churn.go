package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
)

// The churn matrix: the reproducible repair-vs-recompute harness of
// the dynamic-graph subsystem (BENCH_pr5.json). For each graph family
// and problem it maintains a solution under randomized update batches
// of several sizes and compares the measured repair time against a
// from-scratch sequential recompute on the mutated graph — the
// quantity the paper's shallow-dependence-cone insight predicts to be
// orders of magnitude apart for small batches. Verification is built
// in: after timed batches the maintained solution is checked
// bit-identical to a from-scratch sequential run (the harness refuses
// to time wrong answers), exactly like the fixed-vs-adaptive matrix.
//
// v2 (PR 5) records the repaired-region shape per cell — visited,
// flipped, frontier peak — alongside wall time, so the report explains
// *why* a cell wins: a frontier cell beats recompute exactly when the
// flip region stays small, and loses only where churn has damaged a
// batch-sized fraction of the realized decision sequence.

// ChurnSchema identifies the report format.
const ChurnSchema = "greedy-bench-churn/v2"

// churnSeed fixes the generator and priority seeds of every scenario.
const churnSeed = 42

// ChurnScenario is one input family of the churn matrix.
type ChurnScenario struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	Seed uint64 `json:"seed"`

	build func() *graph.Graph
}

// ChurnScenarios returns the churn matrix inputs. The full-scale
// random family is the acceptance workload: a >= 1M-vertex uniform
// random graph on which single-edge repair must beat from-scratch
// recompute by an order of magnitude.
func ChurnScenarios(smoke bool) []ChurnScenario {
	type size struct{ n, grid int }
	sz := size{n: 1_000_000, grid: 1000}
	if smoke {
		sz = size{n: 20_000, grid: 140}
	}
	scenarios := []ChurnScenario{
		{
			Name: "random",
			Note: "uniform sparse random graph, m = 5n (the paper's first input family)",
			Seed: churnSeed,
			build: func() *graph.Graph {
				return graph.Random(sz.n, 5*sz.n, churnSeed)
			},
		},
		{
			Name: "rmat",
			Note: "rMat power-law graph, m = 5n; hub cones stress the repair BFS",
			Seed: churnSeed,
			build: func() *graph.Graph {
				logN := 0
				for 1<<logN < sz.n {
					logN++
				}
				return graph.RMat(logN, 5*sz.n, churnSeed, graph.DefaultRMatOptions())
			},
		},
		{
			Name: "grid",
			Note: "2-D grid: bounded degree 4, minimal cones",
			Seed: churnSeed,
			build: func() *graph.Graph {
				return graph.Grid2D(sz.grid, sz.grid)
			},
		},
	}
	// N/M metadata is filled in by RunChurn from the single shared
	// build — constructing a 1M-vertex graph just to read its sizes
	// here would triple generation work.
	return scenarios
}

// ChurnBatchSizes is the default update-batch size sweep. It extends
// past the closure engine's old crossover (batch ~256 on random-1M,
// batch 1 on rMat MM) so the report shows where — if anywhere —
// frontier repair still loses to recompute.
var ChurnBatchSizes = []int{1, 16, 256, 4096, 32768}

// ChurnSmokeBatchSizes is the smoke-scale sweep: the 20k-vertex smoke
// graphs have ~100k edges, so the 32768 axis point would churn a third
// of the graph per batch and measure compaction, not repair.
var ChurnSmokeBatchSizes = []int{1, 16, 256, 4096}

// ChurnConfig configures RunChurn.
type ChurnConfig struct {
	Smoke bool // smallest scenario sizes (CI smoke leg)
	// Reps is the recompute timing repetition count (median reported);
	// min 1.
	Reps int
	// Batches is the number of timed batches per size; 0 means 16.
	Batches int
	// BatchSizes overrides ChurnBatchSizes.
	BatchSizes []int
}

// ChurnRun aggregates one (scenario, problem, batch size) cell.
type ChurnRun struct {
	BatchSize int `json:"batch_size"`
	Batches   int `json:"batches"`
	// RepairMSMean/Max are wall times of Maintainer.Apply (validation,
	// structural update, seed, frontier drain).
	RepairMSMean float64 `json:"repair_ms_mean"`
	RepairMSMax  float64 `json:"repair_ms_max"`
	// Machine-independent repaired-region means per batch: seeds
	// enqueued, distinct items re-decided (visited), membership flips
	// propagated, and net memberships changed.
	SeedsMean   float64 `json:"seeds_mean"`
	VisitedMean float64 `json:"visited_mean"`
	FlippedMean float64 `json:"flipped_mean"`
	ChangedMean float64 `json:"changed_mean"`
	// FrontierPeakMax is the largest pending-frontier high-water mark
	// any batch of the cell reached.
	FrontierPeakMax int `json:"frontier_peak_max"`
	// AttemptsMean is the frontier drain's mean decide attempts per
	// batch — the repair analogue of the paper's total-work measure.
	AttemptsMean float64 `json:"attempts_mean"`
	// RecomputeMS is the median from-scratch sequential solve on the
	// post-churn graph (order derivation excluded; materialization
	// excluded — the recompute baseline is handed the same CSR a
	// non-dynamic job would hold).
	RecomputeMS float64 `json:"recompute_ms"`
	// SpeedupVsRecompute is RecomputeMS / RepairMSMean.
	SpeedupVsRecompute float64 `json:"speedup_vs_recompute"`
	// Verified reports that the maintained solution was checked
	// bit-identical to the from-scratch sequential solution after this
	// cell's batches (a mismatch panics instead).
	Verified bool `json:"verified"`
}

// ChurnProblemReport aggregates one problem over a scenario.
type ChurnProblemReport struct {
	Problem string `json:"problem"`
	// InitMS is the initial from-scratch computation inside the
	// maintainer (the one-time session cost).
	InitMS float64    `json:"init_ms"`
	Runs   []ChurnRun `json:"runs"`
}

// ChurnScenarioReport is one scenario's full result set.
type ChurnScenarioReport struct {
	ChurnScenario
	Problems []ChurnProblemReport `json:"problems"`
}

// ChurnReport is the full harness output, the schema of
// BENCH_pr5.json.
type ChurnReport struct {
	Schema     string                `json:"schema"`
	Env        string                `json:"env"`
	GoMaxProcs int                   `json:"gomaxprocs"`
	Smoke      bool                  `json:"smoke"`
	Reps       int                   `json:"reps"`
	Batches    int                   `json:"batches"`
	BatchSizes []int                 `json:"batch_sizes"`
	Scenarios  []ChurnScenarioReport `json:"scenarios"`
}

// JSON renders the report with stable indentation.
func (r ChurnReport) JSON() []byte {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: marshal churn report: %v", err))
	}
	return append(raw, '\n')
}

// RunChurn executes the churn matrix and returns the report.
func RunChurn(cfg ChurnConfig) ChurnReport {
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	batches := cfg.Batches
	if batches <= 0 {
		batches = 16
	}
	sizes := cfg.BatchSizes
	if len(sizes) == 0 {
		if cfg.Smoke {
			sizes = ChurnSmokeBatchSizes
		} else {
			sizes = ChurnBatchSizes
		}
	}
	report := ChurnReport{
		Schema:     ChurnSchema,
		Env:        Env(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Smoke:      cfg.Smoke,
		Reps:       reps,
		Batches:    batches,
		BatchSizes: sizes,
	}
	for _, sc := range ChurnScenarios(cfg.Smoke) {
		// Build once per scenario: the maintainers never mutate their
		// base graph (the overlay holds the deltas), so both problems
		// share the same immutable CSR.
		g := sc.build()
		sc.N = g.NumVertices()
		sc.M = g.NumEdges()
		sr := ChurnScenarioReport{ChurnScenario: sc}
		for _, problem := range []string{"mis", "mm"} {
			sr.Problems = append(sr.Problems, runChurnProblem(problem, g, sizes, batches, reps, cfg.Smoke))
		}
		report.Scenarios = append(report.Scenarios, sr)
	}
	return report
}

// ChurnMutator mirrors a graph's edge set and draws valid randomized
// update batches for churn workloads. Draw produces a batch without
// touching the mirror; Commit applies a drawn batch — so a caller
// whose remote application can fail (cmd/loadgen's PATCH churner)
// simply drops an unaccepted batch, and the harness commits right
// after a successful Maintainer.Apply. Shared by this harness and
// cmd/loadgen so the two churn drivers cannot drift.
type ChurnMutator struct {
	x     *rng.Xoshiro256
	edges []graph.Edge     // live edges, canonical U < V
	idx   map[uint64]int32 // canonical key -> position in edges
	n     int
}

// NewChurnMutator mirrors g's current edge set.
func NewChurnMutator(g *graph.Graph, seed uint64) *ChurnMutator {
	edges := g.Edges()
	idx := make(map[uint64]int32, len(edges))
	for i, e := range edges {
		idx[churnKey(e.U, e.V)] = int32(i)
	}
	return &ChurnMutator{x: rng.NewXoshiro256(seed), edges: edges, idx: idx, n: g.NumVertices()}
}

func churnKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Draw returns a valid batch of up to k updates (≈50/50
// insert/delete, no edge repeated) against the mirror, without
// applying it. The draw is attempt-bounded so a graph with fewer than
// k distinct legal updates cannot spin the generator.
func (cm *ChurnMutator) Draw(k int) []dynamic.Update {
	batch := make([]dynamic.Update, 0, k)
	inBatch := make(map[uint64]bool, k)
	for attempts := 0; len(batch) < k && attempts < 64*k; attempts++ {
		if len(cm.edges) > 0 && cm.x.Intn(2) == 0 {
			e := cm.edges[cm.x.Intn(len(cm.edges))]
			key := churnKey(e.U, e.V)
			if inBatch[key] {
				continue
			}
			inBatch[key] = true
			batch = append(batch, dynamic.Update{Op: dynamic.OpDel, U: e.U, V: e.V})
		} else {
			u := int32(cm.x.Intn(cm.n))
			v := int32(cm.x.Intn(cm.n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := churnKey(u, v)
			if inBatch[key] {
				continue
			}
			if _, present := cm.idx[key]; present {
				continue
			}
			inBatch[key] = true
			batch = append(batch, dynamic.Update{Op: dynamic.OpAdd, U: u, V: v})
		}
	}
	return batch
}

// Commit applies a drawn batch to the mirror. Call it exactly once
// per batch the graph's owner actually accepted.
func (cm *ChurnMutator) Commit(batch []dynamic.Update) {
	for _, up := range batch {
		u, v := up.U, up.V
		if u > v {
			u, v = v, u
		}
		key := churnKey(u, v)
		if up.Op == dynamic.OpAdd {
			cm.idx[key] = int32(len(cm.edges))
			cm.edges = append(cm.edges, graph.Edge{U: u, V: v})
			continue
		}
		i := cm.idx[key]
		last := cm.edges[len(cm.edges)-1]
		cm.edges[i] = last
		cm.idx[churnKey(last.U, last.V)] = i
		cm.edges = cm.edges[:len(cm.edges)-1]
		delete(cm.idx, key)
	}
}

// runChurnProblem benchmarks one problem on one scenario graph across
// the batch-size sweep.
func runChurnProblem(problem string, g *graph.Graph, sizes []int, batches, reps int, verifyEvery bool) ChurnProblemReport {
	ctx := context.Background()
	cfg := dynamic.Config{MIS: problem == "mis", MM: problem == "mm", Seed: churnSeed}
	initStart := time.Now()
	mt, err := dynamic.NewMaintainer(ctx, g, cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: churn init: %v", err))
	}
	pr := ChurnProblemReport{
		Problem: problem,
		InitMS:  float64(time.Since(initStart).Microseconds()) / 1000.0,
	}
	cm := NewChurnMutator(g, churnSeed+1)
	// The initial computation leaves hundreds of MB of garbage at full
	// scale; settle it now so the first timed batch measures repair,
	// not a collection of the initializer's trash.
	runtime.GC()
	for _, size := range sizes {
		run := ChurnRun{BatchSize: size, Batches: batches}
		var totalMS, maxMS float64
		var seeds, visited, flipped, changed, attempts int64
		for b := 0; b < batches; b++ {
			batch := cm.Draw(size)
			start := time.Now()
			st, aerr := mt.Apply(ctx, batch)
			ms := float64(time.Since(start).Microseconds()) / 1000.0
			if aerr != nil {
				panic(fmt.Sprintf("bench: churn apply: %v", aerr))
			}
			cm.Commit(batch)
			totalMS += ms
			if ms > maxMS {
				maxMS = ms
			}
			seeds += int64(st.MIS.Seeds + st.MM.Seeds)
			visited += int64(st.MIS.Visited + st.MM.Visited)
			flipped += int64(st.MIS.Flipped + st.MM.Flipped)
			changed += int64(st.MIS.Changed + st.MM.Changed)
			attempts += st.MIS.Attempts + st.MM.Attempts
			if peak := st.MIS.FrontierPeak + st.MM.FrontierPeak; peak > run.FrontierPeakMax {
				run.FrontierPeakMax = peak
			}
			if verifyEvery {
				verifyChurn(problem, mt)
			}
		}
		run.RepairMSMean = totalMS / float64(batches)
		run.RepairMSMax = maxMS
		run.SeedsMean = float64(seeds) / float64(batches)
		run.VisitedMean = float64(visited) / float64(batches)
		run.FlippedMean = float64(flipped) / float64(batches)
		run.ChangedMean = float64(changed) / float64(batches)
		run.AttemptsMean = float64(attempts) / float64(batches)

		// From-scratch baseline on the post-churn graph: the sequential
		// greedy solve a non-dynamic job would run, on an already
		// materialized CSR with an already derived order. Settle the
		// materialization/derivation garbage before timing for the same
		// reason as above.
		cur := mt.Graph()
		switch problem {
		case "mis":
			ord := mt.Order()
			runtime.GC()
			run.RecomputeMS = medianMS(reps, func() {
				core.SequentialMIS(cur, ord)
			})
		default:
			el := cur.EdgeList()
			ord := dynamic.EdgeOrder(el, churnSeed)
			runtime.GC()
			run.RecomputeMS = medianMS(reps, func() {
				matching.SequentialMM(el, ord)
			})
		}
		if run.RepairMSMean > 0 {
			run.SpeedupVsRecompute = run.RecomputeMS / run.RepairMSMean
		}
		// Verify at least once per cell (every batch in smoke mode).
		verifyChurn(problem, mt)
		run.Verified = true
		pr.Runs = append(pr.Runs, run)
	}
	return pr
}

// verifyChurn panics unless the maintained solution is bit-identical
// to a from-scratch sequential run on the current graph.
func verifyChurn(problem string, mt *dynamic.Maintainer) {
	g := mt.Graph()
	switch problem {
	case "mis":
		want := core.SequentialMIS(g, mt.Order())
		got := mt.MISResult()
		for v := range want.InSet {
			if got.InSet[v] != want.InSet[v] {
				panic(fmt.Sprintf("bench: churn MIS diverged from sequential at vertex %d", v))
			}
		}
	default:
		el := g.EdgeList()
		want := matching.SequentialMM(el, dynamic.EdgeOrder(el, churnSeed))
		got := mt.MatchingPairs()
		if len(got) != len(want.Pairs) {
			panic(fmt.Sprintf("bench: churn MM size diverged: %d vs %d", len(got), len(want.Pairs)))
		}
		for i := range got {
			if got[i] != want.Pairs[i] {
				panic(fmt.Sprintf("bench: churn MM diverged at pair %d", i))
			}
		}
	}
}

// ChurnAssertion pins a minimum repair-vs-recompute speedup for one
// (scenario, problem, batch-size) cell — the CI regression guard for
// cells that past engines lost (the closure engine's rMat MM
// single-edge cell was break-even).
type ChurnAssertion struct {
	Scenario   string
	Problem    string
	BatchSize  int
	MinSpeedup float64
}

// ParseChurnAssertion parses "scenario:problem:batch:minSpeedup",
// e.g. "rmat:mm:1:1.0". Malformed numeric fields (including trailing
// garbage) are rejected — a mistyped regression guard must fail at
// parse time, not silently pin the wrong cell.
func ParseChurnAssertion(s string) (ChurnAssertion, error) {
	var a ChurnAssertion
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return a, fmt.Errorf("bench: assertion %q: want scenario:problem:batch:minSpeedup", s)
	}
	a.Scenario, a.Problem = parts[0], parts[1]
	batch, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return a, fmt.Errorf("bench: assertion %q: bad batch size: %v", s, err)
	}
	a.BatchSize = batch
	min, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
	if err != nil {
		return a, fmt.Errorf("bench: assertion %q: bad min speedup: %v", s, err)
	}
	a.MinSpeedup = min
	return a, nil
}

// CheckAssertions evaluates the assertions against the report and
// returns one failure message per violated or unmatched assertion.
func (r ChurnReport) CheckAssertions(asserts []ChurnAssertion) []string {
	var failures []string
	for _, a := range asserts {
		found := false
		for _, sc := range r.Scenarios {
			if sc.Name != a.Scenario {
				continue
			}
			for _, p := range sc.Problems {
				if p.Problem != a.Problem {
					continue
				}
				for _, run := range p.Runs {
					if run.BatchSize != a.BatchSize {
						continue
					}
					found = true
					if run.SpeedupVsRecompute < a.MinSpeedup {
						failures = append(failures, fmt.Sprintf(
							"%s %s batch %d: repair speedup %.2fx < required %.2fx (repair %.3fms vs recompute %.3fms)",
							a.Scenario, a.Problem, a.BatchSize, run.SpeedupVsRecompute, a.MinSpeedup,
							run.RepairMSMean, run.RecomputeMS))
					}
				}
			}
		}
		if !found {
			failures = append(failures, fmt.Sprintf(
				"%s %s batch %d: no such cell in the report (batch sizes %v)",
				a.Scenario, a.Problem, a.BatchSize, r.BatchSizes))
		}
	}
	return failures
}

// ChurnTable renders the repair-vs-recompute comparison for terminal
// output and the docs.
func ChurnTable(r ChurnReport) Table {
	t := Table{
		Title:   fmt.Sprintf("churn matrix: incremental repair vs from-scratch recompute [%s]", r.Env),
		Headers: []string{"scenario", "problem", "batch", "repair mean", "repair max", "visited", "flipped", "peak", "recompute", "speedup"},
	}
	for _, sc := range r.Scenarios {
		for _, p := range sc.Problems {
			for _, run := range p.Runs {
				t.Rows = append(t.Rows, []string{
					sc.Name, p.Problem,
					fmt.Sprintf("%d", run.BatchSize),
					fmt.Sprintf("%.3fms", run.RepairMSMean),
					fmt.Sprintf("%.3fms", run.RepairMSMax),
					fmtFloat(run.VisitedMean),
					fmtFloat(run.FlippedMean),
					fmt.Sprintf("%d", run.FrontierPeakMax),
					fmt.Sprintf("%.2fms", run.RecomputeMS),
					fmt.Sprintf("%.0fx", run.SpeedupVsRecompute),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"repair = Maintainer.Apply wall time (validate + mutate + frontier drain), mean over the timed batches",
		"recompute = median from-scratch sequential solve on the post-churn graph (CSR and priority order already in hand)",
		"visited/flipped = mean items re-decided and mean membership flips propagated per batch; peak = max pending frontier; every cell is verified bit-identical to sequential before it is reported",
	)
	return t
}
