package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matching"
)

// SweepConfig configures a prefix-size sweep (Figures 1 and 2).
type SweepConfig struct {
	Workload  Workload
	Fracs     []float64 // prefix fractions; nil means DefaultFracs
	Reps      int       // timing repetitions (median reported); min 1
	Pointered bool      // use the Lemma 4.1 pointer optimization (ablation AB1)
}

func (c SweepConfig) fracs() []float64 {
	if len(c.Fracs) == 0 {
		return DefaultFracs
	}
	return c.Fracs
}

// MISPrefixSweep reproduces Figure 1 (panels a-c for the random graph,
// d-f for rMat): total work, number of rounds and running time of
// PrefixMIS as a function of the prefix size, all normalized by N as in
// the paper. The work and rounds columns are machine-independent; the
// time column depends on the host.
func MISPrefixSweep(cfg SweepConfig) Table {
	g := cfg.Workload.Build()
	n := g.NumVertices()
	ord := core.NewRandomOrder(n, cfg.Workload.Seed+1)

	seq := core.SequentialMIS(g, ord)
	seqTime := MedianTime(cfg.Reps, func() { core.SequentialMIS(g, ord) })

	t := Table{
		Title: fmt.Sprintf("Figure 1 (MIS prefix sweep) on %s [%s]", cfg.Workload, Env()),
		Headers: []string{
			"prefix/N", "prefix", "work/N", "rounds/N", "inspect/m", "time", "time/seq", "misSize",
		},
		Notes: []string{
			fmt.Sprintf("sequential greedy MIS: time=%s, |MIS|=%d; work/N and rounds/N are 1.0 by definition", fmtDuration(seqTime), seq.Size()),
			"paper: work/N rises from 1 toward ~2.5-3 with prefix size; rounds/N falls as ~1/prefix then flattens at the dependence length; time is U-shaped with the optimum between",
		},
	}
	m := g.NumEdges()
	for _, frac := range cfg.fracs() {
		opt := core.Options{PrefixFrac: frac, Pointered: cfg.Pointered}
		var res *core.Result
		dur := MedianTime(cfg.Reps, func() { res = core.PrefixMIS(g, ord, opt) })
		if !res.Equal(seq) {
			panic(fmt.Sprintf("bench: prefix MIS at frac %v differs from sequential", frac))
		}
		t.Rows = append(t.Rows, []string{
			fmtFloat(frac),
			fmt.Sprintf("%d", res.Stats.PrefixSize),
			fmtFloat(float64(res.Stats.Attempts) / float64(n)),
			fmtFloat(float64(res.Stats.Rounds) / float64(n)),
			fmtFloat(float64(res.Stats.EdgeInspections) / float64(m)),
			fmtDuration(dur),
			fmtFloat(dur.Seconds() / seqTime.Seconds()),
			fmt.Sprintf("%d", res.Size()),
		})
	}
	return t
}

// MMPrefixSweep reproduces Figure 2: the same sweep for maximal
// matching, with quantities normalized by the number of edges M.
func MMPrefixSweep(cfg SweepConfig) Table {
	g := cfg.Workload.Build()
	el := g.EdgeList()
	m := el.NumEdges()
	ord := core.NewRandomOrder(m, cfg.Workload.Seed+2)

	seq := matching.SequentialMM(el, ord)
	seqTime := MedianTime(cfg.Reps, func() { matching.SequentialMM(el, ord) })

	t := Table{
		Title: fmt.Sprintf("Figure 2 (MM prefix sweep) on %s [%s]", cfg.Workload, Env()),
		Headers: []string{
			"prefix/M", "prefix", "work/M", "rounds/M", "inspect/m", "time", "time/seq", "mmSize",
		},
		Notes: []string{
			fmt.Sprintf("sequential greedy MM: time=%s, |MM|=%d", fmtDuration(seqTime), seq.Size()),
			"paper: same shapes as Figure 1 with M replacing N on both axes",
		},
	}
	for _, frac := range cfg.fracs() {
		opt := matching.Options{PrefixFrac: frac}
		var res *matching.Result
		dur := MedianTime(cfg.Reps, func() { res = matching.PrefixMM(el, ord, opt) })
		if !res.Equal(seq) {
			panic(fmt.Sprintf("bench: prefix MM at frac %v differs from sequential", frac))
		}
		t.Rows = append(t.Rows, []string{
			fmtFloat(frac),
			fmt.Sprintf("%d", res.Stats.PrefixSize),
			fmtFloat(float64(res.Stats.Attempts) / float64(m)),
			fmtFloat(float64(res.Stats.Rounds) / float64(m)),
			fmtFloat(float64(res.Stats.EdgeInspections) / float64(m)),
			fmtDuration(dur),
			fmtFloat(dur.Seconds() / seqTime.Seconds()),
			fmt.Sprintf("%d", res.Size()),
		})
	}
	return t
}
