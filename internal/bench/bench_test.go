package bench

import (
	"strings"
	"testing"
	"time"
)

// Small workloads keep harness unit tests fast; the real sizes are
// exercised by cmd/bench and the root bench_test.go.
func smallRandom() Workload { return Workload{Kind: "random", N: 5000, M: 25000, Seed: 7} }
func smallRMat() Workload   { return Workload{Kind: "rmat", N: 1 << 12, M: 20000, Seed: 7} }

func TestTableString(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Headers: []string{"a", "longheader"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"demo", "longheader", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestMedianTime(t *testing.T) {
	d := MedianTime(3, func() { time.Sleep(time.Millisecond) })
	if d < 500*time.Microsecond {
		t.Errorf("median = %v, suspiciously small", d)
	}
	if MedianTime(0, func() {}) < 0 {
		t.Error("negative duration")
	}
}

func TestWorkloadBuild(t *testing.T) {
	g := smallRandom().Build()
	if g.NumVertices() != 5000 || g.NumEdges() != 25000 {
		t.Errorf("random workload built %d/%d", g.NumVertices(), g.NumEdges())
	}
	r := smallRMat().Build()
	if r.NumVertices() != 1<<12 || r.NumEdges() != 20000 {
		t.Errorf("rmat workload built %d/%d", r.NumVertices(), r.NumEdges())
	}
}

func TestDefaultScale(t *testing.T) {
	w := DefaultScale("random", 0)
	if w.N != 10_000_000 || w.M != 50_000_000 {
		t.Errorf("paper-size random workload = %+v", w)
	}
	w4 := DefaultScale("rmat", 4)
	if w4.N != 1<<20 {
		t.Errorf("rmat shrink-4 n = %d, want 2^20", w4.N)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind accepted")
		}
	}()
	DefaultScale("nope", 0)
}

func TestMISPrefixSweepRuns(t *testing.T) {
	tab := MISPrefixSweep(SweepConfig{
		Workload: smallRandom(),
		Fracs:    []float64{1e-3, 0.1, 1.0},
		Reps:     1,
	})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// work/N at the largest prefix must be >= work at the smallest.
	if tab.Rows[0][2] > tab.Rows[2][2] && !strings.Contains(tab.Rows[0][2], "e") {
		t.Errorf("work did not grow with prefix: %v vs %v", tab.Rows[0][2], tab.Rows[2][2])
	}
}

func TestMMPrefixSweepRuns(t *testing.T) {
	tab := MMPrefixSweep(SweepConfig{
		Workload: smallRandom(),
		Fracs:    []float64{1e-2, 1.0},
		Reps:     1,
	})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestThreadScalingRuns(t *testing.T) {
	tab := MISThreadScaling(ThreadConfig{
		Workload: smallRandom(),
		Threads:  []int{1, 2},
		Reps:     1,
	})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	mm := MMThreadScaling(ThreadConfig{
		Workload: smallRandom(),
		Threads:  []int{1, 2},
		Reps:     1,
	})
	if len(mm.Rows) != 2 {
		t.Fatalf("mm rows = %d", len(mm.Rows))
	}
}

func TestLubyWorkRatioRuns(t *testing.T) {
	tab := LubyWorkRatio(smallRandom(), 1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTheoryTablesRun(t *testing.T) {
	dep := TheoryDependenceLength([]int{1000, 4000}, 10, 3)
	if len(dep.Rows) != 2 {
		t.Fatalf("dependence rows = %d", len(dep.Rows))
	}
	pp := TheoryPrefixPath(4000, 10, 3)
	if len(pp.Rows) == 0 {
		t.Fatal("prefix path table empty")
	}
	dr := TheoryDegreeReduction(4000, 10, 3)
	if len(dr.Rows) == 0 {
		t.Fatal("degree reduction table empty")
	}
	ps := TheoryPrefixSparsity(4000, 10, 3)
	if len(ps.Rows) == 0 {
		t.Fatal("sparsity table empty")
	}
}

func TestAblationsRun(t *testing.T) {
	ab1 := AblationPointer(smallRandom(), 1)
	if len(ab1.Rows) == 0 {
		t.Fatal("pointer ablation empty")
	}
	ab2 := AblationAlgorithms(smallRandom(), 1)
	if len(ab2.Rows) < 8 {
		t.Fatalf("algorithm ablation rows = %d", len(ab2.Rows))
	}
	sf := SpanningForestExperiment(smallRandom(), 1)
	if len(sf.Rows) < 2 {
		t.Fatal("spanning forest table too small")
	}
}

func TestEnvNonEmpty(t *testing.T) {
	if !strings.Contains(Env(), "gomaxprocs") {
		t.Errorf("Env() = %q", Env())
	}
}
