package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	greedy "repro"
	"repro/internal/graph"
	"repro/internal/spanning"
)

// The scenario matrix: a reproducible fixed-vs-adaptive prefix harness
// over several graph families, emitting a machine-readable JSON report
// (BENCH_pr3.json) that later PRs diff against. All generator and
// permutation seeds are fixed, so the machine-independent columns
// (rounds, attempts, inspections, window trace, sizes, match flags)
// are bit-stable across machines; only the wall-time columns move.

// MatrixSchema identifies the report format.
const MatrixSchema = "greedy-bench-matrix/v1"

// matrixSeed fixes every scenario's generator seed; the priority
// permutation uses matrixSeed+1 via the library default seeding.
const matrixSeed = 42

// Scenario is one input family of the matrix.
type Scenario struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	Seed uint64 `json:"seed"`

	build func() *graph.Graph
}

// MatrixScenarios returns the scenario matrix at full or smoke scale:
// the paper's two families (uniform random, rMat power-law), a
// bounded-degree 2-D grid, and the line graph of a random graph (MIS on
// it is MM on the base graph, the paper's Lemma 5.1 reduction — a
// high-conflict input for the window controller).
func MatrixScenarios(smoke bool) []Scenario {
	type size struct{ n, grid, lineN int }
	sz := size{n: 200_000, grid: 448, lineN: 20_000}
	if smoke {
		sz = size{n: 4_000, grid: 64, lineN: 800}
	}
	scenarios := []Scenario{
		{
			Name: "random",
			Note: "uniform sparse random graph, m = 5n (the paper's first input family)",
			Seed: matrixSeed,
			build: func() *graph.Graph {
				return graph.Random(sz.n, 5*sz.n, matrixSeed)
			},
		},
		{
			Name: "rmat",
			Note: "rMat power-law graph, m = 5n (the paper's second input family)",
			Seed: matrixSeed,
			build: func() *graph.Graph {
				logN := 0
				for 1<<logN < sz.n {
					logN++
				}
				return graph.RMat(logN, 5*sz.n, matrixSeed, graph.DefaultRMatOptions())
			},
		},
		{
			Name: "grid",
			Note: "2-D grid: bounded degree 4, long dependence chains",
			Seed: matrixSeed,
			build: func() *graph.Graph {
				return graph.Grid2D(sz.grid, sz.grid)
			},
		},
		{
			Name: "linegraph",
			Note: "line graph of a random graph (MIS here = MM on the base, Lemma 5.1); degree-inflated, conflict-heavy",
			Seed: matrixSeed,
			build: func() *graph.Graph {
				base := graph.Random(sz.lineN, 3*sz.lineN, matrixSeed)
				lg, _ := graph.LineGraph(base)
				return lg
			},
		},
	}
	for i := range scenarios {
		g := scenarios[i].build()
		scenarios[i].N = g.NumVertices()
		scenarios[i].M = g.NumEdges()
	}
	return scenarios
}

// MatrixFracs is the fixed-prefix sweep each adaptive run is compared
// against: the paper's near-optimal band (1e-3..1e-2) plus one point
// above it.
var MatrixFracs = []float64{0.001, 0.005, 0.02}

// MatrixConfig configures RunMatrix.
type MatrixConfig struct {
	Smoke bool      // smallest scenario sizes (CI smoke leg)
	Reps  int       // timing repetitions, median reported (min 1)
	Fracs []float64 // fixed prefix fractions; nil means MatrixFracs
}

// RunReport is one (scenario, problem, schedule) execution.
type RunReport struct {
	// Config labels the run: "seq", "frac=0.005", or "adaptive".
	Config   string `json:"config"`
	Adaptive bool   `json:"adaptive,omitempty"`
	// PrefixMax is Stats.PrefixSize: the fixed window, or the largest
	// window an adaptive controller reached.
	PrefixMax   int     `json:"prefix_max,omitempty"`
	Rounds      int64   `json:"rounds"`
	Attempts    int64   `json:"attempts"`
	Inspections int64   `json:"inspections"`
	TimeMS      float64 `json:"time_ms"`
	Size        int     `json:"size"`
	// Matches reports bit-identical agreement with the sequential
	// greedy result (always true for MIS/MM; for the relaxed spanning
	// forest it reports size agreement, the invariant any valid forest
	// satisfies, with validity checked separately).
	Matches bool `json:"matches"`
	// Windows is the COMPLETE per-round window schedule of an adaptive
	// run, run-length encoded (the schedule is long runs of a doubling
	// then steady window, so this stays small at any round count) — the
	// bit-stable trajectory later PRs diff. WindowsTruncated marks the
	// pathological case of more than windowTraceCap distinct runs.
	Windows          []WindowRun `json:"windows,omitempty"`
	WindowsTruncated bool        `json:"windows_truncated,omitempty"`
}

// WindowRun is one run-length-encoded span of the window schedule:
// Rounds consecutive rounds executed at Window.
type WindowRun struct {
	Window int `json:"window"`
	Rounds int `json:"rounds"`
}

// ProblemReport aggregates one problem over a scenario.
type ProblemReport struct {
	Problem string      `json:"problem"`
	Runs    []RunReport `json:"runs"`
	// AdaptiveVsBestFixedTime is adaptive wall time divided by the best
	// fixed-prefix wall time (< 1 means adaptive won).
	AdaptiveVsBestFixedTime float64 `json:"adaptive_vs_best_fixed_time"`
	// AdaptiveVsBestFixedWork is the same ratio over Attempts.
	AdaptiveVsBestFixedWork float64 `json:"adaptive_vs_best_fixed_work"`
}

// ScenarioReport is one scenario's full result set.
type ScenarioReport struct {
	Scenario
	Problems []ProblemReport `json:"problems"`
}

// MatrixReport is the full harness output, the schema of BENCH_pr3.json.
type MatrixReport struct {
	Schema     string           `json:"schema"`
	Env        string           `json:"env"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Smoke      bool             `json:"smoke"`
	Reps       int              `json:"reps"`
	Fracs      []float64        `json:"fracs"`
	Scenarios  []ScenarioReport `json:"scenarios"`
}

// JSON renders the report with stable indentation.
func (r MatrixReport) JSON() []byte {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("bench: marshal matrix report: %v", err))
	}
	return append(raw, '\n')
}

// windowTraceCap bounds the number of run-length spans recorded per
// run; a schedule with more distinct spans than this (which would take
// a window oscillating every round for hundreds of rounds) is marked
// truncated instead of silently cut.
const windowTraceCap = 256

// RunMatrix executes the scenario matrix and returns the report.
// Verification is built in: a fixed or adaptive MIS/MM run that is not
// bit-identical to the sequential greedy result panics, and a spanning
// forest that is not a valid forest spanning the input's components
// panics — the harness refuses to time wrong answers.
func RunMatrix(cfg MatrixConfig) MatrixReport {
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	fracs := cfg.Fracs
	if len(fracs) == 0 {
		fracs = MatrixFracs
	}
	report := MatrixReport{
		Schema:     MatrixSchema,
		Env:        Env(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Smoke:      cfg.Smoke,
		Reps:       reps,
		Fracs:      fracs,
	}
	for _, sc := range MatrixScenarios(cfg.Smoke) {
		g := sc.build()
		el := g.EdgeList()
		sr := ScenarioReport{Scenario: sc}
		for _, problem := range []string{"mis", "mm", "sf", "coloring", "hittingset"} {
			sr.Problems = append(sr.Problems, runProblem(problem, g, el, fracs, reps))
		}
		report.Scenarios = append(report.Scenarios, sr)
	}
	return report
}

// runProblem benchmarks one problem on one graph across the schedule
// configurations.
func runProblem(problem string, g *graph.Graph, el graph.EdgeList, fracs []float64, reps int) ProblemReport {
	pr := ProblemReport{Problem: problem}
	solver := greedy.NewSolver()
	// The hitting-set instance (greedy vertex cover: each edge a
	// two-element set) is built once so system construction is not
	// charged to the solve times.
	var sys *greedy.System
	if problem == "hittingset" {
		sys = greedy.HittingSystemFromEdges(el)
	}
	run := func(seq *executed, opts ...greedy.Option) *executed {
		return execute(problem, solver, g, el, sys, seq, opts...)
	}

	seq := run(nil, greedy.WithAlgorithm(greedy.AlgoSequential))
	seq.run.Config = "seq"
	seq.run.TimeMS = medianMS(reps, func() {
		run(nil, greedy.WithAlgorithm(greedy.AlgoSequential))
	})
	pr.Runs = append(pr.Runs, seq.run)

	bestFixedTime := 0.0
	bestFixedWork := int64(0)
	for _, frac := range fracs {
		r := run(seq, greedy.WithPrefixFrac(frac))
		r.run.Config = fmt.Sprintf("frac=%g", frac)
		r.run.TimeMS = medianMS(reps, func() {
			run(nil, greedy.WithPrefixFrac(frac))
		})
		pr.Runs = append(pr.Runs, r.run)
		if bestFixedTime == 0 || r.run.TimeMS < bestFixedTime {
			bestFixedTime = r.run.TimeMS
		}
		if bestFixedWork == 0 || r.run.Attempts < bestFixedWork {
			bestFixedWork = r.run.Attempts
		}
	}

	ad := run(seq, greedy.WithAdaptivePrefix())
	ad.run.Config = "adaptive"
	ad.run.Adaptive = true
	ad.run.TimeMS = medianMS(reps, func() {
		run(nil, greedy.WithAdaptivePrefix())
	})
	pr.Runs = append(pr.Runs, ad.run)

	if bestFixedTime > 0 {
		pr.AdaptiveVsBestFixedTime = ad.run.TimeMS / bestFixedTime
	}
	if bestFixedWork > 0 {
		pr.AdaptiveVsBestFixedWork = float64(ad.run.Attempts) / float64(bestFixedWork)
	}
	return pr
}

// executed carries one run's report row plus the raw results needed
// for cross-run comparison.
type executed struct {
	run RunReport
	mis *greedy.MISResult
	mm  *greedy.MMResult
	sf  *greedy.SFResult
	col *greedy.ColoringResult
	hs  *greedy.HittingSetResult
}

// execute runs one configuration once, recording counters, the window
// trajectory, and agreement with the sequential baseline seq (nil
// skips comparison — the timing path). Wrong answers panic.
func execute(problem string, solver *greedy.Solver, g *graph.Graph, el graph.EdgeList, sys *greedy.System, seq *executed, opts ...greedy.Option) *executed {
	out := &executed{run: RunReport{Matches: true}}
	plan := greedy.ResolvePlan(opts...)
	if plan.AdaptivePrefix && seq != nil {
		opts = append(opts, greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
			w := out.run.Windows
			if n := len(w); n > 0 && w[n-1].Window == ri.PrefixSize {
				w[n-1].Rounds++
				return
			}
			if len(w) >= windowTraceCap {
				out.run.WindowsTruncated = true
				return
			}
			out.run.Windows = append(w, WindowRun{Window: ri.PrefixSize, Rounds: 1})
		}))
	}
	ctx := context.Background()
	var stats greedy.Stats
	switch problem {
	case "mis":
		res, err := solver.MIS(ctx, g, opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: mis: %v", err))
		}
		out.mis, stats, out.run.Size = res, res.Stats, res.Size()
		if seq != nil && !res.Equal(seq.mis) {
			panic(fmt.Sprintf("bench: %s MIS differs from sequential", plan.Algorithm))
		}
	case "mm":
		res, err := solver.MM(ctx, el, opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: mm: %v", err))
		}
		out.mm, stats, out.run.Size = res, res.Stats, res.Size()
		if seq != nil && !res.Equal(seq.mm) {
			panic(fmt.Sprintf("bench: %s MM differs from sequential", plan.Algorithm))
		}
	case "sf":
		res, err := solver.SF(ctx, el, opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: sf: %v", err))
		}
		out.sf, stats, out.run.Size = res, res.Stats, res.Size()
		if !validForest(el, res) {
			panic("bench: spanning forest invalid")
		}
		// The prefix-based facade SF is the relaxed (PBBS one-root)
		// algorithm: any window schedule may pick a different, equally
		// valid forest, but every spanning forest of the same input has
		// the same cardinality — that is the cross-schedule invariant.
		if seq != nil {
			out.run.Matches = res.Size() == seq.sf.Size()
			if !out.run.Matches {
				panic("bench: spanning forest size differs from sequential (not a spanning forest?)")
			}
		}
	case "coloring":
		res, err := solver.Coloring(ctx, g, opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: coloring: %v", err))
		}
		out.col, stats, out.run.Size = res, res.Stats, res.NumColors
		if verr := greedy.VerifyColoring(g, res.Colors); verr != nil {
			panic(fmt.Sprintf("bench: coloring invalid: %v", verr))
		}
		if seq != nil && !res.Equal(seq.col) {
			panic(fmt.Sprintf("bench: %s coloring differs from sequential", plan.Algorithm))
		}
	case "hittingset":
		res, err := solver.HittingSet(ctx, sys, opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: hittingset: %v", err))
		}
		out.hs, stats, out.run.Size = res, res.Stats, res.Size()
		if verr := greedy.VerifyHittingSet(sys, res.InSet); verr != nil {
			panic(fmt.Sprintf("bench: hitting set invalid: %v", verr))
		}
		if seq != nil && !res.Equal(seq.hs) {
			panic(fmt.Sprintf("bench: %s hitting set differs from sequential", plan.Algorithm))
		}
	default:
		panic(fmt.Sprintf("bench: unknown problem %q", problem))
	}
	out.run.PrefixMax = stats.PrefixSize
	out.run.Rounds = stats.Rounds
	out.run.Attempts = stats.Attempts
	out.run.Inspections = stats.EdgeInspections
	return out
}

// MatrixTable renders a compact fixed-vs-adaptive comparison of the
// report for terminal output and the docs.
func MatrixTable(r MatrixReport) Table {
	t := Table{
		Title:   fmt.Sprintf("scenario matrix: fixed vs adaptive prefix [%s]", r.Env),
		Headers: []string{"scenario", "problem", "config", "prefixMax", "rounds", "work/n", "inspect", "time", "vsBestFixed"},
	}
	for _, sc := range r.Scenarios {
		for _, p := range sc.Problems {
			// MM and SF iterate over edges; MIS, coloring and hitting
			// set (vertex-cover elements) iterate over vertices.
			items := sc.N
			if p.Problem == "mm" || p.Problem == "sf" {
				items = sc.M
			}
			for _, run := range p.Runs {
				vs := ""
				if run.Adaptive {
					vs = fmt.Sprintf("%.2fx time, %.2fx work", p.AdaptiveVsBestFixedTime, p.AdaptiveVsBestFixedWork)
				}
				t.Rows = append(t.Rows, []string{
					sc.Name, p.Problem, run.Config,
					fmt.Sprintf("%d", run.PrefixMax),
					fmt.Sprintf("%d", run.Rounds),
					fmtFloat(float64(run.Attempts) / float64(items)),
					fmt.Sprintf("%d", run.Inspections),
					fmt.Sprintf("%.2fms", run.TimeMS),
					vs,
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"work/n normalizes attempts by the problem's item count (vertices for MIS, edges for MM/SF); sequential is 1.0 by definition",
		"adaptive windows start at 256 (or the explicit prefix) and double while >=90% of attempts resolve; vsBestFixed compares against the best fixed fraction benchmarked",
	)
	return t
}

// medianMS times f like MedianTime but returns milliseconds.
func medianMS(reps int, f func()) float64 {
	return float64(MedianTime(reps, f).Microseconds()) / 1000.0
}

// validForest reports whether res is an acyclic edge set spanning the
// same components as el.
func validForest(el graph.EdgeList, res *greedy.SFResult) bool {
	return spanning.IsForest(el, res.InForest) && spanning.IsSpanning(el, res.InForest)
}
