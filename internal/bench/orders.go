package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// OrderSensitivity measures how the dependence length reacts to the
// priority order across graph families — the empirical face of the
// paper's central hypothesis. Random orders keep the dependence length
// polylogarithmic on every family (Theorem 3.5); structured orders
// (identity on a path, BFS, degree-sorted) can push it toward the
// longest-path bound, and on the path graph all the way to Theta(n) —
// the P-completeness of the lexicographically-first MIS under
// adversarial orders made visible.
func OrderSensitivity(n int, seed uint64) Table {
	if n < 16 {
		n = 16
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"random(avg10)", graph.Random(n, 5*n, seed)},
		{"rmat", rmatFor(n, 5*n, seed)},
		{"path", graph.Path(n)},
		{"grid2d", graph.Grid2D(isqrt(n), isqrt(n))},
		{"hypercube", graph.Hypercube(log2floor(n))},
		{"ba(k=3)", graph.BarabasiAlbert(n, 3, seed)},
		{"smallworld", graph.WattsStrogatz(n, 6, 0.1, seed)},
	}
	t := Table{
		Title:   fmt.Sprintf("Order sensitivity: MIS dependence length by priority order (n~%d) [%s]", n, Env()),
		Headers: []string{"graph", "n", "random", "identity", "reverse-random", "bfs", "degree-asc", "degree-desc"},
		Notes: []string{
			"Theorem 3.5 requires a RANDOM order; structured orders void the polylog guarantee",
			"path + identity order is the classic linear-dependence worst case",
		},
	}
	for _, f := range families {
		nn := f.g.NumVertices()
		rnd := core.NewRandomOrder(nn, seed+1)
		row := []string{
			f.name,
			fmt.Sprintf("%d", nn),
			fmt.Sprintf("%d", core.DependenceSteps(f.g, rnd).Steps),
			fmt.Sprintf("%d", core.DependenceSteps(f.g, core.IdentityOrder(nn)).Steps),
			fmt.Sprintf("%d", core.DependenceSteps(f.g, core.Reverse(rnd)).Steps),
			fmt.Sprintf("%d", core.DependenceSteps(f.g, core.BFSOrder(f.g, 0)).Steps),
			fmt.Sprintf("%d", core.DependenceSteps(f.g, core.DegreeOrder(f.g, true)).Steps),
			fmt.Sprintf("%d", core.DependenceSteps(f.g, core.DegreeOrder(f.g, false)).Steps),
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func rmatFor(n, m int, seed uint64) *graph.Graph {
	logN := 0
	for 1<<logN < n {
		logN++
	}
	return graph.RMat(logN, m, seed, graph.DefaultRMatOptions())
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func log2floor(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}
