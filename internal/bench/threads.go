package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/matching"
)

// ThreadConfig configures a thread-scaling experiment (Figures 3 and 4).
type ThreadConfig struct {
	Workload   Workload
	Threads    []int   // GOMAXPROCS values; nil means {1, 2, 4}
	PrefixFrac float64 // prefix fraction for the prefix-based algorithm; 0 means the default
	Reps       int
}

func (c ThreadConfig) threads() []int {
	if len(c.Threads) == 0 {
		return []int{1, 2, 4}
	}
	return c.Threads
}

// withProcs runs f under a temporary GOMAXPROCS and restores it.
func withProcs(p int, f func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

// MISThreadScaling reproduces Figure 3: running time versus number of
// threads for the prefix-based MIS, our implementation of Luby's
// algorithm, and the optimized sequential MIS (a horizontal line in the
// paper's plot).
func MISThreadScaling(cfg ThreadConfig) Table {
	g := cfg.Workload.Build()
	n := g.NumVertices()
	ord := core.NewRandomOrder(n, cfg.Workload.Seed+1)
	frac := cfg.PrefixFrac
	if frac <= 0 {
		frac = core.DefaultPrefixFrac
	}

	seqTime := MedianTime(cfg.Reps, func() { core.SequentialMIS(g, ord) })
	seq := core.SequentialMIS(g, ord)

	t := Table{
		Title: fmt.Sprintf("Figure 3 (MIS time vs threads) on %s [%s]", cfg.Workload, Env()),
		Headers: []string{
			"threads", "prefixMIS", "luby", "serialMIS", "prefix-speedup", "prefix/luby",
		},
		Notes: []string{
			fmt.Sprintf("prefix frac = %v; serial time is thread-independent", frac),
			"paper (32 cores): prefix-based beats serial beyond 2 threads, beats Luby by 4-8x at every thread count, 14-17x self-speedup at 32 threads",
		},
	}

	var prefix1 time.Duration
	for _, p := range cfg.threads() {
		var prefixTime, lubyTime time.Duration
		withProcs(p, func() {
			var res *core.Result
			prefixTime = MedianTime(cfg.Reps, func() {
				res = core.PrefixMIS(g, ord, core.Options{PrefixFrac: frac})
			})
			if !res.Equal(seq) {
				panic("bench: prefix MIS diverged under thread scaling")
			}
			lubyTime = MedianTime(cfg.Reps, func() {
				core.LubyMIS(g, cfg.Workload.Seed+9, core.Options{})
			})
		})
		if prefix1 == 0 {
			prefix1 = prefixTime
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmtDuration(prefixTime),
			fmtDuration(lubyTime),
			fmtDuration(seqTime),
			fmtFloat(prefix1.Seconds() / prefixTime.Seconds()),
			fmtFloat(lubyTime.Seconds() / prefixTime.Seconds()),
		})
	}
	return t
}

// MMThreadScaling reproduces Figure 4: running time versus number of
// threads for the prefix-based MM against the sequential MM.
func MMThreadScaling(cfg ThreadConfig) Table {
	g := cfg.Workload.Build()
	el := g.EdgeList()
	m := el.NumEdges()
	ord := core.NewRandomOrder(m, cfg.Workload.Seed+2)
	frac := cfg.PrefixFrac
	if frac <= 0 {
		frac = core.DefaultPrefixFrac
	}

	seqTime := MedianTime(cfg.Reps, func() { matching.SequentialMM(el, ord) })
	seq := matching.SequentialMM(el, ord)

	t := Table{
		Title: fmt.Sprintf("Figure 4 (MM time vs threads) on %s [%s]", cfg.Workload, Env()),
		Headers: []string{
			"threads", "prefixMM", "serialMM", "prefix-speedup",
		},
		Notes: []string{
			fmt.Sprintf("prefix frac = %v", frac),
			"paper (32 cores): prefix-based MM beats serial beyond 4 threads, 21-24x self-speedup at 32 threads",
		},
	}

	var prefix1 time.Duration
	for _, p := range cfg.threads() {
		var prefixTime time.Duration
		withProcs(p, func() {
			var res *matching.Result
			prefixTime = MedianTime(cfg.Reps, func() {
				res = matching.PrefixMM(el, ord, matching.Options{PrefixFrac: frac})
			})
			if !res.Equal(seq) {
				panic("bench: prefix MM diverged under thread scaling")
			}
		})
		if prefix1 == 0 {
			prefix1 = prefixTime
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmtDuration(prefixTime),
			fmtDuration(seqTime),
			fmtFloat(prefix1.Seconds() / prefixTime.Seconds()),
		})
	}
	return t
}

// LubyWorkRatio quantifies the in-text claim that the prefix-based MIS
// is 4-8x faster than Luby because it does less work: it reports the
// attempts and edge-inspection ratios between the two algorithms on
// both workloads.
func LubyWorkRatio(w Workload, reps int) Table {
	g := w.Build()
	n := g.NumVertices()
	ord := core.NewRandomOrder(n, w.Seed+1)

	pref := core.PrefixMIS(g, ord, core.Options{})
	prefTime := MedianTime(reps, func() { core.PrefixMIS(g, ord, core.Options{}) })
	luby := core.LubyMIS(g, w.Seed+9, core.Options{})
	lubyTime := MedianTime(reps, func() { core.LubyMIS(g, w.Seed+9, core.Options{}) })

	return Table{
		Title: fmt.Sprintf("In-text claim: prefix MIS vs Luby on %s [%s]", w, Env()),
		Headers: []string{
			"algorithm", "rounds", "work(attempts)", "inspections", "time", "setSize",
		},
		Rows: [][]string{
			{"prefixMIS", fmt.Sprintf("%d", pref.Stats.Rounds), fmt.Sprintf("%d", pref.Stats.Attempts),
				fmt.Sprintf("%d", pref.Stats.EdgeInspections), fmtDuration(prefTime), fmt.Sprintf("%d", pref.Size())},
			{"luby", fmt.Sprintf("%d", luby.Stats.Rounds), fmt.Sprintf("%d", luby.Stats.Attempts),
				fmt.Sprintf("%d", luby.Stats.EdgeInspections), fmtDuration(lubyTime), fmt.Sprintf("%d", luby.Size())},
		},
		Notes: []string{
			fmt.Sprintf("time ratio luby/prefix = %s (paper: 4-8x)", fmtFloat(lubyTime.Seconds()/prefTime.Seconds())),
			fmt.Sprintf("inspection ratio luby/prefix = %s", fmtFloat(float64(luby.Stats.EdgeInspections)/float64(pref.Stats.EdgeInspections))),
		},
	}
}
