package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/spanning"
)

// AblationPointer compares the PBBS-style rescan-from-scratch attempt
// (what the paper measures) with the parent-pointer optimization of
// Lemma 4.1, across prefix sizes. The pointer variant caps attempt work
// at O(m) but pays to build the parent lists; the crossover is visible
// at large prefixes where rescans multiply.
func AblationPointer(w Workload, reps int) Table {
	g := w.Build()
	n := g.NumVertices()
	ord := core.NewRandomOrder(n, w.Seed+1)
	t := Table{
		Title:   fmt.Sprintf("Ablation AB1: rescan vs parent-pointer attempts on %s [%s]", w, Env()),
		Headers: []string{"prefix/N", "scratch-inspect", "pointer-inspect", "scratch-time", "pointer-time"},
		Notes: []string{
			"design choice of Section 4: Lemma 4.1's pointer bounds total check work by O(m)",
		},
	}
	for _, frac := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 1.0} {
		var scratch, pointer *core.Result
		st := MedianTime(reps, func() {
			scratch = core.PrefixMIS(g, ord, core.Options{PrefixFrac: frac})
		})
		pt := MedianTime(reps, func() {
			pointer = core.PrefixMIS(g, ord, core.Options{PrefixFrac: frac, Pointered: true})
		})
		if !scratch.Equal(pointer) {
			panic("bench: pointer ablation changed the MIS")
		}
		t.Rows = append(t.Rows, []string{
			fmtFloat(frac),
			fmt.Sprintf("%d", scratch.Stats.EdgeInspections),
			fmt.Sprintf("%d", pointer.Stats.EdgeInspections),
			fmtDuration(st),
			fmtDuration(pt),
		})
	}
	return t
}

// AblationAlgorithms compares all MIS implementations (and the MM
// implementations) on one workload: the sequential baseline, the
// root-set linear-work algorithm, the prefix-based algorithm at its
// default prefix, the fully parallel prefix (Algorithm 2), and Luby.
func AblationAlgorithms(w Workload, reps int) Table {
	g := w.Build()
	n := g.NumVertices()
	ord := core.NewRandomOrder(n, w.Seed+1)
	el := g.EdgeList()
	mmOrd := core.NewRandomOrder(el.NumEdges(), w.Seed+2)

	t := Table{
		Title:   fmt.Sprintf("Ablation AB2: algorithm comparison on %s [%s]", w, Env()),
		Headers: []string{"algorithm", "rounds", "attempts", "inspections", "time", "size"},
	}
	addRow := func(name string, rounds, attempts, inspections int64, dur string, size int) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", rounds), fmt.Sprintf("%d", attempts),
			fmt.Sprintf("%d", inspections), dur, fmt.Sprintf("%d", size),
		})
	}

	seq := core.SequentialMIS(g, ord)
	seqT := MedianTime(reps, func() { core.SequentialMIS(g, ord) })
	addRow("mis/sequential", seq.Stats.Rounds, seq.Stats.Attempts, seq.Stats.EdgeInspections, fmtDuration(seqT), seq.Size())

	root := core.RootSetMIS(g, ord, core.Options{})
	rootT := MedianTime(reps, func() { core.RootSetMIS(g, ord, core.Options{}) })
	addRow("mis/rootset", root.Stats.Rounds, root.Stats.Attempts, root.Stats.EdgeInspections, fmtDuration(rootT), root.Size())

	pref := core.PrefixMIS(g, ord, core.Options{})
	prefT := MedianTime(reps, func() { core.PrefixMIS(g, ord, core.Options{}) })
	addRow("mis/prefix", pref.Stats.Rounds, pref.Stats.Attempts, pref.Stats.EdgeInspections, fmtDuration(prefT), pref.Size())

	full := core.ParallelMIS(g, ord, core.Options{})
	fullT := MedianTime(reps, func() { core.ParallelMIS(g, ord, core.Options{}) })
	addRow("mis/parallel-full", full.Stats.Rounds, full.Stats.Attempts, full.Stats.EdgeInspections, fmtDuration(fullT), full.Size())

	luby := core.LubyMIS(g, w.Seed+9, core.Options{})
	lubyT := MedianTime(reps, func() { core.LubyMIS(g, w.Seed+9, core.Options{}) })
	addRow("mis/luby", luby.Stats.Rounds, luby.Stats.Attempts, luby.Stats.EdgeInspections, fmtDuration(lubyT), luby.Size())

	mseq := matching.SequentialMM(el, mmOrd)
	mseqT := MedianTime(reps, func() { matching.SequentialMM(el, mmOrd) })
	addRow("mm/sequential", mseq.Stats.Rounds, mseq.Stats.Attempts, mseq.Stats.EdgeInspections, fmtDuration(mseqT), mseq.Size())

	mroot := matching.RootSetMM(el, mmOrd, matching.Options{})
	mrootT := MedianTime(reps, func() { matching.RootSetMM(el, mmOrd, matching.Options{}) })
	addRow("mm/rootset", mroot.Stats.Rounds, mroot.Stats.Attempts, mroot.Stats.EdgeInspections, fmtDuration(mrootT), mroot.Size())

	mpref := matching.PrefixMM(el, mmOrd, matching.Options{})
	mprefT := MedianTime(reps, func() { matching.PrefixMM(el, mmOrd, matching.Options{}) })
	addRow("mm/prefix", mpref.Stats.Rounds, mpref.Stats.Attempts, mpref.Stats.EdgeInspections, fmtDuration(mprefT), mpref.Size())

	if !root.Equal(seq) || !pref.Equal(seq) || !full.Equal(seq) {
		panic("bench: MIS implementations disagree")
	}
	if !mroot.Equal(mseq) || !mpref.Equal(mseq) {
		panic("bench: MM implementations disagree")
	}
	return t
}

// SpanningForestExperiment exercises the paper's future-work extension
// (§7): greedy spanning forest under the prefix technique. Two parallel
// protocols are measured, because the extension's answer is two-sided:
//
//   - exact (spanning.PrefixSF, both-root reservations) reproduces the
//     sequential forest but serializes attachments to hub components —
//     on the random graph its round count approaches the number of tree
//     edges, so it is run at 1/16 scale and small fracs only;
//   - relaxed (spanning.PrefixSFRelaxed, PBBS one-root reservations)
//     keeps the parallelism at the cost of returning a different —
//     still deterministic, still valid — forest.
func SpanningForestExperiment(w Workload, reps int) Table {
	g := w.Build()
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), w.Seed+3)

	seq := spanning.SequentialSF(el, ord)
	seqT := MedianTime(reps, func() { spanning.SequentialSF(el, ord) })

	t := Table{
		Title:   fmt.Sprintf("Extension X1 (Section 7): spanning forest on %s [%s]", w, Env()),
		Headers: []string{"algorithm", "prefix/M", "rounds", "attempts", "time", "forestEdges", "seqEqual"},
		Notes: []string{
			"exact = lexicographically-first forest (both-root reservations); serializes on hubs, so measured on a 1/16-scale instance",
			"relaxed = PBBS one-root reservations; deterministic per (order, prefix) but a different valid forest",
		},
	}
	t.Rows = append(t.Rows, []string{
		"sequential", "-", fmt.Sprintf("%d", seq.Stats.Rounds),
		fmt.Sprintf("%d", seq.Stats.Attempts), fmtDuration(seqT), fmt.Sprintf("%d", seq.Size()), "yes",
	})
	for _, frac := range []float64{1e-3, 1e-2, 1e-1, 1.0} {
		var res *spanning.Result
		dur := MedianTime(reps, func() {
			res = spanning.PrefixSFRelaxed(el, ord, spanning.Options{PrefixFrac: frac})
		})
		eq := "no"
		if res.Equal(seq) {
			eq = "yes"
		}
		if res.Size() != seq.Size() {
			panic("bench: relaxed spanning forest has wrong size")
		}
		t.Rows = append(t.Rows, []string{
			"relaxed", fmtFloat(frac), fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%d", res.Stats.Attempts), fmtDuration(dur), fmt.Sprintf("%d", res.Size()), eq,
		})
	}

	// Exact protocol at reduced scale.
	smallW := w
	smallW.N = w.N / 16
	smallW.M = w.M / 16
	sg := smallW.Build()
	sel := sg.EdgeList()
	sord := core.NewRandomOrder(sel.NumEdges(), w.Seed+3)
	sseq := spanning.SequentialSF(sel, sord)
	for _, frac := range []float64{1e-4, 1e-3} {
		var res *spanning.Result
		dur := MedianTime(reps, func() {
			res = spanning.PrefixSF(sel, sord, spanning.Options{PrefixFrac: frac})
		})
		if !res.Equal(sseq) {
			panic("bench: exact prefix spanning forest diverged from sequential")
		}
		t.Rows = append(t.Rows, []string{
			"exact(1/16)", fmtFloat(frac), fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%d", res.Stats.Attempts), fmtDuration(dur), fmt.Sprintf("%d", res.Size()), "yes",
		})
	}
	return t
}
