package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

// TheoryDependenceLength validates Theorem 3.5 (and Lemma 5.1 for MM)
// empirically: the dependence length of the priority DAG under a random
// order grows like O(log^2 n) for sparse random graphs. The table
// reports the measured dependence length against log2(n)^2 across a
// range of sizes, for both MIS (vertices) and MM (edges).
func TheoryDependenceLength(sizes []int, avgDeg int, seed uint64) Table {
	if len(sizes) == 0 {
		sizes = []int{10_000, 40_000, 160_000, 640_000}
	}
	t := Table{
		Title:   fmt.Sprintf("Theorem 3.5: dependence length vs n (random G(n, %d*n/2 edges... avg deg %d)) [%s]", avgDeg, avgDeg, Env()),
		Headers: []string{"n", "m", "misDepLen", "mmDepLen", "log2(n)^2", "mis/log^2", "longestPath"},
		Notes: []string{
			"paper: dependence length is O(log^2 n) w.h.p. for any graph under a random order",
			"mis/log^2 staying bounded (and far below 1 here) as n grows is the polylog signature",
		},
	}
	for _, n := range sizes {
		m := avgDeg * n / 2
		g := graph.Random(n, m, seed+uint64(n))
		ord := core.NewRandomOrder(n, seed+uint64(n)+1)
		info := core.DependenceSteps(g, ord)

		el := g.EdgeList()
		mmOrd := core.NewRandomOrder(el.NumEdges(), seed+uint64(n)+2)
		mmInfo := matching.DependenceSteps(el, mmOrd)

		lg := math.Log2(float64(n))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", info.Steps),
			fmt.Sprintf("%d", mmInfo.Steps),
			fmtFloat(lg * lg),
			fmtFloat(float64(info.Steps) / (lg * lg)),
			fmt.Sprintf("%d", core.LongestPath(g, ord)),
		})
	}
	return t
}

// TheoryPrefixPath validates Lemma 3.3 / Corollary 3.4: for a graph of
// maximum degree d, a randomly ordered prefix of size about n/d induces
// a priority DAG whose longest path is O(log n).
func TheoryPrefixPath(n, avgDeg int, seed uint64) Table {
	m := avgDeg * n / 2
	g := graph.Random(n, m, seed)
	ord := core.NewRandomOrder(n, seed+1)
	d := g.MaxDegree()
	t := Table{
		Title:   fmt.Sprintf("Lemma 3.3/Cor 3.4: longest path in delta-prefix priority DAG (n=%d, m=%d, maxdeg=%d)", n, m, d),
		Headers: []string{"prefixSize", "prefix*d/n", "longestPath", "log2(n)"},
		Notes: []string{
			"paper: a (1/d)-prefix has longest path O(log n / log log n); an O(log(n)/d)-prefix has O(log n)",
		},
	}
	lg := math.Log2(float64(n))
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		p := int(mult * float64(n) / float64(d))
		if p < 1 {
			p = 1
		}
		if p > n {
			p = n
		}
		lp := core.PrefixLongestPath(g, ord, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmtFloat(mult),
			fmt.Sprintf("%d", lp),
			fmtFloat(lg),
		})
	}
	return t
}

// TheoryDegreeReduction validates Lemma 3.1 / Corollary 3.2: after
// processing an (l/d)-prefix, the remaining vertices have degree at
// most d w.h.p. The table processes successively larger prefixes and
// reports the maximum remaining degree against the predicted halving
// schedule.
func TheoryDegreeReduction(n, avgDeg int, seed uint64) Table {
	m := avgDeg * n / 2
	g := graph.Random(n, m, seed)
	ord := core.NewRandomOrder(n, seed+1)
	delta := g.MaxDegree()
	lg := math.Log2(float64(n))
	t := Table{
		Title:   fmt.Sprintf("Lemma 3.1/Cor 3.2: max remaining degree after prefix (n=%d, m=%d, Delta=%d)", n, m, delta),
		Headers: []string{"round i", "targetDeg Delta/2^i", "prefixSize", "maxRemainingDeg", "ok"},
		Notes: []string{
			"prefix for round i has size ~ c*2^i*log(n)*n/Delta (c=1 here); 'ok' = measured <= target",
		},
	}
	cum := 0
	for i := 0; ; i++ {
		target := delta >> uint(i)
		if target == 0 {
			break
		}
		size := int(float64(int(1)<<uint(i)) * lg * float64(n) / float64(delta))
		cum += size
		if cum > n {
			cum = n
		}
		got := core.MaxDegreeAfterPrefix(g, ord, cum)
		ok := "yes"
		if got > target {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", target),
			fmt.Sprintf("%d", cum),
			fmt.Sprintf("%d", got),
			ok,
		})
		if cum == n || got == 0 {
			break
		}
	}
	return t
}

// TheoryPrefixSparsity validates Lemmas 4.3/4.4: a (k/d)-prefix has
// O(k|P|) internal edges and O(k|P|) vertices with at least one internal
// edge, so small prefixes are nearly independent sets.
func TheoryPrefixSparsity(n, avgDeg int, seed uint64) Table {
	m := avgDeg * n / 2
	g := graph.Random(n, m, seed)
	ord := core.NewRandomOrder(n, seed+1)
	d := g.MaxDegree()
	t := Table{
		Title:   fmt.Sprintf("Lemmas 4.3/4.4: internal edges of a (k/d)-prefix (n=%d, m=%d, maxdeg=%d)", n, m, d),
		Headers: []string{"k", "prefixSize", "internalEdges", "edges/|P|", "verticesWithInternal", "withInternal/|P|"},
		Notes: []string{
			"paper: expected internal edges <= k|P|, vertices with an internal edge <= 2k|P|",
		},
	}
	for _, k := range []float64{0.0625, 0.125, 0.25, 0.5, 1, 2, 4} {
		p := int(k * float64(n) / float64(d))
		if p < 1 {
			p = 1
		}
		if p > n {
			p = n
		}
		edges, withInternal := core.PrefixInternalEdges(g, ord, p)
		t.Rows = append(t.Rows, []string{
			fmtFloat(k),
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", edges),
			fmtFloat(float64(edges) / float64(p)),
			fmt.Sprintf("%d", withInternal),
			fmtFloat(float64(withInternal) / float64(p)),
		})
	}
	return t
}
