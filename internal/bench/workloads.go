package bench

import (
	"fmt"

	"repro/internal/graph"
)

// Workload identifies one of the paper's two experimental inputs.
type Workload struct {
	// Kind is "random" (the paper's sparse random graph, n=10^7,
	// m=5x10^7) or "rmat" (the paper's rMat graph, n=2^24, m=5x10^7,
	// power-law degrees).
	Kind string
	// N is the vertex count (for rmat it is rounded up to a power of 2).
	N int
	// M is the undirected edge count.
	M int
	// Seed drives both the generator and, via Seed+1, the priority
	// permutation.
	Seed uint64
}

// DefaultScale returns the paper's workloads scaled down by factor
// 2^shrink: shrink 0 is paper-size (n=10^7 / 2^24, m=5x10^7), shrink 3
// (the harness default) is n=1.25x10^6, m=6.25x10^6 — sized for a small
// container while keeping the paper's m/n ratios.
func DefaultScale(kind string, shrink uint) Workload {
	switch kind {
	case "random":
		return Workload{Kind: "random", N: 10_000_000 >> shrink, M: 50_000_000 >> shrink, Seed: 42}
	case "rmat":
		logN := 24 - int(shrink)
		return Workload{Kind: "rmat", N: 1 << logN, M: 50_000_000 >> shrink, Seed: 42}
	default:
		panic(fmt.Sprintf("bench: unknown workload kind %q", kind))
	}
}

// Build generates the workload's graph.
func (w Workload) Build() *graph.Graph {
	switch w.Kind {
	case "random":
		return graph.Random(w.N, w.M, w.Seed)
	case "rmat":
		logN := 0
		for 1<<logN < w.N {
			logN++
		}
		return graph.RMat(logN, w.M, w.Seed, graph.DefaultRMatOptions())
	default:
		panic(fmt.Sprintf("bench: unknown workload kind %q", w.Kind))
	}
}

func (w Workload) String() string {
	return fmt.Sprintf("%s(n=%d, m=%d, seed=%d)", w.Kind, w.N, w.M, w.Seed)
}

// DefaultFracs is the prefix-fraction sweep used for Figures 1 and 2,
// spanning the paper's 10^-8..10^0 x-axis (clamped below so the prefix
// is at least one iterate).
var DefaultFracs = []float64{
	1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 0.3, 1.0,
}
