package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	greedy "repro"
	"repro/internal/trace"
)

// ObserverResult is one row of the observer-overhead experiment: the
// median MIS wall time of one observation mode on one workload, and
// its overhead relative to the bare (unobserved) run.
type ObserverResult struct {
	Workload    string  `json:"workload"`
	Mode        string  `json:"mode"`
	MedianMS    float64 `json:"median_ms"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ObserverOverhead measures what round observation costs the solver:
// the same MIS computation bare, with the service's progress-counter
// observer, with per-phase wall-time profiling (WithPhaseProfile: four
// to five clock reads per round bracketing check/commit/reset/slide),
// and with the counter observer plus trace recording of every round
// (TraceRoundSample=1 — the most expensive configuration; production
// samples sparsely or not at all). The final mode is the live-telemetry
// configuration greedyd runs under -trace-sample: counters, phase
// profiling, and trace recording together. The modes share one Solver,
// warmed before timing, so the comparison isolates the observer from
// buffer allocation.
func ObserverOverhead(w Workload, reps int) []ObserverResult {
	g := w.Build()
	solver := greedy.NewSolver()
	ctx := context.Background()
	run := func(opts ...greedy.Option) func() {
		return func() {
			if _, err := solver.MIS(ctx, g, opts...); err != nil {
				panic(fmt.Sprintf("bench: observer overhead MIS: %v", err))
			}
		}
	}
	run()() // warm the solver's buffers outside the timed region

	// The counters mode mirrors internal/service's job-progress
	// observer: a handful of atomic-free accumulations per round.
	var rounds, attempted, inspections int64
	counters := greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		rounds = ri.Round
		attempted += int64(ri.Attempted)
		inspections += ri.EdgeInspections
	})
	rec := trace.NewRecorder(1<<14, 1)
	tracing := greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		if rec.ShouldSampleRound(ri.Round) {
			rec.Append(trace.Event{
				Kind:        trace.KindRound,
				Round:       ri.Round,
				Prefix:      ri.PrefixSize,
				Attempted:   int64(ri.Attempted),
				Accepted:    int64(ri.Accepted),
				Inspections: ri.EdgeInspections,
			})
		}
	})

	modes := []struct {
		name string
		opts []greedy.Option
	}{
		{"bare", nil},
		{"counters", []greedy.Option{counters}},
		{"counters+phases", []greedy.Option{counters, greedy.WithPhaseProfile()}},
		{"counters+trace", []greedy.Option{counters, tracing}},
		{"full-telemetry", []greedy.Option{counters, tracing, greedy.WithPhaseProfile()}},
	}
	out := make([]ObserverResult, 0, len(modes))
	var base time.Duration
	for i, mode := range modes {
		med := MedianTime(reps, run(mode.opts...))
		if i == 0 {
			base = med
		}
		overhead := 0.0
		if base > 0 && i > 0 {
			overhead = 100 * (float64(med) - float64(base)) / float64(base)
		}
		out = append(out, ObserverResult{
			Workload:    w.String(),
			Mode:        mode.name,
			MedianMS:    float64(med) / float64(time.Millisecond),
			OverheadPct: overhead,
		})
	}
	_ = rounds
	return out
}

// ObserverTable renders observer-overhead rows as an aligned table.
func ObserverTable(rows []ObserverResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-16s %12s %10s\n", "workload", "mode", "median_ms", "overhead")
	for _, r := range rows {
		over := "-"
		if r.Mode != "bare" {
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		fmt.Fprintf(&b, "%-28s %-16s %12.3f %10s\n", r.Workload, r.Mode, r.MedianMS, over)
	}
	return strings.TrimRight(b.String(), "\n")
}
