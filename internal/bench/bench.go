// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 1-4 and the in-text claims) on the host machine.
// Each experiment builds the paper's workloads (sparse random and rMat
// graphs, scaled by a flag), runs the algorithms under timing and
// machine-independent work counters, and renders the same series the
// paper plots. cmd/bench is the command-line front end; bench_test.go at
// the repository root exposes the same experiments as testing.B
// benchmarks.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Table is a rendered experiment: a title, column headers, data rows and
// free-form notes (the paper-correspondence commentary).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Env returns a one-line description of the benchmarking environment,
// the reproduction counterpart of the paper's hardware paragraph (32-core
// Dell PowerEdge 910; here whatever the container provides).
func Env() string {
	return fmt.Sprintf("go=%s os=%s arch=%s cpus=%d gomaxprocs=%d",
		runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

// MedianTime runs f reps times and returns the median wall-clock
// duration. reps < 1 is treated as 1.
func MedianTime(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	case v >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000.0)
}
