package bench

import (
	"encoding/json"
	"testing"
)

// TestRunMatrixSmoke runs the CI-scale matrix once and checks the
// report's structural invariants: every scenario family present, every
// problem covered with sequential + fixed + adaptive runs, all runs
// verified against the sequential baseline (RunMatrix panics
// otherwise), ratios populated, and the JSON round-trippable.
func TestRunMatrixSmoke(t *testing.T) {
	report := RunMatrix(MatrixConfig{Smoke: true, Reps: 1})
	if report.Schema != MatrixSchema {
		t.Fatalf("schema %q", report.Schema)
	}
	if len(report.Scenarios) != 4 {
		t.Fatalf("scenario count %d, want 4", len(report.Scenarios))
	}
	names := map[string]bool{}
	for _, sc := range report.Scenarios {
		names[sc.Name] = true
		if len(sc.Problems) != 5 {
			t.Fatalf("%s: problem count %d, want 5", sc.Name, len(sc.Problems))
		}
		problems := map[string]bool{}
		for _, p := range sc.Problems {
			problems[p.Problem] = true
		}
		for _, want := range []string{"mis", "mm", "sf", "coloring", "hittingset"} {
			if !problems[want] {
				t.Fatalf("%s: problem %q missing", sc.Name, want)
			}
		}
		for _, p := range sc.Problems {
			// seq + len(fracs) fixed + adaptive.
			if want := 1 + len(report.Fracs) + 1; len(p.Runs) != want {
				t.Fatalf("%s/%s: run count %d, want %d", sc.Name, p.Problem, len(p.Runs), want)
			}
			if p.Runs[0].Config != "seq" {
				t.Fatalf("%s/%s: first run %q, want seq", sc.Name, p.Problem, p.Runs[0].Config)
			}
			last := p.Runs[len(p.Runs)-1]
			if !last.Adaptive || last.Config != "adaptive" {
				t.Fatalf("%s/%s: last run %+v, want adaptive", sc.Name, p.Problem, last)
			}
			if len(last.Windows) == 0 {
				t.Errorf("%s/%s: adaptive run recorded no window trace", sc.Name, p.Problem)
			}
			if last.WindowsTruncated {
				t.Errorf("%s/%s: window trace truncated", sc.Name, p.Problem)
			}
			traced := int64(0)
			for _, wr := range last.Windows {
				traced += int64(wr.Rounds)
			}
			if traced != last.Rounds {
				t.Errorf("%s/%s: window trace covers %d rounds, run had %d", sc.Name, p.Problem, traced, last.Rounds)
			}
			if p.AdaptiveVsBestFixedWork <= 0 || p.AdaptiveVsBestFixedTime <= 0 {
				t.Errorf("%s/%s: ratios not populated: %+v", sc.Name, p.Problem, p)
			}
			for _, r := range p.Runs {
				if !r.Matches {
					t.Errorf("%s/%s/%s: run does not match sequential", sc.Name, p.Problem, r.Config)
				}
				if r.Rounds <= 0 || r.Attempts <= 0 {
					t.Errorf("%s/%s/%s: empty counters %+v", sc.Name, p.Problem, r.Config, r)
				}
			}
		}
	}
	for _, want := range []string{"random", "rmat", "grid", "linegraph"} {
		if !names[want] {
			t.Errorf("scenario %q missing", want)
		}
	}

	var back MatrixReport
	if err := json.Unmarshal(report.JSON(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Schema != report.Schema || len(back.Scenarios) != len(report.Scenarios) {
		t.Fatalf("JSON round trip lost data")
	}
}
