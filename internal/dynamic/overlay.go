package dynamic

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// overlay is a mutable view over an immutable base CSR graph: inserted
// edges live in per-vertex sorted delta lists, deleted base edges in
// per-vertex sorted tombstone lists. Both maps are keyed by vertex and
// hold entries only for touched vertices, so overlay memory is
// proportional to the churn since the last compaction, not to n.
//
// Every edge is recorded in both directions (like the CSR itself), so
// churn counts directed entries. Once churn passes the maintainer's
// threshold, compact folds the overlay into a fresh CSR and clears the
// deltas — the classic rebuild schedule that keeps amortized update
// cost constant while neighbor iteration stays O(degree).
type overlay struct {
	base *graph.Graph
	add  map[int32][]int32 // inserted neighbors, sorted ascending
	del  map[int32][]int32 // tombstoned base neighbors, sorted ascending
	n    int
	m    int // current undirected edge count
	// churn counts live directed delta entries (2 per undirected edge).
	churn int
}

func newOverlay(g *graph.Graph) overlay {
	return overlay{
		base: g,
		add:  make(map[int32][]int32),
		del:  make(map[int32][]int32),
		n:    g.NumVertices(),
		m:    g.NumEdges(),
	}
}

// containsSorted reports whether sorted slice s contains x.
func containsSorted(s []int32, x int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// insertSorted inserts u into the sorted delta list of v.
func insertSorted(m map[int32][]int32, v, u int32) {
	s := m[v]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= u })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = u
	m[v] = s
}

// removeSorted removes u from the sorted delta list of v, reporting
// whether it was present.
func removeSorted(m map[int32][]int32, v, u int32) bool {
	s := m[v]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= u })
	if i >= len(s) || s[i] != u {
		return false
	}
	copy(s[i:], s[i+1:])
	s = s[:len(s)-1]
	if len(s) == 0 {
		delete(m, v)
	} else {
		m[v] = s
	}
	return true
}

// hasEdge reports whether {u, v} is present in the overlaid graph.
func (o *overlay) hasEdge(u, v int32) bool {
	if containsSorted(o.add[u], v) {
		return true
	}
	return o.base.HasEdge(u, v) && !containsSorted(o.del[u], v)
}

// degree returns the current degree of v.
func (o *overlay) degree(v int32) int {
	return o.base.Degree(v) - len(o.del[v]) + len(o.add[v])
}

// visit enumerates the current neighbors of v: base neighbors minus
// tombstones (in sorted order), then inserted neighbors (in sorted
// order). visit returning false stops the enumeration.
func (o *overlay) visit(v int32, visit func(u int32) bool) {
	dels := o.del[v]
	di := 0
	for _, u := range o.base.Neighbors(v) {
		for di < len(dels) && dels[di] < u {
			di++
		}
		if di < len(dels) && dels[di] == u {
			continue
		}
		if !visit(u) {
			return
		}
	}
	for _, u := range o.add[v] {
		if !visit(u) {
			return
		}
	}
}

// addEdge inserts the (absent, validated) edge {u, v}.
func (o *overlay) addEdge(u, v int32) {
	// Inserting an edge whose base copy is tombstoned resurrects it.
	if removeSorted(o.del, u, v) {
		removeSorted(o.del, v, u)
		o.churn -= 2
	} else {
		insertSorted(o.add, u, v)
		insertSorted(o.add, v, u)
		o.churn += 2
	}
	o.m++
}

// delEdge removes the (present, validated) edge {u, v}.
func (o *overlay) delEdge(u, v int32) {
	if removeSorted(o.add, u, v) {
		removeSorted(o.add, v, u)
		o.churn -= 2
	} else {
		insertSorted(o.del, u, v)
		insertSorted(o.del, v, u)
		o.churn += 2
	}
	o.m--
}

// materialize builds a fresh CSR of the current graph. Neighbor lists
// are emitted as the merge of two sorted sequences, so the result is
// canonical without any re-sort and FromCSRUnchecked applies.
func (o *overlay) materialize() *graph.Graph {
	n := o.n
	counts := make([]int64, n+1)
	parallel.For(n, 2048, func(i int) {
		counts[i] = int64(o.degree(int32(i)))
	})
	offsets := make([]int64, n+1)
	total := parallel.ExclusiveScan(offsets[:n], counts[:n], 2048)
	offsets[n] = total
	adj := make([]graph.Vertex, total)
	parallel.For(n, 512, func(i int) {
		v := int32(i)
		pos := offsets[i]
		adds := o.add[v]
		ai := 0
		o.visitBaseSurvivors(v, func(u int32) {
			for ai < len(adds) && adds[ai] < u {
				adj[pos] = adds[ai]
				pos++
				ai++
			}
			adj[pos] = u
			pos++
		})
		for ; ai < len(adds); ai++ {
			adj[pos] = adds[ai]
			pos++
		}
	})
	return graph.FromCSRUnchecked(offsets, adj)
}

// visitBaseSurvivors enumerates v's base neighbors that are not
// tombstoned, in sorted order.
func (o *overlay) visitBaseSurvivors(v int32, visit func(u int32)) {
	dels := o.del[v]
	di := 0
	for _, u := range o.base.Neighbors(v) {
		for di < len(dels) && dels[di] < u {
			di++
		}
		if di < len(dels) && dels[di] == u {
			continue
		}
		visit(u)
	}
}

// compact folds the overlay into a fresh base CSR and clears the
// deltas.
func (o *overlay) compact() {
	o.base = o.materialize()
	o.add = make(map[int32][]int32)
	o.del = make(map[int32][]int32)
	o.churn = 0
}

// graphView returns the current graph as an immutable *graph.Graph:
// the shared base when no deltas are outstanding, otherwise a fresh
// materialization.
func (o *overlay) graphView() *graph.Graph {
	if o.churn == 0 {
		return o.base
	}
	return o.materialize()
}
