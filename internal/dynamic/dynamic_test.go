package dynamic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
)

// verifyAgainstScratch asserts the maintained solutions are
// bit-identical to from-scratch sequential greedy runs on the mutated
// graph under the same priorities — the package's central contract.
func verifyAgainstScratch(t *testing.T, mt *Maintainer, seed uint64) {
	t.Helper()
	g := mt.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	if mt.mis != nil {
		want := core.SequentialMIS(g, mt.Order())
		got := mt.MISResult()
		if len(got.InSet) != len(want.InSet) {
			t.Fatalf("MIS size mismatch: %d vs %d", len(got.InSet), len(want.InSet))
		}
		for v := range want.InSet {
			if got.InSet[v] != want.InSet[v] {
				t.Fatalf("MIS differs from sequential at vertex %d (got %v want %v)", v, got.InSet[v], want.InSet[v])
			}
		}
	}
	if mt.mm != nil {
		el := g.EdgeList()
		want := matching.SequentialMM(el, EdgeOrder(el, seed))
		got := mt.MatchingPairs()
		if len(got) != len(want.Pairs) {
			t.Fatalf("MM size mismatch: %d vs %d", len(got), len(want.Pairs))
		}
		for i := range got {
			if got[i] != want.Pairs[i] {
				t.Fatalf("MM differs from sequential at pair %d: got %v want %v", i, got[i], want.Pairs[i])
			}
		}
		mate := mt.Mate()
		for v := range want.Mate {
			if mate[v] != want.Mate[v] {
				t.Fatalf("mate differs at vertex %d: got %d want %d", v, mate[v], want.Mate[v])
			}
		}
	}
}

// randomBatch builds a valid batch of size k against mt's current
// graph: a mix of deletions of present edges and insertions of absent
// pairs, no edge repeated within the batch.
func randomBatch(x *rng.Xoshiro256, mt *Maintainer, k int) []Update {
	g := mt.Graph()
	edges := g.Edges()
	n := mt.NumVertices()
	var batch []Update
	used := make(map[[2]int32]bool)
	for len(batch) < k {
		if len(edges) > 0 && (x.Intn(2) == 0 || n < 3) {
			e := edges[x.Intn(len(edges))]
			key := [2]int32{e.U, e.V}
			if used[key] {
				continue
			}
			used[key] = true
			batch = append(batch, Update{Op: OpDel, U: e.U, V: e.V})
		} else {
			u := int32(x.Intn(n))
			v := int32(x.Intn(n))
			if u == v {
				continue
			}
			cu, cv := canonical(u, v)
			key := [2]int32{cu, cv}
			if used[key] || mt.HasEdge(u, v) {
				continue
			}
			used[key] = true
			batch = append(batch, Update{Op: OpAdd, U: u, V: v})
		}
	}
	return batch
}

func families(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	base := graph.Random(400, 1200, 7)
	lg, _ := graph.LineGraph(graph.Random(60, 150, 3))
	return map[string]*graph.Graph{
		"random":    base,
		"rmat":      graph.RMat(9, 1500, 11, graph.DefaultRMatOptions()),
		"grid":      graph.Grid2D(20, 20),
		"linegraph": lg,
		"empty":     graph.Empty(50),
	}
}

// TestRepairEquivalence drives randomized update batches of several
// sizes over several graph families and asserts bit-identical
// agreement with from-scratch sequential runs after every batch.
func TestRepairEquivalence(t *testing.T) {
	ctx := context.Background()
	for name, g := range families(t) {
		t.Run(name, func(t *testing.T) {
			const seed = 5
			mt, err := NewMaintainer(ctx, g, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainstScratch(t, mt, seed)
			x := rng.NewXoshiro256(99)
			for step, k := range []int{1, 1, 2, 7, 1, 31, 3, 64, 1} {
				batch := randomBatch(x, mt, k)
				st, err := mt.Apply(ctx, batch)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if st.Added+st.Removed != len(batch) {
					t.Fatalf("step %d: applied %d+%d updates, want %d", step, st.Added, st.Removed, len(batch))
				}
				verifyAgainstScratch(t, mt, seed)
			}
		})
	}
}

// TestRepairEquivalenceExplicitOrder checks MIS maintenance under an
// explicit (identity) order — the adversarial lexicographically-first
// instance.
func TestRepairEquivalenceExplicitOrder(t *testing.T) {
	ctx := context.Background()
	g := graph.Grid2D(12, 12)
	ord := core.IdentityOrder(g.NumVertices())
	mt, err := NewMaintainer(ctx, g, Config{MIS: true, Order: &ord})
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NewXoshiro256(3)
	for i := 0; i < 12; i++ {
		if _, err := mt.Apply(ctx, randomBatch(x, mt, 5)); err != nil {
			t.Fatal(err)
		}
		verifyAgainstScratch(t, mt, 0)
	}
}

// TestCompaction forces the churn threshold and checks the overlay is
// folded into a fresh CSR without changing answers.
func TestCompaction(t *testing.T) {
	ctx := context.Background()
	g := graph.Random(120, 300, 1)
	mt, err := NewMaintainer(ctx, g, Config{Seed: 2, ChurnFrac: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NewXoshiro256(17)
	compacted := false
	for i := 0; i < 10; i++ {
		st, err := mt.Apply(ctx, randomBatch(x, mt, 20))
		if err != nil {
			t.Fatal(err)
		}
		if st.Compacted {
			compacted = true
			if mt.ov.churn != 0 || len(mt.ov.add) != 0 || len(mt.ov.del) != 0 {
				t.Fatal("compaction left overlay deltas behind")
			}
		}
		verifyAgainstScratch(t, mt, 2)
	}
	if !compacted {
		t.Fatal("churn threshold 0.01 never triggered compaction over 200 updates")
	}
	// Negative ChurnFrac disables compaction entirely.
	mt2, err := NewMaintainer(ctx, g, Config{Seed: 2, ChurnFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st, err := mt2.Apply(ctx, randomBatch(x, mt2, 30))
		if err != nil {
			t.Fatal(err)
		}
		if st.Compacted {
			t.Fatal("ChurnFrac < 0 must disable compaction")
		}
	}
}

// TestBatchValidation checks every rejection path and that a rejected
// batch mutates nothing.
func TestBatchValidation(t *testing.T) {
	ctx := context.Background()
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	mt, err := NewMaintainer(ctx, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		batch []Update
	}{
		{"self loop", []Update{{Op: OpAdd, U: 2, V: 2}}},
		{"out of range", []Update{{Op: OpAdd, U: 0, V: 4}}},
		{"negative", []Update{{Op: OpDel, U: -1, V: 1}}},
		{"add existing", []Update{{Op: OpAdd, U: 1, V: 0}}},
		{"del missing", []Update{{Op: OpDel, U: 0, V: 3}}},
		{"dup in batch", []Update{{Op: OpAdd, U: 0, V: 2}, {Op: OpAdd, U: 2, V: 0}}},
		{"add then del same edge", []Update{{Op: OpAdd, U: 0, V: 2}, {Op: OpDel, U: 0, V: 2}}},
		{"unknown op", []Update{{Op: Op(9), U: 0, V: 2}}},
		{"valid then invalid", []Update{{Op: OpDel, U: 0, V: 1}, {Op: OpAdd, U: 3, V: 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := mt.NumEdges()
			_, err := mt.Apply(ctx, tc.batch)
			if !errors.Is(err, ErrBadUpdate) {
				t.Fatalf("got %v, want ErrBadUpdate", err)
			}
			if mt.NumEdges() != before {
				t.Fatal("rejected batch mutated the graph")
			}
			verifyAgainstScratch(t, mt, 0)
		})
	}
}

// TestInertUpdatesSkipRepair checks the provably-inert seed pruning: a
// change incident to an Out earlier endpoint produces no MIS seeds and
// therefore zero repair work.
func TestInertUpdatesSkipRepair(t *testing.T) {
	ctx := context.Background()
	// Path 0-1-2 under identity order: 0 in, 1 out, 2 in.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ord := core.IdentityOrder(4)
	mt, err := NewMaintainer(ctx, g, Config{MIS: true, Order: &ord})
	if err != nil {
		t.Fatal(err)
	}
	// Insert {1,3}: earlier endpoint 1 is Out, so 3's decision cannot
	// change — no seeds, no frontier.
	st, err := mt.Apply(ctx, []Update{{Op: OpAdd, U: 1, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.MIS.Seeds != 0 || st.MIS.Visited != 0 || st.MIS.Rounds != 0 {
		t.Fatalf("inert insert ran repair: %+v", st.MIS)
	}
	verifyAgainstScratch(t, mt, 0)
	// Insert {0,3}: earlier endpoint 0 is In, 3 must flip out.
	st, err = mt.Apply(ctx, []Update{{Op: OpAdd, U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.MIS.Seeds == 0 || st.MIS.Changed == 0 {
		t.Fatalf("effective insert reported no repair: %+v", st.MIS)
	}
	verifyAgainstScratch(t, mt, 0)
}

// TestRepairLocality checks the headline property on a larger random
// graph: single-edge repair visits a region that is orders of
// magnitude smaller than the graph.
func TestRepairLocality(t *testing.T) {
	ctx := context.Background()
	g := graph.Random(50_000, 250_000, 21)
	const seed = 9
	mt, err := NewMaintainer(ctx, g, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NewXoshiro256(5)
	var totalVisited int64
	const steps = 40
	for i := 0; i < steps; i++ {
		st, err := mt.Apply(ctx, randomBatch(x, mt, 1))
		if err != nil {
			t.Fatal(err)
		}
		totalVisited += int64(st.MIS.Visited) + int64(st.MM.Visited)
	}
	if avg := totalVisited / steps; avg > int64(g.NumVertices())/10 {
		t.Fatalf("mean repaired region %d is not small relative to n=%d", avg, g.NumVertices())
	}
	verifyAgainstScratch(t, mt, seed)
}

// TestMaintainerCancellation checks that a context cancelled before
// Apply is honored and that a cancelled initial computation returns no
// Maintainer.
func TestMaintainerCancellation(t *testing.T) {
	g := graph.Random(1000, 3000, 1)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewMaintainer(cancelled, g, Config{}); err == nil {
		t.Fatal("NewMaintainer succeeded with a cancelled context")
	}
	mt, err := NewMaintainer(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.Apply(cancelled, []Update{{Op: OpAdd, U: 0, V: 999}}); err == nil {
		t.Fatal("Apply succeeded with a cancelled context")
	}
	// The cancellation was observed before any mutation: the maintainer
	// is still usable.
	if _, err := mt.Apply(context.Background(), randomBatch(rng.NewXoshiro256(1), mt, 3)); err != nil {
		t.Fatal(err)
	}
	verifyAgainstScratch(t, mt, 0)
}

// TestEdgeOrderStability checks that EdgePriority-derived orders rank
// surviving edges identically across graph versions — the property
// that makes matching maintenance well defined.
func TestEdgeOrderStability(t *testing.T) {
	g := graph.Random(100, 300, 4)
	el := g.EdgeList()
	ord := EdgeOrder(el, 8)
	if err := ord.Validate(); err != nil {
		t.Fatal(err)
	}
	// Relative order of two fixed edges must not depend on the rest of
	// the edge set.
	a, b := el.Edges[0], el.Edges[1]
	abBefore := ord.Rank[0] < ord.Rank[1]
	pa, pb := EdgePriority(a.U, a.V, 8), EdgePriority(b.U, b.V, 8)
	if (pa < pb) != abBefore {
		t.Fatal("EdgeOrder disagrees with raw EdgePriority comparison")
	}
}
