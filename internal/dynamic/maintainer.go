package dynamic

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Maintainer maintains greedy MIS and/or MM solutions of a mutating
// graph. Construct one with NewMaintainer (which runs the initial
// computation with the library's prefix round loops), then feed it
// batches of edge updates with Apply; after every successful Apply the
// exposed solutions are bit-identical to a from-scratch sequential
// greedy run on the mutated graph under the same priorities.
//
// A Maintainer is not safe for concurrent use: it owns its overlay,
// solution state and repair scratch (the service layer checks sessions
// out of its cache while a worker advances them).
type Maintainer struct {
	ov        overlay
	grain     int
	churnFrac float64
	broken    bool

	mis *misState
	mm  *mmState

	initMIS core.Stats
	initMM  core.Stats

	batches int64
	applied int64
}

// NewMaintainer builds a Maintainer over g (which must be immutable
// for the Maintainer's lifetime; the overlay aliases it). The initial
// solutions honor ctx; no usable Maintainer is returned on
// cancellation.
func NewMaintainer(ctx context.Context, g *graph.Graph, cfg Config) (*Maintainer, error) {
	if !cfg.MIS && !cfg.MM {
		cfg.MIS, cfg.MM = true, true
	}
	churn := cfg.ChurnFrac
	if churn == 0 {
		churn = DefaultChurnFrac
	}
	mt := &Maintainer{
		ov:        newOverlay(g),
		grain:     cfg.Grain,
		churnFrac: churn,
	}
	if cfg.MIS {
		n := g.NumVertices()
		var ord core.Order
		if cfg.Order != nil {
			if cfg.Order.Len() != n {
				return nil, fmt.Errorf("dynamic: order has %d items, graph has %d vertices", cfg.Order.Len(), n)
			}
			ord = *cfg.Order
		} else {
			ord = core.NewRandomOrder(n, cfg.Seed)
		}
		ms, stats, err := newMISState(ctx, g, ord, cfg.Engine, cfg.Grain)
		if err != nil {
			return nil, err
		}
		mt.mis, mt.initMIS = ms, stats
	}
	if cfg.MM {
		ms, stats, err := newMMState(ctx, g, cfg.Seed, cfg.Engine, cfg.Grain)
		if err != nil {
			return nil, err
		}
		mt.mm, mt.initMM = ms, stats
	}
	return mt, nil
}

// Apply validates the batch, applies it, and repairs the maintained
// solutions by draining the change-driven priority frontier (or, under
// EngineClosure, re-resolving the downstream closures). The batch is
// atomic: an invalid batch (ErrBadUpdate) changes nothing. A ctx
// cancellation observed mid-repair leaves the state inconsistent; the
// Maintainer marks itself broken and every later call returns
// ErrBroken.
//
//lint:allow ctxround the overlay-edit loop must complete atomically once validation passes (aborting mid-batch would corrupt the overlay); the long-running work is the repair drains, which check ctx once per round
func (mt *Maintainer) Apply(ctx context.Context, batch []Update) (RepairStats, error) {
	if mt.broken {
		return RepairStats{}, ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return RepairStats{}, err
	}
	stats := RepairStats{}
	if err := mt.validate(batch); err != nil {
		return stats, err
	}
	for _, up := range batch {
		u, v := canonical(up.U, up.V)
		if up.Op == OpAdd {
			mt.ov.addEdge(u, v)
			stats.Added++
		} else {
			mt.ov.delEdge(u, v)
			stats.Removed++
		}
	}
	if mt.mis != nil {
		cost, err := mt.mis.repair(ctx, &mt.ov, batch, mt.grain)
		stats.MIS = cost
		if err != nil {
			mt.broken = true
			return stats, err
		}
	}
	if mt.mm != nil {
		cost, err := mt.mm.repair(ctx, batch, mt.grain)
		stats.MM = cost
		if err != nil {
			mt.broken = true
			return stats, err
		}
	}
	if mt.churnFrac >= 0 && float64(mt.ov.churn) > mt.churnFrac*float64(2*mt.ov.m)+1 {
		mt.ov.compact()
		stats.Compacted = true
	}
	mt.batches++
	mt.applied += int64(len(batch))
	return stats, nil
}

// ApplyToGraph validates batch against g and returns the mutated graph
// as a fresh CSR, plus the insert/delete counts. It is the
// solution-free subset of a Maintainer — the service's graph registry
// uses it to derive new content-addressed graph versions from PATCH
// requests without maintaining any solution.
func ApplyToGraph(g *graph.Graph, batch []Update) (*graph.Graph, int, int, error) {
	mt := &Maintainer{ov: newOverlay(g), churnFrac: -1}
	if err := mt.validate(batch); err != nil {
		return nil, 0, 0, err
	}
	added, removed := 0, 0
	for _, up := range batch {
		u, v := canonical(up.U, up.V)
		if up.Op == OpAdd {
			mt.ov.addEdge(u, v)
			added++
		} else {
			mt.ov.delEdge(u, v)
			removed++
		}
	}
	return mt.ov.materialize(), added, removed, nil
}

func canonical(u, v graph.Vertex) (graph.Vertex, graph.Vertex) {
	if u > v {
		return v, u
	}
	return u, v
}

// validate checks the whole batch against the current graph and
// rejects it wholesale on the first violation.
func (mt *Maintainer) validate(batch []Update) error {
	var seen map[uint64]struct{}
	if len(batch) > 1 {
		seen = make(map[uint64]struct{}, len(batch))
	}
	n := int32(mt.ov.n)
	for i, up := range batch {
		if up.Op != OpAdd && up.Op != OpDel {
			return fmt.Errorf("%w: update %d has unknown op %d", ErrBadUpdate, i, up.Op)
		}
		if up.U < 0 || up.U >= n || up.V < 0 || up.V >= n {
			return fmt.Errorf("%w: update %d: edge {%d,%d} out of range [0,%d)", ErrBadUpdate, i, up.U, up.V, n)
		}
		if up.U == up.V {
			return fmt.Errorf("%w: update %d: self loop at vertex %d", ErrBadUpdate, i, up.U)
		}
		u, v := canonical(up.U, up.V)
		if seen != nil {
			key := uint64(uint32(u))<<32 | uint64(uint32(v))
			if _, dup := seen[key]; dup {
				return fmt.Errorf("%w: update %d: edge {%d,%d} appears twice in one batch", ErrBadUpdate, i, u, v)
			}
			seen[key] = struct{}{}
		}
		present := mt.ov.hasEdge(u, v)
		if up.Op == OpAdd && present {
			return fmt.Errorf("%w: update %d inserts existing edge {%d,%d}", ErrBadUpdate, i, u, v)
		}
		if up.Op == OpDel && !present {
			return fmt.Errorf("%w: update %d deletes missing edge {%d,%d}", ErrBadUpdate, i, u, v)
		}
	}
	return nil
}

// NumVertices returns the (fixed) vertex count.
func (mt *Maintainer) NumVertices() int { return mt.ov.n }

// NumEdges returns the current undirected edge count.
func (mt *Maintainer) NumEdges() int { return mt.ov.m }

// HasEdge reports whether {u, v} is currently present.
func (mt *Maintainer) HasEdge(u, v graph.Vertex) bool {
	cu, cv := canonical(u, v)
	if cu < 0 || int(cv) >= mt.ov.n || cu == cv {
		return false
	}
	return mt.ov.hasEdge(cu, cv)
}

// Graph returns the current graph as an immutable CSR: the shared base
// when no deltas are outstanding, otherwise a fresh materialization.
func (mt *Maintainer) Graph() *graph.Graph { return mt.ov.graphView() }

// Batches and Applied report the number of successful Apply calls and
// the total updates they carried.
func (mt *Maintainer) Batches() int64 { return mt.batches }

// Applied returns the total number of updates applied.
func (mt *Maintainer) Applied() int64 { return mt.applied }

// Order returns the MIS vertex order, or a zero Order when MIS is not
// maintained.
func (mt *Maintainer) Order() core.Order {
	if mt.mis == nil {
		return core.Order{}
	}
	return mt.mis.ord
}

// InitStats returns the cost counters of the initial from-scratch
// computations (zero for problems not maintained).
func (mt *Maintainer) InitStats() (mis, mm core.Stats) { return mt.initMIS, mt.initMM }

// MISResult returns the current MIS (nil when MIS is not maintained).
// The returned Result is a snapshot; later Applies do not modify it.
func (mt *Maintainer) MISResult() *core.Result {
	if mt.mis == nil {
		return nil
	}
	return mt.mis.result()
}

// MatchingPairs returns the current matching as canonical edges sorted
// lexicographically (nil when MM is not maintained).
func (mt *Maintainer) MatchingPairs() []graph.Edge {
	if mt.mm == nil {
		return nil
	}
	return mt.mm.pairs()
}

// Mate returns a copy of the current mate array (mate[v] = matched
// partner of v, or -1), or nil when MM is not maintained.
func (mt *Maintainer) Mate() []int32 {
	if mt.mm == nil {
		return nil
	}
	return mt.mm.mateCopy()
}
