package dynamic

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/parallel"
)

// unmatched marks a vertex with no mate (matching package convention).
const unmatched int32 = -1

// mmEdge is one live edge of the matching store: canonical endpoints
// and the churn-stable hash priority.
type mmEdge struct {
	u, v int32 // u < v
	prio uint64
}

// mmState maintains the greedy maximal matching of the overlaid graph
// under EdgePriority(seed) priorities. Edges live in slots (stable
// across unrelated updates, recycled through a free list); per-vertex
// incidence lists index the slots. The slot numbering is internal —
// priorities depend only on (seed, endpoints), so results are
// independent of insertion order and identical to a from-scratch run
// under EdgeOrder on the same graph.
type mmState struct {
	seed   uint64
	edges  []mmEdge
	status []int32
	inc    [][]int32
	free   []int32
	mate   []int32

	cs        core.ConeScratch
	seedBuf   []int32
	cone      []int32
	oldBuf    []int32
	activeBuf []int32
	outcome   []int32
}

// newMMState computes the initial matching of g with the library's
// prefix round loop under the churn-stable edge order and converts it
// into slot form.
func newMMState(ctx context.Context, g *graph.Graph, seed uint64, grain int) (*mmState, core.Stats, error) {
	el := g.EdgeList()
	m := el.NumEdges()
	ord := EdgeOrder(el, seed)
	res, err := matching.PrefixMMCtx(ctx, el, ord, matching.Options{Grain: grain})
	if err != nil {
		return nil, core.Stats{}, err
	}
	ms := &mmState{seed: seed}
	ms.edges = make([]mmEdge, m)
	ms.status = make([]int32, m)
	for i, e := range el.Edges {
		ms.edges[i] = mmEdge{u: e.U, v: e.V, prio: EdgePriority(e.U, e.V, seed)}
		if res.InMatching[i] {
			ms.status[i] = statusIn
		} else {
			ms.status[i] = statusOut
		}
	}
	ms.mate = append([]int32(nil), res.Mate...)
	// Carve the incidence lists from one backing array with capacity
	// pinned to length, so a later append to one vertex's list
	// reallocates that list alone instead of corrupting its neighbors'.
	inc0 := graph.BuildIncidence(el)
	ms.inc = make([][]int32, el.N)
	for v := 0; v < el.N; v++ {
		lo, hi := inc0.Offsets[v], inc0.Offsets[v+1]
		ms.inc[v] = inc0.EdgeIDs[lo:hi:hi]
	}
	return ms, res.Stats, nil
}

// earlier reports whether slot a precedes slot b in the total edge
// priority order (priority, then canonical endpoints).
func (ms *mmState) earlier(a, b int32) bool {
	ea, eb := &ms.edges[a], &ms.edges[b]
	if ea.prio != eb.prio {
		return ea.prio < eb.prio
	}
	if ea.u != eb.u {
		return ea.u < eb.u
	}
	return ea.v < eb.v
}

// recEarlier reports whether the (detached) edge record rec precedes
// slot b.
func (ms *mmState) recEarlier(rec mmEdge, b int32) bool {
	eb := &ms.edges[b]
	if rec.prio != eb.prio {
		return rec.prio < eb.prio
	}
	if rec.u != eb.u {
		return rec.u < eb.u
	}
	return rec.v < eb.v
}

// insertEdge adds the validated-absent edge {u, v} and returns its
// slot.
func (ms *mmState) insertEdge(u, v int32) int32 {
	if u > v {
		u, v = v, u
	}
	var slot int32
	if k := len(ms.free); k > 0 {
		slot = ms.free[k-1]
		ms.free = ms.free[:k-1]
	} else {
		slot = int32(len(ms.edges))
		ms.edges = append(ms.edges, mmEdge{})
		ms.status = append(ms.status, statusOut)
	}
	ms.edges[slot] = mmEdge{u: u, v: v, prio: EdgePriority(u, v, ms.seed)}
	ms.status[slot] = statusUndecided
	ms.inc[u] = append(ms.inc[u], slot)
	ms.inc[v] = append(ms.inc[v], slot)
	return slot
}

// deleteEdge removes the validated-present edge {u, v}, returning its
// record and whether it was matched (in which case its endpoints'
// mates are cleared).
func (ms *mmState) deleteEdge(u, v int32) (mmEdge, bool) {
	if u > v {
		u, v = v, u
	}
	slot := int32(-1)
	for _, f := range ms.inc[u] {
		if ms.edges[f].u == u && ms.edges[f].v == v {
			slot = f
			break
		}
	}
	removeSlot(&ms.inc[u], slot)
	removeSlot(&ms.inc[v], slot)
	rec := ms.edges[slot]
	wasIn := ms.status[slot] == statusIn
	if wasIn {
		ms.mate[u] = unmatched
		ms.mate[v] = unmatched
	}
	ms.edges[slot] = mmEdge{u: -1, v: -1}
	ms.status[slot] = statusOut
	ms.free = append(ms.free, slot)
	return rec, wasIn
}

// removeSlot swap-removes slot from an incidence list (order within a
// list is irrelevant).
func removeSlot(lst *[]int32, slot int32) {
	s := *lst
	for i, f := range s {
		if f == slot {
			s[i] = s[len(s)-1]
			*lst = s[:len(s)-1]
			return
		}
	}
}

// adjacent enumerates the live edges sharing an endpoint with slot e.
func (ms *mmState) adjacent(e int32, visit func(f int32)) {
	rec := &ms.edges[e]
	for _, f := range ms.inc[rec.u] {
		if f != e {
			visit(f)
		}
	}
	for _, f := range ms.inc[rec.v] {
		if f != e {
			visit(f)
		}
	}
}

// repair applies the batch's structural changes to the edge store,
// seeds the affected edges, and re-resolves their downstream priority
// cone with the restricted round loop (the matching analogue of the
// MIS repair; see misState.repair).
//
// Seeds: an inserted edge must be decided, so it always seeds itself
// (its downstream closure covers anything it may displace). A deleted
// edge seeds its later adjacent edges only when it was matched — an
// unmatched edge never constrained anyone, so removing it is inert
// unless some other change reaches its neighborhood, which the cone
// BFS covers from that change's own seeds.
func (ms *mmState) repair(ctx context.Context, batch []Update, grain int) (RepairCost, error) {
	seeds := ms.seedBuf[:0]
	for _, up := range batch {
		u, v := up.U, up.V
		if u > v {
			u, v = v, u
		}
		switch up.Op {
		case OpAdd:
			seeds = append(seeds, ms.insertEdge(u, v))
		default:
			rec, wasIn := ms.deleteEdge(u, v)
			if !wasIn {
				continue
			}
			for _, x := range [2]int32{rec.u, rec.v} {
				for _, f := range ms.inc[x] {
					if ms.recEarlier(rec, f) {
						seeds = append(seeds, f)
					}
				}
			}
		}
	}
	// A seed recorded early in the batch may have been deleted by a
	// later update (its slot freed, possibly recycled): drop dead
	// slots. A recycled slot holds a freshly inserted edge, which is a
	// legitimate (self-)seed either way.
	w := 0
	for _, s := range seeds {
		if ms.edges[s].u >= 0 {
			seeds[w] = s
			w++
		}
	}
	seeds = seeds[:w]
	ms.seedBuf = seeds
	cost := RepairCost{Seeds: len(seeds)}
	if len(seeds) == 0 {
		return cost, nil
	}
	cone := ms.cs.DownstreamCone(len(ms.edges), seeds, ms.cone[:0], ms.adjacent,
		func(x, y int32) bool { return ms.earlier(x, y) })
	ms.cone = cone
	cost.Cone = len(cone)

	sortInt32s(cone, ms.earlier)
	old := grow32(&ms.oldBuf, len(cone))
	for i, e := range cone {
		old[i] = ms.status[e]
	}
	for _, e := range cone {
		if ms.status[e] == statusIn {
			rec := &ms.edges[e]
			ms.mate[rec.u] = unmatched
			ms.mate[rec.v] = unmatched
		}
		ms.status[e] = statusUndecided
	}

	var inspections atomic.Int64
	active := grow32(&ms.activeBuf, len(cone))
	copy(active, cone)
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return cost, err
		}
		outcome := grow32(&ms.outcome, len(active))
		// Check phase: reads only statuses committed in previous
		// rounds.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				var insp int64
				outcome[i], insp = ms.check(active[i])
				local += insp
			}
			inspections.Add(local)
		})
		// Update phase: same-round In commits are endpoint-disjoint (two
		// adjacent edges cannot both pass the check — the later one saw
		// the earlier one undecided), so the mate writes are race-free.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if outcome[i] == statusUndecided {
					continue
				}
				e := active[i]
				ms.status[e] = outcome[i]
				if outcome[i] == statusIn {
					rec := &ms.edges[e]
					ms.mate[rec.u] = rec.v
					ms.mate[rec.v] = rec.u
				}
			}
		})
		cost.Rounds++
		cost.Attempts += int64(len(active))
		active = parallel.PackInPlace(active, grain, func(i int) bool {
			return outcome[i] == statusUndecided
		})
	}
	cost.Inspections = inspections.Load()
	for i, e := range cone {
		if ms.status[e] != old[i] {
			cost.Changed++
		}
	}
	return cost, nil
}

// check decides cone edge e against the statuses of its earlier
// adjacent edges: any matched earlier neighbor rules it out, any
// undecided earlier neighbor stalls it for the next round, and an
// all-resolved earlier neighborhood admits it — the acceptance rule of
// the sequential greedy matching.
func (ms *mmState) check(e int32) (int32, int64) {
	rec := &ms.edges[e]
	sawUndecided := false
	var inspections int64
	for _, x := range [2]int32{rec.u, rec.v} {
		for _, f := range ms.inc[x] {
			if f == e || !ms.earlier(f, e) {
				continue
			}
			inspections++
			switch ms.status[f] {
			case statusIn:
				return statusOut, inspections
			case statusUndecided:
				sawUndecided = true
			}
		}
	}
	if sawUndecided {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// pairs returns the current matching as canonical edges sorted
// lexicographically.
func (ms *mmState) pairs() []graph.Edge {
	var out []graph.Edge
	for slot, st := range ms.status {
		if st == statusIn {
			rec := &ms.edges[slot]
			out = append(out, graph.Edge{U: rec.u, V: rec.v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// mateCopy returns a copy of the mate array.
func (ms *mmState) mateCopy() []int32 {
	return append([]int32(nil), ms.mate...)
}
