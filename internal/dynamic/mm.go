package dynamic

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/parallel"
)

// unmatched marks a vertex with no mate (matching package convention).
const unmatched int32 = -1

// mmFrontierBucketBits is the number of leading priority-hash bits
// that form an edge's frontier bucket key: EdgePriority is a uniform
// hash, so its top bits are a monotone, evenly-loaded bucketing of the
// priority order no matter how slots are numbered.
const mmFrontierBucketBits = 10

// mmBucketKey maps an edge priority to its frontier bucket.
func mmBucketKey(prio uint64) int {
	return int(prio >> (64 - mmFrontierBucketBits))
}

// mmEdge is one live edge of the matching store: canonical endpoints
// and the churn-stable hash priority.
type mmEdge struct {
	u, v int32 // u < v
	prio uint64
}

// mmState maintains the greedy maximal matching of the overlaid graph
// under EdgePriority(seed) priorities. Edges live in slots (stable
// across unrelated updates, recycled through a free list); per-vertex
// incidence lists index the slots. The slot numbering is internal —
// priorities depend only on (seed, endpoints), so results are
// independent of insertion order and identical to a from-scratch run
// under EdgeOrder on the same graph.
type mmState struct {
	seed   uint64
	edges  []mmEdge
	status []int32
	inc    [][]int32
	free   []int32
	mate   []int32
	engine Engine

	fr frontier

	seedBuf   []int32
	activeBuf []int32
	outcome   []int32

	// Closure-engine scratch (differential-testing path).
	cs     core.ConeScratch
	cone   []int32
	oldBuf []int32
}

// newMMState computes the initial matching of g with the library's
// prefix round loop under the churn-stable edge order and converts it
// into slot form. Repair scratch is pre-sized to the edge universe so
// the first Apply pays no universe-sized allocation.
//
//lint:allow ctxround ctx is consumed by PrefixMMCtx (checked every round); the remaining loops are bounded O(m) slot/incidence conversions, cheaper than a single solver round
func newMMState(ctx context.Context, g *graph.Graph, seed uint64, engine Engine, grain int) (*mmState, core.Stats, error) {
	el := g.EdgeList()
	m := el.NumEdges()
	ord := EdgeOrder(el, seed)
	res, err := matching.PrefixMMCtx(ctx, el, ord, matching.Options{Grain: grain})
	if err != nil {
		return nil, core.Stats{}, err
	}
	ms := &mmState{seed: seed, engine: engine}
	ms.edges = make([]mmEdge, m)
	ms.status = make([]int32, m)
	for i, e := range el.Edges {
		ms.edges[i] = mmEdge{u: e.U, v: e.V, prio: EdgePriority(e.U, e.V, seed)}
		if res.InMatching[i] {
			ms.status[i] = statusIn
		} else {
			ms.status[i] = statusOut
		}
	}
	ms.mate = append([]int32(nil), res.Mate...)
	// Carve the incidence lists from one backing array with capacity
	// pinned to length, so a later append to one vertex's list
	// reallocates that list alone instead of corrupting its neighbors'.
	inc0 := graph.BuildIncidence(el)
	ms.inc = make([][]int32, el.N)
	for v := 0; v < el.N; v++ {
		lo, hi := inc0.Offsets[v], inc0.Offsets[v+1]
		ms.inc[v] = inc0.EdgeIDs[lo:hi:hi]
	}
	ms.fr.ensure(m)
	return ms, res.Stats, nil
}

// earlier reports whether slot a precedes slot b in the total edge
// priority order (priority, then canonical endpoints).
func (ms *mmState) earlier(a, b int32) bool {
	ea, eb := &ms.edges[a], &ms.edges[b]
	if ea.prio != eb.prio {
		return ea.prio < eb.prio
	}
	if ea.u != eb.u {
		return ea.u < eb.u
	}
	return ea.v < eb.v
}

// recEarlier reports whether the (detached) edge record rec precedes
// slot b.
func (ms *mmState) recEarlier(rec mmEdge, b int32) bool {
	eb := &ms.edges[b]
	if rec.prio != eb.prio {
		return rec.prio < eb.prio
	}
	if rec.u != eb.u {
		return rec.u < eb.u
	}
	return rec.v < eb.v
}

// insertEdge adds the validated-absent edge {u, v} and returns its
// slot. The new edge starts Out — the frontier engine's stored
// statuses are always trusted In/Out values guarded by pending marks,
// and "not in the matching yet" is exactly Out (it also makes the
// Changed counter read as "entered the matching" for insertions).
func (ms *mmState) insertEdge(u, v int32) int32 {
	if u > v {
		u, v = v, u
	}
	var slot int32
	if k := len(ms.free); k > 0 {
		slot = ms.free[k-1]
		ms.free = ms.free[:k-1]
	} else {
		slot = int32(len(ms.edges))
		ms.edges = append(ms.edges, mmEdge{})
		ms.status = append(ms.status, statusOut)
	}
	ms.edges[slot] = mmEdge{u: u, v: v, prio: EdgePriority(u, v, ms.seed)}
	ms.status[slot] = statusOut
	ms.inc[u] = append(ms.inc[u], slot)
	ms.inc[v] = append(ms.inc[v], slot)
	return slot
}

// deleteEdge removes the validated-present edge {u, v}, returning its
// record and whether it was matched (in which case its endpoints'
// mates are cleared).
func (ms *mmState) deleteEdge(u, v int32) (mmEdge, bool) {
	if u > v {
		u, v = v, u
	}
	slot := int32(-1)
	for _, f := range ms.inc[u] {
		if ms.edges[f].u == u && ms.edges[f].v == v {
			slot = f
			break
		}
	}
	removeSlot(&ms.inc[u], slot)
	removeSlot(&ms.inc[v], slot)
	rec := ms.edges[slot]
	wasIn := ms.status[slot] == statusIn
	if wasIn {
		ms.mate[u] = unmatched
		ms.mate[v] = unmatched
	}
	ms.edges[slot] = mmEdge{u: -1, v: -1}
	ms.status[slot] = statusOut
	ms.free = append(ms.free, slot)
	return rec, wasIn
}

// removeSlot swap-removes slot from an incidence list (order within a
// list is irrelevant).
func removeSlot(lst *[]int32, slot int32) {
	s := *lst
	for i, f := range s {
		if f == slot {
			s[i] = s[len(s)-1]
			*lst = s[:len(s)-1]
			return
		}
	}
}

// adjacent enumerates the live edges sharing an endpoint with slot e.
func (ms *mmState) adjacent(e int32, visit func(f int32)) {
	rec := &ms.edges[e]
	for _, f := range ms.inc[rec.u] {
		if f != e {
			visit(f)
		}
	}
	for _, f := range ms.inc[rec.v] {
		if f != e {
			visit(f)
		}
	}
}

// applyStructural applies the batch's edge insertions and deletions to
// the slot store and returns the repair seeds: an inserted edge must
// be decided, so it always seeds itself (deciding it In displaces
// exactly what its flip expansion re-decides); a deleted edge seeds
// its later adjacent edges only when it was matched — an unmatched
// edge never constrained anyone, so removing it is inert unless some
// other change reaches its neighborhood through that change's own
// seeds. A seed recorded early in the batch may have been deleted by a
// later update (its slot freed, possibly recycled): dead slots are
// dropped, and a recycled slot holds a freshly inserted edge, which is
// a legitimate (self-)seed either way.
func (ms *mmState) applyStructural(batch []Update) []int32 {
	seeds := ms.seedBuf[:0]
	for _, up := range batch {
		u, v := up.U, up.V
		if u > v {
			u, v = v, u
		}
		switch up.Op {
		case OpAdd:
			seeds = append(seeds, ms.insertEdge(u, v))
		default:
			rec, wasIn := ms.deleteEdge(u, v)
			if !wasIn {
				continue
			}
			for _, x := range [2]int32{rec.u, rec.v} {
				for _, f := range ms.inc[x] {
					if ms.recEarlier(rec, f) {
						seeds = append(seeds, f)
					}
				}
			}
		}
	}
	w := 0
	for _, s := range seeds {
		if ms.edges[s].u >= 0 {
			seeds[w] = s
			w++
		}
	}
	seeds = seeds[:w]
	ms.seedBuf = seeds
	return seeds
}

// repair applies the batch's structural changes to the edge store and
// re-resolves the damage region, dispatching on the configured engine
// (the matching analogue of misState.repair).
func (ms *mmState) repair(ctx context.Context, batch []Update, grain int) (RepairCost, error) {
	if ms.engine == EngineClosure {
		return ms.repairClosure(ctx, batch, grain)
	}
	return ms.repairFrontier(ctx, batch, grain)
}

// repairFrontier is the change-driven engine over the edge frontier:
// drain the seeds in hash-priority order, re-decide each popped edge
// against its earlier adjacent edges, and expand to later adjacent
// edges only when the popped edge's matched status actually flipped.
// Mate bookkeeping is deferred to the end of the drain (clears before
// sets), so transiently re-decided edges never corrupt the mate array.
func (ms *mmState) repairFrontier(ctx context.Context, batch []Update, grain int) (RepairCost, error) {
	seeds := ms.applyStructural(batch)
	cost := RepairCost{Seeds: len(seeds)}
	if len(seeds) == 0 {
		return cost, nil
	}
	f := &ms.fr
	f.begin(len(ms.edges), 1<<mmFrontierBucketBits)
	for _, e := range seeds {
		f.push(e, mmBucketKey(ms.edges[e].prio), ms.status[e])
	}
	var inspections atomic.Int64
	active := ms.activeBuf[:0]
	for {
		var ok bool
		active, _, ok = f.q.PopBucket(active[:0])
		if !ok {
			break
		}
		for len(active) > 0 {
			if err := ctx.Err(); err != nil {
				ms.activeBuf = active
				return cost, err
			}
			outcome := grow32(&ms.outcome, len(active))
			// Check phase: reads only statuses and pending marks
			// committed before this round.
			parallel.ForRange(len(active), grain, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					var insp int64
					outcome[i], insp = ms.checkFrontier(active[i])
					local += insp
				}
				inspections.Add(local)
			})
			// Commit phase: settle decided edges; a flip enqueues the
			// edge's later adjacent edges.
			for i, e := range active {
				if outcome[i] == statusUndecided {
					continue
				}
				f.settle(e)
				if ms.status[e] != outcome[i] {
					ms.status[e] = outcome[i]
					cost.Flipped++
					rec := &ms.edges[e]
					for _, x := range [2]int32{rec.u, rec.v} {
						for _, ff := range ms.inc[x] {
							if ff != e && ms.earlier(e, ff) {
								f.push(ff, mmBucketKey(ms.edges[ff].prio), ms.status[ff])
							}
						}
					}
				}
			}
			cost.Rounds++
			cost.Attempts += int64(len(active))
			active = parallel.PackInPlace(active, grain, func(i int) bool {
				return outcome[i] == statusUndecided
			})
			active = f.q.TakeCurrent(active)
		}
	}
	ms.activeBuf = active
	cost.Inspections = inspections.Load()
	// Mate fix-up from the undo log: all In->Out clears first, then all
	// Out->In sets. The final In set is endpoint-disjoint (it is the
	// sequential matching), so the set pass is conflict-free, and the
	// clear pass runs against pre-repair mates, where every cleared
	// edge still owns both its endpoints.
	for i, e := range f.touched {
		if f.old[i] == statusIn && ms.status[e] == statusOut {
			rec := &ms.edges[e]
			ms.mate[rec.u] = unmatched
			ms.mate[rec.v] = unmatched
		}
	}
	for i, e := range f.touched {
		if f.old[i] != statusIn && ms.status[e] == statusIn {
			rec := &ms.edges[e]
			ms.mate[rec.u] = rec.v
			ms.mate[rec.v] = rec.u
		}
	}
	f.finish(&cost, ms.status)
	return cost, nil
}

// checkFrontier re-decides edge e against its earlier adjacent edges:
// a settled earlier In neighbor rules it out immediately (so an edge
// blocked by an unaffected matched neighbor terminates in O(1)-ish
// inspections), a pending earlier neighbor stalls it for the next
// round, and an all-settled, all-Out earlier neighborhood admits it.
func (ms *mmState) checkFrontier(e int32) (int32, int64) {
	rec := &ms.edges[e]
	pend := ms.fr.pend
	sawPending := false
	var inspections int64
	for _, x := range [2]int32{rec.u, rec.v} {
		for _, f := range ms.inc[x] {
			if f == e || !ms.earlier(f, e) {
				continue
			}
			inspections++
			if pend[f] {
				sawPending = true
				continue
			}
			if ms.status[f] == statusIn {
				return statusOut, inspections
			}
		}
	}
	if sawPending {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// repairClosure is the conservative engine: reset and re-resolve the
// full downstream closure of the seeds with the restricted round loop.
// Kept as the frontier engine's differential-testing oracle.
func (ms *mmState) repairClosure(ctx context.Context, batch []Update, grain int) (RepairCost, error) {
	seeds := ms.applyStructural(batch)
	cost := RepairCost{Seeds: len(seeds)}
	if len(seeds) == 0 {
		return cost, nil
	}
	cone := ms.cs.DownstreamCone(len(ms.edges), seeds, ms.cone[:0], ms.adjacent,
		func(x, y int32) bool { return ms.earlier(x, y) })
	ms.cone = cone
	cost.Visited = len(cone)

	sortInt32s(cone, ms.earlier)
	old := grow32(&ms.oldBuf, len(cone))
	for i, e := range cone {
		old[i] = ms.status[e]
	}
	for _, e := range cone {
		if ms.status[e] == statusIn {
			rec := &ms.edges[e]
			ms.mate[rec.u] = unmatched
			ms.mate[rec.v] = unmatched
		}
		ms.status[e] = statusUndecided
	}

	var inspections atomic.Int64
	active := grow32(&ms.activeBuf, len(cone))
	copy(active, cone)
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return cost, err
		}
		outcome := grow32(&ms.outcome, len(active))
		// Check phase: reads only statuses committed in previous
		// rounds.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				var insp int64
				outcome[i], insp = ms.checkClosure(active[i])
				local += insp
			}
			inspections.Add(local)
		})
		// Update phase: same-round In commits are endpoint-disjoint (two
		// adjacent edges cannot both pass the check — the later one saw
		// the earlier one undecided), so the mate writes are race-free.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if outcome[i] == statusUndecided {
					continue
				}
				e := active[i]
				ms.status[e] = outcome[i]
				if outcome[i] == statusIn {
					rec := &ms.edges[e]
					ms.mate[rec.u] = rec.v
					ms.mate[rec.v] = rec.u
				}
			}
		})
		cost.Rounds++
		cost.Attempts += int64(len(active))
		active = parallel.PackInPlace(active, grain, func(i int) bool {
			return outcome[i] == statusUndecided
		})
	}
	cost.Inspections = inspections.Load()
	for i, e := range cone {
		if ms.status[e] != old[i] {
			cost.Changed++
		}
	}
	return cost, nil
}

// checkClosure decides cone edge e against the statuses of its earlier
// adjacent edges: any matched earlier neighbor rules it out, any
// undecided earlier neighbor stalls it for the next round, and an
// all-resolved earlier neighborhood admits it — the acceptance rule of
// the sequential greedy matching.
func (ms *mmState) checkClosure(e int32) (int32, int64) {
	rec := &ms.edges[e]
	sawUndecided := false
	var inspections int64
	for _, x := range [2]int32{rec.u, rec.v} {
		for _, f := range ms.inc[x] {
			if f == e || !ms.earlier(f, e) {
				continue
			}
			inspections++
			switch ms.status[f] {
			case statusIn:
				return statusOut, inspections
			case statusUndecided:
				sawUndecided = true
			}
		}
	}
	if sawUndecided {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// pairs returns the current matching as canonical edges sorted
// lexicographically.
func (ms *mmState) pairs() []graph.Edge {
	var out []graph.Edge
	for slot, st := range ms.status {
		if st == statusIn {
			rec := &ms.edges[slot]
			out = append(out, graph.Edge{U: rec.u, V: rec.v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// mateCopy returns a copy of the mate array.
func (ms *mmState) mateCopy() []int32 {
	return append([]int32(nil), ms.mate...)
}
