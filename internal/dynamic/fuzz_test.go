package dynamic

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

// FuzzConeRepair is the repair-equivalence fuzz target, three ways:
// arbitrary bytes are decoded into a base graph (an edge-soup "random"
// shape or a power-law rMat shape, whose hubs are exactly where the
// frontier and closure engines diverge most) and a stream of update
// batches; after every batch the frontier-maintained and
// closure-maintained MIS and matching must each be bit-identical to a
// from-scratch sequential greedy run on the mutated graph, and their
// machine-independent repair counters must agree where the engines'
// contracts overlap (seeds, net changes). Run with `go test
// -fuzz=FuzzConeRepair ./internal/dynamic`; the seed corpus also runs
// under plain `go test`.
//
// Ops are decoded so that every generated batch is valid (an absent
// edge is inserted, a present edge is deleted, intra-batch duplicates
// are skipped), keeping the fuzzer exploring repair paths rather than
// validation rejections — the validation paths have their own table
// test.
func FuzzConeRepair(f *testing.F) {
	f.Add(uint8(8), uint8(0), uint64(1), []byte{0, 1, 1, 2, 2, 3}, []byte{0, 3, 1, 2, 0, 1})
	f.Add(uint8(3), uint8(0), uint64(42), []byte{}, []byte{0, 1, 1, 2, 0, 2, 0, 1})
	f.Add(uint8(20), uint8(0), uint64(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []byte{1, 9, 2, 8, 3, 7, 1, 9})
	f.Add(uint8(0), uint8(0), uint64(0), []byte{}, []byte{})
	f.Add(uint8(30), uint8(1), uint64(5), []byte{9}, []byte{0, 7, 3, 12, 0, 7, 19, 2, 5, 5, 1, 30})
	f.Add(uint8(14), uint8(3), uint64(77), []byte{200}, []byte{1, 2, 2, 3, 1, 2, 9, 9, 4, 11, 0, 13})
	f.Fuzz(func(t *testing.T, rawN uint8, shape uint8, seed uint64, baseEdges []byte, ops []byte) {
		var g *graph.Graph
		var n int
		if shape&1 == 0 {
			// Random shape: byte soup through FromEdges, which drops
			// self loops and merges duplicates.
			n = int(rawN%40) + 2
			edges := make([]graph.Edge, 0, len(baseEdges)/2)
			for i := 0; i+1 < len(baseEdges); i += 2 {
				u := graph.Vertex(int(baseEdges[i]) % n)
				v := graph.Vertex(int(baseEdges[i+1]) % n)
				edges = append(edges, graph.Edge{U: u, V: v})
			}
			var err error
			g, err = graph.FromEdges(n, edges)
			if err != nil {
				t.Fatalf("base graph: %v", err)
			}
		} else {
			// rMat shape: skewed-degree base whose hub vertices stress
			// the flip-expansion paths. Density varies with the input.
			logN := int(rawN%4) + 2 // 4..32 vertices
			n = 1 << logN
			m := 0
			if len(baseEdges) > 0 {
				m = int(baseEdges[0]) % (3 * n)
			}
			if max := n * (n - 1) / 2; m > max {
				m = max
			}
			g = graph.RMat(logN, m, seed|1, graph.DefaultRMatOptions())
		}
		ctx := context.Background()
		front, err := NewMaintainer(ctx, g, Config{Seed: seed})
		if err != nil {
			t.Fatalf("frontier maintainer: %v", err)
		}
		clos, err := NewMaintainer(ctx, g, Config{Seed: seed, Engine: EngineClosure})
		if err != nil {
			t.Fatalf("closure maintainer: %v", err)
		}
		// Decode ops into batches: byte pairs name an endpoint pair, a
		// degenerate pair flushes the batch, toggling presence keeps
		// every batch valid.
		var batch []Update
		inBatch := make(map[[2]int32]bool)
		flush := func() {
			if len(batch) == 0 {
				return
			}
			fs, err := front.Apply(ctx, batch)
			if err != nil {
				t.Fatalf("frontier apply %v: %v", batch, err)
			}
			cs, err := clos.Apply(ctx, batch)
			if err != nil {
				t.Fatalf("closure apply %v: %v", batch, err)
			}
			for _, pair := range []struct {
				name string
				f, c RepairCost
			}{{"mis", fs.MIS, cs.MIS}, {"mm", fs.MM, cs.MM}} {
				if pair.f.Seeds != pair.c.Seeds {
					t.Fatalf("%s seeds diverged: frontier %d vs closure %d", pair.name, pair.f.Seeds, pair.c.Seeds)
				}
				if pair.f.Changed != pair.c.Changed {
					t.Fatalf("%s changed diverged: frontier %d vs closure %d", pair.name, pair.f.Changed, pair.c.Changed)
				}
				if pair.f.Visited > pair.c.Visited {
					t.Fatalf("%s frontier visited %d exceeds closure cone %d", pair.name, pair.f.Visited, pair.c.Visited)
				}
			}
			verifyFuzz(t, front, seed)
			verifyFuzz(t, clos, seed)
			batch = batch[:0]
			clear(inBatch)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			u := int32(int(ops[i]) % n)
			v := int32(int(ops[i+1]) % n)
			if u == v {
				flush() // reuse degenerate pairs as batch boundaries
				continue
			}
			cu, cv := canonical(u, v)
			if inBatch[[2]int32{cu, cv}] {
				continue
			}
			inBatch[[2]int32{cu, cv}] = true
			// Each edge appears at most once per batch, so presence at
			// batch start equals presence at validation time: toggling
			// keeps the batch valid.
			op := OpAdd
			if front.HasEdge(cu, cv) {
				op = OpDel
			}
			batch = append(batch, Update{Op: op, U: u, V: v})
			if len(batch) >= 5 {
				flush()
			}
		}
		flush()
	})
}

// verifyFuzz is the fuzz-path equivalence check (a lighter clone of the
// test helper, fatal on first divergence).
func verifyFuzz(t *testing.T, mt *Maintainer, seed uint64) {
	t.Helper()
	g := mt.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	want := core.SequentialMIS(g, mt.Order())
	got := mt.MISResult()
	for v := range want.InSet {
		if got.InSet[v] != want.InSet[v] {
			t.Fatalf("MIS diverged at vertex %d", v)
		}
	}
	el := g.EdgeList()
	wantMM := matching.SequentialMM(el, EdgeOrder(el, seed))
	gotPairs := mt.MatchingPairs()
	if len(gotPairs) != len(wantMM.Pairs) {
		t.Fatalf("MM size diverged: %d vs %d", len(gotPairs), len(wantMM.Pairs))
	}
	for i := range gotPairs {
		if gotPairs[i] != wantMM.Pairs[i] {
			t.Fatalf("MM diverged at pair %d", i)
		}
	}
	mate := mt.Mate()
	for v := range wantMM.Mate {
		if mate[v] != wantMM.Mate[v] {
			t.Fatalf("mate diverged at vertex %d: got %d want %d", v, mate[v], wantMM.Mate[v])
		}
	}
}
