package dynamic

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

// FuzzConeRepair is the cone-repair equivalence fuzz target: arbitrary
// bytes are decoded into a base graph and a stream of update batches,
// and after every batch the maintained MIS and matching must be
// bit-identical to from-scratch sequential greedy runs on the mutated
// graph. Run with `go test -fuzz=FuzzConeRepair ./internal/dynamic`;
// the seed corpus also runs under plain `go test`.
//
// Ops are decoded so that every generated batch is valid (an absent
// edge is inserted, a present edge is deleted, intra-batch duplicates
// are skipped), keeping the fuzzer exploring repair paths rather than
// validation rejections — the validation paths have their own table
// test.
func FuzzConeRepair(f *testing.F) {
	f.Add(uint8(8), uint64(1), []byte{0, 1, 1, 2, 2, 3}, []byte{0, 3, 1, 2, 0, 1})
	f.Add(uint8(3), uint64(42), []byte{}, []byte{0, 1, 1, 2, 0, 2, 0, 1})
	f.Add(uint8(20), uint64(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []byte{1, 9, 2, 8, 3, 7, 1, 9})
	f.Add(uint8(0), uint64(0), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, rawN uint8, seed uint64, baseEdges []byte, ops []byte) {
		n := int(rawN%40) + 2
		edges := make([]graph.Edge, 0, len(baseEdges)/2)
		for i := 0; i+1 < len(baseEdges); i += 2 {
			u := graph.Vertex(int(baseEdges[i]) % n)
			v := graph.Vertex(int(baseEdges[i+1]) % n)
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		// FromEdges drops self loops and merges duplicates, so any byte
		// soup yields a valid simple base graph.
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Fatalf("base graph: %v", err)
		}
		ctx := context.Background()
		mt, err := NewMaintainer(ctx, g, Config{Seed: seed})
		if err != nil {
			t.Fatalf("maintainer: %v", err)
		}
		// Decode ops into batches: byte pairs name an endpoint pair, a
		// third byte every 3 pairs bounds the batch length, toggling
		// presence keeps every batch valid.
		var batch []Update
		inBatch := make(map[[2]int32]bool)
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := mt.Apply(ctx, batch); err != nil {
				t.Fatalf("apply %v: %v", batch, err)
			}
			verifyFuzz(t, mt, seed)
			batch = batch[:0]
			clear(inBatch)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			u := int32(int(ops[i]) % n)
			v := int32(int(ops[i+1]) % n)
			if u == v {
				flush() // reuse degenerate pairs as batch boundaries
				continue
			}
			cu, cv := canonical(u, v)
			if inBatch[[2]int32{cu, cv}] {
				continue
			}
			inBatch[[2]int32{cu, cv}] = true
			// Each edge appears at most once per batch, so presence at
			// batch start equals presence at validation time: toggling
			// keeps the batch valid.
			op := OpAdd
			if mt.HasEdge(cu, cv) {
				op = OpDel
			}
			batch = append(batch, Update{Op: op, U: u, V: v})
			if len(batch) >= 5 {
				flush()
			}
		}
		flush()
	})
}

// verifyFuzz is the fuzz-path equivalence check (a lighter clone of the
// test helper, fatal on first divergence).
func verifyFuzz(t *testing.T, mt *Maintainer, seed uint64) {
	t.Helper()
	g := mt.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	want := core.SequentialMIS(g, mt.Order())
	got := mt.MISResult()
	for v := range want.InSet {
		if got.InSet[v] != want.InSet[v] {
			t.Fatalf("MIS diverged at vertex %d", v)
		}
	}
	el := g.EdgeList()
	wantMM := matching.SequentialMM(el, EdgeOrder(el, seed))
	gotPairs := mt.MatchingPairs()
	if len(gotPairs) != len(wantMM.Pairs) {
		t.Fatalf("MM size diverged: %d vs %d", len(gotPairs), len(wantMM.Pairs))
	}
	for i := range gotPairs {
		if gotPairs[i] != wantMM.Pairs[i] {
			t.Fatalf("MM diverged at pair %d", i)
		}
	}
}
