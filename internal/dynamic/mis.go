package dynamic

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Item statuses, identical in meaning to the core/matching packages'
// (monotone undecided -> in|out within one resolution, reset only for
// cone members between resolutions).
const (
	statusUndecided int32 = 0
	statusIn        int32 = 1
	statusOut       int32 = 2
)

// misState maintains the greedy MIS of the overlay under the fixed
// vertex order ord.
type misState struct {
	ord    core.Order
	status []int32

	cs        core.ConeScratch
	seedBuf   []int32
	cone      []int32
	oldBuf    []int32
	activeBuf []int32
	outcome   []int32
}

// newMISState computes the initial MIS of g under ord with the
// library's prefix round loop and captures its status vector.
func newMISState(ctx context.Context, g *graph.Graph, ord core.Order, grain int) (*misState, core.Stats, error) {
	res, err := core.PrefixMISCtx(ctx, g, ord, core.Options{Grain: grain})
	if err != nil {
		return nil, core.Stats{}, err
	}
	n := g.NumVertices()
	status := make([]int32, n)
	for v := 0; v < n; v++ {
		if res.InSet[v] {
			status[v] = statusIn
		} else {
			status[v] = statusOut
		}
	}
	return &misState{ord: ord, status: status}, res.Stats, nil
}

// seedsFor collects the MIS repair seeds of a validated batch, applied
// against the PRE-repair statuses: for each changed edge {x, w} with x
// earlier, w is a seed exactly when status[x] == In — an inserted or
// deleted edge to an Out vertex cannot change w's decision (w's rule
// only asks "is any earlier neighbor In"), and if x itself flips later
// it necessarily joins the cone, whose downstream expansion reaches w
// through the (inserted) edge or re-derives w's independence from the
// (deleted) edge's absence.
func (ms *misState) seedsFor(batch []Update) []int32 {
	rank := ms.ord.Rank
	seeds := ms.seedBuf[:0]
	for _, up := range batch {
		x, w := up.U, up.V
		if rank[x] > rank[w] {
			x, w = w, x
		}
		if ms.status[x] == statusIn {
			seeds = append(seeds, w)
		}
	}
	ms.seedBuf = seeds
	return seeds
}

// repair re-resolves the affected cone after the overlay has been
// mutated by the batch. It is the prefix round loop of core.PrefixMIS
// restricted to the cone: every round, each still-undecided cone
// vertex checks its earlier neighbors against the statuses of the
// previous round (vertices outside the cone are already final), then
// decisions are committed synchronously. ctx is checked once per
// round; a cancellation error leaves the state inconsistent and the
// caller must mark the maintainer broken.
func (ms *misState) repair(ctx context.Context, ov *overlay, batch []Update, grain int) (RepairCost, error) {
	seeds := ms.seedsFor(batch)
	cost := RepairCost{Seeds: len(seeds)}
	if len(seeds) == 0 {
		return cost, nil
	}
	rank := ms.ord.Rank
	cone := ms.cs.DownstreamCone(ov.n, seeds, ms.cone[:0],
		func(x int32, visit func(y int32)) {
			ov.visit(x, func(u int32) bool {
				visit(u)
				return true
			})
		},
		func(x, y int32) bool { return rank[y] > rank[x] },
	)
	ms.cone = cone
	cost.Cone = len(cone)

	// Rank-sort the cone so the active window is the earliest
	// unresolved vertices, capture the pre-repair statuses for the
	// Changed count, then reset.
	sortByRank(cone, rank)
	old := grow32(&ms.oldBuf, len(cone))
	for i, v := range cone {
		old[i] = ms.status[v]
	}
	for _, v := range cone {
		ms.status[v] = statusUndecided
	}

	var inspections atomic.Int64
	// The round loop packs its active set in place; run it on a copy so
	// cone keeps its rank order for the Changed diff below.
	active := grow32(&ms.activeBuf, len(cone))
	copy(active, cone)
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return cost, err
		}
		outcome := grow32(&ms.outcome, len(active))
		// Check phase: reads only statuses written in previous rounds.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				var insp int64
				outcome[i], insp = ms.check(ov, active[i])
				local += insp
			}
			inspections.Add(local)
		})
		// Update phase: each vertex writes only its own status.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if outcome[i] != statusUndecided {
					ms.status[active[i]] = outcome[i]
				}
			}
		})
		cost.Rounds++
		cost.Attempts += int64(len(active))
		active = parallel.PackInPlace(active, grain, func(i int) bool {
			return outcome[i] == statusUndecided
		})
	}
	cost.Inspections = inspections.Load()
	for i, v := range cone {
		if ms.status[v] != old[i] {
			cost.Changed++
		}
	}
	return cost, nil
}

// check decides cone vertex v against the current statuses of its
// earlier neighbors (core.checkScratch over the overlay's adjacency).
func (ms *misState) check(ov *overlay, v int32) (int32, int64) {
	rank := ms.ord.Rank
	rv := rank[v]
	sawUndecided := false
	decision := statusIn
	var inspections int64
	ov.visit(v, func(u int32) bool {
		if rank[u] >= rv {
			return true
		}
		inspections++
		switch ms.status[u] {
		case statusIn:
			decision = statusOut
			return false
		case statusUndecided:
			sawUndecided = true
		}
		return true
	})
	if decision == statusOut {
		return statusOut, inspections
	}
	if sawUndecided {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// result builds the current MIS as a core.Result (Stats left zero: the
// per-batch costs live in RepairStats).
func (ms *misState) result() *core.Result {
	n := len(ms.status)
	in := make([]bool, n)
	parallel.For(n, 4096, func(i int) {
		in[i] = ms.status[i] == statusIn
	})
	set := parallel.PackIndex(n, 4096, func(i int) bool { return in[i] })
	return &core.Result{InSet: in, Set: set}
}

// sortByRank sorts vertices ascending by rank.
func sortByRank(vs []int32, rank []int32) {
	sortInt32s(vs, func(a, b int32) bool { return rank[a] < rank[b] })
}

// sortInt32s sorts s by the given strict order.
func sortInt32s(s []int32, less func(a, b int32) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// grow32 resizes *buf to n int32s reusing capacity (contents
// unspecified), mirroring core.Grow32 without exporting scratch
// internals across packages.
func grow32(buf *[]int32, n int) []int32 {
	s := *buf
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	*buf = s
	return s
}
