package dynamic

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Item statuses, identical in meaning to the core/matching packages'.
// Under the frontier engine the stored status is always In or Out (a
// pending mark, not a stored sentinel, says "do not trust me yet");
// statusUndecided appears only as the closure engine's stored reset
// value and as both engines' per-round stall outcome.
const (
	statusUndecided int32 = 0
	statusIn        int32 = 1
	statusOut       int32 = 2
)

// misFrontierBuckets bounds the frontier queue's bucket count (and so
// its per-repair reset cost) for MIS rank bucketing.
const misFrontierBuckets = 1024

// misState maintains the greedy MIS of the overlay under the fixed
// vertex order ord.
type misState struct {
	ord    core.Order
	status []int32
	engine Engine

	// Frontier engine: rank >> shift is the bucket key.
	shift   uint
	buckets int
	fr      frontier

	seedBuf   []int32
	activeBuf []int32
	outcome   []int32

	// Closure-engine scratch (differential-testing path).
	cs     core.ConeScratch
	cone   []int32
	oldBuf []int32
}

// newMISState computes the initial MIS of g under ord with the
// library's prefix round loop and captures its status vector. Repair
// scratch is pre-sized to the vertex universe so the first Apply pays
// no universe-sized allocation.
//
//lint:allow ctxround ctx is consumed by PrefixMISCtx (checked every round); the remaining loop is one bounded O(n) status conversion, cheaper than a single solver round
func newMISState(ctx context.Context, g *graph.Graph, ord core.Order, engine Engine, grain int) (*misState, core.Stats, error) {
	res, err := core.PrefixMISCtx(ctx, g, ord, core.Options{Grain: grain})
	if err != nil {
		return nil, core.Stats{}, err
	}
	n := g.NumVertices()
	status := make([]int32, n)
	for v := 0; v < n; v++ {
		if res.InSet[v] {
			status[v] = statusIn
		} else {
			status[v] = statusOut
		}
	}
	ms := &misState{ord: ord, status: status, engine: engine}
	ms.shift = core.FrontierBucketShift(n, misFrontierBuckets)
	ms.buckets = ((n - 1) >> ms.shift) + 1
	if n == 0 {
		ms.buckets = 1
	}
	ms.fr.ensure(n)
	return ms, res.Stats, nil
}

// seedsFor collects the MIS repair seeds of a validated batch, applied
// against the PRE-repair statuses: for each changed edge {x, w} with x
// earlier, w is a seed exactly when status[x] == In — an inserted or
// deleted edge to an Out vertex cannot change w's decision (w's rule
// only asks "is any earlier neighbor In"), and if x itself flips later
// it necessarily enters the frontier, whose change-driven expansion
// reaches w through the (inserted) edge or re-derives w's independence
// from the (deleted) edge's absence.
func (ms *misState) seedsFor(batch []Update) []int32 {
	rank := ms.ord.Rank
	seeds := ms.seedBuf[:0]
	for _, up := range batch {
		x, w := up.U, up.V
		if rank[x] > rank[w] {
			x, w = w, x
		}
		if ms.status[x] == statusIn {
			seeds = append(seeds, w)
		}
	}
	ms.seedBuf = seeds
	return seeds
}

// repair re-resolves the damage region after the overlay has been
// mutated by the batch, dispatching on the configured engine. ctx is
// checked once per round; a cancellation error leaves the state
// inconsistent and the caller must mark the maintainer broken.
func (ms *misState) repair(ctx context.Context, ov *overlay, batch []Update, grain int) (RepairCost, error) {
	if ms.engine == EngineClosure {
		return ms.repairClosure(ctx, ov, batch, grain)
	}
	return ms.repairFrontier(ctx, ov, batch, grain)
}

// repairFrontier is the change-driven engine: drain a priority-ordered
// frontier seeded by the directly-perturbed vertices, re-decide each
// popped vertex against its earlier neighborhood, and expand to later
// neighbors only when the popped vertex's membership actually flipped.
// Within a rank bucket, decisions are committed with two-phase
// check/commit rounds: a vertex stalls while an earlier neighbor is
// pending, and a flip re-enqueues any later vertex that was decided
// too early, so the final state is bit-identical to the sequential
// greedy on the mutated graph no matter how ranks fall into buckets.
func (ms *misState) repairFrontier(ctx context.Context, ov *overlay, batch []Update, grain int) (RepairCost, error) {
	seeds := ms.seedsFor(batch)
	cost := RepairCost{Seeds: len(seeds)}
	if len(seeds) == 0 {
		return cost, nil
	}
	rank := ms.ord.Rank
	f := &ms.fr
	f.begin(ov.n, ms.buckets)
	for _, v := range seeds {
		f.push(v, int(rank[v])>>ms.shift, ms.status[v])
	}
	var inspections atomic.Int64
	active := ms.activeBuf[:0]
	for {
		var ok bool
		active, _, ok = f.q.PopBucket(active[:0])
		if !ok {
			break
		}
		for len(active) > 0 {
			if err := ctx.Err(); err != nil {
				ms.activeBuf = active
				return cost, err
			}
			outcome := grow32(&ms.outcome, len(active))
			// Check phase: reads only statuses and pending marks
			// committed before this round.
			parallel.ForRange(len(active), grain, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					var insp int64
					outcome[i], insp = ms.checkFrontier(ov, active[i])
					local += insp
				}
				inspections.Add(local)
			})
			// Commit phase: settle decided vertices; a flip enqueues
			// the vertex's later neighbors (the change-driven
			// expansion). Sequential — the push bookkeeping is cheap
			// next to the parallel scans, and its order fixes the
			// counters machine-independently.
			for i, v := range active {
				if outcome[i] == statusUndecided {
					continue
				}
				f.settle(v)
				if ms.status[v] != outcome[i] {
					ms.status[v] = outcome[i]
					cost.Flipped++
					rv := rank[v]
					ov.visit(v, func(u int32) bool {
						if rank[u] > rv {
							f.push(u, int(rank[u])>>ms.shift, ms.status[u])
						}
						return true
					})
				}
			}
			cost.Rounds++
			cost.Attempts += int64(len(active))
			active = parallel.PackInPlace(active, grain, func(i int) bool {
				return outcome[i] == statusUndecided
			})
			// Same-bucket pushes join the next round.
			active = f.q.TakeCurrent(active)
		}
	}
	ms.activeBuf = active
	cost.Inspections = inspections.Load()
	f.finish(&cost, ms.status)
	return cost, nil
}

// checkFrontier re-decides vertex v against its earlier neighbors: a
// settled earlier In neighbor rules it out immediately (the hub
// short-circuit — an unaffected high-degree vertex re-derives Out
// without scanning its whole neighborhood), a pending earlier neighbor
// stalls it for the next round, and an all-settled, all-Out earlier
// neighborhood admits it.
func (ms *misState) checkFrontier(ov *overlay, v int32) (int32, int64) {
	rank := ms.ord.Rank
	rv := rank[v]
	pend := ms.fr.pend
	sawPending := false
	decision := statusIn
	var inspections int64
	ov.visit(v, func(u int32) bool {
		if rank[u] >= rv {
			return true
		}
		inspections++
		if pend[u] {
			sawPending = true
			return true
		}
		if ms.status[u] == statusIn {
			decision = statusOut
			return false
		}
		return true
	})
	if decision == statusOut {
		return statusOut, inspections
	}
	if sawPending {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// repairClosure is the conservative engine (the original subsystem):
// compute the full downstream closure of the seeds, reset it, and
// re-run the prefix round loop restricted to it — every closure item
// pays for re-resolution whether or not anything about it changed.
// Kept as the frontier engine's differential-testing oracle.
func (ms *misState) repairClosure(ctx context.Context, ov *overlay, batch []Update, grain int) (RepairCost, error) {
	seeds := ms.seedsFor(batch)
	cost := RepairCost{Seeds: len(seeds)}
	if len(seeds) == 0 {
		return cost, nil
	}
	rank := ms.ord.Rank
	cone := ms.cs.DownstreamCone(ov.n, seeds, ms.cone[:0],
		func(x int32, visit func(y int32)) {
			ov.visit(x, func(u int32) bool {
				visit(u)
				return true
			})
		},
		func(x, y int32) bool { return rank[y] > rank[x] },
	)
	ms.cone = cone
	cost.Visited = len(cone)

	// Rank-sort the cone so the active window is the earliest
	// unresolved vertices, capture the pre-repair statuses for the
	// Changed count, then reset.
	sortByRank(cone, rank)
	old := grow32(&ms.oldBuf, len(cone))
	for i, v := range cone {
		old[i] = ms.status[v]
	}
	for _, v := range cone {
		ms.status[v] = statusUndecided
	}

	var inspections atomic.Int64
	// The round loop packs its active set in place; run it on a copy so
	// cone keeps its rank order for the Changed diff below.
	active := grow32(&ms.activeBuf, len(cone))
	copy(active, cone)
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return cost, err
		}
		outcome := grow32(&ms.outcome, len(active))
		// Check phase: reads only statuses written in previous rounds.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				var insp int64
				outcome[i], insp = ms.checkClosure(ov, active[i])
				local += insp
			}
			inspections.Add(local)
		})
		// Update phase: each vertex writes only its own status.
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if outcome[i] != statusUndecided {
					ms.status[active[i]] = outcome[i]
				}
			}
		})
		cost.Rounds++
		cost.Attempts += int64(len(active))
		active = parallel.PackInPlace(active, grain, func(i int) bool {
			return outcome[i] == statusUndecided
		})
	}
	cost.Inspections = inspections.Load()
	for i, v := range cone {
		if ms.status[v] != old[i] {
			cost.Changed++
		}
	}
	return cost, nil
}

// checkClosure decides cone vertex v against the current statuses of
// its earlier neighbors, stalling on stored statusUndecided (the
// closure engine's reset value).
func (ms *misState) checkClosure(ov *overlay, v int32) (int32, int64) {
	rank := ms.ord.Rank
	rv := rank[v]
	sawUndecided := false
	decision := statusIn
	var inspections int64
	ov.visit(v, func(u int32) bool {
		if rank[u] >= rv {
			return true
		}
		inspections++
		switch ms.status[u] {
		case statusIn:
			decision = statusOut
			return false
		case statusUndecided:
			sawUndecided = true
		}
		return true
	})
	if decision == statusOut {
		return statusOut, inspections
	}
	if sawUndecided {
		return statusUndecided, inspections
	}
	return statusIn, inspections
}

// result builds the current MIS as a core.Result (Stats left zero: the
// per-batch costs live in RepairStats).
func (ms *misState) result() *core.Result {
	n := len(ms.status)
	in := make([]bool, n)
	parallel.For(n, 4096, func(i int) {
		in[i] = ms.status[i] == statusIn
	})
	set := parallel.PackIndex(n, 4096, func(i int) bool { return in[i] })
	return &core.Result{InSet: in, Set: set}
}

// sortByRank sorts vertices ascending by rank.
func sortByRank(vs []int32, rank []int32) {
	sortInt32s(vs, func(a, b int32) bool { return rank[a] < rank[b] })
}

// sortInt32s sorts s by the given strict order.
func sortInt32s(s []int32, less func(a, b int32) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// grow32 resizes *buf to n int32s reusing capacity (contents
// unspecified), mirroring core.Grow32 without exporting scratch
// internals across packages.
func grow32(buf *[]int32, n int) []int32 {
	s := *buf
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	*buf = s
	return s
}
