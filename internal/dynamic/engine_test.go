package dynamic

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestEngineDifferential runs the frontier and closure engines in
// lockstep over every graph family and asserts, after every batch:
// both bit-identical to sequential, identical Seeds and Changed, and
// frontier Visited <= closure Visited — the frontier only ever touches
// a subset of the downstream closure (seeds plus flip expansions),
// which is the machine-independent form of the perf claim.
func TestEngineDifferential(t *testing.T) {
	ctx := context.Background()
	for name, g := range families(t) {
		t.Run(name, func(t *testing.T) {
			const seed = 13
			front, err := NewMaintainer(ctx, g, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			clos, err := NewMaintainer(ctx, g, Config{Seed: seed, Engine: EngineClosure})
			if err != nil {
				t.Fatal(err)
			}
			x := rng.NewXoshiro256(31)
			for step, k := range []int{1, 1, 3, 9, 1, 40, 2, 1} {
				batch := randomBatch(x, front, k)
				fs, err := front.Apply(ctx, batch)
				if err != nil {
					t.Fatalf("step %d frontier: %v", step, err)
				}
				cs, err := clos.Apply(ctx, batch)
				if err != nil {
					t.Fatalf("step %d closure: %v", step, err)
				}
				verifyAgainstScratch(t, front, seed)
				verifyAgainstScratch(t, clos, seed)
				for _, pair := range []struct {
					name string
					f, c RepairCost
				}{{"mis", fs.MIS, cs.MIS}, {"mm", fs.MM, cs.MM}} {
					if pair.f.Seeds != pair.c.Seeds {
						t.Fatalf("step %d %s: seeds %d (frontier) vs %d (closure)", step, pair.name, pair.f.Seeds, pair.c.Seeds)
					}
					if pair.f.Changed != pair.c.Changed {
						t.Fatalf("step %d %s: changed %d (frontier) vs %d (closure)", step, pair.name, pair.f.Changed, pair.c.Changed)
					}
					if pair.f.Visited > pair.c.Visited {
						t.Fatalf("step %d %s: frontier visited %d exceeds closure %d", step, pair.name, pair.f.Visited, pair.c.Visited)
					}
				}
			}
		})
	}
}

// TestFrontierHubTermination is the tentpole property in miniature: a
// high-degree vertex whose own decision is unaffected terminates
// propagation on the spot under the frontier engine, while the closure
// engine pays for its entire downstream fan-out.
//
// Identity order over: 0 and 2 in the MIS, hub 3 ruled out by both,
// leaves 4..23 hanging off the hub (all in the MIS). Deleting {0,3}
// seeds 3, which re-derives Out from its surviving earlier In neighbor
// 2 — no flip, so the 20 leaves are never visited. The closure engine
// resets and re-resolves all of them.
func TestFrontierHubTermination(t *testing.T) {
	ctx := context.Background()
	const leaves = 20
	edges := []graph.Edge{{U: 0, V: 3}, {U: 2, V: 3}}
	for j := int32(4); j < 4+leaves; j++ {
		edges = append(edges, graph.Edge{U: 3, V: j})
	}
	g := graph.MustFromEdges(4+leaves, edges)
	ord := core.IdentityOrder(g.NumVertices())

	build := func(engine Engine) *Maintainer {
		o := ord
		mt, err := NewMaintainer(ctx, g, Config{MIS: true, Order: &o, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}
	front, clos := build(EngineFrontier), build(EngineClosure)
	del := []Update{{Op: OpDel, U: 0, V: 3}}

	fs, err := front.Apply(ctx, del)
	if err != nil {
		t.Fatal(err)
	}
	if fs.MIS.Seeds != 1 || fs.MIS.Visited != 1 || fs.MIS.Flipped != 0 || fs.MIS.Changed != 0 {
		t.Fatalf("frontier should decide the hub once and stop: %+v", fs.MIS)
	}
	cs, err := clos.Apply(ctx, del)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MIS.Visited != 1+leaves {
		t.Fatalf("closure should pay for the hub fan-out (%d items), got %+v", 1+leaves, cs.MIS)
	}
	verifyAgainstScratch(t, front, 0)
	verifyAgainstScratch(t, clos, 0)
}

// TestFrontierFlipChainCounters pins the counter semantics on a path
// under identity order: deleting the first edge flips every vertex of
// the alternating pattern, one frontier pop at a time.
func TestFrontierFlipChainCounters(t *testing.T) {
	ctx := context.Background()
	// Path 0-1-2-3-4: identity MIS is {0, 2, 4}.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	ord := core.IdentityOrder(5)
	mt, err := NewMaintainer(ctx, g, Config{MIS: true, Order: &ord})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting {0,1} frees 1 to enter, which evicts 2, readmits 3, and
	// evicts 4: the whole chain flips.
	st, err := mt.Apply(ctx, []Update{{Op: OpDel, U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c := st.MIS
	if c.Seeds != 1 || c.Visited != 4 || c.Flipped != 4 || c.Changed != 4 {
		t.Fatalf("flip chain: %+v", c)
	}
	if c.FrontierPeak < 1 {
		t.Fatalf("flip chain never had a pending item: %+v", c)
	}
	verifyAgainstScratch(t, mt, 0)
}

// TestApplySteadyStateAllocs is the scratch-pooling regression guard:
// after a warmup Apply has sized the frontier scratch, further
// single-edge Applies must not allocate anything proportional to the
// graph — only the O(1) overlay-delta bookkeeping. The bound is
// generous for small map/slice churn but orders of magnitude below
// any universe-sized buffer (n = 20k here).
func TestApplySteadyStateAllocs(t *testing.T) {
	ctx := context.Background()
	g := graph.Random(20_000, 100_000, 3)
	mt, err := NewMaintainer(ctx, g, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch across a few differently-shaped batches.
	x := rng.NewXoshiro256(8)
	for i := 0; i < 4; i++ {
		if _, err := mt.Apply(ctx, randomBatch(x, mt, 8)); err != nil {
			t.Fatal(err)
		}
	}
	add := []Update{{Op: OpAdd, U: 11, V: 4242}}
	del := []Update{{Op: OpDel, U: 11, V: 4242}}
	if mt.HasEdge(11, 4242) {
		add, del = del, add
	}
	i := 0
	avg := testing.AllocsPerRun(50, func() {
		batch := add
		if i%2 == 1 {
			batch = del
		}
		i++
		if _, err := mt.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 32 {
		t.Fatalf("steady-state Apply allocates %.1f objects/run; repair scratch is not being pooled", avg)
	}
	verifyAgainstScratch(t, mt, 5)
}
