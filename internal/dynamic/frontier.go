package dynamic

import (
	"repro/internal/core"
)

// frontier is the shared state of the change-driven repair engine: a
// monotone bucket queue over priority ranks plus epoch-stamped
// membership marks and a first-touch undo log. The MIS and MM engines
// drain it the same way — pop the earliest bucket, re-decide its items
// with a two-phase check/commit round loop, and expand to a downstream
// neighbor only when an item's in/out-of-solution status actually
// changed — and differ only in what an "item" and a "neighbor" are.
//
// All buffers persist across Apply calls on a session and grow with
// slack (the matching engine's slot universe creeps upward one slot
// per net insertion), so steady-state repairs allocate nothing; ensure
// pre-sizes them at session creation so even the first Apply pays no
// universe-sized allocation.
type frontier struct {
	q core.FrontierQueue
	// pend[i] reports that i is enqueued awaiting (re-)decision: its
	// stored status must not be trusted, and deciding items stall on
	// pending earlier neighbors. Self-cleaning — a completed drain
	// settles every enqueued item — so no per-repair clear is needed.
	pend []bool
	// seen is the epoch stamp of the item's first touch in the current
	// repair; touched/old record those items and their pre-repair
	// statuses, which yields the Visited and Changed accounting.
	seen    []int32
	epoch   int32
	touched []int32
	old     []int32
	// pending is the live frontier size; peak its high-water mark.
	pending int
	peak    int
}

// ensure grows the mark buffers (with slack) to cover items [0, n).
func (f *frontier) ensure(n int) {
	if len(f.seen) >= n {
		return
	}
	grown := n + n/2 + 64
	f.seen = make([]int32, grown)
	f.pend = make([]bool, grown)
	f.epoch = 0
}

// begin prepares the scratch for one repair over a universe of n items
// bucketed into numBuckets priority buckets.
func (f *frontier) begin(n, numBuckets int) {
	f.ensure(n)
	if f.epoch == 1<<31-1 {
		for i := range f.seen {
			f.seen[i] = 0
		}
		f.epoch = 0
	}
	f.epoch++
	f.q.Reset(numBuckets)
	f.touched = f.touched[:0]
	f.old = f.old[:0]
	f.pending, f.peak = 0, 0
}

// push enqueues item into bucket key unless it is already pending,
// recording its current (pre-repair, for a first touch) status in the
// undo log. Re-pushing an item the drain already settled is legal and
// re-decides it — the rare case where an earlier same-bucket item
// flipped only after the item was first decided.
func (f *frontier) push(item int32, key int, status int32) {
	if f.pend[item] {
		return
	}
	if f.seen[item] != f.epoch {
		f.seen[item] = f.epoch
		f.touched = append(f.touched, item)
		f.old = append(f.old, status)
	}
	f.pend[item] = true
	f.q.Push(item, key)
	f.pending++
	if f.pending > f.peak {
		f.peak = f.pending
	}
}

// settle marks item decided (no longer pending).
func (f *frontier) settle(item int32) {
	f.pend[item] = false
	f.pending--
}

// finish folds the drain's bookkeeping into cost: Visited is the
// number of distinct items the frontier touched, FrontierPeak its
// high-water mark, and Changed the touched items whose final status
// differs from their pre-repair one (status reads the live array).
func (f *frontier) finish(cost *RepairCost, status []int32) {
	cost.Visited = len(f.touched)
	cost.FrontierPeak = f.peak
	for i, it := range f.touched {
		if status[it] != f.old[i] {
			cost.Changed++
		}
	}
}
