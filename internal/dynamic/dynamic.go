// Package dynamic maintains greedy MIS and maximal matching results
// under streams of edge insertions and deletions.
//
// The paper's core insight makes localized repair possible: greedy
// MIS/MM resolves along a shallow priority DAG (O(log n) dependence
// depth w.h.p. for random orders), so a single edge change can only
// invalidate the downstream priority cone of its endpoints — the items
// reachable from them along strictly-increasing-priority paths. On a
// sparse graph with average degree d that cone has expected size
// bounded by the number of increasing paths (about e^d, independent of
// n), so repairing after a small batch costs work proportional to the
// affected region while almost all of the committed solution survives.
//
// A Maintainer owns a mutable overlay over an immutable base
// graph.Graph (delta adjacency plus tombstones, compacted into a fresh
// CSR once churn passes a configurable threshold). On each batch of
// updates it
//
//  1. applies the structural changes,
//  2. seeds a priority-ordered work frontier with the items whose
//     greedy inputs actually changed (the later endpoint of each
//     changed edge for MIS, the inserted edge / the deleted matched
//     edge's later neighbors for MM — changes incident only to items
//     that stay out of the solution are provably inert and seed
//     nothing), and
//  3. drains the frontier in priority order (a monotone
//     core.FrontierQueue over priority-rank buckets): each popped item
//     is re-decided against its already-final earlier neighborhood,
//     and its downstream neighbors are enqueued only when its
//     in/out-of-solution status actually changed. An item that
//     re-derives its old status terminates propagation on the spot.
//
// The change-driven expansion is the crucial difference from the
// conservative downstream-closure repair (EngineClosure, retained for
// differential testing): the closure pays for every item reachable
// from a seed along increasing-priority paths — which explodes through
// high-degree hubs on power-law graphs even when the hub's own
// decision is unaffected — while the frontier pays for a hub's
// fan-out only when the hub genuinely flips. Fischer & Noever's tight
// analysis of randomized greedy (arXiv:1707.05124) bounds the realized
// decision-dependence depth, not the full priority DAG, which is why
// the flip-driven region is typically orders of magnitude smaller.
//
// The result after every batch is bit-identical to a from-scratch
// sequential greedy run on the mutated graph. Within one priority
// bucket items are decided with two-phase check/commit rounds (an item
// stalls while an earlier neighbor is pending, and a flip of an
// earlier item re-enqueues any prematurely decided later one), so an
// item's final decision is always made against the final statuses of
// all earlier neighbors — exactly the sequential acceptance rule; an
// item never enqueued kept all of its (unchanged) earlier inputs.
// Bucket rounds above the configured grain run through
// parallel.ForRange; the committed outcome is independent of
// GOMAXPROCS and grain. The fuzz target in this package asserts the
// three-way equivalence frontier == closure == from-scratch sequential
// on arbitrary graphs and update batches.
//
// MIS priorities are the usual per-vertex random order (stable under
// edge churn because the vertex set is fixed). MM priorities cannot be
// a permutation of edge identifiers — identifiers shift as edges come
// and go — so the maintainer derives a churn-stable priority from the
// edge itself: EdgePriority hashes (seed, u, v). A from-scratch run
// under EdgeOrder uses the same priorities, which is what makes the
// bit-identical assertion (and the service layer's repair-vs-recompute
// interchangeability) well defined for matching.
package dynamic

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Op is the kind of an edge update.
type Op uint8

const (
	// OpAdd inserts an edge that must not be present.
	OpAdd Op = iota
	// OpDel deletes an edge that must be present.
	OpDel
)

// String returns the wire name of the operation ("add" or "del").
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDel:
		return "del"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp maps a wire name to its Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "add":
		return OpAdd, nil
	case "del":
		return OpDel, nil
	default:
		return 0, fmt.Errorf("dynamic: unknown update op %q (want add|del)", s)
	}
}

// Update is one edge insertion or deletion. Endpoints may be given in
// either orientation.
type Update struct {
	Op   Op
	U, V graph.Vertex
}

// Maintainer errors.
var (
	// ErrBadUpdate reports an invalid update batch (self loop,
	// out-of-range endpoint, inserting a present edge, deleting a
	// missing edge, or the same edge twice in one batch). The batch is
	// rejected wholesale: no update of a bad batch is applied.
	ErrBadUpdate = errors.New("dynamic: invalid update batch")
	// ErrBroken reports that a previous Apply was cancelled mid-repair,
	// leaving the maintained solution inconsistent; the Maintainer
	// refuses further use.
	ErrBroken = errors.New("dynamic: maintainer broken by a cancelled repair")
)

// Engine selects the repair strategy of a Maintainer.
type Engine uint8

const (
	// EngineFrontier is the default change-driven repair engine: a
	// priority-ordered work frontier seeded by the directly-perturbed
	// items that expands to an item's downstream neighbors only when
	// the item's membership actually flipped.
	EngineFrontier Engine = iota
	// EngineClosure is the conservative downstream-closure engine (the
	// original dynamic subsystem): it resets and re-resolves the whole
	// increasing-priority BFS closure of the seeds, flipped or not. It
	// is retained as the differential-testing oracle for the frontier
	// engine (see FuzzConeRepair) and for repair-cost comparisons; new
	// code should not select it.
	EngineClosure
)

// String returns the engine's name.
func (e Engine) String() string {
	switch e {
	case EngineFrontier:
		return "frontier"
	case EngineClosure:
		return "closure"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// Config configures a Maintainer.
type Config struct {
	// MIS and MM select which solutions to maintain. If both are false,
	// both are maintained.
	MIS bool
	MM  bool
	// Engine selects the repair strategy; the zero value is
	// EngineFrontier.
	Engine Engine
	// Seed derives the priorities: the vertex order for MIS (via
	// core.NewRandomOrder, stable under edge churn because the vertex
	// set is fixed) and the per-edge hash priorities for MM (via
	// EdgePriority).
	Seed uint64
	// Order, if non-nil, fixes an explicit MIS vertex order instead of
	// deriving one from Seed. Its length must equal the vertex count.
	Order *core.Order
	// ChurnFrac is the compaction threshold: once the overlay's delta
	// entries exceed this fraction of the adjacency array, the overlay
	// is compacted into a fresh CSR. 0 means DefaultChurnFrac; negative
	// disables compaction.
	ChurnFrac float64
	// Grain is the parallel-loop grain for repair rounds; 0 means the
	// library default.
	Grain int
}

// DefaultChurnFrac is the default overlay compaction threshold.
const DefaultChurnFrac = 0.25

// RepairCost records the work one Apply spent repairing one problem.
// Attempts/Inspections follow the library's Stats conventions, counted
// over the repair only — the measure of "work proportional to the
// affected region".
type RepairCost struct {
	// Seeds is the number of repair seeds the batch produced (0 means
	// the batch was provably inert for this problem and nothing ran).
	Seeds int `json:"seeds"`
	// Visited is the number of distinct items the repair re-decided:
	// the items the frontier touched (for EngineClosure, the full
	// downstream-closure size — the quantity the frontier engine
	// exists to shrink).
	Visited int `json:"visited"`
	// Flipped counts committed membership flips during the drain —
	// the propagation events. It can exceed Changed when an item flips
	// more than once before settling (re-push), and equals it
	// otherwise; for EngineClosure it is 0 (the closure has no flip
	// events, only the final Changed diff).
	Flipped int `json:"flipped"`
	// FrontierPeak is the high-water mark of the pending frontier (0
	// for EngineClosure).
	FrontierPeak int `json:"frontier_peak"`
	// Rounds/Attempts/Inspections are the decide-loop cost counters:
	// Attempts counts item decide attempts (stalls and re-decides
	// included), Inspections the earlier-neighbor status reads.
	Rounds      int64 `json:"rounds"`
	Attempts    int64 `json:"attempts"`
	Inspections int64 `json:"inspections"`
	// Changed is the number of visited items whose membership actually
	// changed (the true damage; Visited - Changed items were
	// re-derived unchanged).
	Changed int `json:"changed"`
}

// add accumulates costs across batches (used by multi-batch advances).
func (c *RepairCost) add(o RepairCost) {
	c.Seeds += o.Seeds
	c.Visited += o.Visited
	c.Flipped += o.Flipped
	if o.FrontierPeak > c.FrontierPeak {
		c.FrontierPeak = o.FrontierPeak
	}
	c.Rounds += o.Rounds
	c.Attempts += o.Attempts
	c.Inspections += o.Inspections
	c.Changed += o.Changed
}

// RepairStats is the outcome of one Apply.
type RepairStats struct {
	// Added and Removed count the edges inserted and deleted.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// MIS and MM are the per-problem repair costs (zero for problems
	// the Maintainer does not maintain).
	MIS RepairCost `json:"mis"`
	MM  RepairCost `json:"mm"`
	// Compacted reports that the overlay was folded into a fresh CSR
	// after this batch.
	Compacted bool `json:"compacted"`
}

// Add accumulates stats across batches.
func (s *RepairStats) Add(o RepairStats) {
	s.Added += o.Added
	s.Removed += o.Removed
	s.MIS.add(o.MIS)
	s.MM.add(o.MM)
	s.Compacted = s.Compacted || o.Compacted
}

// EdgePriority is the churn-stable priority of the undirected edge
// {u, v} under seed: a hash of the canonical endpoints, identical no
// matter when (or at which edge identifier) the edge enters the graph.
// Smaller is earlier. Ties between distinct edges are broken by the
// canonical endpoint pair, so the induced order is total.
func EdgePriority(u, v graph.Vertex, seed uint64) uint64 {
	if u > v {
		u, v = v, u
	}
	return rng.Hash3(seed, uint64(uint32(u)), uint64(uint32(v)))
}

// EdgeOrder returns the priority order EdgePriority induces on an
// explicit edge list: edge identifiers sorted by (priority, U, V).
// A from-scratch greedy matching under this order is exactly what a
// Maintainer maintains incrementally for the same seed — the
// equivalence the fuzz tests assert.
func EdgeOrder(el graph.EdgeList, seed uint64) core.Order {
	m := el.NumEdges()
	prio := make([]uint64, m)
	for i, e := range el.Edges {
		prio[i] = EdgePriority(e.U, e.V, seed)
	}
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		a, b := perm[i], perm[j]
		if prio[a] != prio[b] {
			return prio[a] < prio[b]
		}
		ea, eb := el.Edges[a], el.Edges[b]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	return core.FromOrder(perm)
}
