package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain C
	// implementation of splitmix64.
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, // 6457827717110365317
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("SplitMix64(1234567) value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("two SplitMix64 with same seed diverged at step %d", i)
		}
	}
}

func TestHash64MatchesSplitMix(t *testing.T) {
	// Hash64(x) must equal the first output of SplitMix64 seeded with x.
	for _, x := range []uint64{0, 1, 42, 1 << 40, math.MaxUint64} {
		s := NewSplitMix64(x)
		if got, want := Hash64(x), s.Next(); got != want {
			t.Errorf("Hash64(%d) = %#x, want %#x", x, got, want)
		}
	}
}

func TestHash2Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 100; a++ {
		for b := uint64(0); b < 100; b++ {
			h := Hash2(a, b)
			if seen[h] {
				t.Fatalf("Hash2 collision within 100x100 grid at (%d,%d)", a, b)
			}
			seen[h] = true
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := NewXoshiro256(7), NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("two Xoshiro256 with same seed diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("generators with different seeds agreed on %d/100 outputs", same)
	}
}

func TestXoshiroZeroValueUsable(t *testing.T) {
	var x Xoshiro256
	a := x.Next()
	bv := x.Next()
	if a == 0 && bv == 0 {
		t.Error("zero-value Xoshiro256 is stuck at zero")
	}
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(99)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 33} {
		for i := 0; i < 200; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestIntnUniformityChiSquare(t *testing.T) {
	// Loose chi-square check over 10 buckets: statistic should be far
	// below the df=9 p=0.001 critical value (27.88) for a healthy PRNG.
	x := NewXoshiro256(2024)
	const buckets, samples = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[x.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("chi-square statistic %.2f exceeds critical value 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(5)
	sum := 0.0
	const samples = 100000
	for i := 0; i < samples; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / samples
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestJumpChangesStream(t *testing.T) {
	a := NewXoshiro256(3)
	b := NewXoshiro256(3)
	b.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("jumped stream agreed with original on %d/100 outputs", same)
	}
}

func TestPermIsPermutationQuick(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		p := Perm(int(n%2000), seed)
		return IsPerm(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermDeterministic(t *testing.T) {
	a := Perm(1000, 17)
	b := Perm(1000, 17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Perm not deterministic at index %d", i)
		}
	}
}

func TestPermSeedsDiffer(t *testing.T) {
	a := Perm(1000, 1)
	b := Perm(1000, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	// Expected number of fixed points between two random permutations is 1.
	if same > 20 {
		t.Errorf("permutations from different seeds agree on %d/1000 positions", same)
	}
}

func TestPermEdgeCases(t *testing.T) {
	if got := Perm(0, 1); len(got) != 0 {
		t.Errorf("Perm(0) has length %d", len(got))
	}
	if got := Perm(1, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Perm(1) = %v", got)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4, seed) should be near-uniform over seeds.
	counts := make([]int, 4)
	for seed := uint64(0); seed < 4000; seed++ {
		counts[Perm(4, seed)[0]]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("value %d appeared first %d/4000 times, want about 1000", v, c)
		}
	}
}

func TestInversePermRoundTrip(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		p := Perm(int(n%1000), seed)
		q := InversePerm(p)
		for r, v := range p {
			if q[v] != int32(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInversePermPanicsOnNonPerm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InversePerm on a non-permutation did not panic")
		}
	}()
	InversePerm([]int32{0, 0, 1})
}

func TestIsPerm(t *testing.T) {
	cases := []struct {
		p    []int32
		want bool
	}{
		{[]int32{}, true},
		{[]int32{0}, true},
		{[]int32{1, 0}, true},
		{[]int32{0, 0}, false},
		{[]int32{0, 2}, false},
		{[]int32{-1, 0}, false},
		{[]int32{2, 0, 1}, true},
	}
	for _, c := range cases {
		if got := IsPerm(c.p); got != c.want {
			t.Errorf("IsPerm(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	for i, v := range p {
		if int(v) != i {
			t.Errorf("Identity[%d] = %d", i, v)
		}
	}
	if !IsPerm(p) {
		t.Error("Identity is not a permutation")
	}
}

func TestShuffleInPlacePreservesElements(t *testing.T) {
	p := []int32{5, 5, 7, 9, 11}
	Shuffle(p, 3)
	counts := map[int32]int{}
	for _, v := range p {
		counts[v]++
	}
	if counts[5] != 2 || counts[7] != 1 || counts[9] != 1 || counts[11] != 1 {
		t.Errorf("Shuffle changed multiset: %v", p)
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Next()
	}
	_ = sink
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Hash64(uint64(i))
	}
	_ = sink
}

func BenchmarkPerm1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Perm(1<<20, uint64(i))
	}
}
