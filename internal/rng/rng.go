// Package rng provides deterministic, seedable pseudo-random number
// generation for the reproduction of Blelloch, Fineman and Shun,
// "Greedy Sequential Maximal Independent Set and Matching are Parallel on
// Average" (SPAA 2012).
//
// Every randomized component of the library (vertex and edge priorities,
// graph generators, Luby's algorithm) derives its randomness from this
// package so that a fixed seed yields a bit-identical run at any level of
// parallelism. Two generators are provided: SplitMix64, a tiny generator
// mainly used for seeding and as a stateless hash, and Xoshiro256
// (xoshiro256**), a fast general-purpose generator with 256 bits of
// state. Neither is cryptographically secure; both are more than adequate
// for the statistical needs of the paper's experiments.
package rng

import "math/bits"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// It is primarily used to expand a single user seed into the larger state
// of Xoshiro256 and as a building block for Hash64. The zero value is a
// valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 is the SplitMix64 finalizer applied to x. It is a high-quality
// 64-bit mixing function: a stateless way to obtain an apparently random
// value for an index, used for example to draw fresh per-round priorities
// in Luby's algorithm without any shared mutable generator state.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes two words into one, suitable for indexed randomness such as
// Hash2(seed, item) or Hash2(round, vertex). Both arguments pass through
// the SplitMix64 finalizer so small structured inputs (consecutive
// indices) do not collide.
func Hash2(a, b uint64) uint64 {
	return Hash64(Hash64(a) ^ b)
}

// Hash3 mixes three words into one.
func Hash3(a, b, c uint64) uint64 {
	return Hash2(Hash2(a, b), c)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna. It has
// a period of 2^256-1 and passes the standard statistical test batteries.
// Construct it with NewXoshiro256; the zero value is invalid (an all-zero
// state is a fixed point) and is repaired lazily by Next.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed via
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	x.s[0] = sm.Next()
	x.s[1] = sm.Next()
	x.s[2] = sm.Next()
	x.s[3] = sm.Next()
	return &x
}

// Next returns the next value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		// Repair the forbidden all-zero state so the zero value is usable.
		x.s[0] = 0x9e3779b97f4a7c15
	}
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(x.Next(), n)
	if lo < n {
		// Rejection zone: resample until the low word clears the
		// threshold, guaranteeing exact uniformity.
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(x.Next(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n called with n <= 0")
	}
	return int32(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) * (1.0 / (1 << 53))
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls
// to Next. It can be used to split one seed into non-overlapping parallel
// streams.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Next()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}
