package unionfind

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDSUBasic(t *testing.T) {
	d := NewDSU(5)
	if d.Components() != 5 {
		t.Errorf("initial components = %d", d.Components())
	}
	if !d.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if d.Union(1, 0) {
		t.Error("repeat union reported a merge")
	}
	if !d.Connected(0, 1) || d.Connected(0, 2) {
		t.Error("connectivity wrong")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if d.Components() != 2 {
		t.Errorf("components = %d, want 2", d.Components())
	}
	if !d.Connected(1, 2) {
		t.Error("transitive connectivity failed")
	}
}

func TestDSUSelfUnion(t *testing.T) {
	d := NewDSU(3)
	if d.Union(1, 1) {
		t.Error("self union reported a merge")
	}
}

func TestDSULongChain(t *testing.T) {
	const n = 10000
	d := NewDSU(n)
	for i := 1; i < n; i++ {
		d.Union(int32(i-1), int32(i))
	}
	if d.Components() != 1 {
		t.Errorf("chain components = %d", d.Components())
	}
	if !d.Connected(0, n-1) {
		t.Error("chain endpoints not connected")
	}
}

func TestConcurrentMatchesSequentialQuick(t *testing.T) {
	f := func(rawN uint8, ops []uint16) bool {
		n := int(rawN%50) + 2
		d := NewDSU(n)
		c := NewConcurrent(n)
		for _, op := range ops {
			x := int32(int(op) % n)
			y := int32(int(op>>8) % n)
			rx, ry := c.Find(x), c.Find(y)
			if rx != ry {
				// Deterministic link direction as used by spanning.
				if rx < ry {
					c.Link(ry, rx)
				} else {
					c.Link(rx, ry)
				}
			}
			d.Union(x, y)
		}
		for x := int32(0); x < int32(n); x++ {
			for y := x + 1; y < int32(n); y++ {
				if d.Connected(x, y) != c.SameSet(x, y) {
					return false
				}
			}
		}
		return d.Components() == c.Components()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentParallelFinds(t *testing.T) {
	// Build a long chain, then hammer Find from many goroutines; all
	// must agree on the root and the structure must stay acyclic.
	const n = 5000
	c := NewConcurrent(n)
	for i := n - 1; i > 0; i-- {
		c.Link(int32(i), int32(i-1))
	}
	var wg sync.WaitGroup
	errs := make(chan int32, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < n; i += 8 {
				if r := c.Find(int32(i)); r != 0 {
					errs <- r
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for r := range errs {
		t.Fatalf("concurrent Find returned %d, want 0", r)
	}
	if c.Components() != 1 {
		t.Errorf("components = %d", c.Components())
	}
}

func BenchmarkDSUUnionFind(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		d := NewDSU(n)
		for j := 1; j < n; j++ {
			d.Union(int32(j), int32(j/2))
		}
	}
}
