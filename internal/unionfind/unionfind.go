// Package unionfind provides disjoint-set (union-find) structures: a
// classic sequential implementation with union by size and path
// compression, and a concurrent one with atomic path-halving finds and
// deterministic link direction, used by the spanning-forest extension
// (the paper's §7 suggests applying its prefix technique to greedy
// spanning forest, whose sequential algorithm is union-find over a
// random edge order).
package unionfind

import "sync/atomic"

// DSU is a sequential disjoint-set structure with union by size and
// full path compression; amortized near-constant operations.
type DSU struct {
	parent []int32
	size   []int32
}

// NewDSU returns a DSU over n singleton elements.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), size: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int32) int32 {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Union merges the sets of x and y and reports whether they were
// previously distinct.
func (d *DSU) Union(x, y int32) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	return true
}

// Connected reports whether x and y are in the same set.
func (d *DSU) Connected(x, y int32) bool {
	return d.Find(x) == d.Find(y)
}

// Components returns the number of disjoint sets.
func (d *DSU) Components() int {
	c := 0
	for i := range d.parent {
		if d.Find(int32(i)) == int32(i) {
			c++
		}
	}
	return c
}

// Concurrent is a disjoint-set structure safe for concurrent Find and
// for the restricted link discipline used by deterministic reservations:
// within a round, Link is called only on roots that a reservation
// protocol has assigned to exactly one caller, so parent writes never
// race. Find uses lock-free path halving (CAS) and may be called
// concurrently with Links; a stale answer from a racing Find is
// acceptable to the callers, which re-validate through reservations.
type Concurrent struct {
	parent []int32
}

// NewConcurrent returns a concurrent DSU over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{}
	c.Reset(n)
	return c
}

// Reset reinitializes c to n singleton elements, reusing the backing
// array when it is large enough. It lets per-run workspaces pool the
// structure across runs; callers must be quiescent.
func (c *Concurrent) Reset(n int) {
	if cap(c.parent) < n {
		c.parent = make([]int32, n)
	}
	c.parent = c.parent[:n]
	for i := range c.parent {
		c.parent[i] = int32(i)
	}
}

// Find returns the current representative of x, compressing the path by
// halving with CAS writes that can only move pointers closer to a root.
func (c *Concurrent) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&c.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&c.parent[p])
		if gp == p {
			return p
		}
		// Path halving: point x at its grandparent. Failure just means
		// someone else improved the path first.
		atomic.CompareAndSwapInt32(&c.parent[x], p, gp)
		x = gp
	}
}

// Link makes child point at parent. child must currently be a root that
// the caller has exclusive rights to (e.g. by holding a reservation);
// linking a non-root or racing on the same child corrupts the forest.
func (c *Concurrent) Link(child, parent int32) {
	atomic.StoreInt32(&c.parent[child], parent)
}

// SameSet reports whether x and y currently share a representative.
// Under concurrent mutation this is a snapshot answer.
func (c *Concurrent) SameSet(x, y int32) bool {
	return c.Find(x) == c.Find(y)
}

// Components returns the number of roots; call only in quiescent states.
func (c *Concurrent) Components() int {
	count := 0
	for i := range c.parent {
		if c.Find(int32(i)) == int32(i) {
			count++
		}
	}
	return count
}
