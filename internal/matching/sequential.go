package matching

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// SequentialMM computes the greedy maximal matching of el under ord: it
// scans edges in priority order and keeps an edge exactly when both of
// its endpoints are still free. This is the paper's linear-time
// sequential algorithm whose output — the lexicographically-first
// matching — every parallel implementation in this package reproduces.
//
// Stats follow the paper's convention: Rounds = Attempts = m for a
// sequential run; EdgeInspections counts the two endpoint examinations
// per edge.
func SequentialMM(el graph.EdgeList, ord core.Order) *Result {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("matching: order size does not match edge list")
	}
	status := make([]int32, m)
	mate := make([]int32, el.N)
	for i := range mate {
		mate[i] = unmatched
	}
	var inspections int64
	for r := 0; r < m; r++ {
		e := ord.Order[r]
		edge := el.Edges[e]
		inspections += 2
		if mate[edge.U] == unmatched && mate[edge.V] == unmatched {
			status[e] = statusIn
			mate[edge.U] = edge.V
			mate[edge.V] = edge.U
		} else {
			status[e] = statusOut
		}
	}
	return newResult(el, status, Stats{
		Rounds:          int64(m),
		Attempts:        int64(m),
		EdgeInspections: inspections,
	})
}
