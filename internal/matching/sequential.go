package matching

import (
	"context"

	"repro/internal/core"
	"repro/internal/graph"
)

// SequentialMM computes the greedy maximal matching of el under ord: it
// scans edges in priority order and keeps an edge exactly when both of
// its endpoints are still free. This is the paper's linear-time
// sequential algorithm whose output — the lexicographically-first
// matching — every parallel implementation in this package reproduces.
//
// Stats follow the paper's convention: Rounds = Attempts = m for a
// sequential run; EdgeInspections counts the two endpoint examinations
// per edge.
func SequentialMM(el graph.EdgeList, ord core.Order) *Result {
	res, err := SequentialMMCtx(context.Background(), el, ord, Options{})
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// seqCancelMask paces the sequential scan's cancellation checks, as in
// core.SequentialMISCtx.
const seqCancelMask = 1<<12 - 1

// SequentialMMCtx is SequentialMM with cooperative cancellation (ctx is
// checked every few thousand edges) and workspace reuse.
func SequentialMMCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("matching: order size does not match edge list")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := grow32(&ws.status, m)
	fill32(status, statusUndecided)
	mate := grow32(&ws.mate, el.N)
	fill32(mate, unmatched)
	var inspections int64
	for r := 0; r < m; r++ {
		if r&seqCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := ord.Order[r]
		edge := el.Edges[e]
		inspections += 2
		if mate[edge.U] == unmatched && mate[edge.V] == unmatched {
			status[e] = statusIn
			mate[edge.U] = edge.V
			mate[edge.V] = edge.U
		} else {
			status[e] = statusOut
		}
	}
	return newResult(el, status, Stats{
		Rounds:          int64(m),
		Attempts:        int64(m),
		EdgeInspections: inspections,
	}), nil
}
