package matching

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// RootSetMM computes the lexicographically-first maximal matching with
// the linear-work implementation of Lemma 5.3. Each vertex keeps its
// incident edges sorted by priority; an edge is "ready" when it is the
// highest-priority remaining edge at both endpoints (a root of the edge
// priority DAG). Each step matches the ready edges, lazily deletes their
// neighboring edges, and runs mmCheck on the far endpoints of deleted
// edges to discover the next ready set. Every incident-list entry is
// skipped past at most once, so total work is O(n + m); the number of
// steps is exactly the dependence length of the edge priority DAG.
func RootSetMM(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := RootSetMMCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// RootSetMMCtx is RootSetMM with cooperative cancellation (ctx is
// checked once per step) and workspace reuse.
func RootSetMMCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("matching: order size does not match edge list")
	}
	grain := opt.grain()

	// O(m) bucket-sorted incidence: every per-vertex list is already in
	// priority order (the paper's Lemma 5.3 preprocessing).
	inc := graph.BuildIncidenceByPriority(el, ord.Order)

	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := grow32(&ws.status, m)
	fill32(status, statusUndecided)
	mate := grow32(&ws.mate, el.N)
	fill32(mate, unmatched)
	// vptr[v] indexes the first not-yet-skipped entry of v's sorted
	// incident list (lazy deletion).
	vptr := grow32(&ws.reserv, el.N)
	fill32(vptr, 0)
	// claimed[e] dedups ready-edge discovery: an edge can be found ready
	// from both endpoints simultaneously.
	claimed := grow32(&ws.claimed, m)
	fill32(claimed, 0)
	// checkStamp[v] ensures each far endpoint is checked once per step.
	checkStamp := grow32(&ws.stamp, el.N)
	fill32(checkStamp, -1)

	stats := Stats{}
	var inspections atomic.Int64
	var prevInspections int64

	// Initial ready set: edges that head both endpoints' lists.
	frontier := parallel.PackIndex(m, grain, func(i int) bool {
		e := int32(i)
		edge := el.Edges[e]
		u := inc.Incident(edge.U)
		v := inc.Incident(edge.V)
		return len(u) > 0 && u[0] == e && len(v) > 0 && v[0] == e
	})

	resolved := 0
	for resolved < m {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(frontier) == 0 {
			panic("matching: RootSetMM frontier empty with unresolved edges")
		}
		step := int32(stats.Rounds)
		stats.Rounds++
		stats.Attempts += int64(len(frontier))

		// Phase 1: match ready edges and lazily delete their neighbors.
		// killedFar[i] collects, for frontier edge i, the far endpoints
		// of the edges its matching deleted.
		killedFar := make([][]int32, len(frontier))
		var decidedDelta atomic.Int64
		parallel.ForRange(len(frontier), grain, func(lo, hi int) {
			var local, decided int64
			for i := lo; i < hi; i++ {
				e := frontier[i]
				edge := el.Edges[e]
				atomic.StoreInt32(&status[e], statusIn)
				atomic.StoreInt32(&mate[edge.U], edge.V)
				atomic.StoreInt32(&mate[edge.V], edge.U)
				decided++
				var far []int32
				for _, endpoint := range [2]int32{edge.U, edge.V} {
					ids := inc.Incident(endpoint)
					local += int64(len(ids))
					for _, f := range ids {
						if f == e {
							continue
						}
						if atomic.CompareAndSwapInt32(&status[f], statusUndecided, statusOut) {
							decided++
							far = append(far, el.Edges[f].Other(endpoint))
						}
					}
				}
				killedFar[i] = far
			}
			inspections.Add(local)
			decidedDelta.Add(decided)
		})
		resolved += int(decidedDelta.Load())

		// Phase 2: mmCheck the far endpoints; each check may surface one
		// newly ready edge.
		var mu sync.Mutex
		var chunks [][]int32
		parallel.ForRange(len(frontier), grain, func(lo, hi int) {
			var local int64
			var found []int32
			for i := lo; i < hi; i++ {
				for _, z := range killedFar[i] {
					old := atomic.LoadInt32(&checkStamp[z])
					if old == step || !atomic.CompareAndSwapInt32(&checkStamp[z], old, step) {
						continue // another worker already checks z this step
					}
					ready, insp := mmCheck(z, el, inc, status, vptr)
					local += insp
					if ready >= 0 && atomic.CompareAndSwapInt32(&claimed[ready], 0, 1) {
						found = append(found, ready)
					}
				}
			}
			inspections.Add(local)
			if len(found) > 0 {
				mu.Lock()
				chunks = append(chunks, found)
				mu.Unlock()
			}
		})
		total := 0
		for _, ch := range chunks {
			total += len(ch)
		}
		next := make([]int32, 0, total)
		for _, ch := range chunks {
			next = append(next, ch...)
		}
		if opt.OnRound != nil {
			cur := inspections.Load()
			opt.OnRound(core.RoundStat{
				Round:       stats.Rounds,
				Attempted:   len(frontier),
				Resolved:    int(decidedDelta.Load()),
				Inspections: cur - prevInspections,
			})
			prevInspections = cur
		}
		frontier = next
	}
	stats.EdgeInspections = inspections.Load()
	return newResult(el, status, stats), nil
}

// mmCheck is the two-phase check of Lemma 5.2 on vertex z: advance past
// deleted incident edges to find the highest-priority remaining edge t
// (charging skipped entries to their deletion), then verify that t also
// heads the remaining list of its other endpoint. It returns t's id if
// so and -1 otherwise. Only the per-step claimant of z writes vptr[z];
// the read-only scan of the other endpoint uses its pointer merely as a
// hint.
func mmCheck(z int32, el graph.EdgeList, inc graph.Incidence, status []int32, vptr []int32) (ready int32, inspections int64) {
	ids := inc.Incident(z)
	i := atomic.LoadInt32(&vptr[z])
	for int(i) < len(ids) {
		inspections++
		if atomic.LoadInt32(&status[ids[i]]) == statusUndecided {
			break
		}
		i++
	}
	atomic.StoreInt32(&vptr[z], i)
	if int(i) == len(ids) {
		return -1, inspections
	}
	t := ids[i]
	// Phase two: is t also the top remaining edge at its other endpoint?
	w := el.Edges[t].Other(z)
	wids := inc.Incident(w)
	j := atomic.LoadInt32(&vptr[w])
	for int(j) < len(wids) {
		inspections++
		if atomic.LoadInt32(&status[wids[j]]) == statusUndecided {
			if wids[j] == t {
				return t, inspections
			}
			return -1, inspections
		}
		j++
	}
	return -1, inspections
}
