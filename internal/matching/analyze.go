package matching

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// DependenceInfo is the outcome of the edge-priority-DAG analysis, the
// matching counterpart of core.DependenceInfo.
type DependenceInfo struct {
	// Steps is the dependence length of the edge priority DAG: the
	// number of iterations of Algorithm 4, O(log^2 m) w.h.p. for random
	// edge orders (Lemma 5.1).
	Steps int
	// RemoveStep[e] is the 1-based step at which Algorithm 4 removes
	// edge e (matching it or discarding it as a neighbor of a matched
	// edge).
	RemoveStep []int32
	// InMatching[e] reports whether e is in the greedy matching.
	InMatching []bool
}

// DependenceSteps simulates Algorithm 4 analytically in O(m) time after
// the priority sort implicit in ord: processing edges in priority order,
// a matched edge enters one step after the last earlier adjacent edge is
// removed, and a discarded edge leaves at the step its earliest matched
// neighbor enters. Per-vertex running aggregates (when the vertex was
// matched; the latest removal among its processed edges) avoid touching
// each adjacency more than once.
func DependenceSteps(el graph.EdgeList, ord core.Order) DependenceInfo {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("matching: order size does not match edge list")
	}
	const inf = int32(1<<31 - 1)
	removeStep := make([]int32, m)
	inMatching := make([]bool, m)
	matchedAt := make([]int32, el.N)
	maxRemove := make([]int32, el.N)
	for i := range matchedAt {
		matchedAt[i] = inf
	}
	steps := int32(0)
	for r := 0; r < m; r++ {
		e := ord.Order[r]
		edge := el.Edges[e]
		firstKill := matchedAt[edge.U]
		if matchedAt[edge.V] < firstKill {
			firstKill = matchedAt[edge.V]
		}
		if firstKill != inf {
			removeStep[e] = firstKill
		} else {
			s := maxRemove[edge.U]
			if maxRemove[edge.V] > s {
				s = maxRemove[edge.V]
			}
			removeStep[e] = s + 1
			inMatching[e] = true
			matchedAt[edge.U] = removeStep[e]
			matchedAt[edge.V] = removeStep[e]
		}
		if removeStep[e] > maxRemove[edge.U] {
			maxRemove[edge.U] = removeStep[e]
		}
		if removeStep[e] > maxRemove[edge.V] {
			maxRemove[edge.V] = removeStep[e]
		}
		if removeStep[e] > steps {
			steps = removeStep[e]
		}
	}
	return DependenceInfo{Steps: int(steps), RemoveStep: removeStep, InMatching: inMatching}
}

// ViaLineGraphMIS computes the greedy maximal matching by explicitly
// building the line graph of el and running the sequential greedy MIS on
// it with the same priorities — the reduction of Lemma 5.1. The paper
// points out this is inefficient (the line graph can be asymptotically
// larger than the input); it exists as an executable specification that
// the direct algorithms are tested against.
func ViaLineGraphMIS(g *graph.Graph, ord core.Order) *Result {
	lg, el := graph.LineGraph(g)
	misResult := core.SequentialMIS(lg, ord)
	m := el.NumEdges()
	status := make([]int32, m)
	for e := 0; e < m; e++ {
		if misResult.InSet[e] {
			status[e] = statusIn
		} else {
			status[e] = statusOut
		}
	}
	return newResult(el, status, misResult.Stats)
}
