// Package matching implements the paper's maximal matching (MM)
// algorithms: the sequential greedy algorithm over a random edge order,
// the prefix-based parallel algorithm (Algorithm 4 executed on prefixes
// via deterministic reservations), the linear-work root-set
// implementation with mmCheck on priority-sorted incident-edge lists
// (Lemma 5.3), a reference reduction through MIS on the line graph
// (Lemma 5.1), and an exact dependence-length analyzer.
//
// All deterministic algorithms are parameterized by a core.Order over
// edge identifiers and return exactly the matching the sequential greedy
// algorithm produces for that order, at any thread count and prefix
// size.
package matching

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Edge statuses; monotone undecided -> {in, out} exactly once.
const (
	statusUndecided int32 = 0
	statusIn        int32 = 1
	statusOut       int32 = 2
)

// unmatched marks a vertex with no mate.
const unmatched int32 = -1

// Stats reuses the core counters: Rounds, Attempts (the paper's "total
// work" for MM, with a sequential run attempting each edge once),
// EdgeInspections and PrefixSize.
type Stats = core.Stats

// Result is the outcome of a maximal matching computation.
type Result struct {
	// InMatching[e] reports whether edge e (an index into the EdgeList)
	// is part of the matching.
	InMatching []bool
	// Mate[v] is the vertex matched to v, or -1 if v is unmatched.
	Mate []int32
	// Pairs lists the matched edges in increasing edge-id order.
	Pairs []graph.Edge
	// Stats are the cost counters of the run.
	Stats Stats
}

func newResult(el graph.EdgeList, status []int32, stats Stats) *Result {
	m := el.NumEdges()
	in := make([]bool, m)
	parallel.For(m, 4096, func(i int) {
		in[i] = status[i] == statusIn
	})
	mate := make([]int32, el.N)
	for i := range mate {
		mate[i] = unmatched
	}
	ids := parallel.PackIndex(m, 4096, func(i int) bool { return in[i] })
	pairs := make([]graph.Edge, len(ids))
	for i, id := range ids {
		e := el.Edges[id]
		pairs[i] = e
		mate[e.U] = e.V
		mate[e.V] = e.U
	}
	return &Result{InMatching: in, Mate: mate, Pairs: pairs, Stats: stats}
}

// Size returns the number of matched edges.
func (r *Result) Size() int { return len(r.Pairs) }

// Equal reports whether two results select exactly the same edge set.
func (r *Result) Equal(other *Result) bool {
	if len(r.InMatching) != len(other.InMatching) {
		return false
	}
	for i := range r.InMatching {
		if r.InMatching[i] != other.InMatching[i] {
			return false
		}
	}
	return true
}

// Options configures the parallel matching algorithms; the fields mirror
// core.Options (PrefixSize/PrefixFrac apply to the number of edges).
type Options struct {
	PrefixSize int
	PrefixFrac float64
	Grain      int
	// Adaptive replaces the fixed window with a measured schedule (see
	// core.Options.Adaptive): a core.AdaptiveController doubles or
	// halves the next round's window from the previous round's
	// resolved/attempted ratio and inspection cost, bounded by [1, m].
	// The matching stays bit-identical to the sequential greedy one.
	Adaptive bool
	// OnRound, if non-nil, is called after every round of the
	// round-synchronous algorithms with that round's statistics (see
	// core.RoundStat). It runs on the round loop's goroutine.
	OnRound func(core.RoundStat)
	// Clock, if non-nil, enables the engine's per-phase wall-time
	// attribution (see engine.Options.Clock); telemetry-only, injected
	// by the caller.
	Clock func() int64
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs. nil means allocate fresh buffers.
	Workspace *Workspace
}

// engineOptions translates the matching options into the engine's form,
// wiring the pooled window buffers when ws is non-nil. Prefix
// resolution (size/frac/default, adaptive seeding) lives in the engine,
// the single source of truth shared with the other problem packages.
func (o Options) engineOptions(ws *engine.Workspace) engine.Options {
	return engine.Options{
		PrefixSize: o.PrefixSize,
		PrefixFrac: o.PrefixFrac,
		Adaptive:   o.Adaptive,
		Grain:      o.Grain,
		OnRound:    o.OnRound,
		Clock:      o.Clock,
		Workspace:  ws,
	}
}

func (o Options) grain() int {
	if o.Grain <= 0 {
		return parallel.DefaultGrain
	}
	return o.Grain
}
