package matching

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// PrefixMM computes the lexicographically-first maximal matching of el
// under ord with the prefix-based parallelization of the paper's
// Algorithm 4, implemented with deterministic reservations (the
// reserve/commit protocol of Blelloch et al. [2], the mechanism behind
// the paper's experiments). Each round takes the earliest unresolved
// edges as the active window; every active edge reserves both of its
// endpoints with a priority write-min, and an edge commits exactly when
// it holds both reservations — i.e. when it has no earlier unresolved
// neighboring edge, which is precisely the acceptance condition of
// Algorithm 4 restricted to the window. Edges that lose a reservation
// race retry in the next round; edges with a matched endpoint resolve
// to out.
//
// Because the window always holds the earliest unresolved edges, and an
// edge commits only when every earlier neighbor is resolved, the result
// equals the sequential greedy matching for any prefix size, grain size
// and thread count.
func PrefixMM(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := PrefixMMCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixMMCtx is PrefixMM with cooperative cancellation: ctx is checked
// once per round, so a cancelled context aborts within one round and
// returns ctx.Err(). Pooled buffers come from opt.Workspace when set.
//
// The round loop is the shared speculative-prefix engine
// (internal/engine); this function contributes the matching problem:
// reserve both endpoints in the check phase, commit when holding both
// reservations, clear the bids in the reset phase.
func PrefixMMCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("matching: order size does not match edge list")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := grow32(&ws.status, m)
	fill32(status, statusUndecided)
	mate := grow32(&ws.mate, el.N)
	fill32(mate, unmatched)
	// reserv[v] holds the smallest rank among active edges bidding for
	// vertex v this round.
	reserv := grow32(&ws.reserv, el.N)
	fill32(reserv, maxRank)

	prob := &mmProblem{el: el, rank: ord.Rank, status: status, mate: mate, reserv: reserv}
	stats, err := engine.Run(ctx, ord.Order, prob, opt.engineOptions(&ws.eng))
	if err != nil {
		return nil, err
	}
	return newResult(el, status, stats), nil
}

// maxRank is the neutral reservation value: larger than any edge rank.
const maxRank = int32(1<<31 - 1)

// mmProblem is the engine adapter for deterministic-reservation
// matching. The endpoint arrays (mate, reserv) are shared between
// concurrently checked edges, so cross-edge writes go through atomics:
// a priority write-min for the bids, plain atomic stores elsewhere
// (two committing edges never share an endpoint — both hold their
// endpoints' reservations — so those stores are race-free, and the
// loads pair with them for the race detector's benefit).
type mmProblem struct {
	el     graph.EdgeList
	rank   []int32
	status []int32
	mate   []int32
	reserv []int32
}

// Check is the reserve phase: an edge whose endpoint is already matched
// resolves immediately; otherwise it bids for both endpoints.
func (p *mmProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		e := act[i]
		edge := p.el.Edges[e]
		local += 2
		if atomic.LoadInt32(&p.mate[edge.U]) != unmatched ||
			atomic.LoadInt32(&p.mate[edge.V]) != unmatched {
			atomic.StoreInt32(&p.status[e], statusOut)
			outcome[i] = engine.Dropped
			continue
		}
		re := p.rank[e]
		parallel.WriteMin32(&p.reserv[edge.U], re)
		parallel.WriteMin32(&p.reserv[edge.V], re)
	}
	return local
}

// Commit matches every edge holding both of its endpoints' reservations:
// it is the earliest unresolved edge on both sides.
func (p *mmProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		if outcome[i] != engine.Undecided {
			continue
		}
		e := act[i]
		edge := p.el.Edges[e]
		re := p.rank[e]
		local += 2
		if atomic.LoadInt32(&p.reserv[edge.U]) == re &&
			atomic.LoadInt32(&p.reserv[edge.V]) == re {
			atomic.StoreInt32(&p.status[e], statusIn)
			outcome[i] = engine.Committed
			atomic.StoreInt32(&p.mate[edge.U], edge.V)
			atomic.StoreInt32(&p.mate[edge.V], edge.U)
		}
	}
	return local
}

// Reset clears this round's reservations so stale bids from failed or
// resolved edges cannot block future rounds.
func (p *mmProblem) Reset(act, outcome []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		edge := p.el.Edges[act[i]]
		atomic.StoreInt32(&p.reserv[edge.U], maxRank)
		atomic.StoreInt32(&p.reserv[edge.V], maxRank)
	}
}

// ParallelMM is Algorithm 4 proper: PrefixMM run with the full edge set
// as the window each round. Its Rounds statistic tracks the dependence
// length of the edge priority DAG (Lemma 5.1: O(log^2 m) w.h.p.).
func ParallelMM(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := ParallelMMCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// ParallelMMCtx is ParallelMM with cooperative cancellation and
// workspace reuse (see PrefixMMCtx).
func ParallelMMCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	opt.Adaptive = false // the full prefix is the point of Algorithm 4
	opt.PrefixSize = el.NumEdges()
	if opt.PrefixSize == 0 {
		opt.PrefixSize = 1
	}
	return PrefixMMCtx(ctx, el, ord, opt)
}
