package matching

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// PrefixMM computes the lexicographically-first maximal matching of el
// under ord with the prefix-based parallelization of the paper's
// Algorithm 4, implemented with deterministic reservations (the
// reserve/commit protocol of Blelloch et al. [2], the mechanism behind
// the paper's experiments). Each round takes the earliest unresolved
// edges as the active window; every active edge reserves both of its
// endpoints with a priority write-min, and an edge commits exactly when
// it holds both reservations — i.e. when it has no earlier unresolved
// neighboring edge, which is precisely the acceptance condition of
// Algorithm 4 restricted to the window. Edges that lose a reservation
// race retry in the next round; edges with a matched endpoint resolve
// to out.
//
// Because the window always holds the earliest unresolved edges, and an
// edge commits only when every earlier neighbor is resolved, the result
// equals the sequential greedy matching for any prefix size, grain size
// and thread count.
func PrefixMM(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := PrefixMMCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixMMCtx is PrefixMM with cooperative cancellation: ctx is checked
// once per round, so a cancelled context aborts within one round and
// returns ctx.Err(). Pooled buffers come from opt.Workspace when set.
func PrefixMMCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("matching: order size does not match edge list")
	}
	const maxRank = int32(1<<31 - 1)
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := grow32(&ws.status, m)
	fill32(status, statusUndecided)
	mate := grow32(&ws.mate, el.N)
	fill32(mate, unmatched)
	// reserv[v] holds the smallest rank among active edges bidding for
	// vertex v this round.
	reserv := grow32(&ws.reserv, el.N)
	fill32(reserv, maxRank)
	rank := ord.Rank
	prefix := opt.prefixFor(m)
	grain := opt.grain()
	// Per-round window cap: fixed, or driven by the adaptive
	// controller. Any window sequence returns the sequential greedy
	// matching — the active set always holds the earliest unresolved
	// edges in rank order (see PrefixMM).
	window := prefix
	var ctrl *core.AdaptiveController
	if opt.Adaptive {
		ctrl = core.NewAdaptiveController(opt.adaptiveInitial(m), core.AdaptiveGrowCap(m), m)
		window = ctrl.Window()
	}
	maxWindow := window

	stats := Stats{}
	var inspections atomic.Int64
	var prevInspections int64
	active := growActive(&ws.active, window)
	defer func() { ws.active = active[:0] }()
	nextRank := 0
	resolved := 0

	for resolved < m {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for len(active) < window && nextRank < m {
			active = append(active, ord.Order[nextRank])
			nextRank++
		}
		// A shrunken window attempts only the earliest unresolved
		// edges; the tail waits for a later round.
		act := active
		if len(act) > window {
			act = act[:window]
		}
		roundWindow := window
		if roundWindow > maxWindow {
			maxWindow = roundWindow
		}
		stats.Rounds++
		stats.Attempts += int64(len(act))

		// Phase 1: reserve. An edge whose endpoint is already matched
		// resolves immediately; otherwise it bids for both endpoints.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				e := act[i]
				edge := el.Edges[e]
				local += 2
				if atomic.LoadInt32(&mate[edge.U]) != unmatched ||
					atomic.LoadInt32(&mate[edge.V]) != unmatched {
					atomic.StoreInt32(&status[e], statusOut)
					continue
				}
				re := rank[e]
				parallel.WriteMin32(&reserv[edge.U], re)
				parallel.WriteMin32(&reserv[edge.V], re)
			}
			inspections.Add(local)
		})

		// Phase 2: commit. An edge holding both endpoints is matched;
		// it is the earliest unresolved edge on both sides.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				e := act[i]
				if atomic.LoadInt32(&status[e]) != statusUndecided {
					continue
				}
				edge := el.Edges[e]
				re := rank[e]
				local += 2
				if atomic.LoadInt32(&reserv[edge.U]) == re &&
					atomic.LoadInt32(&reserv[edge.V]) == re {
					atomic.StoreInt32(&status[e], statusIn)
					atomic.StoreInt32(&mate[edge.U], edge.V)
					atomic.StoreInt32(&mate[edge.V], edge.U)
				}
			}
			inspections.Add(local)
		})

		// Phase 3: clear this round's reservations so stale bids from
		// failed or resolved edges cannot block future rounds.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				edge := el.Edges[act[i]]
				atomic.StoreInt32(&reserv[edge.U], maxRank)
				atomic.StoreInt32(&reserv[edge.V], maxRank)
			}
		})

		before := len(act)
		kept := parallel.PackInPlace(act, grain, func(i int) bool {
			return status[act[i]] == statusUndecided
		})
		if len(act) < len(active) {
			// Slide the unattempted tail up against the kept retries;
			// rank order is preserved on both sides of the seam.
			moved := copy(active[len(kept):], active[len(act):])
			active = active[:len(kept)+moved]
		} else {
			active = kept
		}
		resolvedThis := before - len(kept)
		resolved += resolvedThis
		cur := inspections.Load()
		if ctrl != nil {
			ctrl.Observe(before, resolvedThis, cur-prevInspections)
			window = ctrl.Window()
		}
		if opt.OnRound != nil {
			opt.OnRound(core.RoundStat{
				Round:       stats.Rounds,
				Prefix:      roundWindow,
				Attempted:   before,
				Resolved:    resolvedThis,
				Inspections: cur - prevInspections,
			})
		}
		prevInspections = cur
	}
	stats.PrefixSize = maxWindow
	stats.EdgeInspections = inspections.Load()
	return newResult(el, status, stats), nil
}

// ParallelMM is Algorithm 4 proper: PrefixMM run with the full edge set
// as the window each round. Its Rounds statistic tracks the dependence
// length of the edge priority DAG (Lemma 5.1: O(log^2 m) w.h.p.).
func ParallelMM(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := ParallelMMCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// ParallelMMCtx is ParallelMM with cooperative cancellation and
// workspace reuse (see PrefixMMCtx).
func ParallelMMCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	opt.Adaptive = false // the full prefix is the point of Algorithm 4
	opt.PrefixSize = el.NumEdges()
	if opt.PrefixSize == 0 {
		opt.PrefixSize = 1
	}
	return PrefixMMCtx(ctx, el, ord, opt)
}
