package matching

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestAdaptiveMMMatchesSequential: the adaptive window schedule returns
// exactly the sequential greedy matching on every input family, like
// every fixed prefix does.
func TestAdaptiveMMMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random":   graph.Random(2000, 10000, 7),
		"grid":     graph.Grid2D(48, 48),
		"star":     graph.Star(400),
		"complete": graph.Complete(96),
		"path":     graph.Path(1500),
	}
	for name, g := range graphs {
		el := g.EdgeList()
		m := el.NumEdges()
		for _, seed := range []uint64{1, 5} {
			ord := core.NewRandomOrder(m, seed)
			want := SequentialMM(el, ord)
			got := PrefixMM(el, ord, Options{Adaptive: true})
			if !got.Equal(want) {
				t.Errorf("%s seed %d: adaptive MM differs from sequential", name, seed)
			}
			if err := VerifyLexFirst(el, ord, got); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
			// An explicit seed window (fixed config as starting point)
			// must not change the answer either.
			seeded := PrefixMM(el, ord, Options{Adaptive: true, PrefixSize: m/2 + 1})
			if !seeded.Equal(want) {
				t.Errorf("%s seed %d: adaptive MM with explicit seed window differs", name, seed)
			}
		}
	}
}

// TestAdaptiveMMScheduleGrainIndependent: the schedule consumes only
// machine-independent counters, so Stats are identical for any grain.
func TestAdaptiveMMScheduleGrainIndependent(t *testing.T) {
	g := graph.Random(1500, 7500, 3)
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), 4)
	base := PrefixMM(el, ord, Options{Adaptive: true})
	for _, grain := range []int{5, 64, 2048} {
		r := PrefixMM(el, ord, Options{Adaptive: true, Grain: grain})
		if r.Stats != base.Stats {
			t.Fatalf("grain %d changed adaptive MM stats: %+v vs %+v", grain, r.Stats, base.Stats)
		}
		if !r.Equal(base) {
			t.Fatalf("grain %d changed adaptive MM result", grain)
		}
	}
}
