package matching

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// Workspace holds the pooled per-run buffers of the matching algorithms
// (statuses, mates, reservations, frontier arrays), reused across runs
// on same-or-smaller inputs. Buffers are reinitialized at the start of
// every run, so results are bit-identical to runs on fresh memory;
// Result arrays are never pooled. Not safe for concurrent use; the zero
// value is ready.
type Workspace struct {
	status  []int32
	mate    []int32
	reserv  []int32 // doubles as vptr for RootSetMM
	active  []int32
	claimed []int32
	stamp   []int32
	eng     engine.Workspace
}

// Pooled-buffer helpers shared with the other algorithm packages.
var (
	grow32     = core.Grow32
	fill32     = core.Fill32
	growActive = core.GrowActive
)
