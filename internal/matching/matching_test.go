package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func instance(n, m int, seed uint64) (graph.EdgeList, core.Order) {
	g := graph.Random(n, m, seed)
	el := g.EdgeList()
	return el, core.NewRandomOrder(el.NumEdges(), seed+1)
}

func TestSequentialMMSmall(t *testing.T) {
	// Path 0-1-2-3: edges (0,1),(1,2),(2,3) in id order. Identity order
	// matches (0,1), skips (1,2), matches (2,3).
	g := graph.Path(4)
	el := g.EdgeList()
	r := SequentialMM(el, core.IdentityOrder(3))
	if r.Size() != 2 || !r.InMatching[0] || r.InMatching[1] || !r.InMatching[2] {
		t.Errorf("path matching = %v (pairs %v)", r.InMatching, r.Pairs)
	}
	if r.Mate[0] != 1 || r.Mate[1] != 0 || r.Mate[2] != 3 || r.Mate[3] != 2 {
		t.Errorf("mates = %v", r.Mate)
	}
	if r.Stats.Rounds != 3 || r.Stats.Attempts != 3 {
		t.Errorf("sequential stats %+v", r.Stats)
	}
}

func TestSequentialMMOrderMatters(t *testing.T) {
	// Path 0-1-2: middle-edge-first gives a 1-edge matching; the greedy
	// result depends on the order, which is the point of fixing it.
	g := graph.Path(3)
	el := g.EdgeList()
	midFirst := SequentialMM(el, core.FromOrder([]int32{1, 0})) // wait: P3 has 2 edges
	_ = midFirst
	// P4 instead: 3 edges; process middle edge (1,2) first.
	g4 := graph.Path(4)
	el4 := g4.EdgeList()
	r := SequentialMM(el4, core.FromOrder([]int32{1, 0, 2}))
	if r.Size() != 1 || !r.InMatching[1] {
		t.Errorf("middle-first matching = %v", r.InMatching)
	}
}

func TestSequentialMMEmpty(t *testing.T) {
	el := graph.EdgeList{N: 5}
	r := SequentialMM(el, core.IdentityOrder(0))
	if r.Size() != 0 {
		t.Error("empty edge list gave nonempty matching")
	}
	for _, m := range r.Mate {
		if m != -1 {
			t.Error("unmatched vertex has a mate")
		}
	}
}

func TestSequentialMMIsMaximal(t *testing.T) {
	el, ord := instance(400, 2000, 3)
	r := SequentialMM(el, ord)
	if !IsMaximalMatching(el, r.InMatching) {
		t.Error("sequential matching not maximal")
	}
}

func allDeterministicMM(el graph.EdgeList, ord core.Order) map[string]*Result {
	return map[string]*Result{
		"sequential":     SequentialMM(el, ord),
		"parallel-full":  ParallelMM(el, ord, Options{}),
		"rootset":        RootSetMM(el, ord, Options{}),
		"prefix-default": PrefixMM(el, ord, Options{}),
		"prefix-1":       PrefixMM(el, ord, Options{PrefixSize: 1}),
		"prefix-5":       PrefixMM(el, ord, Options{PrefixSize: 5}),
		"prefix-0.2":     PrefixMM(el, ord, Options{PrefixFrac: 0.2}),
		"tiny-grain":     PrefixMM(el, ord, Options{PrefixFrac: 0.5, Grain: 2}),
	}
}

func TestAllMMAlgorithmsMatchSequential(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		seed uint64
	}{
		{"random-sparse", graph.Random(200, 600, 1), 10},
		{"random-dense", graph.Random(80, 1500, 2), 11},
		{"rmat", graph.RMat(8, 1200, 3, graph.DefaultRMatOptions()), 12},
		{"grid", graph.Grid2D(15, 17), 13},
		{"complete", graph.Complete(40), 14},
		{"star", graph.Star(60), 15},
		{"path", graph.Path(150), 16},
		{"cycle", graph.Cycle(149), 17},
		{"bipartite", graph.RandomBipartite(40, 50, 300, 18), 18},
	}
	for _, c := range cases {
		el := c.g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), c.seed)
		want := SequentialMM(el, ord)
		for name, got := range allDeterministicMM(el, ord) {
			if !got.Equal(want) {
				t.Errorf("%s/%s: matching differs from sequential greedy (got %d, want %d edges)",
					c.name, name, got.Size(), want.Size())
			}
			if err := VerifyLexFirst(el, ord, got); err != nil {
				t.Errorf("%s/%s: %v", c.name, name, err)
			}
		}
	}
}

func TestMMAlgorithmsMatchQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64) bool {
		n := int(rawN%60) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), seed^0xbeef)
		want := SequentialMM(el, ord)
		for _, got := range []*Result{
			ParallelMM(el, ord, Options{}),
			RootSetMM(el, ord, Options{}),
			PrefixMM(el, ord, Options{PrefixSize: 4}),
		} {
			if !got.Equal(want) {
				return false
			}
		}
		return IsMaximalMatching(el, want.InMatching)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMMMatchesLineGraphMIS(t *testing.T) {
	// Lemma 5.1's reduction: greedy MM on g equals greedy MIS on the
	// line graph with the same priorities.
	for _, g := range []*graph.Graph{
		graph.Random(60, 200, 5),
		graph.Complete(20),
		graph.Star(25),
		graph.Grid2D(8, 9),
	} {
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), 7)
		direct := SequentialMM(el, ord)
		viaLG := ViaLineGraphMIS(g, ord)
		if !direct.Equal(viaLG) {
			t.Errorf("line-graph MIS disagrees with direct greedy MM on %v", g)
		}
	}
}

func TestMMDeterminismAcrossPrefixSizes(t *testing.T) {
	el, ord := instance(1000, 6000, 9)
	want := SequentialMM(el, ord)
	for _, frac := range []float64{0.001, 0.01, 0.1, 1.0} {
		r := PrefixMM(el, ord, Options{PrefixFrac: frac})
		if !r.Equal(want) {
			t.Fatalf("prefix frac %v changed the matching", frac)
		}
	}
}

func TestMMPrefix1IsSequential(t *testing.T) {
	el, ord := instance(300, 900, 4)
	r := PrefixMM(el, ord, Options{PrefixSize: 1})
	if r.Stats.Rounds != int64(el.NumEdges()) {
		t.Errorf("prefix-1 rounds = %d, want m = %d", r.Stats.Rounds, el.NumEdges())
	}
	if r.Stats.Attempts != int64(el.NumEdges()) {
		t.Errorf("prefix-1 attempts = %d, want m = %d", r.Stats.Attempts, el.NumEdges())
	}
}

func TestMMWorkRoundsTradeoff(t *testing.T) {
	el, ord := instance(2000, 12000, 6)
	small := PrefixMM(el, ord, Options{PrefixSize: 16})
	full := PrefixMM(el, ord, Options{PrefixFrac: 1})
	if small.Stats.Attempts > full.Stats.Attempts {
		t.Errorf("attempts should grow with prefix: small=%d full=%d",
			small.Stats.Attempts, full.Stats.Attempts)
	}
	if small.Stats.Rounds < full.Stats.Rounds {
		t.Errorf("rounds should shrink with prefix: small=%d full=%d",
			small.Stats.Rounds, full.Stats.Rounds)
	}
}

func TestRootSetMMStepsEqualDependenceLength(t *testing.T) {
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random", graph.Random(300, 1200, 8)},
		{"rmat", graph.RMat(8, 1000, 9, graph.DefaultRMatOptions())},
		{"grid", graph.Grid2D(15, 15)},
		{"complete", graph.Complete(30)},
		{"star", graph.Star(50)},
	} {
		el := c.g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), 21)
		r := RootSetMM(el, ord, Options{})
		info := DependenceSteps(el, ord)
		if int(r.Stats.Rounds) != info.Steps {
			t.Errorf("%s: rootset steps %d != analyzer dependence length %d",
				c.name, r.Stats.Rounds, info.Steps)
		}
	}
}

func TestDependenceStepsMatchesSequentialMatching(t *testing.T) {
	el, ord := instance(500, 2500, 31)
	info := DependenceSteps(el, ord)
	want := SequentialMM(el, ord)
	for e := 0; e < el.NumEdges(); e++ {
		if info.InMatching[e] != want.InMatching[e] {
			t.Fatalf("analyzer and sequential disagree on edge %d", e)
		}
	}
}

func TestMMDependencePolylog(t *testing.T) {
	for _, n := range []int{1000, 4000} {
		g := graph.Random(n, 5*n, uint64(n))
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), uint64(n)+3)
		info := DependenceSteps(el, ord)
		m := el.NumEdges()
		log2m := 0
		for v := m; v > 1; v >>= 1 {
			log2m++
		}
		bound := 4 * log2m * log2m
		if info.Steps > bound {
			t.Errorf("m=%d: MM dependence length %d exceeds envelope %d", m, info.Steps, bound)
		}
	}
}

func TestMMStarDependence(t *testing.T) {
	// All star edges share the center: only the first can match and all
	// others die at step 1, so the dependence length is 1.
	g := graph.Star(40)
	el := g.EdgeList()
	info := DependenceSteps(el, core.NewRandomOrder(el.NumEdges(), 2))
	if info.Steps != 1 {
		t.Errorf("star MM dependence = %d, want 1", info.Steps)
	}
}

func TestVerifyLexFirstCatchesCorruption(t *testing.T) {
	el, ord := instance(100, 300, 12)
	r := SequentialMM(el, ord)
	bad := &Result{InMatching: append([]bool(nil), r.InMatching...)}
	bad.InMatching[ord.Order[0]] = !bad.InMatching[ord.Order[0]]
	if err := VerifyLexFirst(el, ord, bad); err == nil {
		t.Error("corrupted matching accepted")
	}
	short := &Result{InMatching: make([]bool, 2)}
	if err := VerifyLexFirst(el, ord, short); err == nil {
		t.Error("short result accepted")
	}
}

func TestIsMatchingAndMaximal(t *testing.T) {
	g := graph.Path(5) // edges (0,1),(1,2),(2,3),(3,4)
	el := g.EdgeList()
	if !IsMatching(el, []bool{true, false, true, false}) {
		t.Error("valid matching rejected")
	}
	if IsMatching(el, []bool{true, true, false, false}) {
		t.Error("overlapping edges accepted")
	}
	if IsMaximalMatching(el, []bool{false, true, false, false}) {
		t.Error("non-maximal accepted: edge (3,4) addable")
	}
	if !IsMaximalMatching(el, []bool{true, false, true, false}) {
		t.Error("maximal matching rejected")
	}
}

func TestResultPairsAndMateConsistent(t *testing.T) {
	el, ord := instance(500, 2000, 14)
	r := PrefixMM(el, ord, Options{})
	for _, p := range r.Pairs {
		if r.Mate[p.U] != p.V || r.Mate[p.V] != p.U {
			t.Fatalf("pair %v not reflected in Mate", p)
		}
	}
	matched := 0
	for _, m := range r.Mate {
		if m != -1 {
			matched++
		}
	}
	if matched != 2*r.Size() {
		t.Errorf("matched vertex count %d != 2*pairs %d", matched, 2*r.Size())
	}
}

func BenchmarkSequentialMM(b *testing.B) {
	el, ord := instance(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SequentialMM(el, ord)
	}
}

func BenchmarkPrefixMM(b *testing.B) {
	el, ord := instance(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PrefixMM(el, ord, Options{PrefixFrac: 0.01})
	}
}

func BenchmarkRootSetMM(b *testing.B) {
	el, ord := instance(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RootSetMM(el, ord, Options{})
	}
}
