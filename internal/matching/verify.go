package matching

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// IsMatching reports whether the selected edges share no endpoints.
func IsMatching(el graph.EdgeList, inMatching []bool) bool {
	used := make([]bool, el.N)
	for e, in := range inMatching {
		if !in {
			continue
		}
		edge := el.Edges[e]
		if used[edge.U] || used[edge.V] {
			return false
		}
		used[edge.U] = true
		used[edge.V] = true
	}
	return true
}

// IsMaximalMatching reports whether inMatching is a matching and no
// unselected edge has both endpoints free.
func IsMaximalMatching(el graph.EdgeList, inMatching []bool) bool {
	if !IsMatching(el, inMatching) {
		return false
	}
	used := make([]bool, el.N)
	for e, in := range inMatching {
		if in {
			edge := el.Edges[e]
			used[edge.U] = true
			used[edge.V] = true
		}
	}
	for e, in := range inMatching {
		if in {
			continue
		}
		edge := el.Edges[e]
		if !used[edge.U] && !used[edge.V] {
			return false
		}
	}
	return true
}

// VerifyLexFirst checks that result is exactly the greedy sequential
// matching of el under ord — the determinism guarantee of the paper. It
// returns nil on success.
func VerifyLexFirst(el graph.EdgeList, ord core.Order, result *Result) error {
	want := SequentialMM(el, ord)
	if len(result.InMatching) != el.NumEdges() {
		return fmt.Errorf("matching: result covers %d edges, edge list has %d",
			len(result.InMatching), el.NumEdges())
	}
	for r := 0; r < el.NumEdges(); r++ {
		e := ord.Order[r]
		if result.InMatching[e] != want.InMatching[e] {
			return fmt.Errorf("matching: edge %d (rank %d, %v): got in=%v, greedy has in=%v",
				e, r, el.Edges[e], result.InMatching[e], want.InMatching[e])
		}
	}
	return nil
}
