package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWriteMinBoundaries exercises the extremes: the CAS loop must not
// mis-handle the integer limits or negative values.
func TestWriteMinBoundaries(t *testing.T) {
	var x int32 = math.MinInt32
	if WriteMin32(&x, math.MinInt32) {
		t.Error("WriteMin32 at MinInt32 reported a write for an equal value")
	}
	x = math.MaxInt32
	if !WriteMin32(&x, math.MinInt32) || x != math.MinInt32 {
		t.Errorf("WriteMin32(MaxInt32 -> MinInt32): x = %d", x)
	}
	var y int64 = math.MinInt64
	if WriteMin64(&y, 0) || y != math.MinInt64 {
		t.Errorf("WriteMin64 below MinInt64: y = %d", y)
	}
	var z int32 = math.MinInt32
	if !WriteMax32(&z, math.MaxInt32) || z != math.MaxInt32 {
		t.Errorf("WriteMax32(MinInt32 -> MaxInt32): z = %d", z)
	}
}

// TestWriteOnceConcurrentSingleWinner is the Lemma 4.2 contract: of any
// number of concurrent writers to an empty cell, EXACTLY one wins, and
// the stored value is the winner's.
func TestWriteOnceConcurrentSingleWinner(t *testing.T) {
	const writers = 16
	for trial := 0; trial < 50; trial++ {
		var cell int32 = -1
		var wins int32
		var winner int32 = -1
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(id int32) {
				defer wg.Done()
				<-start
				if WriteOnce32(&cell, -1, id) {
					atomic.AddInt32(&wins, 1)
					atomic.StoreInt32(&winner, id)
				}
			}(int32(w))
		}
		close(start)
		wg.Wait()
		if wins != 1 {
			t.Fatalf("trial %d: %d writers won, want exactly 1", trial, wins)
		}
		if cell != winner {
			t.Fatalf("trial %d: cell holds %d but winner was %d", trial, cell, winner)
		}
	}
}

// TestAtomicStressAcrossProcs hammers every primitive from many
// goroutines at GOMAXPROCS=1 (cooperative interleavings only) and at
// the machine's full processor count; run under -race this doubles as
// the data-race certificate for the CAS loops. The final values are
// schedule-independent: min of all written values, max of all written
// values, and a winner for every once-cell.
func TestAtomicStressAcrossProcs(t *testing.T) {
	for _, procs := range []int{1, runtime.NumCPU()} {
		procs := procs
		t.Run(map[bool]string{true: "procs=1", false: "procs=NumCPU"}[procs == 1], func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)

			const workers = 8
			const iters = 2000
			var mn int32 = math.MaxInt32
			var mn64 int64 = math.MaxInt64
			var mx int32 = math.MinInt32
			once := make([]int32, 64)
			for i := range once {
				once[i] = -1
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						v := int32(w*iters + i)
						WriteMin32(&mn, v)
						WriteMin64(&mn64, int64(v))
						WriteMax32(&mx, v)
						WriteOnce32(&once[i%len(once)], -1, v)
					}
				}(w)
			}
			wg.Wait()

			if mn != 0 {
				t.Errorf("min = %d, want 0", mn)
			}
			if mn64 != 0 {
				t.Errorf("min64 = %d, want 0", mn64)
			}
			if want := int32(workers*iters - 1); mx != want {
				t.Errorf("max = %d, want %d", mx, want)
			}
			for i, v := range once {
				if v == -1 {
					t.Errorf("once[%d] never written", i)
				}
			}
		})
	}
}
