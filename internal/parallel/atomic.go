package parallel

import "sync/atomic"

// WriteMin32 atomically sets *addr = min(*addr, val) and reports whether
// the write happened (val was strictly smaller). This is the
// "priority write" used by deterministic reservations: concurrent
// writers race, but the final value is always the minimum, independent
// of scheduling — the arbitrary-CRCW-write of the paper's model made
// deterministic.
func WriteMin32(addr *int32, val int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if old <= val {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, val) {
			return true
		}
	}
}

// WriteMin64 is WriteMin32 for int64.
func WriteMin64(addr *int64, val int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if old <= val {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, val) {
			return true
		}
	}
}

// WriteMax32 atomically sets *addr = max(*addr, val) and reports whether
// the write happened.
func WriteMax32(addr *int32, val int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if old >= val {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, val) {
			return true
		}
	}
}

// WriteOnce32 atomically sets *addr = val if *addr still holds empty, and
// reports whether this call's write won. It implements the paper's
// duplicate-elimination trick in Lemma 4.2: "having the neighbor write
// its identifier into the checked vertex using an arbitrary concurrent
// write, and whichever write succeeds is responsible for the check".
func WriteOnce32(addr *int32, empty, val int32) bool {
	return atomic.CompareAndSwapInt32(addr, empty, val)
}
