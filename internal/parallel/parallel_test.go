package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForRangeCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 255, 256, 257, 1000, 100000} {
		for _, grain := range []int{0, 1, 7, 256, 100001} {
			hits := make([]int32, n)
			ForRange(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("ForRange(n=%d, grain=%d) bad range [%d,%d)", n, grain, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("ForRange(n=%d, grain=%d): index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}

func TestForCoversExactlyOnce(t *testing.T) {
	const n = 50000
	hits := make([]int32, n)
	For(n, 64, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("For: index %d visited %d times", i, h)
		}
	}
}

func TestForNegativeAndZero(t *testing.T) {
	called := false
	For(0, 10, func(i int) { called = true })
	For(-5, 10, func(i int) { called = true })
	if called {
		t.Error("For called body for non-positive n")
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.AddInt32(&a, 1) },
		func() { atomic.AddInt32(&b, 1) },
		func() { atomic.AddInt32(&c, 1) },
	)
	if a != 1 || b != 1 || c != 1 {
		t.Errorf("Do did not run every function: %d %d %d", a, b, c)
	}
	Do() // must not panic
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Error("Do with one function did not run it")
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1000, 65537} {
		got := Reduce(n, 128, 0, func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		}, func(a, b int) int { return a + b })
		want := n * (n - 1) / 2
		if n <= 0 {
			want = 0
		}
		if got != want {
			t.Errorf("Reduce sum n=%d: got %d, want %d", n, got, want)
		}
	}
}

func TestReduceDeterministicOrderNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative; the result
	// must be identical across runs and equal to the sequential result.
	const n = 2000
	leaf := func(lo, hi int) string {
		s := ""
		for i := lo; i < hi; i++ {
			s += string(rune('a' + i%26))
		}
		return s
	}
	comb := func(a, b string) string { return a + b }
	want := leaf(0, n)
	for trial := 0; trial < 5; trial++ {
		if got := Reduce(n, 64, "", leaf, comb); got != want {
			t.Fatalf("Reduce non-commutative result differs from sequential on trial %d", trial)
		}
	}
}

func TestSumInt64(t *testing.T) {
	got := SumInt64(1000, 32, func(i int) int64 { return int64(i) * 2 })
	if want := int64(999 * 1000); got != want {
		t.Errorf("SumInt64 = %d, want %d", got, want)
	}
}

func TestMaxInt64(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got := MaxInt64(len(vals), 2, -1, func(i int) int64 { return vals[i] })
	if got != 9 {
		t.Errorf("MaxInt64 = %d, want 9", got)
	}
	if got := MaxInt64(0, 2, -7, nil); got != -7 {
		t.Errorf("MaxInt64 empty = %d, want identity -7", got)
	}
}

func TestCount(t *testing.T) {
	got := Count(1000, 64, func(i int) bool { return i%3 == 0 })
	if want := 334; got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func seqExclusive(src []int64) ([]int64, int64) {
	dst := make([]int64, len(src))
	var acc int64
	for i, v := range src {
		dst[i] = acc
		acc += v
	}
	return dst, acc
}

func TestExclusiveScanMatchesSequentialQuick(t *testing.T) {
	f := func(raw []int16, grain uint8) bool {
		src := make([]int64, len(raw))
		for i, v := range raw {
			src[i] = int64(v)
		}
		want, wantTotal := seqExclusive(src)
		dst := make([]int64, len(src))
		total := ExclusiveScan(dst, src, int(grain%64))
		if total != wantTotal {
			return false
		}
		for i := range want {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExclusiveScanLarge(t *testing.T) {
	const n = 300000
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 7)
	}
	want, wantTotal := seqExclusive(src)
	dst := make([]int64, n)
	total := ExclusiveScan(dst, src, 128)
	if total != wantTotal {
		t.Fatalf("total = %d, want %d", total, wantTotal)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestExclusiveScanInPlace(t *testing.T) {
	src := []int64{1, 2, 3, 4, 5}
	total := ExclusiveScan(src, src, 2)
	want := []int64{0, 1, 3, 6, 10}
	if total != 15 {
		t.Errorf("total = %d, want 15", total)
	}
	for i := range want {
		if src[i] != want[i] {
			t.Errorf("in-place scan[%d] = %d, want %d", i, src[i], want[i])
		}
	}
}

func TestInclusiveScan(t *testing.T) {
	src := []int32{1, 2, 3, 4}
	dst := make([]int32, 4)
	total := InclusiveScan(dst, src, 2)
	want := []int32{1, 3, 6, 10}
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("inclusive scan[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	const n = 123457
	big := make([]int64, n)
	for i := range big {
		big[i] = 1
	}
	out := make([]int64, n)
	if got := InclusiveScan(out, big, 100); got != n {
		t.Errorf("inclusive total = %d, want %d", got, n)
	}
	for i := range out {
		if out[i] != int64(i+1) {
			t.Fatalf("inclusive[%d] = %d", i, out[i])
		}
	}
}

func TestScanEmpty(t *testing.T) {
	if got := ExclusiveScan[int64](nil, nil, 0); got != 0 {
		t.Errorf("empty exclusive scan total = %d", got)
	}
	if got := InclusiveScan[int64](nil, nil, 0); got != 0 {
		t.Errorf("empty inclusive scan total = %d", got)
	}
}

func TestPackMatchesFilterQuick(t *testing.T) {
	f := func(raw []int32, grain uint8) bool {
		keep := func(i int) bool { return raw[i]%2 == 0 }
		got := Pack(raw, int(grain%64), keep)
		var want []int32
		for i, v := range raw {
			if keep(i) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPackLargeKeepsOrder(t *testing.T) {
	const n = 200000
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i)
	}
	got := Pack(src, 64, func(i int) bool { return i%5 == 0 })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Pack broke order at %d: %d then %d", i, got[i-1], got[i])
		}
	}
	if len(got) != n/5 {
		t.Errorf("Pack kept %d, want %d", len(got), n/5)
	}
}

func TestPackInPlace(t *testing.T) {
	for _, n := range []int{0, 1, 100, 70000} {
		src := make([]int32, n)
		for i := range src {
			src[i] = int32(i)
		}
		got := PackInPlace(src, 64, func(i int) bool { return i%3 == 1 })
		idx := 0
		for i := 0; i < n; i++ {
			if i%3 == 1 {
				if got[idx] != int32(i) {
					t.Fatalf("n=%d PackInPlace[%d] = %d, want %d", n, idx, got[idx], i)
				}
				idx++
			}
		}
		if idx != len(got) {
			t.Fatalf("n=%d PackInPlace length %d, want %d", n, len(got), idx)
		}
	}
}

func TestPackIndex(t *testing.T) {
	got := PackIndex(10, 3, func(i int) bool { return i%2 == 1 })
	want := []int32{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("PackIndex = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PackIndex = %v, want %v", got, want)
		}
	}
	if got := PackIndex(0, 1, nil); len(got) != 0 {
		t.Errorf("PackIndex(0) = %v", got)
	}
}

func TestWriteMin32(t *testing.T) {
	var x int32 = 100
	if !WriteMin32(&x, 50) {
		t.Error("WriteMin32(100->50) reported no write")
	}
	if x != 50 {
		t.Errorf("x = %d, want 50", x)
	}
	if WriteMin32(&x, 70) {
		t.Error("WriteMin32(50->70) reported a write")
	}
	if x != 50 {
		t.Errorf("x = %d, want 50", x)
	}
	if WriteMin32(&x, 50) {
		t.Error("WriteMin32 equal value reported a write")
	}
}

func TestWriteMinConcurrentIsMinimum(t *testing.T) {
	var x int32 = 1 << 30
	const writers = 8
	const perWriter = 1000
	done := make(chan struct{}, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				WriteMin32(&x, int32(w*perWriter+i+1))
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	if x != 1 {
		t.Errorf("concurrent WriteMin32 final = %d, want 1", x)
	}
}

func TestWriteMin64AndMax32(t *testing.T) {
	var y int64 = 10
	if !WriteMin64(&y, -5) || y != -5 {
		t.Errorf("WriteMin64 failed: y=%d", y)
	}
	var z int32 = 10
	if !WriteMax32(&z, 20) || z != 20 {
		t.Errorf("WriteMax32 failed: z=%d", z)
	}
	if WriteMax32(&z, 15) {
		t.Error("WriteMax32(20->15) reported a write")
	}
}

func TestWriteOnce32(t *testing.T) {
	var x int32 = -1
	if !WriteOnce32(&x, -1, 7) {
		t.Error("first WriteOnce32 lost")
	}
	if WriteOnce32(&x, -1, 9) {
		t.Error("second WriteOnce32 won")
	}
	if x != 7 {
		t.Errorf("x = %d, want 7", x)
	}
}

func TestPrimitivesUnderSingleProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	var sum int64
	For(1000, 16, func(i int) { sum += int64(i) }) // safe: sequential when P=1
	if sum != 499500 {
		t.Errorf("For under GOMAXPROCS=1 sum = %d", sum)
	}
	src := []int64{5, 4, 3}
	dst := make([]int64, 3)
	if total := ExclusiveScan(dst, src, 1); total != 12 {
		t.Errorf("scan under GOMAXPROCS=1 total = %d", total)
	}
}

func BenchmarkForRange1M(b *testing.B) {
	data := make([]int64, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForRange(len(data), DefaultGrain, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j]++
			}
		})
	}
}

func BenchmarkExclusiveScan1M(b *testing.B) {
	src := make([]int64, 1<<20)
	for i := range src {
		src[i] = int64(i % 3)
	}
	dst := make([]int64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExclusiveScan(dst, src, DefaultGrain)
	}
}

func BenchmarkPack1M(b *testing.B) {
	src := make([]int32, 1<<20)
	for i := range src {
		src[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Pack(src, DefaultGrain, func(j int) bool { return src[j]%2 == 0 })
	}
}
