package parallel

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSortUint64MatchesStdlibQuick(t *testing.T) {
	f := func(raw []uint64) bool {
		mine := append([]uint64(nil), raw...)
		ref := append([]uint64(nil), raw...)
		SortUint64(mine)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range ref {
			if mine[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortUint64Large(t *testing.T) {
	x := rng.NewXoshiro256(1)
	keys := make([]uint64, 300000)
	for i := range keys {
		keys[i] = x.Next()
	}
	SortUint64(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortUint64SmallKeys(t *testing.T) {
	// Exercises the constant-high-digit skip path.
	x := rng.NewXoshiro256(2)
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(x.Intn(1000))
	}
	SortUint64(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortUint64EdgeCases(t *testing.T) {
	SortUint64(nil)
	SortUint64([]uint64{})
	one := []uint64{42}
	SortUint64(one)
	if one[0] != 42 {
		t.Error("singleton changed")
	}
	two := []uint64{9, 3}
	SortUint64(two)
	if two[0] != 3 || two[1] != 9 {
		t.Errorf("pair not sorted: %v", two)
	}
	same := []uint64{7, 7, 7, 7}
	SortUint64(same)
	for _, v := range same {
		if v != 7 {
			t.Error("identical keys corrupted")
		}
	}
	extremes := []uint64{^uint64(0), 0, 1<<63 + 5, 1 << 32, 255, 256}
	SortUint64(extremes)
	for i := 1; i < len(extremes); i++ {
		if extremes[i-1] > extremes[i] {
			t.Fatalf("extremes not sorted: %v", extremes)
		}
	}
}

func TestSortInt32(t *testing.T) {
	keys := []int32{5, -3, 0, -2147483648, 2147483647, 1, -1}
	SortInt32(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("int32 not sorted: %v", keys)
		}
	}
	f := func(raw []int32) bool {
		mine := append([]int32(nil), raw...)
		ref := append([]int32(nil), raw...)
		SortInt32(mine)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range ref {
			if mine[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSortUint64Radix1M(b *testing.B) {
	x := rng.NewXoshiro256(1)
	orig := make([]uint64, 1<<20)
	for i := range orig {
		orig[i] = x.Next()
	}
	keys := make([]uint64, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, orig)
		SortUint64(keys)
	}
}

func BenchmarkSortUint64Stdlib1M(b *testing.B) {
	x := rng.NewXoshiro256(1)
	orig := make([]uint64, 1<<20)
	for i := range orig {
		orig[i] = x.Next()
	}
	keys := make([]uint64, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, orig)
		sort.Slice(keys, func(a, c int) bool { return keys[a] < keys[c] })
	}
}
