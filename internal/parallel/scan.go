package parallel

// Integer is the constraint satisfied by the integer types used for
// offsets and counters throughout the library.
type Integer interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// ExclusiveScan computes the exclusive prefix sum of src into dst and
// returns the total. dst[i] = src[0] + ... + src[i-1], dst[0] = 0.
// dst and src may be the same slice. len(dst) must be >= len(src).
//
// The implementation is the standard three-phase blocked scan: per-block
// sums, a sequential scan over the (few) block sums, and a parallel
// down-sweep adding block offsets. Work is O(n), depth is O(n/P + B)
// where B is the number of blocks.
func ExclusiveScan[T Integer](dst, src []T, grain int) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Procs() == 1 || n <= grain {
		var acc T
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
		return acc
	}
	chunks := (n + grain - 1) / grain
	sums := make([]T, chunks)
	ForRange(n, grain, func(lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += src[i]
		}
		sums[lo/grain] = s
	})
	var total T
	for c := 0; c < chunks; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	ForRange(n, grain, func(lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
	})
	return total
}

// InclusiveScan computes the inclusive prefix sum of src into dst and
// returns the total: dst[i] = src[0] + ... + src[i].
func InclusiveScan[T Integer](dst, src []T, grain int) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Procs() == 1 || n <= grain {
		var acc T
		for i := 0; i < n; i++ {
			acc += src[i]
			dst[i] = acc
		}
		return acc
	}
	chunks := (n + grain - 1) / grain
	sums := make([]T, chunks)
	ForRange(n, grain, func(lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += src[i]
		}
		sums[lo/grain] = s
	})
	var total T
	for c := 0; c < chunks; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	ForRange(n, grain, func(lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			acc += src[i]
			dst[i] = acc
		}
	})
	return total
}
