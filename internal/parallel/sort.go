package parallel

// SortUint64 sorts keys ascending with a parallel least-significant-
// digit radix sort (8-bit digits, blocked counting with a per-block
// offset matrix). It is the sort behind the graph generators, which
// dedup multi-million-entry edge-key arrays; radix beats comparison
// sorting by ~5x there and parallelizes the counting and scatter
// passes.
//
// The sort is stable and runs in 8 passes of O(n) work each. For small
// inputs it falls back to an insertion-free sequential radix with the
// same code path (blocks = 1).
func SortUint64(keys []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	const (
		radixBits = 8
		radix     = 1 << radixBits
		digits    = 64 / radixBits
	)
	buf := make([]uint64, n)
	src, dst := keys, buf

	// Block partitioning for the parallel counting/scatter passes.
	grain := 1 << 14
	blocks := (n + grain - 1) / grain
	counts := make([][radix]int64, blocks)

	for pass := 0; pass < digits; pass++ {
		shift := uint(pass * radixBits)

		// Skip passes whose digit is constant (common for small keys:
		// high bytes are all zero).
		if allSameDigit(src, shift) {
			continue
		}

		// Phase 1: per-block digit histograms. The whole offset matrix
		// must be re-zeroed every pass: when the counting loop degrades
		// to a single sequential chunk (GOMAXPROCS=1 or n <= grain)
		// only block 0 is visited, and blocks 1..blocks-1 would
		// otherwise carry stale scan offsets from the previous pass
		// into phase 2. The reset is itself parallel so it does not
		// become a serial fraction of the pass on many-core runs.
		ForRange(blocks, 16, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				counts[b] = [radix]int64{}
			}
		})
		ForRange(n, grain, func(lo, hi int) {
			b := lo / grain
			c := &counts[b]
			for i := lo; i < hi; i++ {
				c[(src[i]>>shift)&(radix-1)]++
			}
		})

		// Phase 2: column-major exclusive scan over (digit, block) so
		// that block b's digit d starts at the right global offset and
		// stability is preserved.
		var total int64
		for d := 0; d < radix; d++ {
			for b := 0; b < blocks; b++ {
				v := counts[b][d]
				counts[b][d] = total
				total += v
			}
		}

		// Phase 3: stable scatter.
		ForRange(n, grain, func(lo, hi int) {
			b := lo / grain
			c := &counts[b]
			for i := lo; i < hi; i++ {
				d := (src[i] >> shift) & (radix - 1)
				dst[c[d]] = src[i]
				c[d]++
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

func allSameDigit(keys []uint64, shift uint) bool {
	first := (keys[0] >> shift) & 0xff
	// Cheap sampled pre-check, then full check only if the sample
	// agrees (the common skip case must still be exact).
	step := len(keys)/64 + 1
	for i := 0; i < len(keys); i += step {
		if (keys[i]>>shift)&0xff != first {
			return false
		}
	}
	for _, k := range keys {
		if (k>>shift)&0xff != first {
			return false
		}
	}
	return true
}

// SortInt32 sorts 32-bit signed keys ascending via the uint64 radix
// sort with an order-preserving transform.
func SortInt32(keys []int32) {
	tmp := make([]uint64, len(keys))
	for i, k := range keys {
		tmp[i] = uint64(uint32(k) ^ 0x80000000)
	}
	SortUint64(tmp)
	for i, k := range tmp {
		keys[i] = int32(uint32(k) ^ 0x80000000)
	}
}
