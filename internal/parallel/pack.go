package parallel

// Pack copies the elements of src whose index satisfies keep into a new
// slice, preserving order. It is the parallel "filter"/"pack" primitive
// used by the prefix-based algorithms to compact the set of unresolved
// iterates between rounds (the paper's "densely pack into new arrays",
// Theorem 4.5). Work O(n), depth O(n/P + B).
func Pack[T any](src []T, grain int, keep func(i int) bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Procs() == 1 || n <= grain {
		out := make([]T, 0, n/4+8)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, src[i])
			}
		}
		return out
	}
	chunks := (n + grain - 1) / grain
	counts := make([]int, chunks)
	ForRange(n, grain, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := 0
	for c := 0; c < chunks; c++ {
		v := counts[c]
		counts[c] = total
		total += v
	}
	out := make([]T, total)
	ForRange(n, grain, func(lo, hi int) {
		pos := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[pos] = src[i]
				pos++
			}
		}
	})
	return out
}

// PackInPlace compacts src in place, keeping elements whose index
// satisfies keep and preserving order, and returns the compacted prefix
// of src. It performs the same blocked two-pass algorithm as Pack but
// reuses src's storage; destination positions never exceed source
// positions so the parallel scatter is safe.
func PackInPlace[T any](src []T, grain int, keep func(i int) bool) []T {
	n := len(src)
	if n == 0 {
		return src[:0]
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Procs() == 1 || n <= grain {
		w := 0
		for i := 0; i < n; i++ {
			if keep(i) {
				src[w] = src[i]
				w++
			}
		}
		return src[:w]
	}
	chunks := (n + grain - 1) / grain
	counts := make([]int, chunks)
	ForRange(n, grain, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := 0
	for c := 0; c < chunks; c++ {
		v := counts[c]
		counts[c] = total
		total += v
	}
	// Each chunk writes to [counts[c], counts[c]+kept) which lies at or
	// before its own range start, and chunk destinations are disjoint,
	// but a chunk's writes may target a region still being read by an
	// earlier-running chunk only if dest overlaps a *different* chunk's
	// source region. Because dest_c <= lo_c for every chunk and ranges
	// are processed write-forward, a two-pass copy via a scratch buffer
	// is required for full generality; we use scratch for safety.
	scratch := make([]T, total)
	ForRange(n, grain, func(lo, hi int) {
		pos := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if keep(i) {
				scratch[pos] = src[i]
				pos++
			}
		}
	})
	copy(src, scratch)
	return src[:total]
}

// PackIndex returns, in increasing order, the indices i in [0, n) for
// which pred(i) is true.
func PackIndex(n, grain int, pred func(i int) bool) []int32 {
	if n == 0 {
		return nil
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Procs() == 1 || n <= grain {
		out := make([]int32, 0, n/4+8)
		for i := 0; i < n; i++ {
			if pred(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	chunks := (n + grain - 1) / grain
	counts := make([]int, chunks)
	ForRange(n, grain, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := 0
	for c := 0; c < chunks; c++ {
		v := counts[c]
		counts[c] = total
		total += v
	}
	out := make([]int32, total)
	ForRange(n, grain, func(lo, hi int) {
		pos := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[pos] = int32(i)
				pos++
			}
		}
	})
	return out
}
