// Package parallel provides the fork-join primitives used throughout the
// reproduction of Blelloch, Fineman and Shun (SPAA 2012): parallel loops
// with an explicit grain size, reductions, blocked prefix sums (scan),
// pack/filter, and atomic write-min.
//
// The paper's implementation runs on the cilk++ work-stealing runtime
// with a loop grain size of 256; this package plays the same role on top
// of goroutines. Loops shard their index space into fixed-size chunks
// dealt to a small set of worker goroutines through an atomic counter,
// which gives dynamic load balancing similar in spirit to work stealing
// at a far lower implementation cost. All primitives degrade to plain
// sequential loops when the input is below the grain size or when
// GOMAXPROCS is 1, so small inputs pay no synchronization cost — the
// property responsible for the "bump" the paper observes when the prefix
// size crosses the sequential-to-parallel loop threshold.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default minimum number of loop iterations executed
// by one task. It matches the grain size of 256 used by the paper's
// cilk++ implementation ("we used a grain size of 256 for our loops").
const DefaultGrain = 256

// Procs returns the current effective parallelism (GOMAXPROCS).
func Procs() int {
	return runtime.GOMAXPROCS(0)
}

// ForRange runs body over the half-open range [0, n) split into chunks of
// at least grain iterations. body is called with disjoint sub-ranges
// [lo, hi) that together cover [0, n) exactly once. If grain <= 0,
// DefaultGrain is used. The call returns after all chunks complete; it
// establishes a happens-before edge between the loop body and the caller.
func ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Procs()
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if p > chunks {
		p = chunks
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For runs body(i) for every i in [0, n) in parallel with the given grain
// size. It is a convenience wrapper over ForRange.
func For(n, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs every function in fns, possibly in parallel, and waits for all
// of them. It is the binary/n-ary fork-join primitive ("spawn/sync").
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Procs() == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// Reduce combines leaf results over [0, n) with an associative combine
// function. leaf computes the reduction of a sub-range; combine merges
// two partial results. identity must be a left and right identity of
// combine. The reduction order is deterministic: partial results are
// combined in increasing chunk order regardless of execution
// interleaving, so non-commutative (but associative) combines are safe.
func Reduce[T any](n, grain int, identity T, leaf func(lo, hi int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Procs() == 1 || n <= grain {
		return combine(identity, leaf(0, n))
	}
	chunks := (n + grain - 1) / grain
	parts := make([]T, chunks)
	ForRange(n, grain, func(lo, hi int) {
		// Chunk boundaries produced by ForRange are aligned to grain, so
		// lo/grain identifies the chunk index deterministically.
		parts[lo/grain] = leaf(lo, hi)
	})
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}

// SumInt64 returns the sum of f(i) for i in [0, n).
func SumInt64(n, grain int, f func(i int) int64) int64 {
	return Reduce(n, grain, 0, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		return s
	}, func(a, b int64) int64 { return a + b })
}

// MaxInt64 returns the maximum of f(i) for i in [0, n), or identity if
// n <= 0.
func MaxInt64(n, grain int, identity int64, f func(i int) int64) int64 {
	return Reduce(n, grain, identity, func(lo, hi int) int64 {
		m := identity
		for i := lo; i < hi; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		return m
	}, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// Count returns the number of i in [0, n) for which pred(i) is true.
func Count(n, grain int, pred func(i int) bool) int {
	return int(SumInt64(n, grain, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	}))
}
