// Package fault is the repo's fault-injection harness: named
// failpoints planted at the seams where production failures originate
// — persistence writes, fsync, worker execution, SSE flushes — and
// armed from the outside (a flag or environment spec) so chaos tests
// can exercise the exact error paths a healthy run never takes.
//
// Failpoints are exempt from the nodeterminism analyzer by
// construction, not by annotation: they are planted only in
// result-neutral paths (I/O, scheduling, transport), and greedylint
// forbids the result-affecting packages from importing this package at
// all, so a failpoint can perturb *when* and *whether* work completes
// but never *what* the computed bytes are.
//
// Cost when disarmed: every Inject call is a single atomic load and a
// branch — no map lookup, no lock, no allocation. The process-global
// armed bit flips only when a spec arms at least one point, which
// never happens outside tests and chaos runs.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The failpoints planted in the codebase. Arming an unknown name is an
// error, so a renamed plant cannot silently orphan a chaos spec.
const (
	// BlobWrite fires in the blob store before a graph blob is
	// committed (temp file written, pre-rename).
	BlobWrite = "persist.blob.write"
	// Fsync fires in place of every persist-layer fsync.
	Fsync = "persist.fsync"
	// WALAppend fires in the job journal before an accept record is
	// appended.
	WALAppend = "persist.wal.append"
	// WorkerRun fires at the head of job execution, inside the worker's
	// panic guard — mode "panic" exercises the recover path, "sleep"
	// simulates a slow or wedged solver.
	WorkerRun = "worker.run"
	// SSEFlush fires before each /v1/events write+flush cycle.
	SSEFlush = "sse.flush"
)

// knownPoints is the plant registry; ArmSpec rejects names not in it.
var knownPoints = map[string]bool{
	BlobWrite: true,
	Fsync:     true,
	WALAppend: true,
	WorkerRun: true,
	SSEFlush:  true,
}

// ErrInjected is the sentinel wrapped by every error-mode injection.
var ErrInjected = errors.New("fault: injected failure")

// mode is what an armed failpoint does when hit.
type mode int

const (
	modeError mode = iota
	modePanic
	modeSleep
)

// point is one armed failpoint's state; guarded by mu.
type point struct {
	mode      mode
	delay     time.Duration
	remaining int64 // hits left to fire; -1 means unlimited
	hits      int64 // times this point actually fired
}

var (
	// armed is the global fast-path gate: false means every Inject
	// returns nil after one atomic load.
	armed atomic.Bool

	mu     sync.Mutex
	points = map[string]*point{}
)

// Inject fires the named failpoint if it is armed: it returns an
// injected error, panics, or sleeps according to the armed mode, and
// returns nil when the point is disarmed or its hit budget is spent.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	return injectSlow(name)
}

func injectSlow(name string) error {
	mu.Lock()
	p := points[name]
	if p == nil || p.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.hits++
	m, delay := p.mode, p.delay
	mu.Unlock()
	switch m {
	case modePanic:
		panic(fmt.Sprintf("fault: injected panic at %q", name))
	case modeSleep:
		time.Sleep(delay)
		return nil
	default:
		return fmt.Errorf("%w at %q", ErrInjected, name)
	}
}

// Hits returns how many times the named failpoint has fired since it
// was last armed.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	armed.Store(false)
	mu.Unlock()
}

// ArmSpec arms failpoints from a spec string — the form the greedyd
// -failpoints flag and the GREEDYD_FAILPOINTS environment variable
// carry. The grammar is a comma- or semicolon-separated list of
//
//	<name>=<mode>
//
// where <mode> is one of
//
//	error             return ErrInjected
//	panic             panic (exercises recover paths)
//	sleep:<duration>  block for the Go duration (e.g. sleep:50ms)
//
// optionally suffixed with *<count> to fire only the first <count>
// hits (e.g. "persist.fsync=error*2"). An empty spec arms nothing.
func ArmSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, modeSpec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("fault: bad failpoint spec %q (want name=mode)", part)
		}
		name = strings.TrimSpace(name)
		if !knownPoints[name] {
			return fmt.Errorf("fault: unknown failpoint %q", name)
		}
		count := int64(-1)
		if base, c, ok := strings.Cut(modeSpec, "*"); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("fault: bad hit count in %q", part)
			}
			count = n
			modeSpec = base
		}
		p := &point{remaining: count}
		switch {
		case modeSpec == "error":
			p.mode = modeError
		case modeSpec == "panic":
			p.mode = modePanic
		case strings.HasPrefix(modeSpec, "sleep:"):
			d, err := time.ParseDuration(strings.TrimPrefix(modeSpec, "sleep:"))
			if err != nil || d < 0 {
				return fmt.Errorf("fault: bad sleep duration in %q", part)
			}
			p.mode = modeSleep
			p.delay = d
		default:
			return fmt.Errorf("fault: unknown mode %q in %q (want error|panic|sleep:<dur>)", modeSpec, part)
		}
		mu.Lock()
		points[name] = p
		armed.Store(true)
		mu.Unlock()
	}
	return nil
}
