package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Inject(Fsync); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
}

func TestDisarmedAllocsFree(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Inject(WorkerRun); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Inject allocates %.1f objects/op, want 0", allocs)
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("persist.fsync=error"); err != nil {
		t.Fatal(err)
	}
	err := Inject(Fsync)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if got := Hits(Fsync); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
	// Other points stay dark.
	if err := Inject(BlobWrite); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestCountedMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("persist.wal.append=error*2"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(WALAppend); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 1: %v", err)
	}
	if err := Inject(WALAppend); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2: %v", err)
	}
	if err := Inject(WALAppend); err != nil {
		t.Fatalf("hit 3 should be exhausted, got %v", err)
	}
	if got := Hits(WALAppend); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("worker.run=panic*1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected injected panic")
		}
	}()
	_ = Inject(WorkerRun)
}

func TestSleepMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("sse.flush=sleep:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(SSEFlush); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep mode returned after %v, want >= 30ms", d)
	}
}

func TestSpecErrors(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, bad := range []string{
		"nosuch.point=error",
		"persist.fsync",
		"persist.fsync=explode",
		"persist.fsync=sleep:xyz",
		"persist.fsync=error*0",
		"persist.fsync=error*-3",
	} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted", bad)
		}
	}
	// Empty and separator-only specs arm nothing.
	if err := ArmSpec(""); err != nil {
		t.Fatal(err)
	}
	if err := ArmSpec(" ,; "); err != nil {
		t.Fatal(err)
	}
	if armed.Load() {
		t.Fatal("empty spec armed the global gate")
	}
}

func TestMultiPointSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("persist.fsync=error*1, persist.blob.write=error"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(Fsync); !errors.Is(err, ErrInjected) {
		t.Fatalf("fsync: %v", err)
	}
	if err := Inject(BlobWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("blob: %v", err)
	}
}
