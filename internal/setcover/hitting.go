package setcover

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parallel"
)

// Element statuses; monotone undecided -> {in, out} exactly once, with
// the values shared with the engine's outcome codes.
const (
	statusUndecided = engine.Undecided
	statusIn        = engine.Committed
	statusOut       = engine.Dropped
)

// Stats reuses the engine counters (Rounds, Attempts, EdgeInspections —
// here element-of-set inspections — and PrefixSize).
type Stats = core.Stats

// Result is the outcome of a greedy hitting set computation.
type Result struct {
	// InSet[e] reports whether element e is in the hitting set.
	InSet []bool
	// Set lists the chosen elements in increasing element order.
	Set []int32
	// Stats are the run's cost counters.
	Stats Stats
}

func newResult(status []int32, stats Stats) *Result {
	n := len(status)
	in := make([]bool, n)
	parallel.For(n, 4096, func(i int) {
		in[i] = status[i] == statusIn
	})
	set := parallel.PackIndex(n, 4096, func(i int) bool { return in[i] })
	return &Result{InSet: in, Set: set, Stats: stats}
}

// Size returns the number of chosen elements.
func (r *Result) Size() int { return len(r.Set) }

// Equal reports whether two results choose exactly the same elements.
func (r *Result) Equal(other *Result) bool {
	if len(r.InSet) != len(other.InSet) {
		return false
	}
	for i := range r.InSet {
		if r.InSet[i] != other.InSet[i] {
			return false
		}
	}
	return true
}

// Options configures the parallel hitting set algorithm; the fields
// mirror core.Options (PrefixSize/PrefixFrac apply to the number of
// elements).
type Options struct {
	PrefixSize int
	PrefixFrac float64
	Grain      int
	// Adaptive replaces the fixed window with the engine's measured
	// schedule (see core.Options.Adaptive); the hitting set stays
	// bit-identical to the sequential greedy one for every schedule.
	Adaptive bool
	// OnRound, if non-nil, is called after every round with that round's
	// statistics (see core.RoundStat), on the round loop's goroutine.
	OnRound func(core.RoundStat)
	// Clock, if non-nil, enables the engine's per-phase wall-time
	// attribution (see engine.Options.Clock); telemetry-only, injected
	// by the caller.
	Clock func() int64
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs. nil means allocate fresh buffers.
	Workspace *Workspace
}

// engineOptions translates the options into the engine's form, wiring
// the pooled window buffers when ws is non-nil.
func (o Options) engineOptions(ws *engine.Workspace) engine.Options {
	return engine.Options{
		PrefixSize: o.PrefixSize,
		PrefixFrac: o.PrefixFrac,
		Adaptive:   o.Adaptive,
		Grain:      o.Grain,
		OnRound:    o.OnRound,
		Clock:      o.Clock,
		Workspace:  ws,
	}
}

// seqCancelMask paces the sequential scan's cancellation checks, as in
// core.SequentialMISCtx.
const seqCancelMask = 1<<12 - 1

// SequentialHittingSet computes the greedy hitting set of s under ord:
// elements in priority order, each joining the hitting set exactly when
// some set containing it is not yet hit.
func SequentialHittingSet(s *System, ord core.Order) *Result {
	res, err := SequentialHittingSetCtx(context.Background(), s, ord, Options{})
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// SequentialHittingSetCtx is SequentialHittingSet with cooperative
// cancellation (ctx is checked every few thousand elements). Pooled
// buffers come from opt.Workspace when set.
func SequentialHittingSetCtx(ctx context.Context, s *System, ord core.Order, opt Options) (*Result, error) {
	n := s.NumElements()
	if ord.Len() != n {
		panic("setcover: order size does not match system")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := engine.Grow32(&ws.status, n)
	engine.Fill32(status, statusUndecided)
	hit := engine.Grow32(&ws.hit, s.NumSets())
	engine.Fill32(hit, 0)

	var inspections int64
	for r := 0; r < n; r++ {
		if r&seqCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := ord.Order[r]
		needed := false
		for _, id := range s.SetsOf(e) {
			inspections++
			if hit[id] == 0 {
				needed = true
				break
			}
		}
		if needed {
			status[e] = statusIn
			for _, id := range s.SetsOf(e) {
				hit[id] = 1
			}
		} else {
			status[e] = statusOut
		}
	}
	return newResult(status, Stats{
		Rounds:          int64(n),
		Attempts:        int64(n),
		EdgeInspections: inspections,
	}), nil
}

// PrefixHittingSet computes the greedy hitting set with the
// prefix-based speculative engine. Each round, every active element
// examines its sets against the earlier-priority elements of each:
//
//   - if some set containing the element has ALL of its earlier
//     elements decided out, that set is definitely unhit when the
//     element's sequential turn comes, so the element joins the
//     hitting set (vacuously, a set with no earlier elements);
//   - if every set containing the element is already hit by an earlier
//     element that is in, the element is definitely redundant and
//     drops out (vacuously, an element contained in no set);
//   - otherwise some set's fate still depends on an undecided earlier
//     element, and the element retries next round.
//
// The earliest active element always decides, so the loop makes
// progress, and because an element decides only from final
// earlier-priority state the result equals the sequential greedy
// hitting set for every window schedule, grain and thread count.
func PrefixHittingSet(s *System, ord core.Order, opt Options) *Result {
	res, err := PrefixHittingSetCtx(context.Background(), s, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixHittingSetCtx is PrefixHittingSet with cooperative
// cancellation: ctx is checked once per round, so a cancelled context
// aborts within one round and returns ctx.Err(). Pooled buffers come
// from opt.Workspace when set.
func PrefixHittingSetCtx(ctx context.Context, s *System, ord core.Order, opt Options) (*Result, error) {
	n := s.NumElements()
	if ord.Len() != n {
		panic("setcover: order size does not match system")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	status := engine.Grow32(&ws.status, n)
	engine.Fill32(status, statusUndecided)

	prob := &hsProblem{sys: s, rank: ord.Rank, status: status}
	stats, err := engine.Run(ctx, ord.Order, prob, opt.engineOptions(&ws.eng))
	if err != nil {
		return nil, err
	}
	return newResult(status, stats), nil
}

// hsProblem is the engine adapter for greedy hitting set. Like the MIS
// problem it needs no atomics: the check phase reads only statuses
// written in previous rounds and the commit phase writes each element's
// own status, with the engine's fork-join barrier as the only
// synchronization.
type hsProblem struct {
	sys    *System
	rank   []int32
	status []int32
}

func (p *hsProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		var insp int64
		outcome[i], insp = checkHitting(p.sys, act[i], p.rank, p.status)
		local += insp
	}
	return local
}

func (p *hsProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != statusUndecided {
			p.status[act[i]] = outcome[i]
		}
	}
	return 0
}

// checkHitting decides element e against the earlier-priority elements
// of its sets; see PrefixHittingSet for the rule. Returns the decision
// (statusUndecided to retry) and the number of element inspections.
func checkHitting(s *System, e int32, rank []int32, status []int32) (int32, int64) {
	re := rank[e]
	var inspections int64
	allHit := true
	for _, id := range s.SetsOf(e) {
		allEarlierOut := true
		hitByEarlier := false
		for _, x := range s.ElemsOf(id) {
			if rank[x] >= re {
				continue
			}
			inspections++
			switch status[x] {
			case statusIn:
				hitByEarlier = true
			case statusUndecided:
				allEarlierOut = false
			default: // out: keeps allEarlierOut
			}
			if hitByEarlier {
				break
			}
		}
		if hitByEarlier {
			continue
		}
		if allEarlierOut {
			// Definitely unhit at e's sequential turn: e is needed.
			return statusIn, inspections
		}
		allHit = false
	}
	if allHit {
		return statusOut, inspections
	}
	return statusUndecided, inspections
}
