package setcover

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// randomSystem builds a random set system with n elements and m sets of
// size up to k, deterministic in seed. Some elements may appear in no
// set and some sets may be empty.
func randomSystem(n, m, k int, seed uint64) *System {
	x := rng.NewXoshiro256(seed)
	sets := make([][]int32, m)
	for i := range sets {
		sz := x.Intn(k + 1)
		set := make([]int32, 0, sz)
		for j := 0; j < sz; j++ {
			set = append(set, int32(x.Intn(n)))
		}
		sets[i] = set
	}
	return MustFromSets(n, sets)
}

func testSystems(tb testing.TB) map[string]*System {
	return map[string]*System{
		"random":     randomSystem(500, 300, 6, 11),
		"wide":       randomSystem(200, 40, 30, 7),
		"singleton":  randomSystem(100, 400, 1, 3),
		"vertexcov":  FromEdges(graph.Random(400, 1600, 5).EdgeList()),
		"gridcov":    FromEdges(graph.Grid2D(20, 20).EdgeList()),
		"emptysets":  MustFromSets(50, [][]int32{{}, {3, 4}, {}, {10}}),
		"nosets":     MustFromSets(64, nil),
		"duplicates": MustFromSets(8, [][]int32{{1, 1, 2}, {2, 2}, {0, 7, 7}}),
	}
}

// The prefix hitting set must equal the sequential greedy one for every
// prefix size, fraction and grain — the engine-parity oracle for the
// hitting set problem.
func TestPrefixHittingSetMatchesSequential(t *testing.T) {
	for name, s := range testSystems(t) {
		n := s.NumElements()
		ord := core.NewRandomOrder(n, 99)
		want := SequentialHittingSet(s, ord)
		if err := s.Verify(want.InSet); err != nil {
			t.Fatalf("%s: sequential reference invalid: %v", name, err)
		}
		for _, opt := range []Options{
			{PrefixSize: 1},
			{PrefixSize: 7, Grain: 3},
			{PrefixFrac: 0.01},
			{PrefixFrac: 0.2, Grain: 17},
			{PrefixFrac: 1},
			{Adaptive: true},
			{Adaptive: true, PrefixFrac: 0.05},
		} {
			got := PrefixHittingSet(s, ord, opt)
			if !got.Equal(want) {
				t.Fatalf("%s opts %+v: prefix hitting set differs from sequential (%d vs %d)", name, opt, got.Size(), want.Size())
			}
			if err := s.Verify(got.InSet); err != nil {
				t.Fatalf("%s opts %+v: %v", name, opt, err)
			}
		}
	}
}

// Determinism across thread counts: the paper's central claim carries
// to the hitting set problem on the shared engine.
func TestPrefixHittingSetThreadIndependent(t *testing.T) {
	s := randomSystem(900, 700, 8, 21)
	ord := core.NewRandomOrder(900, 5)
	want := SequentialHittingSet(s, ord)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		got := PrefixHittingSet(s, ord, Options{PrefixFrac: 0.05, Grain: 7})
		if !got.Equal(want) {
			t.Fatalf("GOMAXPROCS=%d: hitting set differs from sequential", procs)
		}
		adaptive := PrefixHittingSet(s, ord, Options{Adaptive: true})
		if !adaptive.Equal(want) {
			t.Fatalf("GOMAXPROCS=%d: adaptive hitting set differs from sequential", procs)
		}
	}
}

// Greedy vertex cover via FromEdges: the chosen elements must cover
// every edge.
func TestHittingSetCoversEdges(t *testing.T) {
	g := graph.Random(300, 1200, 9)
	el := g.EdgeList()
	s := FromEdges(el)
	ord := core.NewRandomOrder(s.NumElements(), 13)
	res := PrefixHittingSet(s, ord, Options{})
	for _, e := range el.Edges {
		if !res.InSet[e.U] && !res.InSet[e.V] {
			t.Fatalf("edge {%d,%d} uncovered", e.U, e.V)
		}
	}
}

// Workspace reuse must not leak state between runs.
func TestHittingSetWorkspaceReuse(t *testing.T) {
	ws := new(Workspace)
	big := randomSystem(500, 350, 6, 1)
	small := randomSystem(40, 30, 4, 2)
	bigOrd := core.NewRandomOrder(500, 1)
	smallOrd := core.NewRandomOrder(40, 2)
	wantBig := SequentialHittingSet(big, bigOrd)
	wantSmall := SequentialHittingSet(small, smallOrd)
	for i := 0; i < 3; i++ {
		if got := PrefixHittingSet(big, bigOrd, Options{Workspace: ws, PrefixFrac: 0.1}); !got.Equal(wantBig) {
			t.Fatalf("run %d big: pooled run differs", i)
		}
		if got := PrefixHittingSet(small, smallOrd, Options{Workspace: ws, Adaptive: true}); !got.Equal(wantSmall) {
			t.Fatalf("run %d small: pooled run differs", i)
		}
	}
}

// Cancellation aborts within a round with ctx.Err().
func TestPrefixHittingSetCancel(t *testing.T) {
	s := randomSystem(400, 300, 5, 9)
	ord := core.NewRandomOrder(400, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrefixHittingSetCtx(ctx, s, ord, Options{}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := SequentialHittingSetCtx(ctx, s, ord, Options{}); err != context.Canceled {
		t.Fatalf("sequential: want context.Canceled, got %v", err)
	}
}

// FromSets validates element ids.
func TestFromSetsValidation(t *testing.T) {
	if _, err := FromSets(4, [][]int32{{0, 4}}); err == nil {
		t.Fatal("want error for out-of-range element")
	}
	if _, err := FromSets(4, [][]int32{{-1}}); err == nil {
		t.Fatal("want error for negative element")
	}
	if _, err := FromSets(-1, nil); err == nil {
		t.Fatal("want error for negative universe")
	}
}

// The dual CSR must invert correctly.
func TestSystemDual(t *testing.T) {
	s := MustFromSets(5, [][]int32{{0, 1}, {1, 2, 3}, {3}})
	if got := s.SetsOf(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SetsOf(1) = %v", got)
	}
	if got := s.SetsOf(4); len(got) != 0 {
		t.Fatalf("SetsOf(4) = %v", got)
	}
	if got := s.ElemsOf(1); len(got) != 3 {
		t.Fatalf("ElemsOf(1) = %v", got)
	}
}

func BenchmarkPrefixHittingSet(b *testing.B) {
	s := FromEdges(graph.Random(20000, 100000, 42).EdgeList())
	ord := core.NewRandomOrder(s.NumElements(), 42)
	ws := new(Workspace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixHittingSet(s, ord, Options{Workspace: ws})
	}
}
