// Package setcover implements greedy hitting set (equivalently, set
// cover over the dual) as a problem on the shared speculative-prefix
// engine (internal/engine): elements are scanned in priority order and
// an element joins the hitting set exactly when some set containing it
// is not yet hit — the classical greedy that underlies the
// element-priority parallel algorithms of Blelloch, Peng and
// Simhadri-style derandomized selection. For a fixed order the parallel
// algorithm returns exactly the sequential greedy hitting set at any
// prefix size, grain and thread count.
//
// The graph problems are special cases: with every edge a two-element
// set over its endpoints, the greedy hitting set is the greedy vertex
// cover of the graph under the vertex order.
package setcover

import (
	"fmt"

	"repro/internal/graph"
)

// System is an immutable set system in dual CSR form: for each element
// the sets containing it, and for each set the elements it contains.
// Use FromSets or FromEdges to construct one.
type System struct {
	numElements int
	numSets     int
	elemOff     []int64 // len numElements+1; delimits elemSets
	elemSets    []int32 // concatenated set ids per element
	setOff      []int64 // len numSets+1; delimits setElems
	setElems    []int32 // concatenated element ids per set
}

// FromSets builds a System over numElements elements from the given
// sets (each a list of element ids). Element ids must lie in
// [0, numElements); duplicate ids within a set are allowed and kept
// (they only cost redundant inspections). Empty sets are allowed: they
// can never be hit and are ignored by the greedy rule and the verifier.
func FromSets(numElements int, sets [][]int32) (*System, error) {
	if numElements < 0 {
		return nil, fmt.Errorf("setcover: negative element count %d", numElements)
	}
	s := &System{
		numElements: numElements,
		numSets:     len(sets),
		elemOff:     make([]int64, numElements+1),
		setOff:      make([]int64, len(sets)+1),
	}
	total := 0
	for i, set := range sets {
		for _, e := range set {
			if e < 0 || int(e) >= numElements {
				return nil, fmt.Errorf("setcover: set %d contains element %d out of range [0,%d)", i, e, numElements)
			}
			s.elemOff[e+1]++
		}
		total += len(set)
		s.setOff[i+1] = s.setOff[i] + int64(len(set))
	}
	for e := 0; e < numElements; e++ {
		s.elemOff[e+1] += s.elemOff[e]
	}
	s.setElems = make([]int32, total)
	s.elemSets = make([]int32, total)
	cursor := make([]int64, numElements)
	for i, set := range sets {
		copy(s.setElems[s.setOff[i]:], set)
		for _, e := range set {
			s.elemSets[s.elemOff[e]+cursor[e]] = int32(i)
			cursor[e]++
		}
	}
	return s, nil
}

// MustFromSets is FromSets, panicking on invalid input.
func MustFromSets(numElements int, sets [][]int32) *System {
	s, err := FromSets(numElements, sets)
	if err != nil {
		panic(err)
	}
	return s
}

// FromEdges builds the vertex-cover system of an edge list: one
// two-element set {U,V} per edge, over the vertices as elements. The
// greedy hitting set of this system is the greedy vertex cover of the
// graph.
func FromEdges(el graph.EdgeList) *System {
	m := el.NumEdges()
	s := &System{
		numElements: el.N,
		numSets:     m,
		elemOff:     make([]int64, el.N+1),
		setOff:      make([]int64, m+1),
		setElems:    make([]int32, 2*m),
		elemSets:    make([]int32, 2*m),
	}
	for _, e := range el.Edges {
		s.elemOff[e.U+1]++
		s.elemOff[e.V+1]++
	}
	for v := 0; v < el.N; v++ {
		s.elemOff[v+1] += s.elemOff[v]
	}
	cursor := make([]int64, el.N)
	for i, e := range el.Edges {
		s.setOff[i+1] = int64(2 * (i + 1))
		s.setElems[2*i] = e.U
		s.setElems[2*i+1] = e.V
		s.elemSets[s.elemOff[e.U]+cursor[e.U]] = int32(i)
		cursor[e.U]++
		s.elemSets[s.elemOff[e.V]+cursor[e.V]] = int32(i)
		cursor[e.V]++
	}
	return s
}

// NumElements returns the number of elements in the universe.
func (s *System) NumElements() int { return s.numElements }

// NumSets returns the number of sets.
func (s *System) NumSets() int { return s.numSets }

// SetsOf returns the ids of the sets containing element e.
func (s *System) SetsOf(e int32) []int32 {
	return s.elemSets[s.elemOff[e]:s.elemOff[e+1]]
}

// ElemsOf returns the element ids of set id.
func (s *System) ElemsOf(id int32) []int32 {
	return s.setElems[s.setOff[id]:s.setOff[id+1]]
}

// Verify checks that inSet is a hitting set of s: every nonempty set
// contains a chosen element. It returns nil on success and a
// descriptive error on the first unhit set.
func (s *System) Verify(inSet []bool) error {
	if len(inSet) != s.numElements {
		return fmt.Errorf("setcover: %d membership bits for %d elements", len(inSet), s.numElements)
	}
	for id := 0; id < s.numSets; id++ {
		elems := s.ElemsOf(int32(id))
		if len(elems) == 0 {
			continue
		}
		hit := false
		for _, e := range elems {
			if inSet[e] {
				hit = true
				break
			}
		}
		if !hit {
			return fmt.Errorf("setcover: set %d not hit", id)
		}
	}
	return nil
}
