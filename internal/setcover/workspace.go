package setcover

import "repro/internal/engine"

// Workspace holds the pooled per-run buffers of the hitting set
// algorithms (element statuses, the sequential reference's hit flags,
// and the engine's window buffers), reused across runs on
// same-or-smaller inputs. Buffers are reinitialized at the start of
// every run, so results are bit-identical to runs on fresh memory;
// Result arrays (InSet, Set) are never pooled. Not safe for concurrent
// use; the zero value is ready.
type Workspace struct {
	status []int32
	hit    []int32
	eng    engine.Workspace
}
