package persist

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/graph"
)

// FuzzWALDecode asserts the journal decoder's crash-safety contract:
// arbitrary bytes — truncated, bit-flipped, or pure garbage — never
// panic or demand absurd memory, and any structurally valid prefix is
// recovered intact.
func FuzzWALDecode(f *testing.F) {
	// Seed with a well-formed journal image.
	var buf bytes.Buffer
	_ = writeRecord(&buf, journalMagic)
	for _, ent := range []walEntry{
		{Op: "accept", Job: "j1", Spec: json.RawMessage(`{"graph_id":"gA"}`)},
		{Op: "accept", Job: "j2", Spec: json.RawMessage(`{"graph_id":"gB"}`)},
		{Op: "done", Job: "j1"},
	} {
		raw, _ := json.Marshal(ent)
		_ = writeRecord(&buf, raw)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a journal"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	// Header claiming a huge payload with no bytes behind it.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		pending := DecodeJournal(data)
		for _, p := range pending {
			if p.ID == "" {
				t.Fatal("decoded a pending job with empty id")
			}
		}
		// Decoding a valid image prefixed by the fuzz corpus's bytes is
		// not meaningful; but re-decoding the decoder's own output must
		// be stable: rebuild a journal from the pending set and check
		// the round trip.
		var rebuilt bytes.Buffer
		_ = writeRecord(&rebuilt, journalMagic)
		for _, p := range pending {
			raw, err := json.Marshal(walEntry{Op: "accept", Job: p.ID, Spec: p.Spec})
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			_ = writeRecord(&rebuilt, raw)
		}
		again := DecodeJournal(rebuilt.Bytes())
		if len(again) != len(pending) {
			t.Fatalf("round trip changed pending count: %d -> %d", len(pending), len(again))
		}
		for i := range again {
			if again[i].ID != pending[i].ID {
				t.Fatalf("round trip reordered: %q -> %q", pending[i].ID, again[i].ID)
			}
		}
	})
}

// FuzzBlobDecode asserts the blob decoder never panics or OOMs on
// arbitrary input, and that damage is always reported as an error —
// never as a silently different graph.
func FuzzBlobDecode(f *testing.F) {
	g := graph.Random(50, 150, 7)
	var buf bytes.Buffer
	meta := BlobMeta{ID: "gfuzz", N: g.NumVertices(), M: g.NumEdges(), Bytes: graphBytesFor(g)}
	metaRaw, _ := json.Marshal(meta)
	var payload bytes.Buffer
	_ = graph.WriteBinary(&payload, g)
	_ = writeRecord(&buf, blobMagic)
	_ = writeRecord(&buf, metaRaw)
	_ = writeRecord(&buf, payload.Bytes())
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte{})
	f.Add([]byte("not a blob"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-20] ^= 0x04
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, dg, err := DecodeBlob(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must be internally consistent.
		if dg == nil {
			t.Fatal("nil graph with nil error")
		}
		if dg.NumVertices() != m.N || dg.NumEdges() != m.M {
			t.Fatalf("decoded graph shape (n=%d m=%d) disagrees with meta (n=%d m=%d)",
				dg.NumVertices(), dg.NumEdges(), m.N, m.M)
		}
	})
}

func graphBytesFor(g *graph.Graph) int64 {
	offsets, adj := g.Raw()
	return int64(len(offsets))*8 + int64(len(adj))*4
}
