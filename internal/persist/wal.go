package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
)

// The job journal is an append-only WAL of accepted job specs. One
// record per event:
//
//	{"op":"accept","job":"j17","spec":{...}}   fsync'd before the 202
//	{"op":"done","job":"j17"}                  appended, not fsync'd
//
// The asymmetry is deliberate: losing an accept record would break the
// acknowledgment contract ("202 means eventually served"), so accepts
// hit disk before the handler answers. Losing a done record merely
// means a completed job is recomputed on recovery — byte-identical by
// the determinism guarantee, so the only cost is wasted work, and the
// fsync saved on every completion is worth it.
//
// Replay uses set semantics (pending = accepts − dones) rather than
// ordering assumptions: a worker can finish job A after job B was
// accepted, so done records legally interleave arbitrarily with
// accepts.

// journalMagic is the first record of a journal file.
var journalMagic = []byte("greedyjournal\x01")

// walEntry is the JSON payload of one journal record.
type walEntry struct {
	Op   string          `json:"op"` // "accept" | "done"
	Job  string          `json:"job"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// PendingJob is one acknowledged-but-unfinished job recovered from the
// journal: its original id (so GET /v1/jobs/{id} survives the restart)
// and its spec, opaque to this package.
type PendingJob struct {
	ID   string
	Spec json.RawMessage
}

// compactThreshold triggers an in-place journal rewrite: once at least
// this many done records have accumulated and they outnumber the
// pending set, the journal is rewritten with only the pending accepts.
const compactThreshold = 4096

// Journal is the durable job WAL. All methods are safe for concurrent
// use; Accept serializes its append+fsync under one mutex, which also
// batches nothing — the contract is strict write-ahead, one fsync per
// acknowledgment.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer

	pending map[string]json.RawMessage // accepted, not yet done
	order   []string                   // accept order of pending ids
	dones   int                        // done records in the live file

	appends     int64 // accept records written (metrics)
	compactions int64 // journal rewrites performed (metrics)
}

// OpenJournal opens (creating if needed) the journal at path, replays
// it, and compacts away any recovered-as-done garbage plus any corrupt
// tail. The returned pending list is every acknowledged job the
// process died owing, in acceptance order.
func OpenJournal(path string) (*Journal, []PendingJob, error) {
	j := &Journal{path: path, pending: make(map[string]json.RawMessage)}
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		raw = nil
	case err != nil:
		return nil, nil, fmt.Errorf("persist: reading journal: %w", err)
	}
	valid := 0
	if len(raw) > 0 {
		valid = j.replay(raw)
	}
	// A rewrite on open serves two purposes: it truncates a corrupt
	// tail (valid < len(raw)) and drops completed entries, so a crash
	// loop cannot grow the journal without bound.
	if err := j.rewriteLocked(); err != nil {
		return nil, nil, err
	}
	pending := make([]PendingJob, 0, len(j.order))
	for _, id := range j.order {
		pending = append(pending, PendingJob{ID: id, Spec: j.pending[id]})
	}
	_ = valid
	return j, pending, nil
}

// replay scans raw, populating the pending set, and returns the byte
// offset of the last structurally valid record. Corruption mid-file
// stops the scan: everything after the first damaged record is
// untrusted (lengths no longer frame reliably).
func (j *Journal) replay(raw []byte) int {
	r := bytes.NewReader(raw)
	total := len(raw)
	sawMagic := false
	var buf []byte
	for {
		offset := total - r.Len()
		var err error
		buf, err = readRecord(r, buf)
		if err != nil {
			return offset
		}
		if !sawMagic {
			if !bytes.Equal(buf, journalMagic) {
				return 0
			}
			sawMagic = true
			continue
		}
		var ent walEntry
		if err := json.Unmarshal(buf, &ent); err != nil || ent.Job == "" {
			return offset
		}
		switch ent.Op {
		case "accept":
			if _, ok := j.pending[ent.Job]; !ok {
				j.order = append(j.order, ent.Job)
			}
			j.pending[ent.Job] = append(json.RawMessage(nil), ent.Spec...)
		case "done":
			j.dropPendingLocked(ent.Job)
		default:
			return offset
		}
	}
}

func (j *Journal) dropPendingLocked(id string) {
	if _, ok := j.pending[id]; !ok {
		return
	}
	delete(j.pending, id)
	for i, k := range j.order {
		if k == id {
			j.order = append(j.order[:i], j.order[i+1:]...)
			break
		}
	}
}

// rewriteLocked replaces the journal file with magic + one accept per
// pending job, via temp+fsync+rename. Callers hold j.mu (or, on open,
// have exclusive ownership).
func (j *Journal) rewriteLocked() error {
	dir := filepath.Dir(j.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := writeRecord(bw, journalMagic); err != nil {
		cleanup()
		return err
	}
	for _, id := range j.order {
		raw, err := json.Marshal(walEntry{Op: "accept", Job: id, Spec: j.pending[id]})
		if err != nil {
			cleanup()
			return err
		}
		if err := writeRecord(bw, raw); err != nil {
			cleanup()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		cleanup()
		return err
	}
	if err := syncFile(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	_ = syncDir(dir)
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f, j.w = nil, nil
		return err
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 1<<16)
	j.dones = 0
	return nil
}

// Accept journals an accepted job spec and fsyncs before returning:
// when Accept returns nil the acknowledgment is durable.
func (j *Journal) Accept(id string, spec any) error {
	if err := fault.Inject(fault.WALAppend); err != nil {
		return err
	}
	rawSpec, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(walEntry{Op: "accept", Job: id, Spec: rawSpec})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return fmt.Errorf("persist: journal closed")
	}
	if err := writeRecord(j.w, raw); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := syncFile(j.f); err != nil {
		return err
	}
	if _, ok := j.pending[id]; !ok {
		j.order = append(j.order, id)
	}
	j.pending[id] = rawSpec
	j.appends++
	return nil
}

// Complete journals a completion marker. Not fsync'd: a lost marker
// costs one redundant (byte-identical) recomputation on recovery.
// Opportunistically compacts once enough done records accumulate.
func (j *Journal) Complete(id string) error {
	raw, err := json.Marshal(walEntry{Op: "done", Job: id})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return fmt.Errorf("persist: journal closed")
	}
	if err := writeRecord(j.w, raw); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.dropPendingLocked(id)
	j.dones++
	if j.dones >= compactThreshold && j.dones > len(j.pending) {
		if err := j.rewriteLocked(); err != nil {
			return err
		}
		j.compactions++
	}
	return nil
}

// PendingCount returns the number of acknowledged-but-unfinished jobs
// the journal currently tracks.
func (j *Journal) PendingCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Counters returns (accept appends, compactions) for metrics.
func (j *Journal) Counters() (appends, compactions int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends, j.compactions
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f, j.w = nil, nil
	return err
}

// DecodeJournal replays a raw journal image and returns the pending
// set, in acceptance order. Exported for the fuzz harness; OpenJournal
// is the production entry point. Corrupt tails are tolerated exactly
// as on open: the valid prefix wins.
func DecodeJournal(raw []byte) []PendingJob {
	j := &Journal{pending: make(map[string]json.RawMessage)}
	j.replay(raw)
	out := make([]PendingJob, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, PendingJob{ID: id, Spec: j.pending[id]})
	}
	return out
}
