// Package persist is greedyd's crash-safe durability layer: a
// checksummed record format, a content-addressed graph blob store, an
// append-only job journal, and a patch-lineage log, all rooted in one
// data directory.
//
// The design leans on the paper's determinism guarantee the same way
// the serving layer does: a job is fully described by its spec, and an
// equal spec recomputes byte-identical results on any machine at any
// thread count. Durability therefore only has to preserve *inputs*
// (graphs, accepted job specs, patch lineage) — results are recovered
// by recomputation, which is sound where replaying stored outputs
// would merely be hopeful.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record format: every durable file is a sequence of
//
//	u32 payload length (little-endian)
//	u32 CRC32-Castagnoli of the payload
//	payload bytes
//
// A reader that hits a short header at a record boundary sees a clean
// io.EOF; anything else — short payload, implausible length, checksum
// mismatch — is ErrCorrupt, and replay recovers the valid prefix.

// recordHeaderLen is the fixed per-record framing overhead.
const recordHeaderLen = 8

// maxRecordLen caps a single record's payload. Large enough for the
// biggest graph blob the service accepts (uploads are capped well
// below), small enough that a garbage length field cannot demand an
// absurd allocation.
const maxRecordLen = 1 << 31

// readChunk bounds each allocation step while reading a payload, so a
// corrupt length field costs at most one chunk of memory beyond the
// bytes actually present in the file.
const readChunk = 1 << 20

// ErrCorrupt marks a structurally broken record: truncated mid-record,
// an implausible length, or a checksum mismatch.
var ErrCorrupt = errors.New("persist: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeRecord appends one framed record to w.
func writeRecord(w io.Writer, payload []byte) error {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// recordLen returns the on-disk size of a record with the given
// payload length.
func recordLen(payload int) int64 { return recordHeaderLen + int64(payload) }

// readRecord reads the next record from r, reusing buf's storage when
// it is large enough. It returns io.EOF at a clean record boundary and
// a wrapped ErrCorrupt for everything structurally wrong. Payloads are
// read in bounded chunks so a lying length field never provokes a
// single huge allocation.
func readRecord(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if uint64(n) > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	need := int(n)
	if cap(buf) >= need {
		buf = buf[:0]
	} else {
		buf = make([]byte, 0, min(need, readChunk))
	}
	for len(buf) < need {
		chunk := min(need-len(buf), readChunk)
		start := len(buf)
		if cap(buf) < start+chunk {
			grown := make([]byte, start, min(need, cap(buf)*2+chunk))
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+chunk]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes): %v", ErrCorrupt, start, need, err)
		}
	}
	if crc32.Checksum(buf, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return buf, nil
}
