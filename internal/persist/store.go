package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is one data directory's worth of durability:
//
//	<dir>/graphs/<id>.blob   content-addressed graph blobs
//	<dir>/jobs.wal           acknowledged-job journal
//	<dir>/lineage.wal        patch-derivation log
//
// A nil *Store is the disabled state: greedyd without -data-dir never
// constructs one, and every caller in the service layer nil-checks, so
// the persistence-off hot path does no persistence work at all.
type Store struct {
	dir     string
	blobs   *BlobStore
	journal *Journal
	lineage *LineageLog
}

// Open opens (creating if needed) the data directory and replays its
// journal and lineage log. The returned pending jobs are every
// acknowledged-but-unfinished job a previous process died owing;
// lineage records rebuild the patch-derivation index.
func Open(dir string) (*Store, []PendingJob, []LineageRecord, error) {
	if dir == "" {
		return nil, nil, nil, fmt.Errorf("persist: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	blobs, err := newBlobStore(filepath.Join(dir, "graphs"))
	if err != nil {
		return nil, nil, nil, err
	}
	journal, pending, err := OpenJournal(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		return nil, nil, nil, err
	}
	lineage, recs, err := OpenLineage(filepath.Join(dir, "lineage.wal"))
	if err != nil {
		journal.Close()
		return nil, nil, nil, err
	}
	return &Store{dir: dir, blobs: blobs, journal: journal, lineage: lineage}, pending, recs, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

// Blobs returns the graph blob tier.
func (s *Store) Blobs() *BlobStore { return s.blobs }

// Journal returns the job WAL.
func (s *Store) Journal() *Journal { return s.journal }

// Lineage returns the derivation log.
func (s *Store) Lineage() *LineageLog { return s.lineage }

// Close closes the journal and lineage log. Blob files hold no open
// handles between operations.
func (s *Store) Close() error {
	err := s.journal.Close()
	if lerr := s.lineage.Close(); err == nil {
		err = lerr
	}
	return err
}
