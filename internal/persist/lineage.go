package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The lineage log remembers how patched graph versions were derived
// (child ← parent + update batch), so the engine's dynamic-session
// repair survives a restart: without it every post-restart dynamic job
// recomputes from scratch — still correct, just slower. Because
// lineage is an optimization, appends are not fsync'd; a lost tail
// only costs repair opportunities.

// lineageMagic is the first record of a lineage log file.
var lineageMagic = []byte("greedylineage\x01")

// LineageUpdate is one edge update of a recorded patch, mirroring
// dynamic.Update without importing it (persist stays algorithm-free).
type LineageUpdate struct {
	Op string `json:"op"` // "add" | "del"
	U  int32  `json:"u"`
	V  int32  `json:"v"`
}

// LineageRecord is one derivation: Child was produced by applying
// Updates to Parent.
type LineageRecord struct {
	Child   string          `json:"child"`
	Parent  string          `json:"parent"`
	Updates []LineageUpdate `json:"updates"`
}

// LineageLog is the append-only derivation log.
type LineageLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	recs int64
}

// OpenLineage opens (creating if needed) the log at path and returns
// the replayed records, oldest first. A corrupt tail is truncated away
// on the next append cycle's natural overwrite — records after damage
// are simply not replayed.
func OpenLineage(path string) (*LineageLog, []LineageRecord, error) {
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		raw = nil
	case err != nil:
		return nil, nil, fmt.Errorf("persist: reading lineage log: %w", err)
	}
	recs, valid := DecodeLineage(raw)
	// Truncate any corrupt tail so future appends frame correctly.
	if valid < len(raw) {
		if err := os.WriteFile(path, raw[:valid], 0o644); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &LineageLog{f: f, w: bufio.NewWriterSize(f, 1<<14), recs: int64(len(recs))}
	if valid == 0 {
		if err := writeRecord(l.w, lineageMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := l.w.Flush(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return l, recs, nil
}

// DecodeLineage replays a raw lineage image, returning the valid
// records and the byte offset of the valid prefix. Exported for the
// fuzz harness.
func DecodeLineage(raw []byte) ([]LineageRecord, int) {
	if len(raw) == 0 {
		return nil, 0
	}
	r := bytes.NewReader(raw)
	total := len(raw)
	sawMagic := false
	var recs []LineageRecord
	var buf []byte
	for {
		offset := total - r.Len()
		var err error
		buf, err = readRecord(r, buf)
		if err != nil {
			return recs, offset
		}
		if !sawMagic {
			if !bytes.Equal(buf, lineageMagic) {
				return nil, 0
			}
			sawMagic = true
			continue
		}
		var rec LineageRecord
		if err := json.Unmarshal(buf, &rec); err != nil || rec.Child == "" || rec.Parent == "" {
			return recs, offset
		}
		recs = append(recs, rec)
	}
}

// Append records one derivation. Flushed but not fsync'd.
func (l *LineageLog) Append(rec LineageRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return fmt.Errorf("persist: lineage log closed")
	}
	if err := writeRecord(l.w, raw); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.recs++
	return nil
}

// Close flushes and closes the log.
func (l *LineageLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	err := l.w.Flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w = nil, nil
	return err
}
