package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/graph"
)

// BlobMeta is the head record of a graph blob: everything the registry
// needs to index a graph without loading its CSR arrays.
type BlobMeta struct {
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Bytes int64  `json:"bytes"`
}

// blobMagic is the first record of every blob file: a format sentinel
// so a foreign file in the graphs directory is rejected, with a
// version byte for future evolution.
var blobMagic = []byte("greedyblob\x01")

// blobSuffix names blob files; anything else in the directory is
// ignored (temp files carry a different suffix until renamed).
const blobSuffix = ".blob"

// BlobStore is the content-addressed graph tier on disk: one file per
// graph id, each a magic record, a JSON BlobMeta record, and the
// graph's binary serialization. Files are written to a temp name,
// fsynced, and renamed, so a crash mid-write never leaves a partial
// blob under a live name.
type BlobStore struct {
	dir string
}

// newBlobStore creates/opens the blob directory.
func newBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating blob dir: %w", err)
	}
	return &BlobStore{dir: dir}, nil
}

func (b *BlobStore) path(id string) string {
	return filepath.Join(b.dir, id+blobSuffix)
}

// Has reports whether a committed blob exists for id.
func (b *BlobStore) Has(id string) bool {
	_, err := os.Stat(b.path(id))
	return err == nil
}

// Put durably stores g under meta.ID. Present blobs are left alone
// (content addressing: same id means same bytes). The file hits disk —
// fsync on both the file and its directory — before Put returns.
func (b *BlobStore) Put(meta BlobMeta, g *graph.Graph) error {
	if meta.ID == "" || strings.ContainsAny(meta.ID, `/\`) {
		return fmt.Errorf("persist: bad blob id %q", meta.ID)
	}
	final := b.path(meta.ID)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	if err := fault.Inject(fault.BlobWrite); err != nil {
		return err
	}
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	payload.Grow(int(meta.Bytes) + 64)
	if err := graph.WriteBinary(&payload, g); err != nil {
		return err
	}
	f, err := os.CreateTemp(b.dir, meta.ID+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	for _, rec := range [][]byte{blobMagic, metaRaw, payload.Bytes()} {
		if err := writeRecord(f, rec); err != nil {
			cleanup()
			return err
		}
	}
	if err := syncFile(f); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(b.dir)
}

// Load reads the graph stored under id.
func (b *BlobStore) Load(id string) (BlobMeta, *graph.Graph, error) {
	f, err := os.Open(b.path(id))
	if err != nil {
		return BlobMeta{}, nil, err
	}
	defer f.Close()
	meta, g, err := DecodeBlob(f)
	if err != nil {
		return BlobMeta{}, nil, fmt.Errorf("persist: blob %s: %w", id, err)
	}
	return meta, g, nil
}

// DecodeBlob decodes a full blob stream: magic, meta, graph. Exported
// for the fuzz harness; Load wraps it with file handling.
func DecodeBlob(r io.Reader) (BlobMeta, *graph.Graph, error) {
	meta, err := decodeBlobHead(r)
	if err != nil {
		return BlobMeta{}, nil, err
	}
	raw, err := readRecord(r, nil)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: missing graph record", ErrCorrupt)
		}
		return BlobMeta{}, nil, err
	}
	g, err := graph.ReadBinary(bytes.NewReader(raw))
	if err != nil {
		return BlobMeta{}, nil, fmt.Errorf("%w: graph payload: %v", ErrCorrupt, err)
	}
	if g.NumVertices() != meta.N || g.NumEdges() != meta.M {
		return BlobMeta{}, nil, fmt.Errorf("%w: meta says n=%d m=%d, graph has n=%d m=%d",
			ErrCorrupt, meta.N, meta.M, g.NumVertices(), g.NumEdges())
	}
	return meta, g, nil
}

// decodeBlobHead reads the magic and meta records only — the cheap
// part rehydration needs for every blob on boot.
func decodeBlobHead(r io.Reader) (BlobMeta, error) {
	magic, err := readRecord(r, nil)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: empty blob", ErrCorrupt)
		}
		return BlobMeta{}, err
	}
	if !bytes.Equal(magic, blobMagic) {
		return BlobMeta{}, fmt.Errorf("%w: not a graph blob", ErrCorrupt)
	}
	raw, err := readRecord(r, nil)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: missing meta record", ErrCorrupt)
		}
		return BlobMeta{}, err
	}
	var meta BlobMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return BlobMeta{}, fmt.Errorf("%w: meta record: %v", ErrCorrupt, err)
	}
	if meta.ID == "" || meta.N < 0 || meta.M < 0 || meta.Bytes < 0 {
		return BlobMeta{}, fmt.Errorf("%w: implausible meta %+v", ErrCorrupt, meta)
	}
	return meta, nil
}

// Metas scans the blob directory and returns the head metadata of
// every readable blob, sorted by id. Unreadable or corrupt blobs are
// skipped (and reported) rather than failing the boot: one damaged
// file must not take the whole registry down.
func (b *BlobStore) Metas() (metas []BlobMeta, skipped []string, err error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, blobSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, blobSuffix)
		meta, err := b.loadHead(id)
		if err != nil || meta.ID != id {
			skipped = append(skipped, name)
			continue
		}
		metas = append(metas, meta)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	return metas, skipped, nil
}

func (b *BlobStore) loadHead(id string) (BlobMeta, error) {
	f, err := os.Open(b.path(id))
	if err != nil {
		return BlobMeta{}, err
	}
	defer f.Close()
	return decodeBlobHead(f)
}

// syncFile is the persist layer's single fsync seam (and failpoint
// plant).
func syncFile(f *os.File) error {
	if err := fault.Inject(fault.Fsync); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable. Some filesystems reject directory fsync; that is not a
// correctness problem for content-addressed blobs (a lost entry is
// re-written on next Put), so the error is swallowed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
