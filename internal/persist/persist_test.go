package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 3<<20)}
	for _, p := range payloads {
		if err := writeRecord(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	for i, want := range payloads {
		got, err := readRecord(r, scratch)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
		scratch = got
	}
	if _, err := readRecord(r, scratch); err != io.EOF {
		t.Fatalf("want clean EOF at boundary, got %v", err)
	}
}

func TestRecordCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeRecord(&buf, []byte("the payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation anywhere except offset 0 (clean EOF) is ErrCorrupt.
	for cut := 1; cut < len(full); cut++ {
		_, err := readRecord(bytes.NewReader(full[:cut]), nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	// A bit flip in the payload breaks the checksum; in the header it
	// breaks framing or the checksum. Either way: ErrCorrupt.
	for i := range full {
		flipped := append([]byte(nil), full...)
		flipped[i] ^= 0x40
		if _, err := readRecord(bytes.NewReader(flipped), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", i, err)
		}
	}
}

func TestBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := newBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(500, 2000, 42)
	meta := BlobMeta{ID: "gtest", Label: "unit", N: g.NumVertices(), M: g.NumEdges(), Bytes: 12345}
	if err := b.Put(meta, g); err != nil {
		t.Fatal(err)
	}
	if !b.Has("gtest") {
		t.Fatal("Has = false after Put")
	}
	got, g2, err := b.Load("gtest")
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got, meta)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("graph shape mismatch")
	}
	o1, a1 := g.Raw()
	o2, a2 := g2.Raw()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("offset %d differs", i)
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("adj %d differs", i)
		}
	}

	metas, skipped, err := b.Metas()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(metas) != 1 || metas[0] != meta {
		t.Fatalf("Metas = %+v skipped %v", metas, skipped)
	}
}

func TestBlobPutIdempotentAndBadIDs(t *testing.T) {
	dir := t.TempDir()
	b, err := newBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(10, 20, 1)
	meta := BlobMeta{ID: "gx", N: g.NumVertices(), M: g.NumEdges()}
	if err := b.Put(meta, g); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(meta, g); err != nil {
		t.Fatalf("second Put: %v", err)
	}
	for _, bad := range []string{"", "a/b", `a\b`, "../x"} {
		if err := b.Put(BlobMeta{ID: bad, N: 10, M: 20}, g); err == nil {
			t.Errorf("Put accepted id %q", bad)
		}
	}
}

func TestBlobCorruptFileSkippedInMetas(t *testing.T) {
	dir := t.TempDir()
	b, err := newBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random(20, 40, 3)
	if err := b.Put(BlobMeta{ID: "good", N: g.NumVertices(), M: g.NumEdges()}, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.blob"), []byte("not a blob at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	metas, skipped, err := b.Metas()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].ID != "good" {
		t.Fatalf("metas = %+v", metas)
	}
	if len(skipped) != 1 || skipped[0] != "bad.blob" {
		t.Fatalf("skipped = %v", skipped)
	}
	if _, _, err := b.Load("bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(bad) = %v, want ErrCorrupt", err)
	}
}

type testSpec struct {
	Graph string `json:"graph"`
	Seed  int    `json:"seed"`
}

func TestJournalAcceptCompleteReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	for i, id := range []string{"j1", "j2", "j3"} {
		if err := j.Accept(id, testSpec{Graph: "gA", Seed: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Complete("j2"); err != nil {
		t.Fatal(err)
	}
	if got := j.PendingCount(); got != 2 {
		t.Fatalf("PendingCount = %d, want 2", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 2 || pending[0].ID != "j1" || pending[1].ID != "j3" {
		t.Fatalf("pending = %+v", pending)
	}
	var spec testSpec
	if err := json.Unmarshal(pending[1].Spec, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Graph != "gA" || spec.Seed != 2 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestJournalCorruptTailRecoversPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("j1", testSpec{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("j2", testSpec{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Append garbage, then flip a bit mid-file: replay must keep the
	// valid prefix and drop the rest without error.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	garbled := append(append([]byte(nil), raw...), 0xDE, 0xAD, 0xBE)
	if err := os.WriteFile(path, garbled, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(pending) != 2 {
		t.Fatalf("pending after tail garbage = %d, want 2", len(pending))
	}

	// Damage the second record: only the first survives.
	garbled = append([]byte(nil), raw...)
	garbled[len(garbled)-3] ^= 0x01
	if err := os.WriteFile(path, garbled, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("pending after mid damage = %+v", pending)
	}
}

func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < compactThreshold+10; i++ {
		id := "j" + string(rune('A'+i%26)) + string(rune('0'+i%10)) + itoa(i)
		if err := j.Accept(id, testSpec{Seed: i}); err != nil {
			t.Fatal(err)
		}
		if err := j.Complete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, compactions := j.Counters(); compactions == 0 {
		t.Fatal("no compaction after threshold dones")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Everything completed: the compacted journal is magic-only plus a
	// few post-compaction records.
	if info.Size() > 1<<14 {
		t.Fatalf("journal is %d bytes after full completion; compaction ineffective", info.Size())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestLineageRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lineage.wal")
	l, recs, err := OpenLineage(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	want := LineageRecord{Child: "gB", Parent: "gA", Updates: []LineageUpdate{{Op: "add", U: 1, V: 2}}}
	if err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, recs, err := OpenLineage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 1 || recs[0].Child != "gB" || recs[0].Parent != "gA" || len(recs[0].Updates) != 1 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestStoreOpenCloseReopen(t *testing.T) {
	dir := t.TempDir()
	st, pending, lineage, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || len(lineage) != 0 {
		t.Fatalf("fresh store: pending=%d lineage=%d", len(pending), len(lineage))
	}
	g := graph.Random(100, 300, 9)
	if err := st.Blobs().Put(BlobMeta{ID: "g1", N: 100, M: g.NumEdges()}, g); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal().Accept("j9", testSpec{Graph: "g1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Lineage().Append(LineageRecord{Child: "g2", Parent: "g1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, pending, lineage, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(pending) != 1 || pending[0].ID != "j9" {
		t.Fatalf("pending = %+v", pending)
	}
	if len(lineage) != 1 || lineage[0].Child != "g2" {
		t.Fatalf("lineage = %+v", lineage)
	}
	if !st2.Blobs().Has("g1") {
		t.Fatal("blob lost across reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs")); err != nil {
		t.Fatal("graphs dir missing")
	}
}

func TestFailpointsInPersist(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	st, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := fault.ArmSpec("persist.wal.append=error*1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal().Accept("j1", testSpec{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Accept under failpoint = %v, want ErrInjected", err)
	}
	// Journal state unchanged: the failed accept journaled nothing.
	if got := st.Journal().PendingCount(); got != 0 {
		t.Fatalf("PendingCount = %d after failed accept", got)
	}
	if err := st.Journal().Accept("j1", testSpec{}); err != nil {
		t.Fatalf("Accept after failpoint exhausted = %v", err)
	}

	g := graph.Random(10, 20, 1)
	if err := fault.ArmSpec("persist.blob.write=error*1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Blobs().Put(BlobMeta{ID: "gF", N: 10, M: g.NumEdges()}, g); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put under failpoint = %v", err)
	}
	if st.Blobs().Has("gF") {
		t.Fatal("failed Put left a blob behind")
	}
	if err := st.Blobs().Put(BlobMeta{ID: "gF", N: 10, M: g.NumEdges()}, g); err != nil {
		t.Fatalf("Put after failpoint exhausted = %v", err)
	}
}
