// Package reservations implements the deterministic reservations
// framework ("speculative_for") of Blelloch, Fineman, Gibbons and Shun,
// "Internally deterministic parallel algorithms can be fast" (PPoPP
// 2012) — reference [2] of the paper reproduced by this repository, and
// the programming abstraction its experimental code is built on.
//
// The framework runs the iterations of a sequential loop speculatively
// in rounds. Each round takes a prefix of the unfinished iterates (the
// earliest ones), runs a two-phase reserve/commit protocol on them in
// parallel, and retries the iterates that lost their reservations.
// Because the prefix always consists of the earliest unfinished
// iterates, and an iterate only succeeds when it cannot conflict with
// any earlier one, the loop produces exactly the result of its
// sequential execution — "internal determinism" — for any prefix size
// and any schedule.
//
// The core and matching packages contain direct, tuned implementations
// of the MIS and MM loops; this package expresses the same algorithms
// against the generic framework (see MISStepper and MMStepper) both as
// executable documentation of the mechanism and as an ablation subject.
package reservations

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// Outcome is the result of the reserve phase for one iterate.
type Outcome int8

const (
	// Drop means the iterate resolved during reserve and needs no
	// commit (e.g. an MIS vertex discovering an earlier in-neighbor).
	Drop Outcome = iota
	// TryCommit means the iterate placed its reservations and should
	// run the commit phase this round.
	TryCommit
	// Retry means the iterate is blocked on an earlier undecided
	// iterate and must be retried in a later round without committing.
	Retry
)

// Stepper defines one speculative loop body. Indices passed to the
// methods are iterate identifiers in sequential order: iterate 0 is the
// one the sequential loop would run first. Reserve and Commit must be
// safe to call concurrently for distinct iterates; the framework
// guarantees Reserve of a round completes (with a barrier) before any
// Commit of that round, and Commit before any Reset.
type Stepper interface {
	// Reserve inspects state and places idempotent reservations
	// (priority write-min) for iterate i.
	Reserve(i int32) Outcome
	// Commit checks the reservations of iterate i and applies its
	// effect; it returns true when the iterate is finished and false
	// when it must be retried.
	Commit(i int32) bool
}

// Resetter is an optional extension for steppers whose reservations
// must be cleared between rounds (e.g. matching's per-vertex bids).
// Reset runs after the commit phase for every iterate that reserved.
type Resetter interface {
	Reset(i int32)
}

// Options configures SpeculativeFor.
type Options struct {
	// Prefix is the number of iterates attempted per round; 0 means the
	// whole input (maximum speculation).
	Prefix int
	// Grain is the parallel-loop grain; 0 means parallel.DefaultGrain.
	Grain int
}

// Stats reports the cost of a SpeculativeFor run.
type Stats struct {
	Rounds   int64 // rounds executed (1 for a fully parallel conflict-free loop)
	Attempts int64 // iterate-attempts summed over rounds (sequential = n)
}

// SpeculativeFor runs iterates [0, n) of s to completion and returns
// the round/attempt statistics.
func SpeculativeFor(s Stepper, n int, opt Options) Stats {
	prefix := opt.Prefix
	if prefix <= 0 || prefix > n {
		prefix = n
	}
	if prefix < 1 {
		prefix = 1
	}
	grain := opt.Grain
	if grain <= 0 {
		grain = parallel.DefaultGrain
	}
	resetter, hasReset := s.(Resetter)

	stats := Stats{}
	active := make([]int32, 0, prefix)
	outcomes := make([]Outcome, prefix)
	next := int32(0)
	remaining := n

	for remaining > 0 {
		for len(active) < prefix && int(next) < n {
			active = append(active, next)
			next++
		}
		stats.Rounds++
		stats.Attempts += int64(len(active))
		outcomes = outcomes[:len(active)]

		parallel.ForRange(len(active), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				outcomes[i] = s.Reserve(active[i])
			}
		})

		var done atomic.Int64
		parallel.ForRange(len(active), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				switch outcomes[i] {
				case Drop:
					local++
				case TryCommit:
					if s.Commit(active[i]) {
						local++
					} else {
						outcomes[i] = Retry
					}
				}
			}
			done.Add(local)
		})

		if hasReset {
			parallel.ForRange(len(active), grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if outcomes[i] != Drop {
						resetter.Reset(active[i])
					}
				}
			})
		}

		keep := make([]bool, len(active))
		for i := range keep {
			keep[i] = outcomes[i] == Retry
		}
		before := len(active)
		active = parallel.PackInPlace(active, grain, func(i int) bool { return keep[i] })
		remaining -= before - len(active)
	}
	return stats
}
