package reservations

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Vertex/edge statuses used by the example steppers.
const (
	undecided int32 = 0
	accepted  int32 = 1
	rejected  int32 = 2
)

// MISStepper expresses greedy MIS as a speculative loop: iterate r is
// the vertex with priority rank r, and the loop body of the sequential
// algorithm ("if no earlier neighbor is in the set, join it") becomes a
// reserve that inspects earlier neighbors and a trivial commit. It needs
// no reservations at all — monotone statuses suffice — which makes MIS
// the simplest instantiation of the framework.
type MISStepper struct {
	g      *graph.Graph
	ord    core.Order
	status []int32
}

// NewMISStepper prepares a stepper over g and ord.
func NewMISStepper(g *graph.Graph, ord core.Order) *MISStepper {
	return &MISStepper{g: g, ord: ord, status: make([]int32, g.NumVertices())}
}

// Reserve implements Stepper.
func (s *MISStepper) Reserve(i int32) Outcome {
	v := s.ord.Order[i]
	rv := s.ord.Rank[v]
	sawUndecided := false
	for _, u := range s.g.Neighbors(v) {
		if s.ord.Rank[u] >= rv {
			continue
		}
		switch atomic.LoadInt32(&s.status[u]) {
		case accepted:
			atomic.StoreInt32(&s.status[v], rejected)
			return Drop
		case undecided:
			sawUndecided = true
		}
	}
	if sawUndecided {
		return Retry
	}
	return TryCommit
}

// Commit implements Stepper.
func (s *MISStepper) Commit(i int32) bool {
	atomic.StoreInt32(&s.status[s.ord.Order[i]], accepted)
	return true
}

// InSet returns the computed independent set membership by vertex.
func (s *MISStepper) InSet() []bool {
	in := make([]bool, len(s.status))
	for v, st := range s.status {
		in[v] = st == accepted
	}
	return in
}

// MMStepper expresses greedy maximal matching as a speculative loop with
// true reservations: each edge bids for its two endpoints with a
// priority write-min and commits only when it holds both — the
// textbook use of the reserve/commit protocol.
type MMStepper struct {
	el     graph.EdgeList
	ord    core.Order
	status []int32
	mate   []int32
	reserv []int32
}

const maxRank = int32(1<<31 - 1)

// NewMMStepper prepares a stepper over el and ord.
func NewMMStepper(el graph.EdgeList, ord core.Order) *MMStepper {
	m := el.NumEdges()
	s := &MMStepper{
		el:     el,
		ord:    ord,
		status: make([]int32, m),
		mate:   make([]int32, el.N),
		reserv: make([]int32, el.N),
	}
	for i := range s.mate {
		s.mate[i] = -1
	}
	for i := range s.reserv {
		s.reserv[i] = maxRank
	}
	return s
}

// Reserve implements Stepper.
func (s *MMStepper) Reserve(i int32) Outcome {
	e := s.ord.Order[i]
	edge := s.el.Edges[e]
	if atomic.LoadInt32(&s.mate[edge.U]) != -1 || atomic.LoadInt32(&s.mate[edge.V]) != -1 {
		atomic.StoreInt32(&s.status[e], rejected)
		return Drop
	}
	parallel.WriteMin32(&s.reserv[edge.U], i)
	parallel.WriteMin32(&s.reserv[edge.V], i)
	return TryCommit
}

// Commit implements Stepper.
func (s *MMStepper) Commit(i int32) bool {
	e := s.ord.Order[i]
	edge := s.el.Edges[e]
	if atomic.LoadInt32(&s.reserv[edge.U]) != i || atomic.LoadInt32(&s.reserv[edge.V]) != i {
		return false
	}
	atomic.StoreInt32(&s.status[e], accepted)
	atomic.StoreInt32(&s.mate[edge.U], edge.V)
	atomic.StoreInt32(&s.mate[edge.V], edge.U)
	return true
}

// Reset implements Resetter: clear this round's bids.
func (s *MMStepper) Reset(i int32) {
	edge := s.el.Edges[s.ord.Order[i]]
	atomic.StoreInt32(&s.reserv[edge.U], maxRank)
	atomic.StoreInt32(&s.reserv[edge.V], maxRank)
}

// InMatching returns the computed matching membership by edge id.
func (s *MMStepper) InMatching() []bool {
	in := make([]bool, len(s.status))
	for e, st := range s.status {
		in[e] = st == accepted
	}
	return in
}

var _ Stepper = (*MISStepper)(nil)
var _ Stepper = (*MMStepper)(nil)
var _ Resetter = (*MMStepper)(nil)
