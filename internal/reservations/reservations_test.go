package reservations

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

// countingStepper is a conflict-free loop: every iterate commits on
// first attempt.
type countingStepper struct {
	reserved, committed atomic.Int64
}

func (c *countingStepper) Reserve(i int32) Outcome {
	c.reserved.Add(1)
	return TryCommit
}

func (c *countingStepper) Commit(i int32) bool {
	c.committed.Add(1)
	return true
}

func TestSpeculativeForConflictFree(t *testing.T) {
	s := &countingStepper{}
	stats := SpeculativeFor(s, 1000, Options{})
	if stats.Rounds != 1 {
		t.Errorf("conflict-free loop took %d rounds, want 1", stats.Rounds)
	}
	if stats.Attempts != 1000 || s.reserved.Load() != 1000 || s.committed.Load() != 1000 {
		t.Errorf("attempts=%d reserved=%d committed=%d, want 1000 each",
			stats.Attempts, s.reserved.Load(), s.committed.Load())
	}
}

func TestSpeculativeForPrefixOne(t *testing.T) {
	s := &countingStepper{}
	stats := SpeculativeFor(s, 100, Options{Prefix: 1})
	if stats.Rounds != 100 || stats.Attempts != 100 {
		t.Errorf("prefix-1 stats = %+v, want rounds=attempts=100", stats)
	}
}

func TestSpeculativeForZeroIterates(t *testing.T) {
	s := &countingStepper{}
	stats := SpeculativeFor(s, 0, Options{})
	if stats.Rounds != 0 || stats.Attempts != 0 {
		t.Errorf("empty loop stats = %+v", stats)
	}
}

// chainStepper forces iterate i to wait for iterate i-1: worst-case
// dependence, n rounds with full prefix... actually with full prefix
// each round resolves at least the earliest blocked iterate, so it
// finishes in at most n rounds and exercises the retry path heavily.
type chainStepper struct {
	done []int32
}

func (c *chainStepper) Reserve(i int32) Outcome {
	if i > 0 && atomic.LoadInt32(&c.done[i-1]) == 0 {
		return Retry
	}
	return TryCommit
}

func (c *chainStepper) Commit(i int32) bool {
	atomic.StoreInt32(&c.done[i], 1)
	return true
}

func TestSpeculativeForChain(t *testing.T) {
	n := 200
	s := &chainStepper{done: make([]int32, n)}
	stats := SpeculativeFor(s, n, Options{Prefix: n})
	for i, d := range s.done {
		if d != 1 {
			t.Fatalf("iterate %d never committed", i)
		}
	}
	if stats.Attempts <= int64(n) {
		t.Errorf("chain should require retries: attempts = %d", stats.Attempts)
	}
}

func TestMISStepperMatchesCore(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Random(300, 1200, 1),
		graph.RMat(8, 900, 2, graph.DefaultRMatOptions()),
		graph.Complete(40),
		graph.Grid2D(12, 13),
	} {
		ord := core.NewRandomOrder(g.NumVertices(), 7)
		want := core.SequentialMIS(g, ord)
		for _, prefix := range []int{0, 1, 17, g.NumVertices() / 3} {
			s := NewMISStepper(g, ord)
			SpeculativeFor(s, g.NumVertices(), Options{Prefix: prefix})
			in := s.InSet()
			for v := range in {
				if in[v] != want.InSet[v] {
					t.Fatalf("prefix %d: MISStepper differs from sequential at vertex %d", prefix, v)
				}
			}
		}
	}
}

func TestMMStepperMatchesMatching(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Random(200, 800, 3),
		graph.Complete(30),
		graph.Star(40),
		graph.Grid2D(10, 11),
	} {
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), 9)
		want := matching.SequentialMM(el, ord)
		for _, prefix := range []int{0, 1, 23, el.NumEdges() / 2} {
			s := NewMMStepper(el, ord)
			SpeculativeFor(s, el.NumEdges(), Options{Prefix: prefix})
			in := s.InMatching()
			for e := range in {
				if in[e] != want.InMatching[e] {
					t.Fatalf("prefix %d: MMStepper differs from sequential at edge %d", prefix, e)
				}
			}
		}
	}
}

func TestSteppersQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64, rawPrefix uint8) bool {
		n := int(rawN%50) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		ordV := core.NewRandomOrder(n, seed+1)

		s := NewMISStepper(g, ordV)
		SpeculativeFor(s, n, Options{Prefix: int(rawPrefix) % (n + 1)})
		wantMIS := core.SequentialMIS(g, ordV)
		in := s.InSet()
		for v := range in {
			if in[v] != wantMIS.InSet[v] {
				return false
			}
		}

		el := g.EdgeList()
		if el.NumEdges() == 0 {
			return true
		}
		ordE := core.NewRandomOrder(el.NumEdges(), seed+2)
		ms := NewMMStepper(el, ordE)
		SpeculativeFor(ms, el.NumEdges(), Options{Prefix: int(rawPrefix) % (el.NumEdges() + 1)})
		wantMM := matching.SequentialMM(el, ordE)
		inM := ms.InMatching()
		for e := range inM {
			if inM[e] != wantMM.InMatching[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpeculativeRoundsMatchDirectImplementation(t *testing.T) {
	// The generic framework and the tuned matching.PrefixMM implement
	// the same protocol, so their round counts for the same prefix
	// should agree.
	g := graph.Random(500, 2500, 5)
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), 6)
	for _, prefix := range []int{32, 256, el.NumEdges()} {
		s := NewMMStepper(el, ord)
		stats := SpeculativeFor(s, el.NumEdges(), Options{Prefix: prefix})
		direct := matching.PrefixMM(el, ord, matching.Options{PrefixSize: prefix})
		if stats.Rounds != direct.Stats.Rounds {
			t.Errorf("prefix %d: framework rounds %d != direct rounds %d",
				prefix, stats.Rounds, direct.Stats.Rounds)
		}
	}
}

func BenchmarkSpeculativeForMM(b *testing.B) {
	g := graph.Random(50000, 250000, 1)
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewMMStepper(el, ord)
		SpeculativeFor(s, el.NumEdges(), Options{Prefix: el.NumEdges() / 100})
	}
}
