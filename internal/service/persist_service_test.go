package service

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"

	greedy "repro"
	"repro/internal/fault"
)

// stablePayload parses a job result and strips the per-execution
// fields (job id, wall time): what remains — checksum, membership,
// sizes — is the deterministic content two executions of the same
// (graph, problem, plan, seed) must agree on byte for byte.
func stablePayload(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	delete(m, "job_id")
	delete(m, "run_ms")
	return m
}

// quickSpec is a job spec that completes in well under a second, used
// where the test needs journaled work that is cheap to recompute.
func quickSpec(graphID string, seed uint64) JobSpec {
	return JobSpec{
		GraphID: graphID,
		Problem: ProblemMIS,
		Plan:    greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: seed},
	}
}

// TestServiceRestartRecoversAcknowledgedJobs is the in-process half of
// the durability story (the cross-process half, with a real SIGKILL,
// lives in cmd/greedyd's chaos test): jobs acknowledged before a drain
// that runs out of window are re-enqueued on the next boot under their
// original ids and recompute to the same bytes a never-interrupted
// service produces.
func TestServiceRestartRecoversAcknowledgedJobs(t *testing.T) {
	dir := t.TempDir()

	// Boot 1: a single worker pinned on a long job, with quick jobs
	// acknowledged behind it. Shutdown with a zero window cancels all
	// of them before any completes — crash-equivalent for the journal.
	svc1, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := svc1.Generate(GenSpec{Generator: "random", N: 300_000, M: 600_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := svc1.Generate(GenSpec{Generator: "random", N: 2_000, M: 8_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	longSpec := JobSpec{
		GraphID: big.ID,
		Problem: ProblemMIS,
		Plan:    greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 7, PrefixSize: 2},
	}
	longSt, _, err := svc1.Engine().Submit(longSpec)
	if err != nil {
		t.Fatal(err)
	}
	quick := []JobSpec{quickSpec(small.ID, 10), quickSpec(small.ID, 11), quickSpec(small.ID, 12)}
	quickIDs := make([]string, len(quick))
	for i, spec := range quick {
		st, _, err := svc1.Engine().Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		quickIDs[i] = st.ID
	}
	svc1.Shutdown(0)

	// Boot 2 on the same directory: every acknowledged job comes back.
	svc2, err := New(Config{Workers: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc2.Snapshot().Jobs.Recovered; got != 4 {
		t.Fatalf("recovered jobs = %d, want 4", got)
	}
	for _, id := range quickIDs {
		st := waitDone(t, svc2.Engine(), id)
		if st.State != StateDone {
			t.Fatalf("recovered job %s state = %s, want done", id, st.State)
		}
	}
	// The long job recomputes under its original id too; it is not
	// needed further, so a user cancel both frees the worker and closes
	// its journal debt (cancel outside a drain is a served outcome).
	if _, err := svc2.Engine().Cancel(longSt.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, svc2.Engine(), longSt.ID, StateCancelled)

	// Byte identity: a control service that never crashed computes the
	// same specs to the same bytes.
	control, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	if _, _, err := control.Generate(GenSpec{Generator: "random", N: 2_000, M: 8_000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for i, spec := range quick {
		st, _, err := control.Engine().Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, control.Engine(), st.ID)
		want, _, err := control.Engine().Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := svc2.Engine().Result(quickIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stablePayload(t, got), stablePayload(t, want)) {
			t.Fatalf("recovered result %d differs from control:\n got: %s\nwant: %s", i, got, want)
		}
	}

	// Boot 3: everything was served (Done or user-cancelled), so the
	// journal owes nothing.
	svc2.Shutdown(0)
	svc3, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	if got := svc3.Snapshot().Jobs.Recovered; got != 0 {
		t.Fatalf("recovered jobs after clean completion = %d, want 0", got)
	}
}

// TestGraphDemotionAndColdLoad pushes the registry past its byte
// budget with persistence on: the cold graph is demoted to its blob
// (not evicted), stays addressable, and transparently reloads when a
// job needs it.
func TestGraphDemotionAndColdLoad(t *testing.T) {
	// Probe the resident size of the two graphs first so the budget can
	// be sized to hold exactly one of them.
	probe := newTestService(t, Config{})
	a, _, err := probe.Generate(GenSpec{Generator: "random", N: 50_000, M: 200_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := probe.Generate(GenSpec{Generator: "random", N: 50_000, M: 200_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	svc := newTestService(t, Config{
		Workers:         2,
		DataDir:         t.TempDir(),
		CacheBytes:      a.Bytes + b.Bytes/2,
		IngestWatermark: -1, // isolate demotion from admission control
	})
	first, _, err := svc.Generate(GenSpec{Generator: "random", N: 50_000, M: 200_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Generate(GenSpec{Generator: "random", N: 50_000, M: 200_000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	info, ok := svc.Registry().Get(first.ID)
	if !ok {
		t.Fatalf("graph %s evicted; want demoted but addressable", first.ID)
	}
	if info.Resident {
		t.Fatalf("graph %s still resident after budget overflow", first.ID)
	}
	snap := svc.Snapshot()
	if snap.Registry.ColdGraphs != 1 {
		t.Fatalf("cold graphs = %d, want 1", snap.Registry.ColdGraphs)
	}
	if snap.Persist.Demotions == 0 {
		t.Fatal("no demotions counted")
	}

	// A job against the cold graph reloads it from the blob store.
	st, _, err := svc.Engine().Submit(quickSpec(first.ID, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc.Engine(), st.ID); got.State != StateDone {
		t.Fatalf("job on demoted graph ended %s, want done", got.State)
	}
	if svc.Snapshot().Persist.ColdLoads == 0 {
		t.Fatal("no cold loads counted")
	}
}

// TestJobDeadlineExceeded covers per-job timeouts: the job ends in the
// terminal deadline_exceeded state, which is excluded from dedup so a
// retry actually recomputes.
func TestJobDeadlineExceeded(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	info, _, err := svc.Generate(GenSpec{Generator: "random", N: 300_000, M: 600_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		GraphID:   info.ID,
		Problem:   ProblemMIS,
		Plan:      greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 9, PrefixSize: 2},
		TimeoutMS: 50,
	}
	st, _, err := svc.Engine().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, svc.Engine(), st.ID, StateDeadline)
	if final.Error == "" {
		t.Fatal("deadline_exceeded job carries no error detail")
	}
	if raw, _, err := svc.Engine().Result(st.ID); err != nil {
		t.Fatal(err)
	} else if raw != nil {
		t.Fatal("deadline_exceeded job still exposes a result payload")
	}
	if got := svc.Snapshot().Jobs.DeadlineExceeded; got != 1 {
		t.Fatalf("deadline_exceeded counter = %d, want 1", got)
	}

	// The timed-out attempt must not satisfy an identical resubmission.
	st2, deduped, err := svc.Engine().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || st2.ID == st.ID {
		t.Fatalf("resubmission deduped onto deadline_exceeded job %s", st.ID)
	}
	if _, err := svc.Engine().Cancel(st2.ID); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFullRetryAfter wedges the single worker with a sleep
// failpoint, fills the depth-1 queue behind it, and asserts overload
// is signalled as 429 with a Retry-After the client can obey.
func TestQueueFullRetryAfter(t *testing.T) {
	if err := fault.ArmSpec("worker.run=sleep:2s*2"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	srv, client := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gen, err := client.Generate(t.Context(), GenSpec{Generator: "random", N: 2_000, M: 8_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(seed uint64) *http.Response {
		body := `{"graph_id":"` + gen.ID + `","problem":"mis","plan":{"algorithm":"prefix","seed":` +
			strconv.FormatUint(seed, 10) + `}}`
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Two acks land (one wedged on the worker, one queued — the order
	// the worker wakes in does not matter for a depth-1 queue); the
	// third submission must be refused.
	for seed := uint64(20); seed < 22; seed++ {
		if resp := submit(seed); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit seed %d: status %d, want 202", seed, resp.StatusCode)
		}
	}
	resp := submit(22)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("429 Retry-After = %q, want integer in [1,60]", resp.Header.Get("Retry-After"))
	}
	if got := clientSnapshot(t, client).Jobs.AdmissionRejected; got == 0 {
		t.Fatal("admission_rejected counter did not move")
	}
}

// TestIngestPausedReturns503 drives resident bytes past the watermark
// with a pinned (running) graph that can be neither demoted nor
// evicted, and asserts graph ingest is refused with 503 + Retry-After
// while job traffic keeps flowing.
func TestIngestPausedReturns503(t *testing.T) {
	probe := newTestService(t, Config{})
	g, _, err := probe.Generate(GenSpec{Generator: "random", N: 300_000, M: 600_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if err := fault.ArmSpec("worker.run=sleep:3s*1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	srv, client := newTestServer(t, Config{
		Workers:         1,
		CacheBytes:      g.Bytes + g.Bytes/2,
		IngestWatermark: 0.5, // watermark below one graph's footprint
	})
	gen, err := client.Generate(t.Context(), GenSpec{Generator: "random", N: 300_000, M: 600_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the graph with a job wedged on the worker: Submit acquires
	// the pin synchronously, so by the time the 202 returns admission
	// control can neither demote nor evict the graph.
	body := `{"graph_id":"` + gen.ID + `","problem":"mis","plan":{"algorithm":"prefix","seed":3,"prefix_size":2}}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pin job: status %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/graphs", "application/json",
		strings.NewReader(`{"generator":"random","n":1000,"m":4000,"seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest over watermark: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if snap := clientSnapshot(t, client); snap.Registry.IngestPausedRejections == 0 {
		t.Fatal("ingest_paused counter did not move")
	}
	// Job traffic is unaffected: status polls on the pinned job succeed.
	if _, err := client.Status(t.Context(), "j1"); err != nil {
		t.Fatal(err)
	}
}

// clientSnapshot fetches /v1/metrics through the public client.
func clientSnapshot(t *testing.T, c *Client) Snapshot {
	t.Helper()
	snap, err := c.Metrics(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	return snap
}
