package service

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
)

// This file reads the Go runtime's self-telemetry (runtime/metrics)
// into snapshot form: the GC pause and scheduler-latency distributions
// and the heap goal, which together explain most "why was this round
// slow" questions that the engine's own phase profiles cannot — a 2ms
// commit phase with a 1.8ms GC pause inside it is a GC problem, not a
// parallelism problem.

// RuntimeHistogram is a runtime/metrics float64 distribution in
// snapshot form: Bounds[i] is the inclusive upper bound (seconds) of
// bucket i, Counts[i] its population. The last bound may be +Inf.
// Empty leading/trailing buckets are coalesced away; because the
// runtime's counts are cumulative since process start, the retained
// window only ever grows, so Prometheus le labels are stable once
// seen.
type RuntimeHistogram struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// Count returns the total population.
func (h RuntimeHistogram) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// runtimeSampleNames are the runtime/metrics keys the snapshot carries.
// All exist since Go 1.17; readRuntimeTelemetry tolerates absent ones
// (KindBad) so a toolchain change cannot break /metrics.
var runtimeSampleNames = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/gc/heap/goal:bytes",
}

// readRuntimeTelemetry fills the runtime/metrics portion of a
// RuntimeCounters.
func readRuntimeTelemetry(rc *RuntimeCounters) {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rc.GCPauses = convertRuntimeHistogram(s.Value.Float64Histogram())
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rc.SchedLatency = convertRuntimeHistogram(s.Value.Float64Histogram())
			}
		case "/gc/heap/goal:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				rc.HeapGoalBytes = s.Value.Uint64()
			}
		}
	}
	rc.GOMAXPROCS = runtime.GOMAXPROCS(0)
}

// convertRuntimeHistogram reshapes a runtime/metrics histogram
// (len(Buckets) == len(Counts)+1 boundaries, possibly ±Inf at the ends)
// into upper-bound form, coalescing empty leading/trailing buckets so
// the wire form stays small while the retained bounds remain a fixed
// subset of the runtime's layout.
func convertRuntimeHistogram(h *metrics.Float64Histogram) RuntimeHistogram {
	if h == nil || len(h.Counts) == 0 {
		return RuntimeHistogram{}
	}
	lo, hi := 0, len(h.Counts)-1
	for lo < hi && h.Counts[lo] == 0 {
		lo++
	}
	for hi > lo && h.Counts[hi] == 0 {
		hi--
	}
	out := RuntimeHistogram{
		Bounds: make([]float64, 0, hi-lo+1),
		Counts: make([]uint64, 0, hi-lo+1),
	}
	for i := lo; i <= hi; i++ {
		// Bucket i spans [Buckets[i], Buckets[i+1]); report the upper
		// boundary. A -Inf lower edge needs no special case — only
		// upper bounds are retained.
		out.Bounds = append(out.Bounds, h.Buckets[i+1])
		out.Counts = append(out.Counts, h.Counts[i])
	}
	return out
}

// BuildInfo identifies the running binary: Go toolchain, main module
// path/version, and the VCS revision when the binary was built from a
// checkout. Rendered as the greedyd_build_info gauge.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// readBuildInfo caches the binary's build metadata (it cannot change
// while the process lives).
var readBuildInfo = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Path = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Dirty = s.Value == "true"
		}
	}
	return bi
})

// isInf reports +Inf (used by the Prometheus renderer for le labels).
func isInf(v float64) bool { return math.IsInf(v, 1) }
