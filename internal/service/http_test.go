package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	greedy "repro"
	"repro/internal/graph"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Client) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, &Client{BaseURL: srv.URL}
}

func TestHTTPGraphGenerateRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	g1, err := c.Generate(ctx, GenSpec{Generator: "random", N: 1000, M: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g1.N != 1000 || g1.Deduped {
		t.Fatalf("bad first generate: %+v", g1)
	}
	g2, err := c.Generate(ctx, GenSpec{Generator: "random", N: 1000, M: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Deduped || g2.ID != g1.ID {
		t.Fatalf("regeneration not deduplicated: %+v vs %+v", g2, g1)
	}
	if _, err := c.Generate(ctx, GenSpec{Generator: "nope", N: 10, M: 10}); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestHTTPGraphUploadAllFormats(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	g := graph.Random(500, 2000, 9)

	var wantID string
	for i, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return graph.WriteAdjacency(b, g) },
		func(b *bytes.Buffer) error { return graph.WriteEdgeArray(b, g) },
		func(b *bytes.Buffer) error { return graph.WriteBinary(b, g) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		resp, err := c.Upload(ctx, &buf)
		if err != nil {
			t.Fatalf("format %d: %v", i, err)
		}
		if i == 0 {
			wantID = resp.ID
			if resp.Deduped {
				t.Fatalf("format %d: first upload deduped", i)
			}
		} else if resp.ID != wantID || !resp.Deduped {
			t.Fatalf("format %d: id %s (deduped=%v), want dedup onto %s — content addressing must be format-independent",
				i, resp.ID, resp.Deduped, wantID)
		}
	}

	// Garbage bodies are rejected with 400, not misparsed.
	for _, bad := range []string{"", "NotAGraphFormat 1 2 3", "AdjacencyGraphX\n1\n0\n0\n"} {
		if _, err := c.Upload(ctx, strings.NewReader(bad)); err == nil {
			t.Errorf("garbage upload %q accepted", bad)
		}
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	gr, err := c.Generate(ctx, GenSpec{Generator: "rmat", N: 1 << 10, M: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, JobRequest{GraphID: gr.ID, Problem: "mm", Plan: greedy.Plan{Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	raw, done, err := c.Result(ctx, sub.ID)
	if err != nil || !done {
		t.Fatalf("result: done=%v err=%v", done, err)
	}
	var payload ResultPayload
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Problem != ProblemMM || payload.Size <= 0 || payload.Checksum == "" {
		t.Fatalf("bad payload: %+v", payload)
	}
	// Cross-check against an in-process run of the library.
	g := graph.RMat(10, 5000, 3, graph.DefaultRMatOptions())
	want := greedy.MaximalMatching(g, greedy.WithSeed(13))
	if payload.Size != want.Size() {
		t.Fatalf("service matching size %d, library %d", payload.Size, want.Size())
	}
	if payload.Checksum != membershipChecksum(want.InMatching) {
		t.Fatal("service checksum disagrees with library run")
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	if _, err := c.Submit(ctx, JobRequest{GraphID: "gmissing", Problem: "mis"}); err == nil {
		t.Error("job on unknown graph accepted")
	}
	if _, err := c.Submit(ctx, JobRequest{GraphID: "gmissing", Problem: "frobnicate"}); err == nil {
		t.Error("unknown problem accepted")
	}
	if _, err := c.Status(ctx, "j999999"); err == nil {
		t.Error("unknown job status served")
	}
	if _, _, err := c.Result(ctx, "j999999"); err == nil {
		t.Error("unknown job result served")
	}
	resp, err := http.Get(srv.URL + "/v1/graphs/gmissing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("graph get: got %d, want 404", resp.StatusCode)
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	gr, err := c.Generate(ctx, GenSpec{Generator: "random", N: 500, M: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, JobRequest{GraphID: gr.ID, Problem: "mis", Plan: greedy.Plan{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, JobRequest{GraphID: gr.ID, Problem: "mis", Plan: greedy.Plan{Seed: 2}}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Jobs.Submitted != 2 || snap.Jobs.DedupHits != 1 || snap.Jobs.Executed != 1 {
		t.Fatalf("bad job counters: %+v", snap.Jobs)
	}
	if snap.Registry.Graphs != 1 || snap.Registry.BytesResident <= 0 {
		t.Fatalf("bad registry counters: %+v", snap.Registry)
	}
	h, ok := snap.RunLatency[ProblemMIS]
	if !ok || h.Count != 1 {
		t.Fatalf("missing mis latency histogram: %+v", snap.RunLatency)
	}
}
