package service

import (
	"testing"
	"time"
)

// waitFor is the one polling loop the test suite is allowed: it spins
// cond at millisecond granularity until it reports true, and fails the
// test with what after timeout. Every hand-rolled
// deadline/time.Now()/Sleep loop should go through here so the poll
// cadence, the timeout discipline, and the failure wording live in one
// place.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(time.Millisecond)
	}
}
