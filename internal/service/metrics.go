package service

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/trace"
)

// latencyBounds are the upper bounds (seconds) of the latency histogram
// buckets, log-spaced from 100µs to 10s; the last bucket is unbounded.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. It is not safe for
// concurrent use; Metrics serializes access.
type histogram struct {
	counts []int64 // len(latencyBounds)+1; last bucket is +Inf
	sum    float64
	count  int64
	max    float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBounds)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.count++
	if seconds > h.max {
		h.max = seconds
	}
}

// quantile estimates the q-quantile (0 < q < 1) in seconds with
// nearest-rank bucket location and linear interpolation inside the
// containing bucket. The rank is ⌈q·count⌉ (clamped to [1, count]), so
// a histogram with a single observation answers that observation's own
// bucket position — p50 = p99 = max — instead of interpolating below
// it, and a rank landing exactly on a bucket's cumulative boundary is
// attributed to that bucket (empty buckets are never selected). The
// last bucket is unbounded; its interpolation ceiling is the recorded
// maximum, so no quantile ever exceeds h.max.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := math.Ceil(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > float64(h.count) {
		rank = float64(h.count)
	}
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if c > 0 && rank <= next {
			lo := 0.0
			if i > 0 {
				lo = latencyBounds[i-1]
			}
			hi := h.max
			if i < len(latencyBounds) && latencyBounds[i] < hi {
				hi = latencyBounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.max
}

// HistogramSnapshot is the JSON view of one latency histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// SumMS is the total observed time — with Count, the pair every
	// cumulative-histogram consumer (Prometheus above all) needs and
	// quantiles cannot reconstruct.
	SumMS   float64   `json:"sum_ms"`
	MeanMS  float64   `json:"mean_ms"`
	P50MS   float64   `json:"p50_ms"`
	P90MS   float64   `json:"p90_ms"`
	P99MS   float64   `json:"p99_ms"`
	MaxMS   float64   `json:"max_ms"`
	Bounds  []float64 `json:"bucket_upper_bounds_ms"`
	Buckets []int64   `json:"bucket_counts"`
}

// SumSeconds returns the total observed time in seconds (the unit
// Prometheus histograms are exposed in).
func (h HistogramSnapshot) SumSeconds() float64 { return h.SumMS / 1000 }

// CumulativeBuckets returns the bucket counts accumulated in le order:
// element i is the number of observations at or below the i-th upper
// bound, and the final element (the +Inf bucket) equals Count. The raw
// Buckets field stays per-bucket, which is what the JSON consumers
// already plot.
func (h HistogramSnapshot) CumulativeBuckets() []int64 {
	out := make([]int64, len(h.Buckets))
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		out[i] = cum
	}
	return out
}

// Metrics aggregates the service counters surfaced by /v1/metrics.
type Metrics struct {
	mu sync.Mutex

	jobsSubmitted int64
	dedupHits     int64
	jobsExecuted  int64
	jobsAdaptive  int64 // executed jobs that ran the adaptive schedule
	jobsRepaired  int64 // executed dynamic jobs answered by session repair
	repairVisited int64 // frontier items re-decided across repaired jobs
	repairFlipped int64 // membership flips propagated across repaired jobs
	jobsFailed    int64
	jobsCancelled int64
	jobsDeadline  int64 // jobs terminated by their own timeout_ms budget
	jobsExpired   int64
	jobsRecovered int64 // journaled jobs re-enqueued at boot after a crash

	// Overload-control rejections: admission is the job queue saying no
	// (HTTP 429), ingestPaused is the memory watermark refusing graph
	// uploads (HTTP 503).
	admissionRejected  int64
	ingestPausedCount  int64

	registryHits      int64 // Add or Acquire found an existing resident graph
	registryMisses    int64 // Acquire of an unknown id
	registryEvictions int64
	registryPatches   int64 // graph versions derived via PATCH

	// Disk-tier counters (all zero when persistence is off).
	persistBlobsWritten int64
	persistBlobBytes    int64
	persistDemotions    int64 // warm graphs demoted to the disk tier
	persistColdLoads    int64 // cold graphs reloaded on Acquire
	persistRehydratedN  int64 // entries indexed from blobs at boot
	persistErrors       int64 // persistence failures (never correctness failures)

	latency map[Problem]*histogram // measured over execution (run) time
	e2e     map[Problem]*histogram // measured from submission to completion

	// HTTP serving counters, fed by the instrumentation middleware:
	// requests by status class (index status/100, 0 unused) and a
	// latency histogram over every served request.
	httpByClass [6]int64
	httpLatency *histogram
}

// NewMetrics returns an empty metrics aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		latency:     make(map[Problem]*histogram),
		e2e:         make(map[Problem]*histogram),
		httpLatency: newHistogram(),
	}
}

// httpRequest records one served HTTP request.
func (m *Metrics) httpRequest(status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	m.httpByClass[class]++
	m.httpLatency.observe(d.Seconds())
}

func (m *Metrics) jobSubmitted(dedup bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted++
	if dedup {
		m.dedupHits++
	}
}

func (m *Metrics) jobCancelled() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsCancelled++
}

func (m *Metrics) jobRecovered() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsRecovered++
}

func (m *Metrics) admissionRejectedEvent() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admissionRejected++
}

func (m *Metrics) ingestPausedEvent() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ingestPausedCount++
}

func (m *Metrics) persistBlobWritten(bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistBlobsWritten++
	m.persistBlobBytes += bytes
}

func (m *Metrics) persistDemotion() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistDemotions++
}

func (m *Metrics) persistColdLoad() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistColdLoads++
}

func (m *Metrics) persistRehydrated() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistRehydratedN++
}

func (m *Metrics) persistError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.persistErrors++
}

// jobFinished records a worker-side completion. Only successful runs
// feed the latency histograms: failed and cancelled runs would skew
// the percentiles with truncated durations. repair is non-nil for
// dynamic jobs answered by advancing a session; its frontier counters
// feed the aggregate repair-work gauges.
func (m *Metrics) jobFinished(p Problem, state JobState, adaptive bool, repair *dynamic.RepairStats, run, endToEnd time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateFailed:
		m.jobsFailed++
		return
	case StateCancelled:
		m.jobsCancelled++
		return
	case StateDeadline:
		m.jobsDeadline++
		return
	}
	m.jobsExecuted++
	if adaptive {
		m.jobsAdaptive++
	}
	if repair != nil {
		m.jobsRepaired++
		m.repairVisited += int64(repair.MIS.Visited + repair.MM.Visited)
		m.repairFlipped += int64(repair.MIS.Flipped + repair.MM.Flipped)
	}
	h := m.latency[p]
	if h == nil {
		h = newHistogram()
		m.latency[p] = h
	}
	h.observe(run.Seconds())
	h2 := m.e2e[p]
	if h2 == nil {
		h2 = newHistogram()
		m.e2e[p] = h2
	}
	h2.observe(endToEnd.Seconds())
}

func (m *Metrics) jobsReaped(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsExpired += int64(n)
}

func (m *Metrics) registryEvent(hits, misses, evictions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registryHits += hits
	m.registryMisses += misses
	m.registryEvictions += evictions
}

func (m *Metrics) graphPatched() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registryPatches++
}

// JobCounters is the jobs section of a metrics snapshot.
type JobCounters struct {
	Submitted int64 `json:"submitted"`
	DedupHits int64 `json:"dedup_hits"`
	Executed  int64 `json:"executed"`
	// AdaptiveExecuted counts executed jobs that ran the adaptive
	// prefix schedule (a subset of Executed).
	AdaptiveExecuted int64 `json:"adaptive_executed"`
	// Repaired counts executed dynamic jobs that were answered by
	// advancing a maintained session (change-driven frontier repair)
	// instead of recomputing from scratch (a subset of Executed).
	// RepairVisited/RepairFlipped aggregate those repairs' frontier
	// work — items re-decided and membership flips propagated — the
	// fleet-level view of "repair cost stays proportional to the
	// damage region".
	Repaired      int64 `json:"repaired"`
	RepairVisited int64 `json:"repair_visited"`
	RepairFlipped int64 `json:"repair_flipped"`
	Failed        int64 `json:"failed"`
	Cancelled     int64 `json:"cancelled"`
	// DeadlineExceeded counts jobs terminated by their own timeout_ms
	// budget (the per-job overload-control deadline).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Expired          int64 `json:"expired"`
	// Recovered counts journaled jobs re-enqueued at boot: acknowledged
	// before a crash, recomputed after it.
	Recovered int64 `json:"recovered"`
	// AdmissionRejected counts submissions refused with 429 because the
	// queue was full.
	AdmissionRejected int64 `json:"admission_rejected"`
	Queued            int64 `json:"queued"`
	Running           int64 `json:"running"`
	Done              int64 `json:"done"`
	FailedNow         int64 `json:"failed_resident"`
	CancelledNow      int64 `json:"cancelled_resident"`
	DeadlineNow       int64 `json:"deadline_resident"`
}

// RegistryCounters is the registry section of a metrics snapshot.
type RegistryCounters struct {
	Graphs        int   `json:"graphs"`
	Pinned        int   `json:"pinned"`
	// ColdGraphs counts entries whose arrays live only in the disk tier
	// right now (always 0 without persistence).
	ColdGraphs    int   `json:"cold_graphs"`
	BytesResident int64 `json:"bytes_resident"`
	ByteBudget    int64 `json:"byte_budget"`
	// WatermarkBytes is the resident-byte level at which graph ingest
	// pauses (0 when the watermark is disarmed).
	WatermarkBytes int64 `json:"watermark_bytes"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Evictions      int64 `json:"evictions"`
	// Patches counts graph versions derived via PATCH /v1/graphs/{id}.
	Patches int64 `json:"patches"`
	// IngestPausedRejections counts graph uploads refused with 503 while
	// resident bytes sat over the watermark.
	IngestPausedRejections int64 `json:"ingest_paused_rejections"`
}

// PersistCounters is the durability section of a metrics snapshot. All
// fields are zero when greedyd runs without -data-dir.
type PersistCounters struct {
	// Enabled reports whether a data directory is attached.
	Enabled bool `json:"enabled"`
	// BlobsWritten / BlobBytes count committed graph blobs and their
	// payload bytes.
	BlobsWritten int64 `json:"blobs_written"`
	BlobBytes    int64 `json:"blob_bytes"`
	// Demotions counts warm graphs demoted to the disk tier by the byte
	// budget; ColdLoads counts reloads of cold graphs on Acquire.
	Demotions int64 `json:"demotions"`
	ColdLoads int64 `json:"cold_loads"`
	// Rehydrated counts graph entries indexed from blobs at boot.
	Rehydrated int64 `json:"rehydrated"`
	// WALAppends / WALCompactions count job-journal appends and rewrite
	// cycles; PendingJobs is the journal's current
	// acknowledged-but-unfinished set.
	WALAppends     int64 `json:"wal_appends"`
	WALCompactions int64 `json:"wal_compactions"`
	PendingJobs    int64 `json:"pending_jobs"`
	// Errors counts persistence failures; by design these degrade
	// durability or speed, never correctness.
	Errors int64 `json:"errors"`
}

// RuntimeCounters is the Go-runtime section of a metrics snapshot: the
// allocation counters that make per-worker Solver reuse measurable from
// the outside (loadgen reports mallocs per executed job from these).
type RuntimeCounters struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	NumGC           uint32 `json:"num_gc"`
	Goroutines      int    `json:"goroutines"`
	// HeapGoalBytes is the GC's current heap size target
	// (/gc/heap/goal:bytes).
	HeapGoalBytes uint64 `json:"heap_goal_bytes"`
	// GOMAXPROCS is the scheduler's processor limit — the engine's
	// fork-join width ceiling.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GCPauses is the stop-the-world pause distribution
	// (/gc/pauses:seconds) since process start.
	GCPauses RuntimeHistogram `json:"gc_pauses"`
	// SchedLatency is the goroutine scheduling-latency distribution
	// (/sched/latencies:seconds) since process start — the time between
	// a goroutine becoming runnable and running, which bounds how
	// promptly the engine's fork-join workers start.
	SchedLatency RuntimeHistogram `json:"sched_latency"`
}

// HTTPCounters is the HTTP-serving section of a metrics snapshot.
type HTTPCounters struct {
	// Requests maps status class ("2xx".."5xx") to served requests.
	Requests map[string]int64  `json:"requests_by_class"`
	Latency  HistogramSnapshot `json:"latency"`
}

// StreamCounters is the /v1/events fan-out section of a metrics
// snapshot; filled in by the Service, which owns the broadcaster.
type StreamCounters struct {
	// Enabled reports whether streaming is configured at all; when
	// false the other fields are zero.
	Enabled bool `json:"enabled"`
	// Subscribers is the number of currently attached subscriptions.
	Subscribers int `json:"subscribers"`
	// Published counts events offered to the fan-out since start.
	Published uint64 `json:"published"`
	// Dropped counts events discarded across all subscriber queues.
	Dropped uint64 `json:"dropped"`
	// Evicted counts subscriptions force-detached for falling behind.
	Evicted uint64 `json:"evicted"`
	// PerSub describes each attached subscription (drops, queue depth).
	PerSub []trace.SubscriberStat `json:"per_subscriber,omitempty"`
}

// Snapshot is the full /v1/metrics response.
type Snapshot struct {
	Jobs       JobCounters                   `json:"jobs"`
	Registry   RegistryCounters              `json:"registry"`
	Persist    PersistCounters               `json:"persist"`
	Runtime    RuntimeCounters               `json:"runtime"`
	HTTP       HTTPCounters                  `json:"http"`
	RunLatency map[Problem]HistogramSnapshot `json:"run_latency"`
	E2ELatency map[Problem]HistogramSnapshot `json:"e2e_latency"`
	// TraceEvents is the total number of trace events recorded (0 when
	// tracing is disabled); filled in by the Service, which owns the
	// recorder.
	TraceEvents uint64 `json:"trace_events"`
	// Stream is the live event-stream fan-out state.
	Stream StreamCounters `json:"stream"`
	// Build identifies the running binary.
	Build BuildInfo `json:"build"`
}

func snapshotHistogram(h *histogram) HistogramSnapshot {
	boundsMS := make([]float64, len(latencyBounds))
	for i, b := range latencyBounds {
		boundsMS[i] = b * 1000
	}
	mean := 0.0
	if h.count > 0 {
		mean = h.sum / float64(h.count)
	}
	return HistogramSnapshot{
		Count:   h.count,
		SumMS:   h.sum * 1000,
		MeanMS:  mean * 1000,
		P50MS:   h.quantile(0.50) * 1000,
		P90MS:   h.quantile(0.90) * 1000,
		P99MS:   h.quantile(0.99) * 1000,
		MaxMS:   h.max * 1000,
		Bounds:  boundsMS,
		Buckets: append([]int64(nil), h.counts...),
	}
}

// snapshot captures the counters; job-state gauges and registry gauges
// are filled in by the Service, which owns those structures.
func (m *Metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Jobs: JobCounters{
			Submitted:        m.jobsSubmitted,
			DedupHits:        m.dedupHits,
			Executed:         m.jobsExecuted,
			AdaptiveExecuted: m.jobsAdaptive,
			Repaired:         m.jobsRepaired,
			RepairVisited:    m.repairVisited,
			RepairFlipped:    m.repairFlipped,
			Failed:            m.jobsFailed,
			Cancelled:         m.jobsCancelled,
			DeadlineExceeded:  m.jobsDeadline,
			Expired:           m.jobsExpired,
			Recovered:         m.jobsRecovered,
			AdmissionRejected: m.admissionRejected,
		},
		Registry: RegistryCounters{
			Hits:                   m.registryHits,
			Misses:                 m.registryMisses,
			Evictions:              m.registryEvictions,
			Patches:                m.registryPatches,
			IngestPausedRejections: m.ingestPausedCount,
		},
		Persist: PersistCounters{
			BlobsWritten: m.persistBlobsWritten,
			BlobBytes:    m.persistBlobBytes,
			Demotions:    m.persistDemotions,
			ColdLoads:    m.persistColdLoads,
			Rehydrated:   m.persistRehydratedN,
			Errors:       m.persistErrors,
		},
		RunLatency: make(map[Problem]HistogramSnapshot, len(m.latency)),
		E2ELatency: make(map[Problem]HistogramSnapshot, len(m.e2e)),
		HTTP: HTTPCounters{
			Requests: map[string]int64{
				"1xx": m.httpByClass[1],
				"2xx": m.httpByClass[2],
				"3xx": m.httpByClass[3],
				"4xx": m.httpByClass[4],
				"5xx": m.httpByClass[5],
			},
			Latency: snapshotHistogram(m.httpLatency),
		},
	}
	for p, h := range m.latency {
		s.RunLatency[p] = snapshotHistogram(h)
	}
	for p, h := range m.e2e {
		s.E2ELatency[p] = snapshotHistogram(h)
	}
	return s
}
