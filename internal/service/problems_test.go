package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	greedy "repro"
)

// TestColoringAndHittingSetJobs runs the two engine-opened problems
// end-to-end through the job engine and checks the served answer
// against the library computed directly on an identical graph.
func TestColoringAndHittingSetJobs(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	info := addGraph(t, svc, 1500, 4)
	g := greedy.RandomGraph(1500, 6000, 4)

	for _, algo := range []greedy.Algorithm{greedy.AlgoPrefix, greedy.AlgoSequential} {
		st, _, err := svc.Engine().Submit(JobSpec{
			GraphID: info.ID, Problem: ProblemColoring,
			Plan: greedy.Plan{Algorithm: algo, Seed: 11},
		})
		if err != nil {
			t.Fatalf("coloring/%s: %v", algo, err)
		}
		if got := waitDone(t, svc.Engine(), st.ID); got.State != StateDone {
			t.Fatalf("coloring/%s failed: %s", algo, got.Error)
		}
		raw, _, err := svc.Engine().Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		want := greedy.GreedyColoring(g, greedy.WithAlgorithm(algo), greedy.WithSeed(11))
		if err := greedy.VerifyColoring(g, want.Colors); err != nil {
			t.Fatalf("library coloring invalid: %v", err)
		}
		if sum := colorsChecksum(want.Colors); !bytes.Contains(raw, []byte(sum)) {
			t.Fatalf("coloring/%s: checksum %s not in payload %s", algo, sum, raw)
		}

		st, _, err = svc.Engine().Submit(JobSpec{
			GraphID: info.ID, Problem: ProblemHittingSet,
			Plan: greedy.Plan{Algorithm: algo, Seed: 11},
		})
		if err != nil {
			t.Fatalf("hittingset/%s: %v", algo, err)
		}
		if got := waitDone(t, svc.Engine(), st.ID); got.State != StateDone {
			t.Fatalf("hittingset/%s failed: %s", algo, got.Error)
		}
		raw, _, err = svc.Engine().Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		sys := greedy.HittingSystemFromEdges(g.EdgeList())
		wantHS := greedy.GreedyHittingSet(sys, greedy.WithAlgorithm(algo), greedy.WithSeed(11))
		if err := greedy.VerifyHittingSet(sys, wantHS.InSet); err != nil {
			t.Fatalf("library hitting set invalid: %v", err)
		}
		if sum := membershipChecksum(wantHS.InSet); !bytes.Contains(raw, []byte(sum)) {
			t.Fatalf("hittingset/%s: checksum %s not in payload %s", algo, sum, raw)
		}
	}
}

// TestNewProblemsDedupDistinctKeys: the same plan on the same graph
// must dedup within a problem but never across problems.
func TestNewProblemsDedupDistinctKeys(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	info := addGraph(t, svc, 600, 2)
	plan := greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 3}

	ids := map[Problem]string{}
	for _, p := range []Problem{ProblemMIS, ProblemColoring, ProblemHittingSet} {
		st, deduped, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: p, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		if deduped {
			t.Fatalf("%s deduped onto another problem's job", p)
		}
		ids[p] = st.ID
		waitDone(t, svc.Engine(), st.ID)

		st2, deduped, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: p, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		if !deduped || st2.ID != st.ID {
			t.Fatalf("%s resubmission not deduplicated", p)
		}
	}
	if ids[ProblemColoring] == ids[ProblemMIS] || ids[ProblemHittingSet] == ids[ProblemMIS] || ids[ProblemColoring] == ids[ProblemHittingSet] {
		t.Fatalf("distinct problems shared a job id: %v", ids)
	}
}

// TestValidationErrorsTable drives every JobSpec.Validate rejection
// through one table: each row is an invalid spec plus a fragment its
// error must contain. A row whose plan survives a JSON round-trip also
// proves the rejected configuration is expressible on the wire — the
// service can never be handed a plan it silently mis-runs.
func TestValidationErrorsTable(t *testing.T) {
	cases := []struct {
		name     string
		spec     JobSpec
		wantFrag string
		wire     bool // plan representable in JSON (ExplicitOrder is not)
	}{
		{"unknown problem", JobSpec{GraphID: "g0", Problem: "clique", Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix}},
			"unknown problem", true},
		{"explicit order", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, ExplicitOrder: true}},
			"explicit orders", false},
		{"luby on mm", JobSpec{GraphID: "g0", Problem: ProblemMM, Plan: greedy.Plan{Algorithm: greedy.AlgoLuby}},
			"applies to MIS only", true},
		{"luby on coloring", JobSpec{GraphID: "g0", Problem: ProblemColoring, Plan: greedy.Plan{Algorithm: greedy.AlgoLuby}},
			"applies to MIS only", true},
		{"sf rootset", JobSpec{GraphID: "g0", Problem: ProblemSF, Plan: greedy.Plan{Algorithm: greedy.AlgoRootSet}},
			"prefix|sequential", true},
		{"coloring rootset", JobSpec{GraphID: "g0", Problem: ProblemColoring, Plan: greedy.Plan{Algorithm: greedy.AlgoRootSet}},
			"prefix|sequential", true},
		{"coloring parallel", JobSpec{GraphID: "g0", Problem: ProblemColoring, Plan: greedy.Plan{Algorithm: greedy.AlgoParallel}},
			"prefix|sequential", true},
		{"hittingset rootset", JobSpec{GraphID: "g0", Problem: ProblemHittingSet, Plan: greedy.Plan{Algorithm: greedy.AlgoRootSet}},
			"prefix|sequential", true},
		{"hittingset parallel", JobSpec{GraphID: "g0", Problem: ProblemHittingSet, Plan: greedy.Plan{Algorithm: greedy.AlgoParallel}},
			"prefix|sequential", true},
		{"adaptive non-prefix", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoSequential, AdaptivePrefix: true}},
			"adaptive prefix applies", true},
		{"dynamic sf", JobSpec{GraphID: "g0", Problem: ProblemSF, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Dynamic: true}},
			"dynamic plans support problems mis|mm", true},
		{"dynamic coloring", JobSpec{GraphID: "g0", Problem: ProblemColoring, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Dynamic: true}},
			"dynamic plans support problems mis|mm", true},
		{"dynamic hittingset", JobSpec{GraphID: "g0", Problem: ProblemHittingSet, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Dynamic: true}},
			"dynamic plans support problems mis|mm", true},
		{"dynamic luby", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoLuby, Dynamic: true}},
			"dynamic plans cannot use", true},
		{"prefix_frac high", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, PrefixFrac: 1.5}},
			"outside [0,1]", true},
		{"prefix_frac negative", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, PrefixFrac: -0.1}},
			"outside [0,1]", true},
		{"prefix_size negative", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, PrefixSize: -3}},
			"negative prefix_size", true},
		{"grain negative", JobSpec{GraphID: "g0", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Grain: -1}},
			"negative grain", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("spec accepted: %+v", c.spec)
			}
			if !strings.Contains(err.Error(), c.wantFrag) {
				t.Fatalf("error %q does not contain %q", err, c.wantFrag)
			}
			if !c.wire {
				return
			}
			// The invalid plan must survive the wire unchanged, so the
			// HTTP layer rejects it with the same message rather than
			// decoding it into something Validate would accept.
			raw, merr := json.Marshal(c.spec.Plan)
			if merr != nil {
				t.Fatal(merr)
			}
			var back greedy.Plan
			if uerr := json.Unmarshal(raw, &back); uerr != nil {
				t.Fatalf("plan does not round-trip: %v", uerr)
			}
			if back != c.spec.Plan {
				t.Fatalf("round-trip changed plan: %+v vs %+v", back, c.spec.Plan)
			}
			spec2 := c.spec
			spec2.Plan = back
			if err2 := spec2.Validate(); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("round-tripped spec validates differently: %v vs %v", err2, err)
			}
		})
	}
}

// TestProblemWireNames pins the wire names of all five problems — the
// strings clients put in the "problem" field of POST /v1/jobs.
func TestProblemWireNames(t *testing.T) {
	for _, want := range []string{"mis", "mm", "sf", "coloring", "hittingset"} {
		if p, err := ParseProblem(want); err != nil || string(p) != want {
			t.Fatalf("ParseProblem(%q) = %v, %v", want, p, err)
		}
	}
	if _, err := ParseProblem("setcover"); err == nil {
		t.Fatal("ParseProblem accepted an unknown name")
	}
}
