package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the service's metrics snapshot in the Prometheus
// text exposition format (version 0.0.4) for GET /metrics. It reuses
// the same Snapshot that backs the JSON view at /v1/metrics — one
// source of truth, two wire forms — and owns only the formatting:
// every family is emitted exactly once with its HELP/TYPE header, the
// histograms are converted from the snapshot's per-bucket counts to
// the cumulative buckets + _sum + _count Prometheus requires, and
// label values are sorted so scrapes are byte-deterministic for a
// fixed snapshot.

// promContentType is the exposition-format content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates exposition lines. Families must be declared
// before samples; declaring one twice panics, which the exposition
// test would surface — duplicate family names are a scrape error in
// real collectors.
type promWriter struct {
	w        io.Writer
	err      error
	declared map[string]bool
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) family(name, help, typ string) {
	if p.declared[name] {
		panic("prometheus family declared twice: " + name)
	}
	p.declared[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels is the pre-rendered interior of
// the label braces ("" for none).
func (p *promWriter) sample(name, labels string, value string) {
	if labels == "" {
		p.printf("%s %s\n", name, value)
		return
	}
	p.printf("%s{%s} %s\n", name, labels, value)
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func promInt(v int64) string     { return strconv.FormatInt(v, 10) }

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// counter declares and emits a single unlabeled counter.
func (p *promWriter) counter(name, help string, v int64) {
	p.family(name, help, "counter")
	p.sample(name, "", promInt(v))
}

// gauge declares and emits a single unlabeled gauge.
func (p *promWriter) gauge(name, help string, v float64) {
	p.family(name, help, "gauge")
	p.sample(name, "", promFloat(v))
}

// histogram declares one histogram family and emits one series per
// (labels, snapshot) pair: cumulative le buckets ending at +Inf (which
// by construction equals _count), then _sum and _count.
func (p *promWriter) histogram(name, help string, series []promSeries) {
	p.family(name, help, "histogram")
	for _, s := range series {
		cum := s.h.CumulativeBuckets()
		for i, b := range s.h.Bounds {
			le := promFloat(b / 1000) // snapshot bounds are milliseconds
			p.sample(name+"_bucket", joinLabels(s.labels, `le="`+le+`"`), promInt(cum[i]))
		}
		inf := int64(0)
		if len(cum) > 0 {
			inf = cum[len(cum)-1]
		}
		p.sample(name+"_bucket", joinLabels(s.labels, `le="+Inf"`), promInt(inf))
		p.sample(name+"_sum", s.labels, promFloat(s.h.SumSeconds()))
		p.sample(name+"_count", s.labels, promInt(s.h.Count))
	}
}

// runtimeHistogram declares and emits one runtime/metrics-backed
// histogram. The runtime does not track a sum, so _sum is estimated
// from bucket midpoints (the convention collectors use for these
// families); _count is exact.
func (p *promWriter) runtimeHistogram(name, help string, h RuntimeHistogram) {
	p.family(name, help, "histogram")
	var cum uint64
	var sum, lower float64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		le := "+Inf"
		mid := lower
		if !isInf(bound) {
			le = promFloat(bound)
			mid = (lower + bound) / 2
			lower = bound
		}
		sum += float64(h.Counts[i]) * mid
		p.sample(name+"_bucket", `le="`+le+`"`, promInt(int64(cum)))
	}
	if n := len(h.Bounds); n == 0 || !isInf(h.Bounds[n-1]) {
		p.sample(name+"_bucket", `le="+Inf"`, promInt(int64(cum)))
	}
	p.sample(name+"_sum", "", promFloat(sum))
	p.sample(name+"_count", "", promInt(int64(cum)))
}

type promSeries struct {
	labels string // rendered label-brace interior, "" for none
	h      HistogramSnapshot
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// promLabelValue escapes a label value per the exposition format
// (backslash, double quote, newline).
func promLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// problemSeries renders a problem-labeled histogram map in sorted
// problem order.
func problemSeries(m map[Problem]HistogramSnapshot) []promSeries {
	problems := make([]string, 0, len(m))
	for p := range m {
		problems = append(problems, string(p))
	}
	sort.Strings(problems)
	out := make([]promSeries, 0, len(problems))
	for _, p := range problems {
		out = append(out, promSeries{labels: `problem="` + p + `"`, h: m[Problem(p)]})
	}
	return out
}

// WritePrometheus renders snap in the Prometheus text exposition
// format. Exported for the exposition tests and embedders that mount
// the service under their own telemetry endpoint.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	p := &promWriter{w: w, declared: make(map[string]bool)}

	// Job lifecycle counters.
	p.counter("greedyd_jobs_submitted_total", "Job submissions accepted (dedup hits included).", snap.Jobs.Submitted)
	p.counter("greedyd_jobs_dedup_hits_total", "Submissions absorbed by an existing job with the same idempotency key.", snap.Jobs.DedupHits)
	p.counter("greedyd_jobs_executed_total", "Jobs that ran to successful completion.", snap.Jobs.Executed)
	p.counter("greedyd_jobs_adaptive_executed_total", "Executed jobs that ran the adaptive prefix schedule.", snap.Jobs.AdaptiveExecuted)
	p.counter("greedyd_jobs_repaired_total", "Executed dynamic jobs answered by incremental session repair.", snap.Jobs.Repaired)
	p.counter("greedyd_repair_visited_total", "Frontier items re-decided across all repaired jobs.", snap.Jobs.RepairVisited)
	p.counter("greedyd_repair_flipped_total", "Membership flips propagated across all repaired jobs.", snap.Jobs.RepairFlipped)
	p.counter("greedyd_jobs_failed_total", "Jobs that ended in failure.", snap.Jobs.Failed)
	p.counter("greedyd_jobs_cancelled_total", "Jobs cancelled while queued or running.", snap.Jobs.Cancelled)
	p.counter("greedyd_jobs_expired_total", "Finished jobs reaped after the result TTL.", snap.Jobs.Expired)

	// Overload control. The deadline family is emitted even at zero so
	// dashboards and the CI smoke assertions can rely on its presence.
	p.counter("greedyd_deadline_exceeded_total", "Jobs terminated by their per-job timeout_ms budget.", snap.Jobs.DeadlineExceeded)
	p.counter("greedyd_jobs_recovered_total", "Journaled jobs re-enqueued at boot after a crash.", snap.Jobs.Recovered)
	p.counter("greedyd_admission_rejected_total", "Job submissions refused with 429 (queue full).", snap.Jobs.AdmissionRejected)
	p.counter("greedyd_ingest_paused_total", "Graph uploads refused with 503 (memory watermark).", snap.Registry.IngestPausedRejections)

	// Resident job-state gauges.
	p.gauge("greedyd_jobs_queued", "Jobs currently queued.", float64(snap.Jobs.Queued))
	p.gauge("greedyd_jobs_running", "Jobs currently running.", float64(snap.Jobs.Running))
	p.gauge("greedyd_jobs_done_resident", "Done jobs retained in the result store.", float64(snap.Jobs.Done))
	p.gauge("greedyd_jobs_failed_resident", "Failed jobs retained in the result store.", float64(snap.Jobs.FailedNow))
	p.gauge("greedyd_jobs_cancelled_resident", "Cancelled jobs retained in the result store.", float64(snap.Jobs.CancelledNow))
	p.gauge("greedyd_jobs_deadline_resident", "Deadline-exceeded jobs retained in the result store.", float64(snap.Jobs.DeadlineNow))

	// Registry.
	p.gauge("greedyd_registry_graphs", "Graphs resident in the registry.", float64(snap.Registry.Graphs))
	p.gauge("greedyd_registry_pinned", "Resident graphs pinned by in-flight work.", float64(snap.Registry.Pinned))
	p.gauge("greedyd_registry_bytes_resident", "Bytes of resident graph storage.", float64(snap.Registry.BytesResident))
	p.gauge("greedyd_registry_byte_budget", "Registry byte budget (0 = unlimited).", float64(snap.Registry.ByteBudget))
	p.counter("greedyd_registry_hits_total", "Registry lookups that found a resident graph.", snap.Registry.Hits)
	p.counter("greedyd_registry_misses_total", "Registry lookups of unknown graph ids.", snap.Registry.Misses)
	p.counter("greedyd_registry_evictions_total", "Graphs evicted by the byte-budget LRU.", snap.Registry.Evictions)
	p.counter("greedyd_registry_patches_total", "Graph versions derived via PATCH.", snap.Registry.Patches)
	p.gauge("greedyd_registry_cold_graphs", "Graphs currently resident only in the disk tier.", float64(snap.Registry.ColdGraphs))
	p.gauge("greedyd_registry_watermark_bytes", "Resident-byte level that pauses graph ingest (0 = disarmed).", float64(snap.Registry.WatermarkBytes))

	// Durability tier. Families are emitted even when persistence is
	// off (all zeros) so their presence is scrape-stable.
	p.gauge("greedyd_persist_enabled", "1 when a data directory is attached, else 0.", boolGauge(snap.Persist.Enabled))
	p.counter("greedyd_persist_blobs_written_total", "Graph blobs committed to the disk tier.", snap.Persist.BlobsWritten)
	p.counter("greedyd_persist_blob_bytes_total", "Payload bytes of committed graph blobs.", snap.Persist.BlobBytes)
	p.counter("greedyd_persist_demotions_total", "Warm graphs demoted to the disk tier by the byte budget.", snap.Persist.Demotions)
	p.counter("greedyd_persist_cold_loads_total", "Cold graphs reloaded from the disk tier on acquire.", snap.Persist.ColdLoads)
	p.counter("greedyd_persist_rehydrated_total", "Graph entries indexed from blobs at boot.", snap.Persist.Rehydrated)
	p.counter("greedyd_persist_wal_appends_total", "Job-journal accept records appended.", snap.Persist.WALAppends)
	p.counter("greedyd_persist_wal_compactions_total", "Job-journal compaction rewrites.", snap.Persist.WALCompactions)
	p.gauge("greedyd_persist_pending_jobs", "Acknowledged-but-unfinished jobs the journal currently owes.", float64(snap.Persist.PendingJobs))
	p.counter("greedyd_persist_errors_total", "Persistence failures (degrade durability or speed, never correctness).", snap.Persist.Errors)

	// Go runtime.
	p.gauge("greedyd_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", float64(snap.Runtime.HeapAllocBytes))
	p.counter("greedyd_alloc_bytes_total", "Cumulative bytes allocated (runtime.MemStats.TotalAlloc).", int64(snap.Runtime.TotalAllocBytes))
	p.counter("greedyd_mallocs_total", "Cumulative heap objects allocated.", int64(snap.Runtime.Mallocs))
	p.counter("greedyd_gc_cycles_total", "Completed GC cycles.", int64(snap.Runtime.NumGC))
	p.gauge("greedyd_goroutines", "Live goroutines.", float64(snap.Runtime.Goroutines))
	p.gauge("greedyd_gc_heap_goal_bytes", "GC heap size target (/gc/heap/goal:bytes).", float64(snap.Runtime.HeapGoalBytes))
	p.gauge("greedyd_gomaxprocs", "Scheduler processor limit (fork-join width ceiling).", float64(snap.Runtime.GOMAXPROCS))
	p.runtimeHistogram("greedyd_gc_pause_seconds", "Stop-the-world GC pause distribution (/gc/pauses:seconds).", snap.Runtime.GCPauses)
	p.runtimeHistogram("greedyd_sched_latency_seconds", "Goroutine runnable-to-running latency distribution (/sched/latencies:seconds).", snap.Runtime.SchedLatency)

	// Build identity.
	p.family("greedyd_build_info", "Build metadata of the running binary; value is always 1.", "gauge")
	p.sample("greedyd_build_info",
		`go_version="`+promLabelValue(snap.Build.GoVersion)+
			`",path="`+promLabelValue(snap.Build.Path)+
			`",version="`+promLabelValue(snap.Build.Version)+
			`",revision="`+promLabelValue(snap.Build.Revision)+`"`, "1")

	// Trace recorder.
	p.counter("greedyd_trace_events_total", "Trace events recorded (0 when tracing is disabled).", int64(snap.TraceEvents))

	// Event-stream fan-out.
	p.gauge("greedyd_stream_subscribers", "Attached /v1/events subscriptions.", float64(snap.Stream.Subscribers))
	p.counter("greedyd_stream_events_published_total", "Events offered to the stream fan-out.", int64(snap.Stream.Published))
	p.counter("greedyd_stream_events_dropped_total", "Events discarded across subscriber queues.", int64(snap.Stream.Dropped))
	p.counter("greedyd_stream_evictions_total", "Subscriptions detached for falling behind.", int64(snap.Stream.Evicted))
	p.family("greedyd_stream_subscriber_dropped", "Events dropped per attached subscription.", "gauge")
	for _, sub := range snap.Stream.PerSub {
		p.sample("greedyd_stream_subscriber_dropped",
			`subscriber="`+strconv.FormatUint(sub.ID, 10)+`"`, promInt(int64(sub.Dropped)))
	}

	// HTTP serving.
	p.family("greedyd_http_requests_total", "HTTP requests served, by status class.", "counter")
	for _, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		p.sample("greedyd_http_requests_total", `class="`+class+`"`, promInt(snap.HTTP.Requests[class]))
	}
	p.histogram("greedyd_http_request_seconds", "HTTP request service time.", []promSeries{{h: snap.HTTP.Latency}})

	// Per-problem job latency histograms.
	p.histogram("greedyd_job_run_seconds", "Job execution (run) time of successful jobs, by problem.", problemSeries(snap.RunLatency))
	p.histogram("greedyd_job_e2e_seconds", "Submission-to-completion time of successful jobs, by problem.", problemSeries(snap.E2ELatency))

	return p.err
}

// handlePromMetrics serves GET /metrics: the Prometheus text view of
// the same snapshot /v1/metrics serves as JSON.
func (s *Service) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", promContentType)
	_ = WritePrometheus(w, snap)
}
