package service

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	greedy "repro"
	"repro/internal/trace"
)

// TestSSEDecoderFraming walks the wire format line by line: id/event/
// data frames, multi-line data, comment-only heartbeats, CRLF line
// endings, ignored unknown fields, and the two EOF shapes.
func TestSSEDecoderFraming(t *testing.T) {
	stream := "" +
		": connected sub=1\n\n" + // comment-only frame (connect banner)
		"id: 7\nevent: phase\ndata: {\"seq\":7}\n\n" + // full data frame
		"data: line1\ndata: line2\n\n" + // multi-line data, no id/event
		"retry: 1000\ndata: x\n\n" + // unknown field ignored
		"\n" + // stray blank line between frames skipped
		": hb dropped=3\n\n" + // heartbeat
		"id: 9\r\nevent: done\r\ndata: {}\r\n\r\n" // CRLF endings

	d := NewSSEDecoder(strings.NewReader(stream))

	ev, err := d.Next()
	if err != nil || !ev.IsComment() || ev.Comment != "connected sub=1" {
		t.Fatalf("frame 1 = %+v err=%v, want comment %q", ev, err, "connected sub=1")
	}

	ev, err = d.Next()
	if err != nil || ev.ID != "7" || ev.Event != "phase" || string(ev.Data) != `{"seq":7}` {
		t.Fatalf("frame 2 = %+v err=%v, want id=7 event=phase data={\"seq\":7}", ev, err)
	}
	if ev.IsComment() {
		t.Fatal("data frame classified as comment")
	}

	ev, err = d.Next()
	if err != nil || ev.ID != "" || ev.Event != "" || string(ev.Data) != "line1\nline2" {
		t.Fatalf("frame 3 = %+v err=%v, want joined multi-line data", ev, err)
	}

	ev, err = d.Next()
	if err != nil || string(ev.Data) != "x" {
		t.Fatalf("frame 4 = %+v err=%v, want unknown field ignored, data=x", ev, err)
	}

	ev, err = d.Next()
	if err != nil || ev.Comment != "hb dropped=3" {
		t.Fatalf("frame 5 = %+v err=%v, want heartbeat comment", ev, err)
	}

	ev, err = d.Next()
	if err != nil || ev.ID != "9" || ev.Event != "done" || string(ev.Data) != "{}" {
		t.Fatalf("frame 6 = %+v err=%v, want CRLF frame parsed", ev, err)
	}

	if _, err = d.Next(); err != io.EOF {
		t.Fatalf("clean end of stream: err = %v, want io.EOF", err)
	}

	// A frame cut off before its blank line is a truncation, not EOF.
	d = NewSSEDecoder(strings.NewReader("id: 1\ndata: {}\n"))
	if _, err = d.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestEventStreamLifecycle subscribes to /v1/events over a real HTTP
// server, runs a job, and asserts the lifecycle (submit → queue → run
// → done) plus sampled round and phase events arrive on the live
// stream, in recorder order.
func TestEventStreamLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, TraceRoundSample: 1})
	ctx := context.Background()

	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 2000, M: 8000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	// Subscribe before submitting so no lifecycle event can be missed;
	// the goroutine collects everything and the test filters by job id
	// once it knows it.
	var mu sync.Mutex
	var collected []trace.Event
	streamDone := make(chan error, 1)
	connected := make(chan struct{})
	go func() {
		once := false
		streamDone <- c.Events(streamCtx, EventFilter{}, func(msg StreamEvent) error {
			if !once {
				once = true
				close(connected)
			}
			if msg.IsComment() {
				return nil
			}
			ev, derr := msg.TraceEvent()
			if derr != nil {
				return derr
			}
			mu.Lock()
			collected = append(collected, ev)
			mu.Unlock()
			return nil
		})
	}()
	select {
	case <-connected:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never delivered its connect banner")
	}

	sub, err := c.Submit(ctx, JobRequest{GraphID: info.ID, Problem: "mis", Plan: greedy.ResolvePlan(greedy.WithSeed(2))})
	if err != nil {
		t.Fatal(err)
	}
	if st, werr := c.Wait(ctx, sub.ID, time.Millisecond); werr != nil || st.State != StateDone {
		t.Fatalf("wait: state=%v err=%v", st.State, werr)
	}

	// The job is done; wait for its done event to arrive on the stream.
	jobEvents := func() []trace.Event {
		mu.Lock()
		defer mu.Unlock()
		var out []trace.Event
		for _, ev := range collected {
			if ev.Job == sub.ID {
				out = append(out, ev)
			}
		}
		return out
	}
	hasDone := func(events []trace.Event) bool {
		for _, ev := range events {
			if ev.Kind == trace.KindDone {
				return true
			}
		}
		return false
	}
	waitFor(t, 10*time.Second, "the stream to deliver the job's done event", func() bool {
		return hasDone(jobEvents())
	})
	stopStream()
	if err := <-streamDone; err != nil {
		t.Fatalf("stream ended with error: %v", err)
	}

	seen := map[trace.Kind]bool{}
	var lastSeq uint64
	for _, ev := range jobEvents() {
		seen[ev.Kind] = true
		if ev.Seq <= lastSeq {
			t.Fatalf("stream out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Kind == trace.KindPhase && ev.CheckMS+ev.CommitMS+ev.ResetMS+ev.SlideMS <= 0 {
			t.Fatalf("phase event carries no durations: %+v", ev)
		}
	}
	for _, k := range []trace.Kind{trace.KindSubmit, trace.KindQueue, trace.KindRun, trace.KindDone, trace.KindRound, trace.KindPhase} {
		if !seen[k] {
			t.Fatalf("live stream missing %s event; saw %v", k, seen)
		}
	}
}

// TestEventStreamKindFilter: a ?kind= subscription receives only the
// named kinds, and an unknown kind is rejected with 400 up front.
func TestEventStreamKindFilter(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, TraceRoundSample: 1})
	ctx := context.Background()

	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 500, M: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	done := make(chan error, 1)
	connected := make(chan struct{})
	go func() {
		once := false
		done <- c.Events(streamCtx, EventFilter{Kinds: []string{"done"}}, func(msg StreamEvent) error {
			if !once {
				once = true
				close(connected)
			}
			if msg.IsComment() {
				return nil
			}
			ev, derr := msg.TraceEvent()
			if derr != nil {
				return derr
			}
			if ev.Kind != trace.KindDone {
				t.Errorf("kind=done subscription received %s event", ev.Kind)
			}
			if ev.Kind == trace.KindDone {
				stopStream()
			}
			return nil
		})
	}()
	// Subscribe-before-submit: the job is small enough to finish (and
	// publish its only done event) before an unsynchronized subscription
	// attaches.
	select {
	case <-connected:
	case <-time.After(10 * time.Second):
		t.Fatal("filtered stream never delivered its connect banner")
	}

	sub, err := c.Submit(ctx, JobRequest{GraphID: info.ID, Problem: "mis", Plan: greedy.ResolvePlan(greedy.WithSeed(1))})
	if err != nil {
		t.Fatal(err)
	}
	if st, werr := c.Wait(ctx, sub.ID, time.Millisecond); werr != nil || st.State != StateDone {
		t.Fatalf("wait: state=%v err=%v", st.State, werr)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("filtered stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("filtered stream never saw the done event")
	}

	if err := c.Events(ctx, EventFilter{Kinds: []string{"bogus"}}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown event kind") {
		t.Fatalf("bogus kind: err = %v, want unknown-event-kind rejection", err)
	}
}

// TestEventStreamDisabled: without tracing (or with streaming
// explicitly off) the endpoint answers 404.
func TestEventStreamDisabled(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 1, TraceCapacity: -1},
		{Workers: 1, StreamSubscribers: -1},
	} {
		_, c := newTestServer(t, cfg)
		err := c.Events(context.Background(), EventFilter{}, nil)
		if err == nil || !strings.Contains(err.Error(), "404") {
			t.Fatalf("config %+v: err = %v, want 404", cfg, err)
		}
	}
}

// TestEventStreamAdmission: the subscriber limit maps to 503 on the
// wire.
func TestEventStreamAdmission(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, StreamSubscribers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	connected := make(chan struct{})
	go func() {
		once := false
		c.Events(ctx, EventFilter{}, func(StreamEvent) error {
			if !once {
				once = true
				close(connected)
			}
			return nil
		})
	}()
	select {
	case <-connected:
	case <-time.After(10 * time.Second):
		t.Fatal("first subscriber never connected")
	}

	err := c.Events(ctx, EventFilter{}, nil)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("second subscriber: err = %v, want 503 at the admission limit", err)
	}
}

// TestPhaseDurationsTileRunSpan is the profiler's accuracy contract:
// for a job whose execution is dominated by the engine's round loop (a
// tiny absolute prefix forces ~n rounds, so setup and extraction are
// noise), the per-phase durations accumulated in the job's progress sum
// to within 5% of the job's measured run span.
func TestPhaseDurationsTileRunSpan(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, TraceRoundSample: 1})

	g, _, err := svc.Generate(GenSpec{Generator: "random", N: 4000, M: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := svc.Engine().Submit(JobSpec{
		GraphID: g.ID,
		Problem: ProblemMIS,
		Plan:    greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 1, PrefixSize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "job "+st.ID+" to finish", func() bool {
		if st, err = svc.Engine().Status(st.ID); err != nil {
			t.Fatal(err)
		}
		if st.State == StateFailed || st.State == StateCancelled {
			t.Fatalf("job ended %s", st.State)
		}
		return st.State == StateDone
	})
	if st.Progress == nil {
		t.Fatal("done job has no progress")
	}
	p := st.Progress
	sum := p.CheckMS + p.CommitMS + p.ResetMS + p.SlideMS
	if sum <= 0 {
		t.Fatalf("no phase durations accumulated: %+v", p)
	}
	if st.RunMS <= 0 {
		t.Fatalf("run span not measured: %+v", st)
	}
	ratio := sum / st.RunMS
	if ratio < 0.95 || ratio > 1.0+1e-9 {
		t.Fatalf("phase sum %.3fms vs run span %.3fms (ratio %.3f): phases must tile the run span within 5%% on a loop-dominated job (rounds=%d)",
			sum, st.RunMS, ratio, p.Rounds)
	}
}
