package service

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	greedy "repro"
)

// submitLongJob adds a graph sized so a prefix_size=2 MIS keeps a
// worker busy for a long time (≈ n/2 rounds) while still honoring
// cancellation at every round boundary, and submits it.
func submitLongJob(t *testing.T, svc *Service, seed uint64) (JobStatus, GraphInfo) {
	t.Helper()
	info, _, err := svc.Generate(GenSpec{Generator: "random", N: 300_000, M: 600_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := svc.Engine().Submit(JobSpec{
		GraphID: info.ID,
		Problem: ProblemMIS,
		Plan:    greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: seed, PrefixSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, info
}

// waitRunningWithProgress waits until the job is mid-run: running AND
// past its first round, so a subsequent Cancel exercises the round
// loop's cancellation path rather than aborting before round 1.
func waitRunningWithProgress(t *testing.T, e *Engine, id string) JobStatus {
	t.Helper()
	var st JobStatus
	waitFor(t, 30*time.Second, "job "+id+" to report mid-run progress", func() bool {
		var err error
		if st, err = e.Status(id); err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			t.Fatalf("job %s finished (%s) before mid-run progress was observed", id, st.State)
		}
		return st.State == StateRunning && st.Progress != nil && st.Progress.Rounds > 0
	})
	return st
}

// waitRefs polls until the graph's refcount reaches want (the worker
// releases its pin shortly after publishing a terminal job state).
func waitRefs(t *testing.T, svc *Service, graphID string, want int) {
	t.Helper()
	waitFor(t, 10*time.Second, fmt.Sprintf("graph %s to reach refs=%d", graphID, want), func() bool {
		gi, ok := svc.Registry().Get(graphID)
		if !ok {
			t.Fatalf("graph %s gone while waiting for refs", graphID)
		}
		return gi.Refs == want
	})
}

func waitState(t *testing.T, e *Engine, id string, want JobState) JobStatus {
	t.Helper()
	var st JobStatus
	waitFor(t, 30*time.Second, fmt.Sprintf("job %s to reach state %s", id, want), func() bool {
		var err error
		if st, err = e.Status(id); err != nil {
			t.Fatal(err)
		}
		if st.State != want && (st.State == StateDone || st.State == StateFailed) {
			t.Fatalf("job %s reached terminal state %s, want %s", id, st.State, want)
		}
		return st.State == want
	})
	return st
}

// TestCancelRunningJobFreesWorkerAndRefcount is the satellite contract:
// DELETE on a running job aborts it within one round, frees its worker
// for the next job, and releases the graph refcount. Run with -race.
func TestCancelRunningJobFreesWorkerAndRefcount(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	st, info := submitLongJob(t, svc, 7)

	waitRunningWithProgress(t, svc.Engine(), st.ID)
	if gi, ok := svc.Registry().Get(info.ID); !ok || gi.Refs != 1 {
		t.Fatalf("running job should pin the graph once, got refs=%d", gi.Refs)
	}

	cancelAt := time.Now()
	if _, err := svc.Engine().Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, svc.Engine(), st.ID, StateCancelled)
	ack := time.Since(cancelAt)
	t.Logf("running job acknowledged cancellation in %v", ack)
	if final.Progress == nil || final.Progress.Rounds == 0 {
		t.Error("cancelled running job reported no round progress")
	}

	// The pin is released. The worker releases it just after publishing
	// the terminal state (outside the engine mutex), so poll briefly
	// rather than racing that window.
	waitRefs(t, svc, info.ID, 0)
	// ...and the single worker is free to run another job to completion.
	quick, _, err := svc.Engine().Submit(JobSpec{
		GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Seed: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc.Engine(), quick.ID); got.State != StateDone {
		t.Fatalf("post-cancel job failed: %s", got.Error)
	}

	snap := svc.Snapshot()
	if snap.Jobs.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", snap.Jobs.Cancelled)
	}
}

func TestCancelQueuedJobReleasesImmediately(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	running, info := submitLongJob(t, svc, 7)
	waitState(t, svc.Engine(), running.ID, StateRunning)

	// With the only worker busy, this job stays queued.
	queued, _, err := svc.Engine().Submit(JobSpec{
		GraphID: info.ID, Problem: ProblemMM, Plan: greedy.Plan{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != StateQueued {
		t.Fatalf("second job state %s, want queued", queued.State)
	}
	if gi, _ := svc.Registry().Get(info.ID); gi.Refs != 2 {
		t.Fatalf("two live jobs should pin twice, got refs=%d", gi.Refs)
	}

	st, err := svc.Engine().Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job not cancelled synchronously: %s", st.State)
	}
	if gi, _ := svc.Registry().Get(info.ID); gi.Refs != 1 {
		t.Fatalf("cancelled queued job should release its pin, refs=%d", gi.Refs)
	}

	// Cancelling again is idempotent; the running job still finishes its
	// cancellation path cleanly.
	if st, err := svc.Engine().Cancel(queued.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("re-cancel: %v, %s", err, st.State)
	}
	if _, err := svc.Engine().Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, svc.Engine(), running.ID, StateCancelled)
}

func TestCancelledJobIsNotDedupTarget(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	st, info := submitLongJob(t, svc, 21)
	waitRunningWithProgress(t, svc.Engine(), st.ID)
	if _, err := svc.Engine().Cancel(st.ID); err != nil {
		t.Fatal(err)
	}

	// Resubmitting the same spec starts a fresh execution rather than
	// serving the doomed job — even in the window where the cancelled
	// job's round loop has not yet observed the cancellation.
	again, deduped, err := svc.Engine().Submit(JobSpec{
		GraphID: info.ID,
		Problem: ProblemMIS,
		Plan:    greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 21, PrefixSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if deduped || again.ID == st.ID {
		t.Fatalf("cancelled job served as dedup target (id=%s deduped=%v)", again.ID, deduped)
	}
	if _, err := svc.Engine().Cancel(again.ID); err != nil {
		t.Fatal(err)
	}
}

func TestCancelFinishedJobConflicts(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	info := addGraph(t, svc, 500, 1)
	st, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc.Engine(), st.ID)
	if _, err := svc.Engine().Cancel(st.ID); err == nil {
		t.Fatal("cancel of a done job succeeded")
	}
	if _, err := svc.Engine().Cancel("j424242"); err == nil {
		t.Fatal("cancel of an unknown job succeeded")
	}
}

// TestHTTPCancelLifecycle drives the DELETE endpoint end to end:
// status with live progress while running, 200 on cancel, "cancelled"
// terminal state, 409 on a finished job, 404 on an unknown one.
func TestHTTPCancelLifecycle(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	// A prefix_size=2 job runs ~n/2 cancellable rounds, but a fast
	// machine can still finish all of them between the progress poll and
	// the DELETE below. That race is not the contract under test, so an
	// attempt whose job completes first escalates to a 4x larger graph
	// and tries again instead of failing.
	var (
		gr        GraphResponse
		sub       JobResponse
		cancelled bool
	)
	n, m := 300_000, 600_000
	for attempt := 0; attempt < 3 && !cancelled; attempt, n, m = attempt+1, n*4, m*4 {
		var err error
		gr, err = c.Generate(ctx, GenSpec{Generator: "random", N: n, M: m, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		sub, err = c.Submit(ctx, JobRequest{
			GraphID: gr.ID,
			Problem: "mis",
			Plan:    greedy.Plan{Seed: 5 + uint64(attempt), PrefixSize: 2},
		})
		if err != nil {
			t.Fatal(err)
		}

		// Live round progress must appear in GET /v1/jobs/{id} while the
		// job runs.
		deadline := time.Now().Add(30 * time.Second)
		raced := false
		for {
			st, err := c.Status(ctx, sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == StateRunning && st.Progress != nil && st.Progress.Rounds > 0 {
				if st.Progress.Attempted < st.Progress.Rounds {
					t.Fatalf("implausible progress: %+v", st.Progress)
				}
				break
			}
			if st.State == StateFailed {
				t.Fatalf("long job failed: %s", st.Error)
			}
			if st.State == StateDone {
				raced = true
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("no live progress surfaced")
			}
			time.Sleep(time.Millisecond)
		}
		if raced {
			continue
		}
		if _, err := c.Cancel(ctx, sub.ID); err != nil {
			if strings.Contains(err.Error(), "already finished") {
				continue
			}
			t.Fatal(err)
		}
		cancelled = true
	}
	if !cancelled {
		t.Fatal("every attempt finished before it could be cancelled; inputs too small for this machine")
	}
	final, err := c.Wait(ctx, sub.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}

	// The result endpoint is terminal for cancelled jobs: an error (422),
	// never a 202 "poll again" that would spin clients forever.
	if raw, done, err := c.Result(ctx, sub.ID); err == nil {
		t.Fatalf("result of cancelled job: (%d bytes, done=%v), want terminal error", len(raw), done)
	}

	// A finished (cancelled) job can be DELETEd again idempotently...
	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatalf("re-cancel not idempotent: %v", err)
	}
	// ...but a done job conflicts, and unknown jobs 404.
	quick, err := c.Submit(ctx, JobRequest{GraphID: gr.ID, Problem: "mis", Plan: greedy.Plan{Seed: 77}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, quick.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+quick.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE on done job: %d, want 409", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/j999999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE on unknown job: %d, want 404", resp.StatusCode)
	}
}
