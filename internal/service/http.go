package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/trace"

	greedy "repro"
)

// Handler returns the service's HTTP API:
//
//	POST  /v1/graphs             ingest: JSON generation request, or a raw
//	                             graph body in any supported format
//	GET   /v1/graphs             list resident graphs
//	GET   /v1/graphs/{id}        metadata of one graph
//	GET   /v1/graphs/{id}/stats  degree/component statistics of one graph
//	PATCH /v1/graphs/{id}        apply an edge-update batch, producing a
//	                             new content-addressed graph version
//	POST   /v1/jobs              submit a job (idempotent per spec key)
//	GET    /v1/jobs/{id}         job status, with live round progress
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/jobs/{id}/result  result payload of a done job
//	GET    /v1/jobs/{id}/trace   recorded trace events of one job
//	GET    /v1/trace/recent      most recent trace events (?limit=N)
//	GET    /v1/events            live trace-event stream (SSE;
//	                             ?job=ID&kind=a,b filters)
//	GET    /v1/metrics           metrics snapshot (JSON)
//	GET    /metrics              metrics (Prometheus text exposition)
//	GET    /healthz              liveness
//
// The returned handler is wrapped in the observability middleware: by
// status-class request counters, a request-latency histogram, KindHTTP
// trace events, and a structured access log.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleGraphCreate)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphGet)
	mux.HandleFunc("GET /v1/graphs/{id}/stats", s.handleGraphStats)
	mux.HandleFunc("PATCH /v1/graphs/{id}", s.handleGraphPatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/trace/recent", s.handleTraceRecent)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.instrument(mux)
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// GraphResponse is the body returned by graph ingestion.
type GraphResponse struct {
	GraphInfo
	Deduped bool `json:"deduped"`
}

func (s *Service) handleGraphCreate(w http.ResponseWriter, r *http.Request) {
	// Memory watermark: when resident bytes press against the budget
	// and demotion cannot relieve it (pins, no disk tier), refuse new
	// graphs rather than let ingest crowd out running jobs.
	if s.registry.IngestPaused() {
		s.metrics.ingestPausedEvent()
		w.Header().Set("Retry-After", strconv.Itoa(s.engine.RetryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, ErrIngestPaused)
		return
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "application/json" {
		var spec GenSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad generation request: %w", err))
			return
		}
		info, deduped, err := s.Generate(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrGraphTooLarge) {
				// Same mapping as the raw-upload path below, so clients
				// can key capacity handling off one status code.
				code = http.StatusInsufficientStorage
			}
			writeError(w, code, err)
			return
		}
		code := http.StatusCreated
		if deduped {
			code = http.StatusOK
		}
		writeJSON(w, code, GraphResponse{GraphInfo: info, Deduped: deduped})
		return
	}

	// Raw upload in any of the three formats, auto-detected.
	g, err := graph.ReadAuto(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, err)
		return
	}
	info, deduped, err := s.registry.Add(g, strings.TrimSpace(r.URL.Query().Get("label")))
	if err != nil {
		writeError(w, http.StatusInsufficientStorage, err)
		return
	}
	code := http.StatusCreated
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, GraphResponse{GraphInfo: info, Deduped: deduped})
}

func (s *Service) handleGraphList(w http.ResponseWriter, r *http.Request) {
	list := s.registry.List()
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	writeJSON(w, http.StatusOK, list)
}

func (s *Service) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrGraphNotFound)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// GraphStatsResponse is the body of GET /v1/graphs/{id}/stats: the
// degree and connectivity statistics operators need to size workloads
// without downloading the graph. Computed once per resident graph and
// cached.
type GraphStatsResponse struct {
	ID               string  `json:"id"`
	N                int     `json:"n"`
	M                int     `json:"m"`
	DegreeMin        int     `json:"degree_min"`
	DegreeP50        int     `json:"degree_p50"`
	DegreeMean       float64 `json:"degree_mean"`
	DegreeP90        int     `json:"degree_p90"`
	DegreeP99        int     `json:"degree_p99"`
	DegreeMax        int     `json:"degree_max"`
	IsolatedVertices int     `json:"isolated_vertices"`
	Components       int     `json:"components"`
	LargestComponent int     `json:"largest_component"`
	Degeneracy       int     `json:"degeneracy"`
}

func (s *Service) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h, err := s.registry.Acquire(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer h.Release()
	st := h.Stats()
	writeJSON(w, http.StatusOK, GraphStatsResponse{
		ID:               id,
		N:                st.N,
		M:                st.M,
		DegreeMin:        st.Min,
		DegreeP50:        st.Median,
		DegreeMean:       st.Mean,
		DegreeP90:        st.P90,
		DegreeP99:        st.P99,
		DegreeMax:        st.Max,
		IsolatedVertices: st.IsolatedVertices,
		Components:       st.ConnectedComps,
		LargestComponent: st.LargestComponent,
		Degeneracy:       st.DegeneracyEstimate,
	})
}

// PatchUpdate is one edge update of a PATCH request.
type PatchUpdate struct {
	Op string `json:"op"` // "add" | "del"
	U  int32  `json:"u"`
	V  int32  `json:"v"`
}

// PatchRequest is the body of PATCH /v1/graphs/{id}.
type PatchRequest struct {
	Updates []PatchUpdate `json:"updates"`
	Label   string        `json:"label,omitempty"`
}

// PatchResponse is the body returned by a graph patch: the new
// version's metadata plus its derivation.
type PatchResponse struct {
	PatchResult
	Deduped bool `json:"deduped"`
}

func (s *Service) handleGraphPatch(w http.ResponseWriter, r *http.Request) {
	var req PatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad patch request: %w", err))
		return
	}
	if len(req.Updates) > s.cfg.MaxPatchUpdates {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("service: patch carries %d updates, limit %d", len(req.Updates), s.cfg.MaxPatchUpdates))
		return
	}
	updates := make([]dynamic.Update, len(req.Updates))
	for i, up := range req.Updates {
		op, err := dynamic.ParseOp(up.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: update %d: %w", i, err))
			return
		}
		updates[i] = dynamic.Update{Op: op, U: up.U, V: up.V}
	}
	res, deduped, err := s.Patch(r.PathValue("id"), updates, req.Label)
	switch {
	case err == nil:
	case errors.Is(err, ErrGraphNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrGraphTooLarge):
		writeError(w, http.StatusInsufficientStorage, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusCreated
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, PatchResponse{PatchResult: res, Deduped: deduped})
}

// JobRequest is the body of POST /v1/jobs. The algorithm configuration
// travels as a greedy.Plan — the library's serializable form of an
// option list — so the service adds no field plumbing of its own: new
// Plan knobs flow through submission, dedup key, status, and result
// payload without touching this package. An omitted plan selects the
// default (prefix algorithm, seed 0).
type JobRequest struct {
	GraphID string      `json:"graph_id"`
	Problem string      `json:"problem"`
	Plan    greedy.Plan `json:"plan"`
	// TimeoutMS, when positive, bounds the job's execution wall time;
	// a run that overshoots terminates in state deadline_exceeded.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobResponse is the body returned by job submission.
type JobResponse struct {
	JobStatus
	Deduped bool `json:"deduped"`
}

func (s *Service) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	// Reject unknown fields so pre-Plan clients sending flat
	// algorithm/seed fields get a loud 400 instead of a silently
	// defaulted computation.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job request: %w", err))
		return
	}
	problem, err := ParseProblem(req.Problem)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := JobSpec{
		GraphID:   req.GraphID,
		Problem:   problem,
		Plan:      req.Plan,
		TimeoutMS: req.TimeoutMS,
	}
	st, deduped, err := s.engine.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrGraphNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrQueueFull):
		// Overload, not outage: 429 with a Retry-After computed from the
		// observed drain rate, so well-behaved clients spread their
		// retries across the time the backlog actually needs.
		w.Header().Set("Retry-After", strconv.Itoa(s.engine.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, JobResponse{JobStatus: st, Deduped: deduped})
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobCancel cancels a queued or running job. Cancelling a job
// that already finished is a conflict (409); an already-cancelled job
// is idempotent success.
func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrJobNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrJobFinished):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	raw, st, err := s.engine.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw)
	case StateFailed, StateCancelled, StateDeadline:
		// Terminal without a result: 422 stops result pollers (202 would
		// have them spin until the janitor reaps the job).
		writeJSON(w, http.StatusUnprocessableEntity, st)
	default:
		// Not finished: return the status with 202 so clients can poll.
		writeJSON(w, http.StatusAccepted, st)
	}
}

// ErrTraceDisabled is returned by the trace endpoints when the service
// was configured with tracing off (negative TraceCapacity).
var ErrTraceDisabled = errors.New("service: tracing disabled")

// TraceResponse is the body of the trace endpoints: flight-recorder
// events, oldest first. Total counts every event ever recorded, so
// clients can detect that older events of a long job were overwritten.
type TraceResponse struct {
	JobID  string        `json:"job_id,omitempty"`
	Total  uint64        `json:"total_events"`
	Events []trace.Event `json:"events"`
}

func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if !s.trace.Enabled() {
		writeError(w, http.StatusNotFound, ErrTraceDisabled)
		return
	}
	id := r.PathValue("id")
	events := s.trace.Job(id)
	if len(events) == 0 {
		// Distinguish "job unknown" (404) from "job known but its events
		// were overwritten or not yet recorded" (200 with empty list).
		if _, err := s.engine.Status(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		events = []trace.Event{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{JobID: id, Total: s.trace.Total(), Events: events})
}

func (s *Service) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if !s.trace.Enabled() {
		writeError(w, http.StatusNotFound, ErrTraceDisabled)
		return
	}
	limit := 256
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad limit %q (want a positive integer)", q))
			return
		}
		limit = n
	}
	events := s.trace.Recent(limit)
	if events == nil {
		events = []trace.Event{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{Total: s.trace.Total(), Events: events})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
