package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	greedy "repro"
)

// flakyHandler refuses the first fail requests with code (and a
// Retry-After of zero seconds so tests stay fast), then delegates.
func flakyHandler(fail int64, code int, next http.Handler) (http.Handler, *atomic.Int64) {
	var rejected atomic.Int64
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= fail {
			rejected.Add(1)
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(errorBody{Error: "synthetic overload"})
			return
		}
		next.ServeHTTP(w, r)
	}), &rejected
}

// TestClientRetriesOverload exercises the client backoff policy
// end-to-end against a real service behind a flaky front: the first
// submissions bounce with 429/503 and the client converges without the
// caller seeing an error.
func TestClientRetriesOverload(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	for _, tc := range []struct {
		name string
		code int
	}{
		{"queue_full_429", http.StatusTooManyRequests},
		{"draining_503", http.StatusServiceUnavailable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, rejected := flakyHandler(2, tc.code, svc.Handler())
			srv := httptest.NewServer(h)
			defer srv.Close()
			client := &Client{
				BaseURL: srv.URL,
				Retry:   BackoffPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
			}
			gen, err := client.Generate(t.Context(), GenSpec{Generator: "random", N: 1_000, M: 4_000, Seed: 1})
			if err != nil {
				t.Fatalf("Generate with %d front: %v", tc.code, err)
			}
			if got := rejected.Load(); got != 2 {
				t.Fatalf("rejected = %d, want 2", got)
			}
			rejected.Store(0)

			h2, rejected2 := flakyHandler(2, tc.code, svc.Handler())
			srv2 := httptest.NewServer(h2)
			defer srv2.Close()
			client.BaseURL = srv2.URL
			job, err := client.Submit(t.Context(), JobRequest{GraphID: gen.ID, Problem: "mis",
				Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 5}})
			if err != nil {
				t.Fatalf("Submit with %d front: %v", tc.code, err)
			}
			if got := rejected2.Load(); got != 2 {
				t.Fatalf("rejected = %d, want 2", got)
			}
			if st, err := client.Wait(t.Context(), job.ID, time.Millisecond); err != nil || st.State != StateDone {
				t.Fatalf("Wait: state=%v err=%v", st.State, err)
			}
		})
	}
}

// TestClientRetryDisabledByDefault pins the zero-value contract: no
// Retry policy means the first overload answer surfaces immediately.
func TestClientRetryDisabledByDefault(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	h, rejected := flakyHandler(1, http.StatusTooManyRequests, svc.Handler())
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	if _, err := client.Generate(t.Context(), GenSpec{Generator: "random", N: 1_000, M: 4_000, Seed: 1}); err == nil {
		t.Fatal("zero-value client retried through a 429")
	}
	if got := rejected.Load(); got != 1 {
		t.Fatalf("server saw %d rejections, want exactly 1 (no retry)", got)
	}
}

// TestClientRetryExhaustion pins the give-up contract: when every
// attempt bounces, the caller gets the overload error, after exactly
// MaxAttempts tries.
func TestClientRetryExhaustion(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	h, rejected := flakyHandler(100, http.StatusServiceUnavailable, svc.Handler())
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &Client{
		BaseURL: srv.URL,
		Retry:   BackoffPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	_, err := client.Generate(t.Context(), GenSpec{Generator: "random", N: 1_000, M: 4_000, Seed: 1})
	if err == nil {
		t.Fatal("Generate succeeded against a permanently overloaded server")
	}
	if got := rejected.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}
