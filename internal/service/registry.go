package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// Registry errors.
var (
	// ErrGraphNotFound is returned when an id names no resident graph
	// (never ingested, or evicted).
	ErrGraphNotFound = errors.New("service: graph not found (unknown id or evicted)")
	// ErrGraphTooLarge is returned when a single graph exceeds the whole
	// byte budget.
	ErrGraphTooLarge = errors.New("service: graph larger than the registry byte budget")
)

// GraphInfo is the public metadata of a registered graph.
type GraphInfo struct {
	ID       string    `json:"id"`
	Label    string    `json:"label,omitempty"`
	N        int       `json:"n"`
	M        int       `json:"m"`
	Bytes    int64     `json:"bytes"`
	Refs     int       `json:"refs"`
	AddedAt  time.Time `json:"added_at"`
	LastUsed time.Time `json:"last_used"`
}

// regEntry is one resident graph. The graph itself is immutable; the
// bookkeeping fields are guarded by the registry mutex. The edge-list
// view (needed by MM and SF jobs) is derived lazily once and cached,
// so repeated matching jobs on the same graph do not pay the O(m)
// derivation each run.
type regEntry struct {
	info  GraphInfo
	g     *graph.Graph
	clock uint64 // LRU tick of the last Acquire

	elOnce  sync.Once
	el      graph.EdgeList
	elBytes int64

	statsOnce sync.Once
	stats     graph.DegreeStats
}

// lineageRec remembers how a graph version was derived, so the job
// engine can advance a dynamic session from an ancestor version to a
// descendant by replaying the patches instead of recomputing. Records
// are kept in a bounded FIFO separate from the resident entries: a
// patch is small (bounded by the request cap) and stays useful even
// after an intermediate version is evicted.
type lineageRec struct {
	parent  string
	updates []dynamic.Update
}

// maxLineageRecs bounds the lineage index.
const maxLineageRecs = 1024

// Registry is the graph store behind the service: content-addressed
// ingest, byte-budgeted LRU eviction, and ref-count pinning so a graph
// with queued or running jobs is never evicted. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	clock    uint64
	entries  map[string]*regEntry
	metrics  *Metrics

	lineage      map[string]lineageRec
	lineageOrder []string // FIFO of lineage keys for bounded retention
}

// NewRegistry returns a registry with the given byte budget (<= 0 means
// unlimited). metrics may be nil.
func NewRegistry(budget int64, metrics *Metrics) *Registry {
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &Registry{
		budget:  budget,
		entries: make(map[string]*regEntry),
		metrics: metrics,
		lineage: make(map[string]lineageRec),
	}
}

// GraphID returns the content-addressed id of g: a truncated sha256 of
// its CSR arrays. Two ingests of the same graph — whether uploaded in
// different formats or regenerated from the same (generator, n, m,
// seed) — map to the same id, so the registry deduplicates storage for
// free. A cryptographic hash matters here: ids route jobs to graphs,
// so a client able to craft a colliding upload could make the service
// answer from the wrong graph.
func GraphID(g *graph.Graph) string {
	offsets, adj := g.Raw()
	h := sha256.New()
	buf := make([]byte, 0, 1<<16)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(offsets)))
	h.Write(tmp[:])
	for _, o := range offsets {
		binary.LittleEndian.PutUint64(tmp[:], uint64(o))
		buf = append(buf, tmp[:]...)
		if len(buf) >= 1<<16 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	for _, v := range adj {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(v))
		buf = append(buf, tmp[:4]...)
		if len(buf) >= 1<<16 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	sum := h.Sum(nil)
	return "g" + hex.EncodeToString(sum[:16])
}

// graphBytes estimates the resident size of a graph's CSR arrays.
func graphBytes(g *graph.Graph) int64 {
	offsets, adj := g.Raw()
	return int64(len(offsets))*8 + int64(len(adj))*4
}

// Add ingests g under its content id and returns its metadata. The
// second result reports whether the graph was already resident (a
// registry hit). Adding may evict least-recently-used unpinned graphs
// to fit the budget; if every resident graph is pinned the budget is
// allowed to overshoot rather than fail in-flight jobs.
func (r *Registry) Add(g *graph.Graph, label string) (GraphInfo, bool, error) {
	id := GraphID(g)
	bytes := graphBytes(g)
	if r.budget > 0 && bytes > r.budget {
		return GraphInfo{}, false, fmt.Errorf("%w: %d bytes > budget %d", ErrGraphTooLarge, bytes, r.budget)
	}
	now := time.Now()

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		e.clock = r.tickLocked()
		e.info.LastUsed = now
		r.metrics.registryEvent(1, 0, 0)
		return e.info, true, nil
	}
	r.evictLocked(bytes)
	e := &regEntry{
		info: GraphInfo{
			ID:       id,
			Label:    label,
			N:        g.NumVertices(),
			M:        g.NumEdges(),
			Bytes:    bytes,
			AddedAt:  now,
			LastUsed: now,
		},
		g:     g,
		clock: r.tickLocked(),
	}
	r.entries[id] = e
	r.resident += bytes
	return e.info, false, nil
}

// tickLocked advances the LRU clock; callers hold r.mu.
func (r *Registry) tickLocked() uint64 {
	r.clock++
	return r.clock
}

// evictLocked evicts least-recently-used unpinned graphs until incoming
// more bytes fit the budget. Pinned graphs (Refs > 0) are never
// touched, so the budget can transiently overshoot when all residents
// are in use; callers hold r.mu.
func (r *Registry) evictLocked(incoming int64) {
	if r.budget <= 0 {
		return
	}
	for r.resident+incoming > r.budget {
		var victim *regEntry
		for _, e := range r.entries {
			if e.info.Refs > 0 {
				continue
			}
			if victim == nil || e.clock < victim.clock {
				victim = e
			}
		}
		if victim == nil {
			return // everything pinned: overshoot rather than break jobs
		}
		delete(r.entries, victim.info.ID)
		r.resident -= victim.info.Bytes + victim.elBytes
		r.metrics.registryEvent(0, 0, 1)
	}
}

// Handle is a pinned reference to a resident graph. While any handle is
// outstanding the graph cannot be evicted. Release must be called
// exactly once.
type Handle struct {
	r    *Registry
	e    *regEntry
	once sync.Once
}

// Graph returns the pinned graph.
func (h *Handle) Graph() *graph.Graph { return h.e.g }

// ID returns the pinned graph's id.
func (h *Handle) ID() string { return h.e.info.ID }

// EdgeList returns the graph's canonical edge-list view, deriving and
// caching it on first use. Safe for concurrent use.
func (h *Handle) EdgeList() graph.EdgeList {
	e := h.e
	e.elOnce.Do(func() {
		e.el = e.g.EdgeList()
		elBytes := int64(len(e.el.Edges)) * 8
		e.elBytes = elBytes
		h.r.mu.Lock()
		h.r.resident += elBytes
		h.r.mu.Unlock()
	})
	return e.el
}

// Release unpins the graph. Idempotent.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.info.Refs--
		h.r.mu.Unlock()
	})
}

// Stats returns the degree statistics of the pinned graph, computed
// once per entry and cached (they are immutable with the graph). Safe
// for concurrent use.
func (h *Handle) Stats() graph.DegreeStats {
	e := h.e
	e.statsOnce.Do(func() {
		e.stats = graph.Stats(e.g)
	})
	return e.stats
}

// PatchResult describes a derived graph version.
type PatchResult struct {
	GraphInfo
	// Parent is the version the patch was applied to.
	Parent string `json:"parent"`
	// Added and Removed count the applied updates.
	Added   int `json:"added"`
	Removed int `json:"removed"`
}

// Patch derives a new graph version: it applies the update batch to
// the resident graph parentID, registers the result under its own
// content-addressed id (so job dedup keys never conflate versions),
// and records the lineage for the engine's session repair. The batch
// is validated against the parent and rejected wholesale
// (dynamic.ErrBadUpdate) on any violation.
func (r *Registry) Patch(parentID string, updates []dynamic.Update, label string) (PatchResult, bool, error) {
	h, err := r.Acquire(parentID)
	if err != nil {
		return PatchResult{}, false, err
	}
	defer h.Release()
	child, added, removed, err := dynamic.ApplyToGraph(h.Graph(), updates)
	if err != nil {
		return PatchResult{}, false, err
	}
	if label == "" {
		label = h.e.info.Label
	}
	info, deduped, err := r.Add(child, label)
	if err != nil {
		return PatchResult{}, false, err
	}
	// An empty (or self-inverting — impossible, batches are validated
	// sets) patch dedups onto the parent itself; a self-edge in the
	// lineage graph would make the session walk spin.
	if info.ID != parentID {
		r.recordLineage(info.ID, parentID, updates)
	}
	return PatchResult{GraphInfo: info, Parent: parentID, Added: added, Removed: removed}, deduped, nil
}

// recordLineage stores a bounded number of derivation records.
func (r *Registry) recordLineage(child, parent string, updates []dynamic.Update) {
	rec := lineageRec{parent: parent, updates: append([]dynamic.Update(nil), updates...)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.lineage[child]; !exists {
		r.lineageOrder = append(r.lineageOrder, child)
	}
	r.lineage[child] = rec
	for len(r.lineageOrder) > maxLineageRecs {
		victim := r.lineageOrder[0]
		r.lineageOrder = r.lineageOrder[1:]
		delete(r.lineage, victim)
	}
}

// Lineage returns how a graph version was derived, if known.
func (r *Registry) Lineage(id string) (parent string, updates []dynamic.Update, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.lineage[id]
	if !ok {
		return "", nil, false
	}
	return rec.parent, rec.updates, true
}

// Acquire pins the graph with the given id and returns a handle to it.
func (r *Registry) Acquire(id string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		r.metrics.registryEvent(0, 1, 0)
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, id)
	}
	e.info.Refs++
	e.clock = r.tickLocked()
	e.info.LastUsed = time.Now()
	r.metrics.registryEvent(1, 0, 0)
	return &Handle{r: r, e: e}, nil
}

// Get returns the metadata of a resident graph.
func (r *Registry) Get(id string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return GraphInfo{}, false
	}
	return e.info, true
}

// List returns the metadata of every resident graph.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	return out
}

// counters returns the registry gauges for a metrics snapshot.
func (r *Registry) counters() RegistryCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	pinned := 0
	for _, e := range r.entries {
		if e.info.Refs > 0 {
			pinned++
		}
	}
	return RegistryCounters{
		Graphs:        len(r.entries),
		Pinned:        pinned,
		BytesResident: r.resident,
		ByteBudget:    r.budget,
	}
}
