package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/persist"
)

// Registry errors.
var (
	// ErrGraphNotFound is returned when an id names no known graph
	// (never ingested, or evicted with no disk tier to hold it).
	ErrGraphNotFound = errors.New("service: graph not found (unknown id or evicted)")
	// ErrGraphTooLarge is returned when a single graph exceeds the whole
	// byte budget.
	ErrGraphTooLarge = errors.New("service: graph larger than the registry byte budget")
	// ErrIngestPaused is returned when the memory watermark pauses
	// graph ingest: resident bytes are too close to the budget to admit
	// more input safely.
	ErrIngestPaused = errors.New("service: graph ingest paused (resident bytes over the memory watermark)")
)

// GraphInfo is the public metadata of a registered graph.
type GraphInfo struct {
	ID      string `json:"id"`
	Label   string `json:"label,omitempty"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Bytes   int64  `json:"bytes"`
	Refs    int    `json:"refs"`
	// Resident reports which tier holds the graph: true means the CSR
	// arrays are in memory, false means the graph lives only in the
	// disk tier and the next Acquire will reload it.
	Resident bool      `json:"resident"`
	AddedAt  time.Time `json:"added_at"`
	LastUsed time.Time `json:"last_used"`
}

// regEntry is one known graph. The graph arrays are immutable; the
// bookkeeping fields are guarded by the registry mutex. g is nil for
// cold entries (demoted to, or rehydrated from, the disk tier); every
// Acquire returns only after g is loaded, and the pin then keeps the
// entry warm, so handle methods read g without locks.
//
// The edge-list view (needed by MM and SF jobs) is derived lazily and
// cached under elMu, so repeated matching jobs on the same graph do
// not pay the O(m) derivation each run. Demotion clears it (it is
// rederived on the next warm use); that touch is safe without elMu
// because demotion only ever selects unpinned entries, which by the
// handle contract have no outstanding users.
type regEntry struct {
	info      GraphInfo
	g         *graph.Graph
	persisted bool // a committed blob exists in the disk tier
	clock     uint64 // LRU tick of the last Acquire

	loadMu sync.Mutex // serializes cold loads of this entry

	elMu    sync.Mutex
	elSet   bool
	el      graph.EdgeList
	elBytes int64

	statsMu   sync.Mutex
	statsSet  bool
	stats     graph.DegreeStats
}

// lineageRec remembers how a graph version was derived, so the job
// engine can advance a dynamic session from an ancestor version to a
// descendant by replaying the patches instead of recomputing. Records
// are kept in a bounded FIFO separate from the resident entries: a
// patch is small (bounded by the request cap) and stays useful even
// after an intermediate version is evicted.
type lineageRec struct {
	parent  string
	updates []dynamic.Update
}

// maxLineageRecs bounds the lineage index.
const maxLineageRecs = 1024

// Registry is the graph store behind the service: content-addressed
// ingest, byte-budgeted LRU with ref-count pinning, and — when a
// persist.Store is attached — a disk tier that the budget demotes cold
// graphs to instead of evicting them, plus durable blobs written at
// ingest so graphs survive a crash. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	clock    uint64
	entries  map[string]*regEntry
	metrics  *Metrics

	store     *persist.Store // nil: memory-only (no durability, evictions are final)
	watermark int64          // ingest pauses at this many resident bytes; 0 disables

	lineage      map[string]lineageRec
	lineageOrder []string // FIFO of lineage keys for bounded retention
}

// NewRegistry returns a registry with the given byte budget (<= 0 means
// unlimited). metrics may be nil.
func NewRegistry(budget int64, metrics *Metrics) *Registry {
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &Registry{
		budget:  budget,
		entries: make(map[string]*regEntry),
		metrics: metrics,
		lineage: make(map[string]lineageRec),
	}
}

// SetWatermarkFrac arms ingest admission control at frac (0 < f < 1)
// of the byte budget: once resident bytes that cannot be demoted or
// evicted press past it, IngestPaused reports true and graph ingest is
// refused. Independent of the disk tier — overload control applies to
// purely in-memory deployments too. Out-of-range fractions (or an
// unlimited budget) leave it disarmed.
func (r *Registry) SetWatermarkFrac(frac float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget > 0 && frac > 0 && frac < 1 {
		r.watermark = int64(float64(r.budget) * frac)
	}
}

// AttachStore connects the disk tier and rehydrates the index from it:
// every committed blob becomes a cold entry (metadata resident, arrays
// loaded on first Acquire), and the lineage log rebuilds the
// patch-derivation index. Must be called before the registry serves
// requests.
func (r *Registry) AttachStore(store *persist.Store, recs []persist.LineageRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = store
	metas, skipped, err := store.Blobs().Metas()
	if err != nil {
		r.metrics.persistError()
		return
	}
	_ = skipped // counted per-blob below; corrupt blobs simply stay unknown
	for _, meta := range metas {
		if _, ok := r.entries[meta.ID]; ok {
			continue
		}
		now := time.Now()
		r.entries[meta.ID] = &regEntry{
			info: GraphInfo{
				ID:       meta.ID,
				Label:    meta.Label,
				N:        meta.N,
				M:        meta.M,
				Bytes:    meta.Bytes,
				Resident: false,
				AddedAt:  now,
				LastUsed: now,
			},
			persisted: true,
			clock:     r.tickLocked(),
		}
		r.metrics.persistRehydrated()
	}
	for _, rec := range recs {
		updates := make([]dynamic.Update, 0, len(rec.Updates))
		ok := true
		for _, u := range rec.Updates {
			op, err := dynamic.ParseOp(u.Op)
			if err != nil {
				ok = false
				break
			}
			updates = append(updates, dynamic.Update{Op: op, U: u.U, V: u.V})
		}
		if ok && rec.Child != rec.Parent {
			r.recordLineageLocked(rec.Child, rec.Parent, updates)
		}
	}
}

// IngestPaused reports whether the memory watermark pauses graph
// ingest. It first demotes what it can — only residency the disk tier
// cannot absorb (pins, unpersisted graphs, no store) keeps the pause
// asserted.
func (r *Registry) IngestPaused() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget <= 0 || r.watermark <= 0 || r.resident < r.watermark {
		return false
	}
	r.evictLocked(r.budget - r.watermark)
	return r.resident >= r.watermark
}

// GraphID returns the content-addressed id of g: a truncated sha256 of
// its CSR arrays. Two ingests of the same graph — whether uploaded in
// different formats or regenerated from the same (generator, n, m,
// seed) — map to the same id, so the registry deduplicates storage for
// free. A cryptographic hash matters here: ids route jobs to graphs,
// so a client able to craft a colliding upload could make the service
// answer from the wrong graph.
func GraphID(g *graph.Graph) string {
	offsets, adj := g.Raw()
	h := sha256.New()
	buf := make([]byte, 0, 1<<16)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(offsets)))
	h.Write(tmp[:])
	for _, o := range offsets {
		binary.LittleEndian.PutUint64(tmp[:], uint64(o))
		buf = append(buf, tmp[:]...)
		if len(buf) >= 1<<16 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	for _, v := range adj {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(v))
		buf = append(buf, tmp[:4]...)
		if len(buf) >= 1<<16 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	sum := h.Sum(nil)
	return "g" + hex.EncodeToString(sum[:16])
}

// graphBytes estimates the resident size of a graph's CSR arrays.
func graphBytes(g *graph.Graph) int64 {
	offsets, adj := g.Raw()
	return int64(len(offsets))*8 + int64(len(adj))*4
}

// Add ingests g under its content id and returns its metadata. The
// second result reports whether the graph was already known (a
// registry hit). With a disk tier attached the blob is committed —
// fsync'd — before the graph is registered, so a 201 means the graph
// survives a crash. Adding may demote (or, memory-only, evict)
// least-recently-used unpinned graphs to fit the budget; if every
// resident graph is pinned the budget is allowed to overshoot rather
// than fail in-flight jobs.
func (r *Registry) Add(g *graph.Graph, label string) (GraphInfo, bool, error) {
	id := GraphID(g)
	bytes := graphBytes(g)
	if r.budget > 0 && bytes > r.budget {
		return GraphInfo{}, false, fmt.Errorf("%w: %d bytes > budget %d", ErrGraphTooLarge, bytes, r.budget)
	}
	now := time.Now()

	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		e.clock = r.tickLocked()
		e.info.LastUsed = now
		info := e.info
		r.mu.Unlock()
		r.metrics.registryEvent(1, 0, 0)
		return info, true, nil
	}
	store := r.store
	r.mu.Unlock()

	// Commit the blob before registering: the durability contract is
	// that a successful ingest survives kill -9, so a blob that cannot
	// be written fails the ingest rather than silently downgrading it.
	persisted := false
	if store != nil {
		err := store.Blobs().Put(persist.BlobMeta{
			ID: id, Label: label, N: g.NumVertices(), M: g.NumEdges(), Bytes: bytes,
		}, g)
		if err != nil {
			r.metrics.persistError()
			return GraphInfo{}, false, fmt.Errorf("service: persisting graph blob: %w", err)
		}
		persisted = true
		r.metrics.persistBlobWritten(bytes)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		// A racing Add won while the blob was written; content
		// addressing makes both writes identical, so this is a hit.
		e.clock = r.tickLocked()
		e.info.LastUsed = now
		e.persisted = e.persisted || persisted
		r.metrics.registryEvent(1, 0, 0)
		return e.info, true, nil
	}
	r.evictLocked(bytes)
	e := &regEntry{
		info: GraphInfo{
			ID:       id,
			Label:    label,
			N:        g.NumVertices(),
			M:        g.NumEdges(),
			Bytes:    bytes,
			Resident: true,
			AddedAt:  now,
			LastUsed: now,
		},
		g:         g,
		persisted: persisted,
		clock:     r.tickLocked(),
	}
	r.entries[id] = e
	r.resident += bytes
	return e.info, false, nil
}

// tickLocked advances the LRU clock; callers hold r.mu.
func (r *Registry) tickLocked() uint64 {
	r.clock++
	return r.clock
}

// evictLocked frees memory until incoming more bytes fit the budget,
// working through unpinned warm graphs in LRU order. A graph with a
// committed blob is demoted — its arrays and cached edge list are
// dropped but the entry stays, cold, reloadable on the next Acquire.
// A graph the disk tier does not hold is evicted outright (memory-only
// registries always take this path). Pinned graphs (Refs > 0) are
// never touched, so the budget can transiently overshoot when all
// residents are in use; callers hold r.mu.
func (r *Registry) evictLocked(incoming int64) {
	if r.budget <= 0 {
		return
	}
	for r.resident+incoming > r.budget {
		var victim *regEntry
		for _, e := range r.entries {
			if e.info.Refs > 0 || e.g == nil {
				continue // pinned, or already cold
			}
			if victim == nil || e.clock < victim.clock {
				victim = e
			}
		}
		if victim == nil {
			return // everything warm is pinned: overshoot rather than break jobs
		}
		r.resident -= victim.info.Bytes + victim.elBytes
		if victim.persisted {
			victim.g = nil
			victim.info.Resident = false
			victim.el = graph.EdgeList{}
			victim.elSet = false
			victim.elBytes = 0
			r.metrics.persistDemotion()
		} else {
			delete(r.entries, victim.info.ID)
			r.metrics.registryEvent(0, 0, 1)
		}
	}
}

// ensureLoaded reloads a cold entry's arrays from the disk tier. The
// caller must already hold a pin on e (Refs > 0), which is what keeps
// a concurrent eviction cycle from demoting the entry right back.
func (r *Registry) ensureLoaded(e *regEntry) error {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	r.mu.Lock()
	if e.g != nil {
		r.mu.Unlock()
		return nil // a racing load won
	}
	store := r.store
	r.mu.Unlock()
	if store == nil {
		return fmt.Errorf("%w: %q (cold entry with no disk tier)", ErrGraphNotFound, e.info.ID)
	}
	_, g, err := store.Blobs().Load(e.info.ID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	e.g = g
	e.info.Resident = true
	r.resident += e.info.Bytes
	r.metrics.persistColdLoad()
	// Loading one graph may push another past the budget; e itself is
	// pinned, so it cannot be the victim.
	r.evictLocked(0)
	r.mu.Unlock()
	return nil
}

// Handle is a pinned reference to a graph. While any handle is
// outstanding the graph stays warm in memory. Release must be called
// exactly once.
type Handle struct {
	r    *Registry
	e    *regEntry
	once sync.Once
}

// Graph returns the pinned graph.
func (h *Handle) Graph() *graph.Graph { return h.e.g }

// ID returns the pinned graph's id.
func (h *Handle) ID() string { return h.e.info.ID }

// EdgeList returns the graph's canonical edge-list view, deriving and
// caching it on first use. Safe for concurrent use.
func (h *Handle) EdgeList() graph.EdgeList {
	e := h.e
	e.elMu.Lock()
	defer e.elMu.Unlock()
	if !e.elSet {
		e.el = e.g.EdgeList()
		e.elSet = true
		e.elBytes = int64(len(e.el.Edges)) * 8
		h.r.mu.Lock()
		h.r.resident += e.elBytes
		h.r.mu.Unlock()
	}
	return e.el
}

// Release unpins the graph. Idempotent.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.r.mu.Lock()
		h.e.info.Refs--
		h.r.mu.Unlock()
	})
}

// Stats returns the degree statistics of the pinned graph, computed
// once per entry and cached (they are immutable with the graph, so
// they survive demotion). Safe for concurrent use.
func (h *Handle) Stats() graph.DegreeStats {
	e := h.e
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if !e.statsSet {
		e.stats = graph.Stats(e.g)
		e.statsSet = true
	}
	return e.stats
}

// PatchResult describes a derived graph version.
type PatchResult struct {
	GraphInfo
	// Parent is the version the patch was applied to.
	Parent string `json:"parent"`
	// Added and Removed count the applied updates.
	Added   int `json:"added"`
	Removed int `json:"removed"`
}

// Patch derives a new graph version: it applies the update batch to
// the resident graph parentID, registers the result under its own
// content-addressed id (so job dedup keys never conflate versions),
// and records the lineage for the engine's session repair. The batch
// is validated against the parent and rejected wholesale
// (dynamic.ErrBadUpdate) on any violation.
func (r *Registry) Patch(parentID string, updates []dynamic.Update, label string) (PatchResult, bool, error) {
	h, err := r.Acquire(parentID)
	if err != nil {
		return PatchResult{}, false, err
	}
	defer h.Release()
	child, added, removed, err := dynamic.ApplyToGraph(h.Graph(), updates)
	if err != nil {
		return PatchResult{}, false, err
	}
	if label == "" {
		label = h.e.info.Label
	}
	info, deduped, err := r.Add(child, label)
	if err != nil {
		return PatchResult{}, false, err
	}
	// An empty (or self-inverting — impossible, batches are validated
	// sets) patch dedups onto the parent itself; a self-edge in the
	// lineage graph would make the session walk spin.
	if info.ID != parentID {
		r.recordLineage(info.ID, parentID, updates)
	}
	return PatchResult{GraphInfo: info, Parent: parentID, Added: added, Removed: removed}, deduped, nil
}

// recordLineage stores a bounded number of derivation records and,
// with a disk tier attached, appends them to the durable lineage log
// so repair opportunities survive a restart.
func (r *Registry) recordLineage(child, parent string, updates []dynamic.Update) {
	r.mu.Lock()
	r.recordLineageLocked(child, parent, updates)
	store := r.store
	r.mu.Unlock()
	if store == nil {
		return
	}
	rec := persist.LineageRecord{Child: child, Parent: parent,
		Updates: make([]persist.LineageUpdate, len(updates))}
	for i, u := range updates {
		rec.Updates[i] = persist.LineageUpdate{Op: u.Op.String(), U: u.U, V: u.V}
	}
	if err := store.Lineage().Append(rec); err != nil {
		// Lineage is a repair optimization; losing a record costs a
		// recompute, never correctness.
		r.metrics.persistError()
	}
}

func (r *Registry) recordLineageLocked(child, parent string, updates []dynamic.Update) {
	rec := lineageRec{parent: parent, updates: append([]dynamic.Update(nil), updates...)}
	if _, exists := r.lineage[child]; !exists {
		r.lineageOrder = append(r.lineageOrder, child)
	}
	r.lineage[child] = rec
	for len(r.lineageOrder) > maxLineageRecs {
		victim := r.lineageOrder[0]
		r.lineageOrder = r.lineageOrder[1:]
		delete(r.lineage, victim)
	}
}

// Lineage returns how a graph version was derived, if known.
func (r *Registry) Lineage(id string) (parent string, updates []dynamic.Update, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.lineage[id]
	if !ok {
		return "", nil, false
	}
	return rec.parent, rec.updates, true
}

// Acquire pins the graph with the given id and returns a handle to it,
// reloading the arrays from the disk tier when the entry is cold. The
// pin is taken before the load, so a concurrent eviction cycle cannot
// demote the entry out from under the loader.
func (r *Registry) Acquire(id string) (*Handle, error) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		r.metrics.registryEvent(0, 1, 0)
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, id)
	}
	e.info.Refs++
	e.clock = r.tickLocked()
	e.info.LastUsed = time.Now()
	needLoad := e.g == nil
	r.mu.Unlock()
	if needLoad {
		if err := r.ensureLoaded(e); err != nil {
			r.mu.Lock()
			e.info.Refs--
			r.mu.Unlock()
			r.metrics.persistError()
			return nil, fmt.Errorf("service: loading graph %q from disk tier: %w", id, err)
		}
	}
	r.metrics.registryEvent(1, 0, 0)
	return &Handle{r: r, e: e}, nil
}

// Get returns the metadata of a known graph.
func (r *Registry) Get(id string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return GraphInfo{}, false
	}
	return e.info, true
}

// List returns the metadata of every known graph (both tiers).
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	return out
}

// counters returns the registry gauges for a metrics snapshot.
func (r *Registry) counters() RegistryCounters {
	r.mu.Lock()
	defer r.mu.Unlock()
	pinned, cold := 0, 0
	for _, e := range r.entries {
		if e.info.Refs > 0 {
			pinned++
		}
		if e.g == nil {
			cold++
		}
	}
	return RegistryCounters{
		Graphs:         len(r.entries),
		Pinned:         pinned,
		ColdGraphs:     cold,
		BytesResident:  r.resident,
		ByteBudget:     r.budget,
		WatermarkBytes: r.watermark,
	}
}
