// Package service is the serving layer over the reproduction's
// algorithm library: a graph registry (upload or server-side
// generation, content-addressed, LRU byte budget with ref-count
// pinning), an async job engine for MIS / maximal matching / spanning
// forest computations with idempotency-key deduplication, and a
// standard-library HTTP/JSON API.
//
// The design leans on the paper's central property: for a fixed
// (graph, order) every deterministic algorithm returns bit-identical
// results at any thread count. A job is therefore fully described by
// the key (graphID, problem, algorithm, seed, prefix), duplicate
// submissions can share one execution, and results can be cached and
// compared by checksum.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/trace"
)

// Config configures a Service.
type Config struct {
	// CacheBytes is the registry byte budget; 0 means 1 GiB, negative
	// means unlimited.
	CacheBytes int64
	// Workers is the job worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued jobs; 0 means 4096.
	QueueDepth int
	// ResultTTL is how long finished jobs are retained; 0 means 15m.
	ResultTTL time.Duration
	// MaxUploadBytes bounds a graph upload request body; 0 means 512 MiB.
	MaxUploadBytes int64
	// MaxGenVertices and MaxGenEdges bound server-side generation
	// requests; 0 means 1<<27 vertices and 1<<28 edges.
	MaxGenVertices int
	MaxGenEdges    int
	// MaxPatchUpdates bounds the updates one PATCH may carry; 0 means
	// 1<<20.
	MaxPatchUpdates int
	// DynamicSessions bounds the engine's cached dynamic sessions; 0
	// means 8, negative disables session reuse.
	DynamicSessions int
	// TraceCapacity sizes the trace ring buffer (events retained); 0
	// means 16384, negative disables tracing entirely (the trace
	// endpoints answer 404 and no events are recorded).
	TraceCapacity int
	// TraceRoundSample records every Nth round of a running job as a
	// trace event; 0 disables the round stream (job lifecycle spans and
	// repair events are still recorded). Sampling keeps the per-round
	// hot path allocation-free: the observer does one modulo test.
	// Round sampling also gates engine phase profiling: sampled jobs
	// run with an injected clock and emit per-phase (check/commit/
	// reset/slide) events alongside the round events.
	TraceRoundSample int
	// StreamSubscribers bounds concurrent /v1/events subscriptions; 0
	// means 16, negative disables streaming (the endpoint answers 404).
	// Streaming requires tracing: with TraceCapacity negative there is
	// no recorder to tee from, and the endpoint answers 404 regardless.
	StreamSubscribers int
	// StreamQueue is the per-subscriber event queue capacity; 0 means
	// 1024. A subscriber whose queue overflows accumulates drops and is
	// evicted after StreamQueue drops (one full queue's worth).
	StreamQueue int
	// StreamHeartbeat is the SSE heartbeat interval; 0 means 10s.
	// Heartbeat comments carry the subscriber's cumulative drop count,
	// so a consumer can see its own losses without polling /v1/metrics.
	StreamHeartbeat time.Duration
	// Logger receives structured access and job-lifecycle logs; nil
	// discards them (the default for embedded/test use — greedyd
	// installs a real handler).
	Logger *slog.Logger
	// DataDir, when non-empty, enables the durability tier: graph blobs
	// and the job journal live under it, acknowledged jobs survive
	// kill -9 (recomputed at boot), and the registry demotes cold
	// graphs to disk instead of evicting them. Empty means memory-only
	// — the hot path then performs no persistence work at all.
	DataDir string
	// IngestWatermark is the fraction of the registry byte budget at
	// which graph ingest pauses (503) to protect running jobs; only
	// meaningful with DataDir set and a positive CacheBytes. 0 means
	// 0.9; negative disables the watermark.
	IngestWatermark float64
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 30
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // Registry convention: <= 0 is unlimited.
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 512 << 20
	}
	if c.MaxGenVertices <= 0 {
		c.MaxGenVertices = 1 << 27
	}
	if c.MaxGenEdges <= 0 {
		c.MaxGenEdges = 1 << 28
	}
	if c.MaxPatchUpdates <= 0 {
		c.MaxPatchUpdates = 1 << 20
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 1 << 14
	}
	if c.StreamSubscribers == 0 {
		c.StreamSubscribers = 16
	}
	if c.StreamQueue <= 0 {
		c.StreamQueue = 1024
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.IngestWatermark == 0 {
		c.IngestWatermark = 0.9
	}
	if c.IngestWatermark < 0 {
		c.IngestWatermark = 0 // disabled
	}
	return c
}

// Service ties the registry, job engine, metrics, trace recorder and
// logger together.
type Service struct {
	cfg      Config
	metrics  *Metrics
	registry *Registry
	engine   *Engine
	store    *persist.Store     // nil when persistence is disabled
	trace    *trace.Recorder    // nil when tracing is disabled
	bcast    *trace.Broadcaster // nil when streaming is disabled
	log      *slog.Logger

	// shutdownCh closes when Shutdown begins; the SSE handlers select
	// on it to send their terminal frame before the listener dies.
	shutdownCh   chan struct{}
	shutdownOnce sync.Once
}

// New starts a service. With DataDir set it opens the durability tier
// and replays its debts: blob metadata rehydrates the registry index,
// the lineage log rebuilds the patch-derivation index, and every
// acknowledged-but-unfinished job in the journal is re-enqueued for
// recomputation under its original id. Opening a damaged or
// unwritable data directory is an error — silently running without
// durability the caller asked for is not an option.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	rec := trace.NewRecorder(cfg.TraceCapacity, cfg.TraceRoundSample)
	var bcast *trace.Broadcaster
	if rec.Enabled() {
		// Streaming tees off the recorder, so it exists only when
		// tracing does. NewBroadcaster returns nil for negative
		// StreamSubscribers — streaming explicitly disabled.
		bcast = trace.NewBroadcaster(cfg.StreamSubscribers, cfg.StreamQueue, 0)
		rec.SetBroadcaster(bcast)
	}
	reg := NewRegistry(cfg.CacheBytes, m)
	reg.SetWatermarkFrac(cfg.IngestWatermark)

	var store *persist.Store
	var pending []persist.PendingJob
	if cfg.DataDir != "" {
		var recs []persist.LineageRecord
		var err error
		store, pending, recs, err = persist.Open(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		reg.AttachStore(store, recs)
	}

	ecfg := EngineConfig{
		Workers:         cfg.Workers,
		QueueDepth:      cfg.QueueDepth,
		ResultTTL:       cfg.ResultTTL,
		DynamicSessions: cfg.DynamicSessions,
		Trace:           rec,
		Logger:          cfg.Logger,
	}
	if store != nil {
		ecfg.Journal = store.Journal()
	}
	eng := NewEngine(reg, m, ecfg)
	s := &Service{cfg: cfg, metrics: m, registry: reg, engine: eng, store: store,
		trace: rec, bcast: bcast, log: cfg.Logger, shutdownCh: make(chan struct{})}

	// Re-enqueue what the journal owes. Recomputation — not output
	// replay — serves these: determinism makes the recomputed bytes
	// identical to what the dead process would have produced.
	for _, p := range pending {
		var spec JobSpec
		if err := json.Unmarshal(p.Spec, &spec); err != nil {
			s.log.Warn("unrecoverable journaled job: bad spec", "job", p.ID, "error", err)
			eng.Recover(p.ID, JobSpec{}) // registers a failed job, completes the debt
			continue
		}
		if err := eng.Recover(p.ID, spec); err != nil {
			s.log.Warn("journaled job not recovered", "job", p.ID, "error", err)
		}
	}
	return s, nil
}

// Registry exposes the graph registry (used by tests and embedders).
func (s *Service) Registry() *Registry { return s.registry }

// Engine exposes the job engine (used by tests and embedders).
func (s *Service) Engine() *Engine { return s.engine }

// Trace exposes the trace recorder (nil when tracing is disabled).
func (s *Service) Trace() *trace.Recorder { return s.trace }

// Broadcaster exposes the event-stream fan-out (nil when streaming is
// disabled).
func (s *Service) Broadcaster() *trace.Broadcaster { return s.bcast }

// Close stops the service immediately: equivalent to Shutdown(0).
func (s *Service) Close() { s.Shutdown(0) }

// Shutdown drains the service gracefully: new work is refused at once,
// event-stream subscribers get a terminal shutdown frame, in-flight
// jobs get up to window to finish, and the durability tier is closed
// last so every completion marker lands. Journaled jobs the window
// could not drain stay owed — the next boot re-serves them. Safe to
// call more than once.
func (s *Service) Shutdown(window time.Duration) {
	s.shutdownOnce.Do(func() {
		close(s.shutdownCh)
		s.engine.Drain(window)
		if s.store != nil {
			if err := s.store.Close(); err != nil {
				s.log.Warn("closing data dir", "error", err)
			}
		}
	})
}

// ShutdownCh closes when Shutdown begins (used by the SSE handlers to
// emit their terminal frame).
func (s *Service) ShutdownCh() <-chan struct{} { return s.shutdownCh }

// Store exposes the durability tier (nil when persistence is off).
func (s *Service) Store() *persist.Store { return s.store }

// Snapshot assembles the full metrics view, including the state gauges
// owned by the engine and registry and the Go runtime's allocation
// counters (which make per-worker Solver reuse observable externally).
func (s *Service) Snapshot() Snapshot {
	snap := s.metrics.snapshot()
	q, r, d, f, c, dl := s.engine.stateCounts()
	snap.Jobs.Queued, snap.Jobs.Running, snap.Jobs.Done, snap.Jobs.FailedNow, snap.Jobs.CancelledNow = q, r, d, f, c
	snap.Jobs.DeadlineNow = dl
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap.Runtime = RuntimeCounters{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
	}
	readRuntimeTelemetry(&snap.Runtime)
	snap.Build = readBuildInfo()
	reg := s.registry.counters()
	reg.Hits = snap.Registry.Hits
	reg.Misses = snap.Registry.Misses
	reg.Evictions = snap.Registry.Evictions
	reg.Patches = snap.Registry.Patches
	reg.IngestPausedRejections = snap.Registry.IngestPausedRejections
	snap.Registry = reg
	if s.store != nil {
		snap.Persist.Enabled = true
		appends, compactions := s.store.Journal().Counters()
		snap.Persist.WALAppends = appends
		snap.Persist.WALCompactions = compactions
		snap.Persist.PendingJobs = int64(s.store.Journal().PendingCount())
	}
	snap.TraceEvents = s.trace.Total()
	if s.bcast.Enabled() {
		st := s.bcast.Stats()
		snap.Stream = StreamCounters{
			Enabled:     true,
			Subscribers: st.Subscribers,
			Published:   st.Published,
			Dropped:     st.Dropped,
			Evicted:     st.Evicted,
			PerSub:      s.bcast.Subscribers(),
		}
	}
	return snap
}

// Patch derives a new graph version from parentID by applying an edge
// update batch (see Registry.Patch) and counts it in the metrics. A
// patch that dedups onto an already-resident version derives nothing
// and is not counted.
func (s *Service) Patch(parentID string, updates []dynamic.Update, label string) (PatchResult, bool, error) {
	res, deduped, err := s.registry.Patch(parentID, updates, label)
	if err == nil && !deduped {
		s.metrics.graphPatched()
	}
	return res, deduped, err
}

// GenSpec is a server-side graph generation request.
type GenSpec struct {
	Generator string `json:"generator"` // "random" or "rmat"
	N         int    `json:"n"`
	M         int    `json:"m"`
	Seed      uint64 `json:"seed"`
	Label     string `json:"label,omitempty"`
}

// Generate builds the requested graph with the paper's generators and
// registers it. The second result reports whether the graph was
// already resident.
func (s *Service) Generate(spec GenSpec) (GraphInfo, bool, error) {
	if spec.N <= 0 || spec.M < 0 {
		return GraphInfo{}, false, fmt.Errorf("service: bad generation sizes n=%d m=%d", spec.N, spec.M)
	}
	if spec.N > s.cfg.MaxGenVertices || spec.M > s.cfg.MaxGenEdges {
		return GraphInfo{}, false, fmt.Errorf("service: generation request n=%d m=%d exceeds limits n<=%d m<=%d",
			spec.N, spec.M, s.cfg.MaxGenVertices, s.cfg.MaxGenEdges)
	}
	var g *graph.Graph
	label := spec.Label
	switch spec.Generator {
	case "random", "":
		if err := checkEdgeBudget(spec.N, spec.M); err != nil {
			return GraphInfo{}, false, err
		}
		g = graph.Random(spec.N, spec.M, spec.Seed)
		if label == "" {
			label = fmt.Sprintf("random(n=%d,m=%d,seed=%d)", spec.N, spec.M, spec.Seed)
		}
	case "rmat":
		logN := 0
		for 1<<logN < spec.N {
			logN++
		}
		// rMat rounds the vertex count up to a power of two; the edge
		// budget must hold for the rounded count the generator uses.
		if err := checkEdgeBudget(1<<logN, spec.M); err != nil {
			return GraphInfo{}, false, err
		}
		g = graph.RMat(logN, spec.M, spec.Seed, graph.DefaultRMatOptions())
		if label == "" {
			label = fmt.Sprintf("rmat(logn=%d,m=%d,seed=%d)", logN, spec.M, spec.Seed)
		}
	default:
		return GraphInfo{}, false, fmt.Errorf("service: unknown generator %q (want random|rmat)", spec.Generator)
	}
	return s.registry.Add(g, label)
}

// checkEdgeBudget converts the generators' m-exceeds-possible-edges
// panic into a client error before a remote request can reach it.
func checkEdgeBudget(n, m int) error {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		return fmt.Errorf("service: m=%d exceeds the %d possible edges on %d vertices", m, maxEdges, n)
	}
	return nil
}
