package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal Go client for the greedyd HTTP API, shared by
// cmd/loadgen, the examples, and the end-to-end tests.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes an error body into a Go error.
func apiError(resp *http.Response) error {
	var body errorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return fmt.Errorf("service: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	raw, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return resp.StatusCode, apiError(resp)
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return resp.StatusCode, apiError(resp)
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// Generate asks the server to build and register a graph.
func (c *Client) Generate(ctx context.Context, spec GenSpec) (GraphResponse, error) {
	var out GraphResponse
	_, err := c.postJSON(ctx, "/v1/graphs", spec, &out)
	return out, err
}

// Upload ingests a serialized graph (any supported format).
func (c *Client) Upload(ctx context.Context, body io.Reader) (GraphResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/graphs", body)
	if err != nil {
		return GraphResponse{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return GraphResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return GraphResponse{}, apiError(resp)
	}
	var out GraphResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Patch applies an edge-update batch to a registered graph, producing
// (and returning the metadata of) a new content-addressed graph
// version.
func (c *Client) Patch(ctx context.Context, id string, req PatchRequest) (PatchResponse, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return PatchResponse{}, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPatch, c.BaseURL+"/v1/graphs/"+id, bytes.NewReader(raw))
	if err != nil {
		return PatchResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(httpReq)
	if err != nil {
		return PatchResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return PatchResponse{}, apiError(resp)
	}
	var out PatchResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// GraphStats fetches the degree/connectivity statistics of a
// registered graph.
func (c *Client) GraphStats(ctx context.Context, id string) (GraphStatsResponse, error) {
	var out GraphStatsResponse
	_, err := c.getJSON(ctx, "/v1/graphs/"+id+"/stats", &out)
	return out, err
}

// Submit submits a job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobResponse, error) {
	var out JobResponse
	_, err := c.postJSON(ctx, "/v1/jobs", req, &out)
	return out, err
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	_, err := c.getJSON(ctx, "/v1/jobs/"+id, &out)
	return out, err
}

// Cancel cancels a queued or running job via DELETE /v1/jobs/{id} and
// returns the job's status at the moment of cancellation. A running
// job may still report state "running": its round loop transitions to
// "cancelled" within one round; poll Status (or Wait) to observe it.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return JobStatus{}, apiError(resp)
	}
	var out JobStatus
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Result fetches the raw result payload of a done job. The boolean
// reports whether the job is done; when false the returned bytes are
// nil and the caller should poll again.
func (c *Client) Result(ctx context.Context, id string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(resp.Body)
		return raw, true, err
	case http.StatusAccepted:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, apiError(resp)
	}
}

// Wait polls a job until it finishes (done, failed, or cancelled) or
// ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCancelled {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// JobTrace fetches the recorded trace events of one job (oldest
// first). The server answers 404 when tracing is disabled or the job
// is unknown.
func (c *Client) JobTrace(ctx context.Context, id string) (TraceResponse, error) {
	var out TraceResponse
	_, err := c.getJSON(ctx, "/v1/jobs/"+id+"/trace", &out)
	return out, err
}

// TraceRecent fetches the most recent trace events across all jobs and
// requests; limit <= 0 uses the server default.
func (c *Client) TraceRecent(ctx context.Context, limit int) (TraceResponse, error) {
	path := "/v1/trace/recent"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out TraceResponse
	_, err := c.getJSON(ctx, path, &out)
	return out, err
}

// Metrics fetches the metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (Snapshot, error) {
	var out Snapshot
	_, err := c.getJSON(ctx, "/v1/metrics", &out)
	return out, err
}

// EventFilter restricts an event stream subscription (see
// GET /v1/events): Job selects one job's events, Kinds the event kinds
// of interest. The zero value streams everything.
type EventFilter struct {
	Job   string
	Kinds []string
}

func (f EventFilter) query() string {
	q := url.Values{}
	if f.Job != "" {
		q.Set("job", f.Job)
	}
	if len(f.Kinds) > 0 {
		q.Set("kind", strings.Join(f.Kinds, ","))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Events subscribes to the server's live trace-event stream and calls
// fn for every received frame — data frames and heartbeat comments
// alike (filter with StreamEvent.IsComment). It blocks until ctx is
// cancelled (returning nil), the server ends the stream (nil after an
// "evicted" frame, io.ErrUnexpectedEOF on an abrupt cut), or fn returns
// an error (returned verbatim, stream closed).
func (c *Client) Events(ctx context.Context, f EventFilter, fn func(StreamEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/events"+f.query(), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", sseContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err != nil || mt != sseContentType {
		return fmt.Errorf("service: event stream has content type %q, want %q",
			resp.Header.Get("Content-Type"), sseContentType)
	}
	dec := NewSSEDecoder(resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			if ctx.Err() != nil {
				// The transport surfaces cancellation as a read error
				// mid-frame; report the cancellation, not the symptom.
				return nil
			}
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
