package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// BackoffPolicy tells the client how to retry requests the server
// refused with 429 (queue full) or 503 (draining, ingest paused) —
// overload signals, not failures. A Retry-After header from the
// server, computed from its observed drain rate, takes precedence over
// the local schedule; without one the client backs off exponentially
// with jitter so a fleet of retrying clients does not reconverge on
// the same instant. The zero value disables retries entirely, keeping
// the default client behavior transparent.
type BackoffPolicy struct {
	// MaxAttempts caps total tries, the first included; values below 2
	// disable retries.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule; 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps every computed wait; 0 means 5s.
	MaxDelay time.Duration
}

// wait computes the pause before retry number attempt (1-based).
// retryAfter, when parseable, is the server's own estimate of when
// capacity frees and is used verbatim (still capped by MaxDelay).
func (p BackoffPolicy) wait(attempt int, retryAfter string) time.Duration {
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		return min(time.Duration(secs)*time.Second, maxDelay)
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := maxDelay
	if shift := attempt - 1; shift < 20 && base<<shift < maxDelay {
		d = base << shift
	}
	// Equal jitter: half deterministic so progress is guaranteed, half
	// uniform so synchronized clients spread out.
	return d/2 + rand.N(d/2+1)
}

// retryableStatus reports whether code is a server-directed backoff
// signal rather than a terminal error.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// sleepCtx pauses for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Client is a minimal Go client for the greedyd HTTP API, shared by
// cmd/loadgen, the examples, and the end-to-end tests.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry governs automatic retries of JSON mutations (submit,
	// generate, patch) the server refuses with 429 or 503. The zero
	// value never retries.
	Retry BackoffPolicy
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes an error body into a Go error.
func apiError(resp *http.Response) error {
	var body errorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return fmt.Errorf("service: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
}

// doJSON round-trips one JSON request, retrying per c.Retry when the
// server answers with a backoff signal (429/503). The marshalled body
// is replayed from raw on every attempt, so retried submissions stay
// byte-identical — which is what makes them safe: the engine's
// idempotency key dedups a retry whose predecessor was actually
// accepted.
func (c *Client) doJSON(ctx context.Context, method, path string, raw []byte, out any) (int, error) {
	attempts := max(c.Retry.MaxAttempts, 1)
	for attempt := 1; ; attempt++ {
		var body io.Reader
		if raw != nil {
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
		if err != nil {
			return 0, err
		}
		if raw != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode >= 400 {
			apiErr := apiError(resp)
			retryAfter := resp.Header.Get("Retry-After")
			resp.Body.Close()
			if attempt < attempts && retryableStatus(resp.StatusCode) {
				if serr := sleepCtx(ctx, c.Retry.wait(attempt, retryAfter)); serr != nil {
					return resp.StatusCode, apiErr
				}
				continue
			}
			return resp.StatusCode, apiErr
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		return resp.StatusCode, err
	}
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	raw, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	return c.doJSON(ctx, http.MethodPost, path, raw, out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return resp.StatusCode, apiError(resp)
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// Generate asks the server to build and register a graph.
func (c *Client) Generate(ctx context.Context, spec GenSpec) (GraphResponse, error) {
	var out GraphResponse
	_, err := c.postJSON(ctx, "/v1/graphs", spec, &out)
	return out, err
}

// Upload ingests a serialized graph (any supported format).
func (c *Client) Upload(ctx context.Context, body io.Reader) (GraphResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/graphs", body)
	if err != nil {
		return GraphResponse{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return GraphResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return GraphResponse{}, apiError(resp)
	}
	var out GraphResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Patch applies an edge-update batch to a registered graph, producing
// (and returning the metadata of) a new content-addressed graph
// version.
func (c *Client) Patch(ctx context.Context, id string, req PatchRequest) (PatchResponse, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return PatchResponse{}, err
	}
	var out PatchResponse
	_, err = c.doJSON(ctx, http.MethodPatch, "/v1/graphs/"+id, raw, &out)
	return out, err
}

// GraphStats fetches the degree/connectivity statistics of a
// registered graph.
func (c *Client) GraphStats(ctx context.Context, id string) (GraphStatsResponse, error) {
	var out GraphStatsResponse
	_, err := c.getJSON(ctx, "/v1/graphs/"+id+"/stats", &out)
	return out, err
}

// Submit submits a job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobResponse, error) {
	var out JobResponse
	_, err := c.postJSON(ctx, "/v1/jobs", req, &out)
	return out, err
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	_, err := c.getJSON(ctx, "/v1/jobs/"+id, &out)
	return out, err
}

// Cancel cancels a queued or running job via DELETE /v1/jobs/{id} and
// returns the job's status at the moment of cancellation. A running
// job may still report state "running": its round loop transitions to
// "cancelled" within one round; poll Status (or Wait) to observe it.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return JobStatus{}, apiError(resp)
	}
	var out JobStatus
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Result fetches the raw result payload of a done job. The boolean
// reports whether the job is done; when false the returned bytes are
// nil and the caller should poll again.
func (c *Client) Result(ctx context.Context, id string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(resp.Body)
		return raw, true, err
	case http.StatusAccepted:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		return nil, false, apiError(resp)
	}
}

// Wait polls a job until it finishes (done, failed, cancelled, or
// deadline_exceeded) or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCancelled || st.State == StateDeadline {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// JobTrace fetches the recorded trace events of one job (oldest
// first). The server answers 404 when tracing is disabled or the job
// is unknown.
func (c *Client) JobTrace(ctx context.Context, id string) (TraceResponse, error) {
	var out TraceResponse
	_, err := c.getJSON(ctx, "/v1/jobs/"+id+"/trace", &out)
	return out, err
}

// TraceRecent fetches the most recent trace events across all jobs and
// requests; limit <= 0 uses the server default.
func (c *Client) TraceRecent(ctx context.Context, limit int) (TraceResponse, error) {
	path := "/v1/trace/recent"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out TraceResponse
	_, err := c.getJSON(ctx, path, &out)
	return out, err
}

// Metrics fetches the metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (Snapshot, error) {
	var out Snapshot
	_, err := c.getJSON(ctx, "/v1/metrics", &out)
	return out, err
}

// EventFilter restricts an event stream subscription (see
// GET /v1/events): Job selects one job's events, Kinds the event kinds
// of interest. The zero value streams everything.
type EventFilter struct {
	Job   string
	Kinds []string
}

func (f EventFilter) query() string {
	q := url.Values{}
	if f.Job != "" {
		q.Set("job", f.Job)
	}
	if len(f.Kinds) > 0 {
		q.Set("kind", strings.Join(f.Kinds, ","))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Events subscribes to the server's live trace-event stream and calls
// fn for every received frame — data frames and heartbeat comments
// alike (filter with StreamEvent.IsComment). It blocks until ctx is
// cancelled (returning nil), the server ends the stream (nil after an
// "evicted" frame, io.ErrUnexpectedEOF on an abrupt cut), or fn returns
// an error (returned verbatim, stream closed).
func (c *Client) Events(ctx context.Context, f EventFilter, fn func(StreamEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/events"+f.query(), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", sseContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err != nil || mt != sseContentType {
		return fmt.Errorf("service: event stream has content type %q, want %q",
			resp.Header.Get("Content-Type"), sseContentType)
	}
	dec := NewSSEDecoder(resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			if ctx.Err() != nil {
				// The transport surfaces cancellation as a read error
				// mid-frame; report the cancellation, not the symptom.
				return nil
			}
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
