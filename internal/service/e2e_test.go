package service

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	greedy "repro"
)

// TestE2ELoadgenSmoke is a miniature of cmd/loadgen: closed-loop
// workers drive mixed MIS/MM/SF traffic with a small seed pool against
// the real HTTP stack, so dedup hits, executions, and polling all
// happen concurrently. Run with -race.
func TestE2ELoadgenSmoke(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	gr, err := c.Generate(ctx, GenSpec{Generator: "random", N: 5000, M: 20000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers    = 4
		jobsPerWkr = 25
		seedPool   = 3
	)
	problems := []string{"mis", "mm", "sf", "coloring", "hittingset"}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		finished int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < jobsPerWkr; i++ {
				req := JobRequest{
					GraphID: gr.ID,
					Problem: problems[rng.Intn(len(problems))],
					Plan:    greedy.Plan{Seed: uint64(rng.Intn(seedPool))},
				}
				sub, err := c.Submit(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				st, err := c.Wait(ctx, sub.ID, time.Millisecond)
				if err != nil {
					t.Error(err)
					return
				}
				if st.State != StateDone {
					t.Errorf("worker %d job %d failed: %s", w, i, st.Error)
					return
				}
				mu.Lock()
				finished++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if finished != workers*jobsPerWkr {
		t.Fatalf("finished %d of %d jobs", finished, workers*jobsPerWkr)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Jobs.Submitted != workers*jobsPerWkr {
		t.Fatalf("submitted %d, want %d", snap.Jobs.Submitted, workers*jobsPerWkr)
	}
	// At most 5 problems x 3 seeds distinct specs can execute; the
	// remaining submissions must be dedup hits.
	maxExec := int64(len(problems) * seedPool)
	if snap.Jobs.Executed > maxExec {
		t.Fatalf("executed %d, want <= %d (dedup broken)", snap.Jobs.Executed, maxExec)
	}
	if snap.Jobs.DedupHits != snap.Jobs.Submitted-snap.Jobs.Executed {
		t.Fatalf("dedup accounting off: %+v", snap.Jobs)
	}

	// Every duplicate of one spec must serve byte-identical results.
	a, err := c.Submit(ctx, JobRequest{GraphID: gr.ID, Problem: "mis", Plan: greedy.Plan{Seed: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, a.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	raw1, _, err := c.Result(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw2, _, err := c.Result(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("re-reads of one result differ")
	}
}
