package service

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	greedy "repro"
	"repro/internal/dynamic"
	"repro/internal/graph"
)

// patchOf converts dynamic updates to the wire form.
func patchOf(updates ...dynamic.Update) PatchRequest {
	req := PatchRequest{}
	for _, up := range updates {
		req.Updates = append(req.Updates, PatchUpdate{Op: up.Op.String(), U: up.U, V: up.V})
	}
	return req
}

// TestHTTPGraphPatchVersions: PATCH derives a new content-addressed
// version, identical patches dedup onto it, and dedup keys stay sound
// across versions (the same plan on parent and child are distinct
// jobs).
func TestHTTPGraphPatchVersions(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	parent, err := c.Generate(ctx, GenSpec{Generator: "random", N: 500, M: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Find an absent pair to insert deterministically.
	up := dynamic.Update{Op: dynamic.OpAdd, U: 0, V: 1}
	g := graph.Random(500, 1500, 3)
	for g.HasEdge(up.U, up.V) {
		up.V++
	}
	child, err := c.Patch(ctx, parent.ID, patchOf(up))
	if err != nil {
		t.Fatal(err)
	}
	if child.ID == parent.ID {
		t.Fatal("patched graph kept the parent id")
	}
	if child.Parent != parent.ID || child.Added != 1 || child.Removed != 0 {
		t.Fatalf("bad patch response: %+v", child)
	}
	if child.M != parent.M+1 {
		t.Fatalf("child has m=%d, want %d", child.M, parent.M+1)
	}
	if child.Deduped {
		t.Fatal("first patch reported deduped")
	}
	// The identical patch dedups onto the same version.
	again, err := c.Patch(ctx, parent.ID, patchOf(up))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != child.ID || !again.Deduped {
		t.Fatalf("identical patch produced %+v, want dedup onto %s", again, child.ID)
	}
	// Same plan on parent and child: two distinct executions.
	plan := greedy.ResolvePlan(greedy.WithSeed(7))
	j1, err := c.Submit(ctx, JobRequest{GraphID: parent.ID, Problem: "mis", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(ctx, JobRequest{GraphID: child.ID, Problem: "mis", Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Deduped || j2.Deduped || j1.ID == j2.ID {
		t.Fatalf("jobs across versions conflated: %+v vs %+v", j1, j2)
	}

	// Error paths.
	if _, err := c.Patch(ctx, "gnope", patchOf(up)); err == nil {
		t.Fatal("patch of unknown graph succeeded")
	}
	if _, err := c.Patch(ctx, parent.ID, patchOf(dynamic.Update{Op: dynamic.OpDel, U: 0, V: 0})); err == nil {
		t.Fatal("self-loop delete accepted")
	}
	if _, err := c.Patch(ctx, parent.ID, PatchRequest{Updates: []PatchUpdate{{Op: "frobnicate", U: 1, V: 2}}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestHTTPGraphStats: the stats endpoint answers for resident graphs
// and 404s for unknown ids.
func TestHTTPGraphStats(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 2000, M: 8000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.GraphStats(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.Stats(graph.Random(2000, 8000, 1))
	if st.N != want.N || st.M != want.M || st.DegreeP50 != want.Median ||
		st.DegreeP99 != want.P99 || st.DegreeMax != want.Max || st.Components != want.ConnectedComps {
		t.Fatalf("stats mismatch: got %+v want %+v", st, want)
	}
	if _, err := c.GraphStats(ctx, "gmissing"); err == nil {
		t.Fatal("stats of unknown graph succeeded")
	}
}

// TestDynamicJobRepairAcrossVersions is the end-to-end repair path:
// a dynamic job seeds a session, PATCH derives versions, and dynamic
// jobs on the descendants are answered by incremental repair with
// results identical to from-scratch computation.
func TestDynamicJobRepairAcrossVersions(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	base, err := c.Generate(ctx, GenSpec{Generator: "random", N: 1000, M: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dynPlan := greedy.ResolvePlan(greedy.WithSeed(5), greedy.WithDynamic())

	runJob := func(graphID, problem string) ResultPayload {
		t.Helper()
		sub, err := c.Submit(ctx, JobRequest{GraphID: graphID, Problem: problem, Plan: dynPlan})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		raw, done, err := c.Result(ctx, sub.ID)
		if err != nil || !done {
			t.Fatalf("result: done=%v err=%v", done, err)
		}
		var payload ResultPayload
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatal(err)
		}
		return payload
	}

	// Seed sessions on the base version.
	first := runJob(base.ID, "mis")
	if !first.Dynamic || first.Repaired {
		t.Fatalf("first dynamic job: %+v", first)
	}
	firstMM := runJob(base.ID, "mm")
	if firstMM.Repaired {
		t.Fatal("first MM job cannot be repaired")
	}

	// Two chained patches.
	g := graph.Random(1000, 5000, 2)
	ins := dynamic.Update{Op: dynamic.OpAdd, U: 3, V: 4}
	for g.HasEdge(ins.U, ins.V) {
		ins.V++
	}
	v2, err := c.Patch(ctx, base.ID, patchOf(ins))
	if err != nil {
		t.Fatal(err)
	}
	del := dynamic.Update{Op: dynamic.OpDel, U: ins.U, V: ins.V}
	more := dynamic.Update{Op: dynamic.OpAdd, U: 10, V: 500}
	for g.HasEdge(more.U, more.V) {
		more.V++
	}
	v3, err := c.Patch(ctx, v2.ID, patchOf(del, more))
	if err != nil {
		t.Fatal(err)
	}

	// A dynamic job on v3 must repair from the base session across the
	// two-patch lineage.
	repaired := runJob(v3.ID, "mis")
	if !repaired.Repaired || repaired.RepairBatches != 2 || repaired.RepairedFrom != base.ID {
		t.Fatalf("expected repair across 2 batches from %s, got %+v", base.ID, repaired)
	}
	if repaired.Repair == nil {
		t.Fatal("repaired payload missing repair stats")
	}

	// Repair must equal from-scratch: a fresh non-dynamic MIS with the
	// same seed selects the same set (the vertex order is churn-stable),
	// and both payloads commit to membership with the same checksum.
	fresh := runJob(v3.ID, "mis")
	_ = fresh // exact-version session read; equality asserted below via scratch
	scratchPlan := greedy.ResolvePlan(greedy.WithSeed(5))
	sub, err := c.Submit(ctx, JobRequest{GraphID: v3.ID, Problem: "mis", Plan: scratchPlan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	raw, done, err := c.Result(ctx, sub.ID)
	if err != nil || !done {
		t.Fatalf("scratch result: done=%v err=%v", done, err)
	}
	var scratch ResultPayload
	if err := json.Unmarshal(raw, &scratch); err != nil {
		t.Fatal(err)
	}
	if scratch.Checksum != repaired.Checksum || scratch.Size != repaired.Size {
		t.Fatalf("repaired MIS diverges from recompute: %s/%d vs %s/%d",
			repaired.Checksum, repaired.Size, scratch.Checksum, scratch.Size)
	}

	// MM: repaired result must equal the library's one-shot dynamic
	// matching on the mutated graph.
	repairedMM := runJob(v3.ID, "mm")
	if !repairedMM.Repaired {
		t.Fatalf("MM job did not repair: %+v", repairedMM)
	}
	g2, _, _, err := dynamic.ApplyToGraph(g, []dynamic.Update{ins})
	if err != nil {
		t.Fatal(err)
	}
	g3, _, _, err := dynamic.ApplyToGraph(g2, []dynamic.Update{del, more})
	if err != nil {
		t.Fatal(err)
	}
	want, err := greedy.NewSolver().MM(ctx, g3.EdgeList(), greedy.WithSeed(5), greedy.WithDynamic())
	if err != nil {
		t.Fatal(err)
	}
	if repairedMM.Size != want.Size() {
		t.Fatalf("repaired MM size %d, from-scratch %d", repairedMM.Size, want.Size())
	}
	if len(repairedMM.MemberPairs) != len(want.Pairs) {
		t.Fatalf("pair count %d vs %d", len(repairedMM.MemberPairs), len(want.Pairs))
	}
	for i, p := range want.Pairs {
		if repairedMM.MemberPairs[i] != [2]int32{p.U, p.V} {
			t.Fatalf("pair %d: %v vs %v", i, repairedMM.MemberPairs[i], p)
		}
	}
}

// TestDynamicJobsWithSessionsDisabled: a negative session cap turns
// every dynamic job into a recompute; answers stay correct.
func TestDynamicJobsWithSessionsDisabled(t *testing.T) {
	svc, err := New(Config{Workers: 1, DynamicSessions: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	info, _, err := svc.Generate(GenSpec{Generator: "random", N: 300, M: 900, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := svc.Patch(info.ID, []dynamic.Update{{Op: dynamic.OpAdd, U: 0, V: 299}}, "")
	if err != nil {
		// The random graph may already contain {0,299}; pick another.
		res, _, err = svc.Patch(info.ID, []dynamic.Update{{Op: dynamic.OpAdd, U: 1, V: 298}}, "")
		if err != nil {
			t.Fatal(err)
		}
	}
	spec := JobSpec{GraphID: res.ID, Problem: ProblemMIS, Plan: greedy.ResolvePlan(greedy.WithDynamic())}
	st, _, err := svc.Engine().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "job "+st.ID+" to finish", func() bool {
		cur, err := svc.Engine().Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateFailed || cur.State == StateCancelled {
			t.Fatalf("job ended %s: %s", cur.State, cur.Error)
		}
		return cur.State == StateDone
	})
	raw, _, err := svc.Engine().Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var payload ResultPayload
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Repaired {
		t.Fatal("sessions disabled but job reports repair")
	}
	if !payload.Dynamic || payload.Size == 0 {
		t.Fatalf("bad payload: %+v", payload)
	}
}

// TestDynamicPlanValidation: dynamic SF and dynamic Luby are rejected
// at submission time.
func TestDynamicPlanValidation(t *testing.T) {
	spec := JobSpec{GraphID: "g", Problem: ProblemSF, Plan: greedy.ResolvePlan(greedy.WithDynamic())}
	if err := spec.Validate(); err == nil {
		t.Fatal("dynamic SF accepted")
	}
	spec = JobSpec{GraphID: "g", Problem: ProblemMIS, Plan: greedy.ResolvePlan(greedy.WithDynamic(), greedy.WithAlgorithm(greedy.AlgoLuby))}
	if err := spec.Validate(); err == nil {
		t.Fatal("dynamic Luby accepted")
	}
	spec = JobSpec{GraphID: "g", Problem: ProblemMM, Plan: greedy.ResolvePlan(greedy.WithDynamic())}
	if err := spec.Validate(); err != nil {
		t.Fatalf("dynamic MM rejected: %v", err)
	}
	// Dynamic participates in the dedup key.
	a := JobSpec{GraphID: "g", Problem: ProblemMM, Plan: greedy.ResolvePlan()}
	b := JobSpec{GraphID: "g", Problem: ProblemMM, Plan: greedy.ResolvePlan(greedy.WithDynamic())}
	if a.Key() == b.Key() {
		t.Fatal("dynamic flag does not separate dedup keys")
	}
}

// TestPatchLineage: every patch records its derivation, base graphs
// have none, and records survive chained patches.
func TestPatchLineage(t *testing.T) {
	reg := NewRegistry(0, nil)
	g := graph.Random(50, 100, 1)
	info, _, err := reg.Add(g, "base")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := reg.Lineage(info.ID); ok {
		t.Fatal("base graph has lineage")
	}
	cur := info.ID
	curG := g
	for i := 0; i < 3; i++ {
		up := dynamic.Update{Op: dynamic.OpAdd, U: 0, V: int32(40 + i)}
		if curG.HasEdge(up.U, up.V) {
			up.Op = dynamic.OpDel
		}
		res, _, err := reg.Patch(cur, []dynamic.Update{up}, "")
		if err != nil {
			t.Fatal(err)
		}
		parent, updates, ok := reg.Lineage(res.ID)
		if !ok || parent != cur || len(updates) != 1 {
			t.Fatalf("lineage of %s: parent=%s ok=%v", res.ID, parent, ok)
		}
		cur = res.ID
		next, _, _, err := dynamic.ApplyToGraph(curG, []dynamic.Update{up})
		if err != nil {
			t.Fatal(err)
		}
		curG = next
	}
}
