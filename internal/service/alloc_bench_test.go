package service

import (
	"context"
	"testing"
	"time"

	greedy "repro"
)

// BenchmarkEngineUniqueJobs measures the full per-unique-job cost of
// the engine — submit, queue, execute on a per-worker pooled Solver,
// checksum, marshal the payload — with every submission carrying a
// fresh seed so the idempotency cache never absorbs the work.
//
// The controlled reuse-vs-fresh comparison is the BenchmarkSolverMIS*
// pair in the root package: it isolates exactly the workspace effect.
// BenchmarkEngineUniqueJobsNoReuse below is NOT that pair's engine
// analogue — it measures the bare fresh-solver computation without the
// engine's queueing, checksum, or payload-marshal overhead, i.e. a
// lower bound on the PR 1 per-job compute cost. That the full engine
// path with reuse still beats it (time and bytes) is the headline.
func BenchmarkEngineUniqueJobs(b *testing.B) {
	benchEngineUniqueJobs(b, false)
}

// BenchmarkEngineUniqueJobsNoReuse: one fresh Solver per job, compute
// only (no engine/serialization overhead) — see the comment above for
// how to read it against BenchmarkEngineUniqueJobs.
func BenchmarkEngineUniqueJobsNoReuse(b *testing.B) {
	benchEngineUniqueJobs(b, true)
}

func benchEngineUniqueJobs(b *testing.B, fresh bool) {
	svc, err := New(Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	info, _, err := svc.Generate(GenSpec{Generator: "random", N: 100_000, M: 500_000, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	run := func(seed uint64) {
		if fresh {
			// Bypass the engine's pooled worker Solver: execute the same
			// computation the worker would, on a throwaway Solver.
			h, err := svc.Registry().Acquire(info.ID)
			if err != nil {
				b.Fatal(err)
			}
			defer h.Release()
			if _, err := greedy.NewSolver().MIS(context.Background(), h.Graph(), greedy.WithSeed(seed)); err != nil {
				b.Fatal(err)
			}
			return
		}
		st, _, err := svc.Engine().Submit(JobSpec{
			GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Seed: seed},
		})
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(time.Minute)
		for {
			cur, err := svc.Engine().Status(st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if cur.State == StateDone {
				return
			}
			if cur.State == StateFailed || time.Now().After(deadline) {
				b.Fatalf("job %s: %s", st.ID, cur.State)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	run(1 << 32) // warm the worker's solver outside the measured loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(uint64(i) + 1)
	}
}
