package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
)

func testGraph(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	return graph.Random(n, 4*n, seed)
}

func TestRegistryContentAddressing(t *testing.T) {
	r := NewRegistry(0, nil)
	g := testGraph(t, 1000, 1)
	info1, dup1, err := r.Add(g, "a")
	if err != nil {
		t.Fatal(err)
	}
	if dup1 {
		t.Fatal("first add reported as duplicate")
	}
	// A structurally identical graph built separately dedups.
	info2, dup2, err := r.Add(testGraph(t, 1000, 1), "b")
	if err != nil {
		t.Fatal(err)
	}
	if !dup2 || info2.ID != info1.ID {
		t.Fatalf("identical graph not deduplicated: %v vs %v (dup=%v)", info2.ID, info1.ID, dup2)
	}
	// A different graph gets a different id.
	info3, _, err := r.Add(testGraph(t, 1000, 2), "c")
	if err != nil {
		t.Fatal(err)
	}
	if info3.ID == info1.ID {
		t.Fatal("distinct graphs share an id")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	g := testGraph(t, 1000, 1)
	per := graphBytes(g)
	r := NewRegistry(3*per, nil) // room for exactly three graphs

	var ids []string
	for s := uint64(1); s <= 4; s++ {
		info, _, err := r.Add(testGraph(t, 1000, s), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		// Touch the first graph so seed 2 is the LRU when seed 4 arrives.
		if s == 3 {
			h, err := r.Acquire(ids[0])
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	if _, ok := r.Get(ids[1]); ok {
		t.Fatal("LRU graph (seed 2) survived eviction")
	}
	if _, ok := r.Get(ids[3]); !ok {
		t.Fatal("newest graph missing")
	}
}

func TestRegistryPinnedNeverEvicted(t *testing.T) {
	g := testGraph(t, 1000, 1)
	per := graphBytes(g)
	r := NewRegistry(2*per, nil)

	info, _, err := r.Add(g, "pinned")
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Flood the registry far past its budget: the pinned graph must
	// survive every eviction pass.
	for s := uint64(10); s < 20; s++ {
		if _, _, err := r.Add(testGraph(t, 1000, s), ""); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Get(info.ID); !ok {
			t.Fatalf("pinned graph evicted after add %d", s)
		}
	}
	h.Release()
	// Unpinned now: one more add pushes it out (it is the LRU).
	if _, _, err := r.Add(testGraph(t, 1000, 99), ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(info.ID); ok {
		t.Fatal("released LRU graph not evicted")
	}
}

func TestRegistryTooLarge(t *testing.T) {
	r := NewRegistry(100, nil)
	_, _, err := r.Add(testGraph(t, 1000, 1), "")
	if err == nil {
		t.Fatal("oversized graph accepted")
	}
}

// TestRegistryEvictionRefcountRace hammers Acquire/Release against
// budget-pressured Adds; run with -race. The invariant: a graph is
// never evicted while a handle on it is outstanding, so every pinned
// access must see the graph resident.
func TestRegistryEvictionRefcountRace(t *testing.T) {
	g := testGraph(t, 500, 1)
	per := graphBytes(g)
	r := NewRegistry(2*per, nil)
	info, _, err := r.Add(g, "hot")
	if err != nil {
		t.Fatal(err)
	}

	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan error, 4)

	// Pinners: acquire the hot graph, use it, release.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h, err := r.Acquire(info.ID)
				if err != nil {
					// The hot graph may be evicted between a release
					// and the next acquire; re-add it and continue.
					if _, _, aerr := r.Add(testGraph(t, 500, 1), "hot"); aerr != nil {
						errs <- aerr
						return
					}
					continue
				}
				if _, ok := r.Get(info.ID); !ok {
					errs <- fmt.Errorf("worker %d: pinned graph not resident at iter %d", w, i)
					h.Release()
					return
				}
				if h.Graph().NumVertices() != 500 {
					errs <- fmt.Errorf("worker %d: pinned graph corrupted", w)
					h.Release()
					return
				}
				h.Release()
			}
		}(w)
	}
	// Evictor: keep adding fresh graphs so the budget stays saturated.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, _, err := r.Add(testGraph(t, 500, uint64(100+i%7)), ""); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHandleEdgeListCachedAndAccounted(t *testing.T) {
	r := NewRegistry(0, nil)
	info, _, err := r.Add(testGraph(t, 1000, 1), "")
	if err != nil {
		t.Fatal(err)
	}
	h1, err := r.Acquire(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	before := r.counters().BytesResident
	el1 := h1.EdgeList()
	after := r.counters().BytesResident
	if after <= before {
		t.Fatalf("edge list bytes not accounted: %d -> %d", before, after)
	}
	h2, err := r.Acquire(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	el2 := h2.EdgeList()
	if &el1.Edges[0] != &el2.Edges[0] {
		t.Fatal("edge list not cached across handles")
	}
	if r.counters().BytesResident != after {
		t.Fatal("edge list double-accounted")
	}
}
