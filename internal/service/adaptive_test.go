package service

import (
	"encoding/json"
	"testing"

	greedy "repro"
)

// TestAdaptiveDedupKeyDistinct: an adaptive plan and its fixed twin
// are different computations (different Stats, different SF edges) and
// must not dedup onto each other; equal adaptive plans must.
func TestAdaptiveDedupKeyDistinct(t *testing.T) {
	fixed := JobSpec{GraphID: "g1", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 7}}
	adaptive := fixed
	adaptive.Plan.AdaptivePrefix = true
	if fixed.Key() == adaptive.Key() {
		t.Fatal("adaptive and fixed specs share a dedup key")
	}
	again := adaptive
	if adaptive.Key() != again.Key() {
		t.Fatal("equal adaptive specs have different keys")
	}
}

// TestAdaptiveValidation: adaptive requires the prefix algorithm, at
// submission time (HTTP 400), for every problem.
func TestAdaptiveValidation(t *testing.T) {
	for _, algo := range []greedy.Algorithm{greedy.AlgoSequential, greedy.AlgoRootSet, greedy.AlgoParallel, greedy.AlgoLuby} {
		spec := JobSpec{GraphID: "g", Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: algo, AdaptivePrefix: true}}
		if err := spec.Validate(); err == nil {
			t.Errorf("adaptive + %v accepted", algo)
		}
	}
	ok := JobSpec{GraphID: "g", Problem: ProblemSF, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, AdaptivePrefix: true}}
	if err := ok.Validate(); err != nil {
		t.Errorf("adaptive prefix SF rejected: %v", err)
	}
}

// TestAdaptiveJobEndToEnd: an adaptive submission executes, matches the
// fixed run's membership checksum bit-for-bit (MIS is
// schedule-independent), differs in Stats (so the dedup-key split is
// justified), reports live/final window progress, and bumps the
// adaptive_executed metric.
func TestAdaptiveJobEndToEnd(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	info := addGraph(t, svc, 30_000, 2)

	fixedSpec := JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 5}}
	adSpec := fixedSpec
	adSpec.Plan.AdaptivePrefix = true

	fixedSt, _, err := svc.Engine().Submit(fixedSpec)
	if err != nil {
		t.Fatal(err)
	}
	adSt, deduped, err := svc.Engine().Submit(adSpec)
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("adaptive submission deduped onto the fixed job")
	}
	waitDone(t, svc.Engine(), fixedSt.ID)
	final := waitDone(t, svc.Engine(), adSt.ID)
	if final.State != StateDone {
		t.Fatalf("adaptive job ended %s: %s", final.State, final.Error)
	}
	if final.Progress == nil || final.Progress.PrefixSize < 256 {
		t.Fatalf("adaptive job progress missing or window never grew: %+v", final.Progress)
	}

	var fixedPayload, adPayload ResultPayload
	raw, _, err := svc.Engine().Result(fixedSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &fixedPayload); err != nil {
		t.Fatal(err)
	}
	raw, _, err = svc.Engine().Result(adSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &adPayload); err != nil {
		t.Fatal(err)
	}
	if adPayload.Checksum != fixedPayload.Checksum {
		t.Errorf("adaptive MIS checksum %s differs from fixed %s", adPayload.Checksum, fixedPayload.Checksum)
	}
	if adPayload.Size != fixedPayload.Size {
		t.Errorf("adaptive MIS size %d differs from fixed %d", adPayload.Size, fixedPayload.Size)
	}
	if adPayload.Stats == fixedPayload.Stats {
		t.Errorf("adaptive and fixed runs report identical stats %+v (dedup split would be pointless)", adPayload.Stats)
	}
	if !adPayload.Plan.AdaptivePrefix {
		t.Error("payload plan lost AdaptivePrefix")
	}

	snap := svc.Snapshot()
	if snap.Jobs.AdaptiveExecuted != 1 {
		t.Errorf("adaptive_executed = %d, want 1", snap.Jobs.AdaptiveExecuted)
	}
	if snap.Jobs.Executed != 2 {
		t.Errorf("executed = %d, want 2", snap.Jobs.Executed)
	}
}

// TestAdaptiveWirePlan: the service wire form carries the schedule as
// "prefix": "adaptive" and round-trips through JobRequest marshaling.
func TestAdaptiveWirePlan(t *testing.T) {
	req := JobRequest{GraphID: "g1", Problem: "mis", Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 3, AdaptivePrefix: true}}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back JobRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Plan.AdaptivePrefix {
		t.Fatalf("wire round trip lost adaptive: %s", raw)
	}
}
