package service

import (
	"bytes"
	"sync"
	"testing"
	"time"

	greedy "repro"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func addGraph(t *testing.T, svc *Service, n int, seed uint64) GraphInfo {
	t.Helper()
	info, _, err := svc.Generate(GenSpec{Generator: "random", N: n, M: 4 * n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func waitDone(t *testing.T, e *Engine, id string) JobStatus {
	t.Helper()
	var st JobStatus
	waitFor(t, 30*time.Second, "job "+id+" to finish", func() bool {
		var err error
		if st, err = e.Status(id); err != nil {
			t.Fatal(err)
		}
		return st.State == StateDone || st.State == StateFailed
	})
	return st
}

func TestJobDedupSingleExecution(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	info := addGraph(t, svc, 2000, 1)
	spec := JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 7}}

	// Concurrent duplicate submissions must collapse onto one job.
	const submitters = 16
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := svc.Engine().Submit(spec)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("duplicate submissions produced distinct jobs: %v", ids)
		}
	}
	waitDone(t, svc.Engine(), ids[0])

	// Late duplicate after completion still dedups onto the done job.
	st, deduped, err := svc.Engine().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || st.ID != ids[0] {
		t.Fatalf("post-completion submission not deduplicated (id=%s deduped=%v)", st.ID, deduped)
	}

	snap := svc.Snapshot()
	if snap.Jobs.Executed != 1 {
		t.Fatalf("expected exactly 1 execution, got %d", snap.Jobs.Executed)
	}
	if snap.Jobs.DedupHits != submitters {
		t.Fatalf("expected %d dedup hits, got %d", submitters, snap.Jobs.DedupHits)
	}
}

func TestJobResultsByteIdenticalAndCorrect(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	info := addGraph(t, svc, 2000, 1)
	spec := JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 7}}

	st1, _, err := svc.Engine().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc.Engine(), st1.ID)
	raw1, _, err := svc.Engine().Result(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := svc.Engine().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	raw2, _, err := svc.Engine().Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("duplicate submissions returned different result bytes")
	}

	// The service's answer must be the library's lexicographically-first
	// MIS for the same (graph, seed).
	g := greedy.RandomGraph(2000, 8000, 1)
	want := greedy.MaximalIndependentSet(g, greedy.WithSeed(7))
	if got := membershipChecksum(want.InSet); !bytes.Contains(raw1, []byte(got)) {
		t.Fatalf("service checksum does not match library result (%s not in payload)", got)
	}
}

func TestJobAlgorithmsAcrossProblems(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	info := addGraph(t, svc, 1000, 3)
	cases := []struct {
		problem Problem
		algo    greedy.Algorithm
	}{
		{ProblemMIS, greedy.AlgoPrefix},
		{ProblemMIS, greedy.AlgoSequential},
		{ProblemMIS, greedy.AlgoRootSet},
		{ProblemMIS, greedy.AlgoParallel},
		{ProblemMIS, greedy.AlgoLuby},
		{ProblemMM, greedy.AlgoPrefix},
		{ProblemMM, greedy.AlgoSequential},
		{ProblemMM, greedy.AlgoRootSet},
		{ProblemSF, greedy.AlgoPrefix},
		{ProblemSF, greedy.AlgoSequential},
	}
	for _, c := range cases {
		st, _, err := svc.Engine().Submit(JobSpec{
			GraphID: info.ID, Problem: c.problem, Plan: greedy.Plan{Algorithm: c.algo, Seed: 11},
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.problem, c.algo, err)
		}
		if got := waitDone(t, svc.Engine(), st.ID); got.State != StateDone {
			t.Fatalf("%s/%s failed: %s", c.problem, c.algo, got.Error)
		}
	}
	// The deterministic MIS algorithms agree; Luby need not.
	checksums := map[string]string{}
	for _, c := range cases {
		st, _, _ := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: c.problem, Plan: greedy.Plan{Algorithm: c.algo, Seed: 11}})
		raw, _, err := svc.Engine().Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		checksums[string(c.problem)+"/"+c.algo.String()] = string(raw)
	}
	for _, pair := range [][2]string{
		{"mis/prefix", "mis/sequential"},
		{"mis/prefix", "mis/rootset"},
		{"mis/prefix", "mis/parallel"},
		{"mm/prefix", "mm/sequential"},
		{"mm/prefix", "mm/rootset"},
	} {
		a, b := checksums[pair[0]], checksums[pair[1]]
		// Result payloads differ in algorithm name and stats; compare the
		// membership checksum field.
		ca, cb := extractChecksum(t, a), extractChecksum(t, b)
		if ca != cb {
			t.Errorf("%s and %s disagree: %s vs %s", pair[0], pair[1], ca, cb)
		}
	}
}

func extractChecksum(t *testing.T, payload string) string {
	t.Helper()
	const key = `"checksum":"`
	i := bytes.Index([]byte(payload), []byte(key))
	if i < 0 {
		t.Fatalf("no checksum in payload %q", payload)
	}
	rest := payload[i+len(key):]
	j := bytes.IndexByte([]byte(rest), '"')
	return rest[:j]
}

func TestJobValidation(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	info := addGraph(t, svc, 500, 1)

	if _, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: "nope", Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix}}); err == nil {
		t.Error("bad problem accepted")
	}
	if _, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemMM, Plan: greedy.Plan{Algorithm: greedy.AlgoLuby}}); err == nil {
		t.Error("luby matching accepted")
	}
	if _, _, err := svc.Engine().Submit(JobSpec{GraphID: "gdeadbeef", Problem: ProblemMIS}); err == nil {
		t.Error("unknown graph accepted")
	}
	if _, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{PrefixFrac: 1.5}}); err == nil {
		t.Error("out-of-range prefix accepted")
	}
	// SF implements only prefix and sequential; other names would run
	// prefix while reporting the requested algorithm.
	if _, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemSF, Plan: greedy.Plan{Algorithm: greedy.AlgoRootSet}}); err == nil {
		t.Error("sf/rootset accepted")
	}
	if _, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemSF, Plan: greedy.Plan{Algorithm: greedy.AlgoParallel}}); err == nil {
		t.Error("sf/parallel accepted")
	}
}

func TestGenerateRejectsImpossibleEdgeCounts(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	// n=3 admits at most 3 edges; pre-guard this panicked in the
	// generator instead of failing the request.
	if _, _, err := svc.Generate(GenSpec{Generator: "random", N: 3, M: 100}); err == nil {
		t.Error("impossible random edge count accepted")
	}
	if _, _, err := svc.Generate(GenSpec{Generator: "rmat", N: 4, M: 100}); err == nil {
		t.Error("impossible rmat edge count accepted")
	}
}

func TestJobTTLReaping(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, ResultTTL: 50 * time.Millisecond})
	info := addGraph(t, svc, 500, 1)
	st, _, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc.Engine(), st.ID)

	waitFor(t, 5*time.Second, "finished job to be reaped past TTL", func() bool {
		_, err := svc.Engine().Status(st.ID)
		return err != nil // reaped
	})
	// The key is free again: a resubmission starts a fresh execution.
	st2, deduped, err := svc.Engine().Submit(JobSpec{GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if deduped || st2.ID == st.ID {
		t.Fatalf("reaped job still a dedup target (id=%s deduped=%v)", st2.ID, deduped)
	}
	waitDone(t, svc.Engine(), st2.ID)
}

// TestJobsPinGraphAgainstEviction floods a tightly-budgeted registry
// while jobs run on a hot graph; no job may fail with a missing graph.
// Run with -race.
func TestJobsPinGraphAgainstEviction(t *testing.T) {
	g := addGraphSized(t)
	svc := newTestService(t, Config{Workers: 2, CacheBytes: 3 * g})
	info := addGraph(t, svc, 2000, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Evictor: churn fresh graphs through the registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := uint64(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seed++
			if _, _, err := svc.Generate(GenSpec{Generator: "random", N: 2000, M: 8000, Seed: seed}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 30; i++ {
		st, _, err := svc.Engine().Submit(JobSpec{
			GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: uint64(i)},
		})
		if err != nil {
			// The hot graph may have been evicted between jobs (it is
			// unpinned while idle); re-add and retry.
			info = addGraph(t, svc, 2000, 1)
			st, _, err = svc.Engine().Submit(JobSpec{
				GraphID: info.ID, Problem: ProblemMIS, Plan: greedy.Plan{Algorithm: greedy.AlgoPrefix, Seed: uint64(i)},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := waitDone(t, svc.Engine(), st.ID); got.State != StateDone {
			t.Fatalf("job %d failed: %s", i, got.Error)
		}
	}
	close(stop)
	wg.Wait()
}

func addGraphSized(t *testing.T) int64 {
	t.Helper()
	r := NewRegistry(0, nil)
	info, _, err := r.Add(testGraph(t, 2000, 1), "")
	if err != nil {
		t.Fatal(err)
	}
	return info.Bytes
}
