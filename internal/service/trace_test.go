package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	greedy "repro"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/trace"
)

// kindsOf projects a trace onto its event kinds, in recorded order.
func kindsOf(events []trace.Event) []trace.Kind {
	out := make([]trace.Kind, len(events))
	for i, ev := range events {
		out[i] = ev.Kind
	}
	return out
}

func indexOfKind(events []trace.Event, k trace.Kind) int {
	for i, ev := range events {
		if ev.Kind == k {
			return i
		}
	}
	return -1
}

// TestJobTraceLifecycle: a static job's trace carries the full span
// sequence — submit, checkout, queue, run, done — in lifecycle order,
// plus sampled round events when round sampling is on.
func TestJobTraceLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, TraceRoundSample: 1})
	ctx := context.Background()

	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 2000, M: 8000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, JobRequest{GraphID: info.ID, Problem: "mis", Plan: greedy.ResolvePlan(greedy.WithSeed(2))})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("wait: state=%v err=%v", st.State, err)
	}

	tr, err := c.JobTrace(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.JobID != sub.ID {
		t.Fatalf("trace job id %q, want %q", tr.JobID, sub.ID)
	}
	for _, ev := range tr.Events {
		if ev.Job != sub.ID {
			t.Fatalf("event for job %q in trace of %q: %+v", ev.Job, sub.ID, ev)
		}
	}
	// Lifecycle kinds present and ordered.
	order := []trace.Kind{trace.KindSubmit, trace.KindCheckout, trace.KindQueue, trace.KindRun, trace.KindDone}
	prev := -1
	for _, k := range order {
		i := indexOfKind(tr.Events, k)
		if i < 0 {
			t.Fatalf("trace missing %s event; kinds: %v", k, kindsOf(tr.Events))
		}
		if i < prev {
			t.Fatalf("event %s out of lifecycle order; kinds: %v", k, kindsOf(tr.Events))
		}
		prev = i
	}
	if i := indexOfKind(tr.Events, trace.KindRound); i < 0 {
		t.Fatalf("round sampling on but no round events; kinds: %v", kindsOf(tr.Events))
	} else if tr.Events[i].Round < 1 || tr.Events[i].Attempted <= 0 {
		t.Fatalf("implausible round event: %+v", tr.Events[i])
	}
	done := tr.Events[indexOfKind(tr.Events, trace.KindDone)]
	if done.Name != string(StateDone) || done.DurMS < 0 {
		t.Fatalf("bad done event: %+v", done)
	}
	// Seqs strictly increase (oldest first).
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq <= tr.Events[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %+v", i, tr.Events[i])
		}
	}
}

// TestJobTraceDynamicRepair: the trace of a repaired dynamic job
// carries a resolve event naming the replay path and per-batch repair
// events whose visited/flipped counts sum to exactly the payload's
// aggregated Repair stats — the acceptance criterion of the flight
// recorder: what the API reports and what the trace recorded are the
// same work.
func TestJobTraceDynamicRepair(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	base, err := c.Generate(ctx, GenSpec{Generator: "random", N: 1000, M: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dynPlan := greedy.ResolvePlan(greedy.WithSeed(5), greedy.WithDynamic())

	// Seed the session on the base version.
	seed, err := c.Submit(ctx, JobRequest{GraphID: base.ID, Problem: "mis", Plan: dynPlan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, seed.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	seedTr, err := c.JobTrace(ctx, seed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if i := indexOfKind(seedTr.Events, trace.KindResolve); i < 0 || seedTr.Events[i].Name != "scratch" {
		t.Fatalf("seeding job resolve != scratch; kinds: %v", kindsOf(seedTr.Events))
	}

	// Derive a patched version and run a dynamic job on it: repaired.
	// The registry is content-addressed, so regenerating the graph
	// locally finds a real edge to delete and a non-edge to insert.
	g := graph.Random(1000, 5000, 2)
	nb := g.Neighbors(1)
	if len(nb) == 0 {
		t.Fatal("vertex 1 has no neighbors")
	}
	del := dynamic.Update{Op: dynamic.OpDel, U: 1, V: nb[0]}
	ins := dynamic.Update{Op: dynamic.OpAdd, U: 3, V: 900}
	for g.HasEdge(ins.U, ins.V) || ins.U == ins.V {
		ins.V++
	}
	v2, err := c.Patch(ctx, base.ID, patchOf(del, ins))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Submit(ctx, JobRequest{GraphID: v2.ID, Problem: "mis", Plan: dynPlan})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, rep.ID, time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("wait: state=%v err=%v", st.State, err)
	}
	raw, done, err := c.Result(ctx, rep.ID)
	if err != nil || !done {
		t.Fatalf("result: done=%v err=%v", done, err)
	}
	var payload ResultPayload
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Repaired || payload.Repair == nil {
		t.Fatalf("job was not repaired: %+v", payload)
	}

	tr, err := c.JobTrace(ctx, rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	ri := indexOfKind(tr.Events, trace.KindResolve)
	if ri < 0 || tr.Events[ri].Name != "replay" {
		t.Fatalf("repaired job resolve != replay; kinds: %v", kindsOf(tr.Events))
	}
	if tr.Events[ri].Batch != payload.RepairBatches {
		t.Fatalf("resolve batches %d != payload %d", tr.Events[ri].Batch, payload.RepairBatches)
	}
	var visited, flipped, batches int
	for _, ev := range tr.Events {
		if ev.Kind != trace.KindRepair {
			continue
		}
		batches++
		visited += ev.Visited
		flipped += ev.Flipped
	}
	if batches == 0 {
		t.Fatalf("no repair events in repaired job's trace; kinds: %v", kindsOf(tr.Events))
	}
	if batches != payload.RepairBatches {
		t.Fatalf("repair events %d != payload batches %d", batches, payload.RepairBatches)
	}
	if visited != payload.Repair.MIS.Visited || flipped != payload.Repair.MIS.Flipped {
		t.Fatalf("trace repair work visited/flipped = %d/%d, payload says %d/%d",
			visited, flipped, payload.Repair.MIS.Visited, payload.Repair.MIS.Flipped)
	}
}

// TestTraceRecentAndLimits: /v1/trace/recent answers the newest events
// across jobs and requests, honors ?limit, and rejects bad limits.
func TestTraceRecentAndLimits(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 500, M: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, JobRequest{GraphID: info.ID, Problem: "mm", Plan: greedy.ResolvePlan(greedy.WithSeed(4))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	recent, err := c.TraceRecent(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recent.Events) == 0 || recent.Total == 0 {
		t.Fatalf("recent trace empty: %+v", recent)
	}
	// HTTP request spans ride the same recorder.
	if indexOfKind(recent.Events, trace.KindHTTP) < 0 {
		t.Fatalf("no HTTP events in recent trace; kinds: %v", kindsOf(recent.Events))
	}
	limited, err := c.TraceRecent(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Events) != 3 {
		t.Fatalf("limit=3 returned %d events", len(limited.Events))
	}
	// The limited view is the newest suffix.
	if limited.Events[len(limited.Events)-1].Seq != recent.Events[len(recent.Events)-1].Seq &&
		limited.Events[len(limited.Events)-1].Seq < recent.Events[len(recent.Events)-1].Seq {
		t.Fatalf("limited view is not the newest suffix")
	}
	resp, err := http.Get(srv.URL + "/v1/trace/recent?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit answered %d, want 400", resp.StatusCode)
	}
}

// TestTraceDisabledAndUnknownJob: negative TraceCapacity disables the
// subsystem — both endpoints answer 404 — and with tracing on, a trace
// request for an unknown job answers 404 rather than an empty trace.
func TestTraceDisabledAndUnknownJob(t *testing.T) {
	srvOff, cOff := newTestServer(t, Config{Workers: 1, TraceCapacity: -1})
	ctx := context.Background()
	if _, err := cOff.TraceRecent(ctx, 0); err == nil {
		t.Fatal("trace/recent succeeded with tracing disabled")
	}
	resp, err := http.Get(srvOff.URL + "/v1/trace/recent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled trace endpoint answered %d, want 404", resp.StatusCode)
	}

	_, c := newTestServer(t, Config{Workers: 1})
	if _, err := c.JobTrace(ctx, "jmissing"); err == nil {
		t.Fatal("trace of unknown job succeeded")
	}
}
