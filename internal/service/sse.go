package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// sseContentType is the Server-Sent Events media type served by
// GET /v1/events and required by the client.
const sseContentType = "text/event-stream"

// writeSSEFrame emits one SSE frame: optional "id:" and "event:" lines
// followed by a "data:" line carrying v as JSON and the blank dispatch
// line. Data is a single line — json.Marshal never emits newlines.
func writeSSEFrame(w io.Writer, id, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id != "" {
		if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
			return err
		}
	}
	if event != "" {
		if _, err := fmt.Fprintf(w, "event: %s\n", event); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// writeSSEEvent frames one trace event: the recorder sequence number is
// the SSE id (so a reconnecting client can detect gaps) and the kind is
// the SSE event name (so EventSource listeners can subscribe by kind).
func writeSSEEvent(w io.Writer, ev trace.Event) error {
	return writeSSEFrame(w, fmt.Sprintf("%d", ev.Seq), string(ev.Kind), ev)
}

// StreamEvent is one parsed frame of a text/event-stream: either a data
// frame (Event/Data set, ID when the server sent one) or a comment-only
// frame such as the server's heartbeat (Comment set, everything else
// empty).
type StreamEvent struct {
	// ID is the frame's "id:" field ("" when absent). The server uses
	// the recorder sequence number.
	ID string
	// Event is the frame's "event:" field — a trace.Kind, or "evicted"
	// for the terminal overflow frame.
	Event string
	// Data is the frame's "data:" payload; multiple data lines are
	// joined with newlines per the SSE specification.
	Data []byte
	// Comment holds ":"-prefixed comment lines ("hb dropped=0" for the
	// server's heartbeat); multiple comment lines are joined with
	// newlines.
	Comment string
}

// IsComment reports whether the frame carried only comments (the
// server's heartbeat).
func (e StreamEvent) IsComment() bool { return e.Event == "" && len(e.Data) == 0 }

// TraceEvent decodes the frame's data payload as a trace event.
func (e StreamEvent) TraceEvent() (trace.Event, error) {
	var ev trace.Event
	err := json.Unmarshal(e.Data, &ev)
	return ev, err
}

// SSEDecoder incrementally parses a Server-Sent Events stream. It
// implements the subset of the SSE grammar the service emits: "id:",
// "event:" and "data:" fields, ":" comments, and blank-line dispatch.
type SSEDecoder struct {
	r *bufio.Reader
}

// NewSSEDecoder wraps r for frame-at-a-time reading.
func NewSSEDecoder(r io.Reader) *SSEDecoder {
	return &SSEDecoder{r: bufio.NewReader(r)}
}

// Next blocks until one complete frame (terminated by a blank line) has
// been read and returns it. It returns io.EOF at clean end of stream; a
// frame cut off mid-accumulation returns io.ErrUnexpectedEOF.
func (d *SSEDecoder) Next() (StreamEvent, error) {
	var ev StreamEvent
	var data, comments []string
	started := false
	for {
		line, err := d.r.ReadString('\n')
		if err != nil {
			if err == io.EOF && (started || line != "") {
				err = io.ErrUnexpectedEOF
			}
			return StreamEvent{}, err
		}
		line = strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
		if line == "" {
			if !started {
				// Leading blank lines separate frames; skip them.
				continue
			}
			ev.Data = []byte(strings.Join(data, "\n"))
			if len(ev.Data) == 0 {
				ev.Data = nil
			}
			ev.Comment = strings.Join(comments, "\n")
			return ev, nil
		}
		started = true
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "": // ":comment" — field name is empty
			comments = append(comments, value)
		case "id":
			ev.ID = value
		case "event":
			ev.Event = value
		case "data":
			data = append(data, value)
		default:
			// Unknown fields are ignored per the SSE specification.
		}
	}
}
