package service

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/trace"
)

// ErrStreamDisabled is returned by GET /v1/events when the service was
// configured without streaming (negative StreamSubscribers) or without
// tracing (negative TraceCapacity — there is no recorder to tee from).
var ErrStreamDisabled = errors.New("service: event streaming disabled")

// streamKinds are the kinds a ?kind= filter may name. Unknown kinds are
// rejected with 400 rather than silently matching nothing.
var streamKinds = map[trace.Kind]bool{
	trace.KindSubmit:   true,
	trace.KindCheckout: true,
	trace.KindQueue:    true,
	trace.KindResolve:  true,
	trace.KindRound:    true,
	trace.KindPhase:    true,
	trace.KindRepair:   true,
	trace.KindRun:      true,
	trace.KindDone:     true,
	trace.KindHTTP:     true,
}

// StreamEviction is the data payload of the terminal "evicted" SSE
// event: the subscription fell behind, dropped Dropped events, and was
// detached. The client should reconnect with a narrower filter or a
// faster consumer.
type StreamEviction struct {
	Dropped uint64 `json:"dropped"`
}

// StreamShutdown is the data payload of the terminal "shutdown" SSE
// event: the server is draining, and the stream ends cleanly rather
// than dying with the listener. Clients distinguishing a graceful
// drain from a crash key off this frame.
type StreamShutdown struct {
	Reason string `json:"reason"`
}

// flushSSE flushes the response stream; the sse.flush failpoint lets
// the chaos harness simulate a consumer whose connection dies mid-
// stream.
func flushSSE(rc *http.ResponseController) error {
	if err := fault.Inject(fault.SSEFlush); err != nil {
		return err
	}
	return rc.Flush()
}

// handleEvents serves GET /v1/events: a Server-Sent Events stream of
// live trace events, teeing the flight recorder. Query parameters:
//
//	job=ID      only events of that job
//	kind=a,b,c  only events of the named kinds (see trace.Kind)
//
// The stream carries one SSE frame per event (id: the recorder
// sequence number, event: the kind, data: the trace.Event JSON), plus
// periodic ": hb dropped=N" comment heartbeats carrying the
// subscriber's cumulative drop count. A subscriber that falls a full
// eviction budget behind receives a terminal "evicted" event and the
// stream ends. At the admission limit new streams get 503.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !s.trace.Enabled() || !s.bcast.Enabled() {
		writeError(w, http.StatusNotFound, ErrStreamDisabled)
		return
	}
	filter := trace.Filter{Job: strings.TrimSpace(r.URL.Query().Get("job"))}
	if arg := strings.TrimSpace(r.URL.Query().Get("kind")); arg != "" {
		filter.Kinds = make(map[trace.Kind]bool)
		for _, part := range strings.Split(arg, ",") {
			k := trace.Kind(strings.TrimSpace(part))
			if !streamKinds[k] {
				writeError(w, http.StatusBadRequest, fmt.Errorf("service: unknown event kind %q", k))
				return
			}
			filter.Kinds[k] = true
		}
	}
	sub, err := s.bcast.Subscribe(filter)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer sub.Close()

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", sseContentType)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies: do not buffer
	w.WriteHeader(http.StatusOK)
	if _, err := fmt.Fprintf(w, ": connected sub=%d\n\n", sub.ID()); err != nil {
		return
	}
	if err := flushSSE(rc); err != nil {
		// The wrapped writer cannot stream (no Flusher under the
		// middleware); nothing more we can do for this client.
		return
	}

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	buf := make([]trace.Event, 0, 256)
	for {
		beat := false
		select {
		case <-r.Context().Done():
			return
		case <-s.shutdownCh:
			// Graceful drain: a terminal frame tells consumers the server
			// is going away on purpose, then the stream ends before the
			// listener is torn down.
			_ = writeSSEFrame(w, "", "shutdown", StreamShutdown{Reason: "draining"})
			_ = rc.Flush()
			return
		case <-sub.Ready():
		case <-heartbeat.C:
			beat = true
		}
		buf = buf[:0]
		var dropped uint64
		var evicted bool
		buf, dropped, evicted = sub.Drain(buf)
		for _, ev := range buf {
			if err := writeSSEEvent(w, ev); err != nil {
				return
			}
		}
		if evicted {
			// Terminal frame: tell the consumer how much it lost, then
			// end the stream. The subscription slot frees on Close.
			_ = writeSSEFrame(w, "", "evicted", StreamEviction{Dropped: dropped})
			_ = rc.Flush()
			return
		}
		if beat {
			if _, err := fmt.Fprintf(w, ": hb dropped=%d\n\n", dropped); err != nil {
				return
			}
		}
		if len(buf) > 0 || beat {
			if err := flushSSE(rc); err != nil {
				return
			}
		}
	}
}
