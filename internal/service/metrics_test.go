package service

import (
	"math"
	"testing"
	"time"

	"repro/internal/dynamic"
)

// TestHistogramBucketBoundObservation: an observation exactly equal to
// a bucket's upper bound lands in THAT bucket (SearchFloat64s returns
// the first bound >= v), never the next one.
func TestHistogramBucketBoundObservation(t *testing.T) {
	h := newHistogram()
	h.observe(0.001) // == latencyBounds[3]
	for i, c := range h.counts {
		want := int64(0)
		if i == 3 {
			want = 1
		}
		if c != want {
			t.Errorf("bucket %d count = %d, want %d", i, c, want)
		}
	}
	// The quantile of the sole observation is the observation itself:
	// the bucket's interpolation ceiling is min(bound, max) = 0.001.
	if got := h.quantile(0.5); got != 0.001 {
		t.Errorf("p50 of a bound-exact single observation = %g, want 0.001", got)
	}
}

// TestHistogramSingleObservation: with one observation every quantile
// is that observation — p50 = p99 = max — not an interpolated value
// below it.
func TestHistogramSingleObservation(t *testing.T) {
	for _, v := range []float64{0.00017, 0.0042, 3.3, 25.0 /* unbounded last bucket */} {
		h := newHistogram()
		h.observe(v)
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
			if got := h.quantile(q); got != v {
				t.Errorf("obs %g: q%g = %g, want max %g", v, q, got, v)
			}
		}
		if h.max != v {
			t.Errorf("obs %g: max = %g", v, h.max)
		}
	}
}

// TestHistogramUnboundedLastBucket: with every observation in the +Inf
// bucket, quantiles clamp to the recorded max — finite, at least the
// last finite bound, never above max.
func TestHistogramUnboundedLastBucket(t *testing.T) {
	h := newHistogram()
	obs := []float64{11, 30, 60, 120, 500}
	for _, v := range obs {
		h.observe(v)
	}
	lastBound := latencyBounds[len(latencyBounds)-1]
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("q%g = %v, want finite", q, got)
		}
		if got < lastBound || got > h.max {
			t.Errorf("q%g = %g outside [%g, %g]", q, got, lastBound, h.max)
		}
	}
	// The top quantile of the bucket reaches the max exactly.
	if got := h.quantile(0.99); got != h.max {
		t.Errorf("p99 with all %d obs in last bucket = %g, want max %g (rank = count)", len(obs), got, h.max)
	}
}

// TestHistogramQuantileOnEmptyBucketBoundary: a rank landing exactly on
// a cumulative-count boundary that is followed by empty buckets must
// resolve inside the bucket that holds the observations, and ranks just
// past it must skip the empty buckets deterministically.
func TestHistogramQuantileOnEmptyBucketBoundary(t *testing.T) {
	h := newHistogram()
	// Two obs in bucket 1 (0.0001, 0.00025], three in bucket 4
	// (0.001, 0.0025]; buckets 2-3 stay empty.
	h.observe(0.0002)
	h.observe(0.0002)
	h.observe(0.002)
	h.observe(0.002)
	h.observe(0.0024)

	// rank = ⌈0.4·5⌉ = 2: exactly the cumulative boundary of bucket 1.
	// The answer must come from bucket 1 — at its upper edge — not from
	// an empty bucket or bucket 4.
	got := h.quantile(0.4)
	if got != latencyBounds[1] {
		t.Errorf("p40 = %g, want bucket-1 upper bound %g", got, latencyBounds[1])
	}
	// rank = ⌈0.41·5⌉ = 3: first observation of bucket 4; lower edge of
	// that bucket's interpolation range.
	got = h.quantile(0.41)
	lo, hi := latencyBounds[3], latencyBounds[4]
	if got <= lo || got > hi {
		t.Errorf("p41 = %g, want inside (%g, %g]", got, lo, hi)
	}
	// Monotonicity across the boundary.
	if h.quantile(0.4) >= h.quantile(0.41) {
		t.Errorf("quantiles not monotone across empty-bucket boundary: p40=%g p41=%g", h.quantile(0.4), h.quantile(0.41))
	}
}

// TestHistogramEmpty: the zero histogram answers 0 for everything.
func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	if got := h.quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %g", got)
	}
	snap := snapshotHistogram(h)
	if snap.Count != 0 || snap.P99MS != 0 || snap.MeanMS != 0 {
		t.Errorf("empty snapshot: %+v", snap)
	}
}

// TestMetricsAdaptiveExecutedCounter: adaptive completions increment
// the adaptive counter alongside executed; fixed ones do not; failed
// and cancelled adaptive runs count in neither.
func TestMetricsAdaptiveExecutedCounter(t *testing.T) {
	m := NewMetrics()
	repair := &dynamic.RepairStats{
		MIS: dynamic.RepairCost{Visited: 7, Flipped: 2},
		MM:  dynamic.RepairCost{Visited: 5, Flipped: 1},
	}
	m.jobFinished(ProblemMIS, StateDone, true, nil, time.Millisecond, 2*time.Millisecond)
	m.jobFinished(ProblemMIS, StateDone, false, repair, time.Millisecond, 2*time.Millisecond)
	m.jobFinished(ProblemMM, StateFailed, true, nil, time.Millisecond, 2*time.Millisecond)
	m.jobFinished(ProblemSF, StateCancelled, true, nil, time.Millisecond, 2*time.Millisecond)
	s := m.snapshot()
	if s.Jobs.Executed != 2 {
		t.Errorf("executed = %d, want 2", s.Jobs.Executed)
	}
	if s.Jobs.AdaptiveExecuted != 1 {
		t.Errorf("adaptive_executed = %d, want 1", s.Jobs.AdaptiveExecuted)
	}
	if s.Jobs.Repaired != 1 {
		t.Errorf("repaired = %d, want 1", s.Jobs.Repaired)
	}
	if s.Jobs.RepairVisited != 12 || s.Jobs.RepairFlipped != 3 {
		t.Errorf("repair_visited/flipped = %d/%d, want 12/3", s.Jobs.RepairVisited, s.Jobs.RepairFlipped)
	}
	if s.Jobs.Failed != 1 || s.Jobs.Cancelled != 1 {
		t.Errorf("failed/cancelled = %d/%d, want 1/1", s.Jobs.Failed, s.Jobs.Cancelled)
	}
}
